//! Integration: the paper's headline claim end-to-end at test scale —
//! an Xpander at ~2/3 of a fat-tree's cost sustains skewed workloads
//! with simple oblivious routing.

use beyond_fattrees::prelude::*;

fn metrics(topo: &Topology, routing: Routing, lambda: f64, seed: u64) -> Metrics {
    let pattern = Skew::projector_like(topo, topo.tors_with_servers(), seed);
    let flows = generate_flows(&pattern, &PFabricWebSearch::new(), lambda, 0.03, seed);
    let (m, _) = run_fct_experiment(
        topo,
        routing,
        SimConfig::default(),
        &flows,
        (5 * MS, 25 * MS),
        30 * SEC,
    );
    m
}

#[test]
fn xpander_matches_fat_tree_on_skewed_traffic() {
    // Small scale: at Tiny the Xpander racks hold half the servers of the
    // fat-tree's, so hotspot concentration is not comparable.
    let pair = paper_networks(Scale::Small, 42);
    let lambda = 60.0 * pair.fat_tree.num_servers() as f64;
    let ft = metrics(&pair.fat_tree, Routing::Ecmp, lambda, 7);
    let xp = metrics(&pair.xpander, Routing::PAPER_HYB, lambda, 7);
    assert_eq!(ft.completed, ft.flows, "fat-tree flows unfinished");
    assert_eq!(xp.completed, xp.flows, "xpander flows unfinished");
    // The claim is parity, not dominance: allow the cheaper network up to
    // 2x on this tiny noisy instance.
    assert!(
        xp.avg_fct_ms <= ft.avg_fct_ms * 2.0,
        "xpander {} ms vs fat-tree {} ms",
        xp.avg_fct_ms,
        ft.avg_fct_ms
    );
}

#[test]
fn all_three_routings_complete_on_both_networks() {
    let pair = paper_networks(Scale::Tiny, 1);
    for topo in [&pair.fat_tree, &pair.xpander] {
        for routing in [Routing::Ecmp, Routing::Vlb, Routing::PAPER_HYB] {
            let m = metrics(topo, routing, 500.0, 3);
            assert_eq!(m.completed, m.flows, "{} {:?}", topo.name(), routing);
        }
    }
}

#[test]
fn equal_cost_xpander_construction_is_consistent() {
    for scale in [Scale::Tiny, Scale::Small] {
        let pair = paper_networks(scale, 9);
        assert!(pair.xpander.num_servers() >= pair.fat_tree.num_servers());
        assert!(pair.xpander.num_nodes() < pair.fat_tree.num_nodes());
        assert!(pair.xpander.is_connected());
        assert!(pair.fat_tree.is_connected());
    }
}
