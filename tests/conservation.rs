//! Packet-conservation integration tests: for every transport, with and
//! without an active fault plan, every packet the hosts create is
//! delivered, dropped with a recorded cause, or still in flight when the
//! run stops — and the tracer's per-cause counters agree with the
//! fabric's own drop/mark accounting.

use beyond_fattrees::prelude::*;

fn build_plan(t: &Topology, seed: u64) -> FaultPlan {
    // Hard flaps + blanket gray loss, as in the determinism suite: this
    // guarantees fault drops, no-route drops, and reconvergence epochs
    // all show up in the accounting.
    let mut plan = FaultPlan::new()
        .with_seed(seed)
        .link_down(MS, 3)
        .switch_down(3 * MS, 1)
        .link_up(5 * MS, 3)
        .switch_up(6 * MS, 1);
    for l in 0..t.links().len() as u32 {
        plan = plan.link_gray(2 * MS, l, 0.05).link_clear(7 * MS, l);
    }
    plan
}

fn checked_run(cfg: SimConfig, with_faults: bool, seed: u64) -> Conservation {
    let xp = Xpander::for_switches(5, 24, 2, seed).build();
    let pattern = Skew::new(&xp, xp.tors_with_servers(), 0.1, 0.7, seed);
    let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 2000.0, 0.01, seed);
    assert!(!flows.is_empty());

    let mut sim = Simulator::new(&xp, Routing::PAPER_HYB.selector(&xp), cfg);
    sim.set_window(0, 10 * MS);
    sim.inject(&flows);
    if with_faults {
        sim.set_fault_plan(&build_plan(&xp, seed));
    }
    sim.set_tracer(Box::new(CountingTracer::new()));
    sim.run(20 * SEC);

    let summary = check_conservation(&sim)
        .unwrap_or_else(|e| panic!("{} faults={with_faults}: {e}", sim.transport_name()));
    assert!(summary.sent > 0, "no packets created");
    assert!(summary.delivered > 0, "nothing delivered");
    summary
}

#[test]
fn conservation_holds_per_transport_without_faults() {
    for cfg in [
        SimConfig::default(),
        SimConfig::default().with_newreno(),
        SimConfig::default().with_pfabric(),
    ] {
        let s = checked_run(cfg, false, 42);
        // The run stops once every window flow is done (receiver-side),
        // so at most a tail of returning ACKs is still in flight — never
        // a meaningful fraction of the traffic.
        assert!(
            s.in_flight * 100 <= s.sent,
            "{} packets stranded out of {} sent",
            s.in_flight,
            s.sent
        );
    }
}

#[test]
fn conservation_holds_per_transport_under_faults() {
    let mut any_drops = 0;
    for cfg in [
        SimConfig::default(),
        SimConfig::default().with_newreno(),
        SimConfig::default().with_pfabric(),
    ] {
        let s = checked_run(cfg, true, 42);
        any_drops += s.dropped;
    }
    assert!(any_drops > 0, "fault plan never dropped a packet");
}

/// The tracer's flow lifecycle counters agree with the flow records: the
/// fault-plan run from `ablate_failures` accounts every started flow as
/// finished or failed.
#[test]
fn traced_fault_run_accounts_every_flow() {
    let xp = Xpander::for_switches(5, 24, 2, 7).build();
    let pattern = Skew::new(&xp, xp.tors_with_servers(), 0.1, 0.7, 7);
    let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 1500.0, 0.01, 7);
    let plan = FaultPlan::random_link_outages(&xp, 3, 2 * MS, Some(10 * MS), 5);

    let mut sim = Simulator::new(&xp, Routing::PAPER_HYB.selector(&xp), SimConfig::default());
    sim.set_window(0, 10 * MS);
    sim.inject(&flows);
    sim.set_fault_plan(&plan);
    sim.set_tracer(Box::new(CountingTracer::new()));
    let rec = sim.run(60 * SEC);

    check_conservation(&sim).expect("conservation");
    let c = sim.trace_counters().expect("counting tracer");
    assert_eq!(
        c.flows_started as usize,
        rec.len(),
        "start events vs records"
    );
    assert_eq!(
        c.flows_finished + c.flows_failed,
        c.flows_started,
        "flow in limbo"
    );
    assert_eq!(
        c.flows_finished as usize,
        rec.iter().filter(|r| r.fct_ns.is_some()).count()
    );
    // The run may stop before late fault events fire, but every
    // transition that did fire was traced.
    assert!(c.fault_transitions > 0, "no fault transition traced");
    assert!(c.fault_transitions as usize <= plan.events().len());
}
