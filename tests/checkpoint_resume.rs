//! Integration: checkpoint/resume equivalence for the full observability
//! pipeline. For every transport, a run that is paused mid-flight,
//! checkpointed to disk, reloaded, and driven to the end must produce the
//! same flow records, the byte-identical JSONL event trace, and the
//! byte-identical telemetry stream as the same run left uninterrupted —
//! with an active fault plan (a link outage plus a gray link) in both legs.

use beyond_fattrees::prelude::*;

fn topo() -> Topology {
    FatTree::full(4).build()
}

fn workload(t: &Topology) -> Vec<FlowEvent> {
    let pattern = AllToAll::new(t, t.tors_with_servers());
    let mut flows = generate_flows(&pattern, &PFabricWebSearch::new(), 1500.0, 0.004, 23);
    // One long flow so the pause at PAUSE_NS is guaranteed mid-flight.
    if let Some(f) = flows.first_mut() {
        f.bytes = 8_000_000;
    }
    flows
}

fn plan() -> FaultPlan {
    FaultPlan::new()
        .with_seed(11)
        .link_down(MS, 2)
        .link_gray(2 * MS, 5, 0.02)
        .link_up(4 * MS, 2)
}

const PAUSE_NS: u64 = 3 * MS;
const MAX_TIME: u64 = 40 * MS;

fn tmp_path(tag: &str, leg: &str, kind: &str) -> String {
    let dir = std::env::temp_dir();
    dir.join(format!("ckpt_resume_{tag}_{leg}.{kind}.jsonl"))
        .to_string_lossy()
        .into_owned()
}

/// Builds a fully instrumented simulator writing trace + telemetry toward
/// the given paths.
fn build(t: &Topology, cfg: SimConfig, trace: &str, tel: &str) -> Simulator {
    let mut sim = Simulator::new(t, Routing::Ecmp.selector(t), cfg);
    sim.set_window(0, 10 * MS);
    sim.inject(&workload(t));
    sim.set_fault_plan(&plan());
    sim.set_tracer(Box::new(JsonlTracer::create(trace).expect("open trace")));
    sim.set_telemetry(Telemetry::to_file(tel, DEFAULT_SAMPLE_EVERY_NS).expect("open telemetry"));
    sim
}

fn roundtrip(tag: &str, cfg: SimConfig) {
    let t = topo();

    // Leg A: uninterrupted.
    let trace_a = tmp_path(tag, "straight", "trace");
    let tel_a = tmp_path(tag, "straight", "tel");
    let mut sim = build(&t, cfg, &trace_a, &tel_a);
    let rec_a = sim.run(MAX_TIME);

    // Leg B: pause mid-flight, checkpoint to disk, reload, resume.
    let trace_b = tmp_path(tag, "resumed", "trace");
    let tel_b = tmp_path(tag, "resumed", "tel");
    let mut sim = build(&t, cfg, &trace_b, &tel_b);
    let done = sim.run_until(PAUSE_NS);
    assert!(!done, "{tag}: run must pause mid-flight at {PAUSE_NS} ns");
    let ckpt = sim.checkpoint().expect("checkpoint");
    drop(sim); // simulate the original process dying after the snapshot

    let ckpt_path = tmp_path(tag, "resumed", "ckpt");
    ckpt.save(&ckpt_path).expect("save checkpoint");
    let loaded = Checkpoint::load(&ckpt_path).expect("load checkpoint");
    assert_eq!(loaded.meta().now, PAUSE_NS.min(loaded.meta().now));

    let mut resumed =
        Simulator::restore(&t, Routing::Ecmp.selector(&t), cfg, &loaded).expect("restore");
    let rec_b = resumed.run(MAX_TIME);

    assert_eq!(rec_a, rec_b, "{tag}: flow records diverge after resume");
    assert!(
        rec_a.iter().any(|r| r.fct_ns.is_some()),
        "{tag}: degenerate run, nothing completed"
    );
    let (ta, tb) = (
        std::fs::read(&trace_a).expect("read straight trace"),
        std::fs::read(&trace_b).expect("read resumed trace"),
    );
    assert!(!ta.is_empty(), "{tag}: empty trace");
    assert_eq!(ta, tb, "{tag}: event traces diverge after resume");
    let (sa, sb) = (
        std::fs::read(&tel_a).expect("read straight telemetry"),
        std::fs::read(&tel_b).expect("read resumed telemetry"),
    );
    assert!(!sa.is_empty(), "{tag}: empty telemetry");
    assert_eq!(sa, sb, "{tag}: telemetry streams diverge after resume");

    for p in [trace_a, tel_a, trace_b, tel_b, ckpt_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn dctcp_resume_is_byte_identical() {
    roundtrip("dctcp", SimConfig::default());
}

#[test]
fn newreno_resume_is_byte_identical() {
    roundtrip("newreno", SimConfig::default().with_newreno());
}

#[test]
fn pfabric_resume_is_byte_identical() {
    roundtrip("pfabric", SimConfig::default().with_pfabric());
}
