//! Integration: chaos soak against a live `dcnserve` daemon. A fleet of
//! concurrent clients hammers the service while every job's first worker
//! attempt is SIGKILLed mid-run, cache entries are bit-flipped on disk,
//! and misbehaving clients send garbage or vanish mid-stream — and every
//! *completed* response must still be byte-identical to a direct
//! in-process run of the same experiment. Then SIGTERM must drain the
//! daemon cleanly (exit 0).

use std::io::Write as _;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use beyond_fattrees::jobs::{self, CrashHooks};
use beyond_fattrees::serve::protocol::{read_frame, write_frame, Request};
use dcn_json::Json;

fn config_json(seed: u64, lambda: u64, window_hi_ms: u64) -> String {
    format!(
        r#"{{
  "topology": {{ "kind": "fat_tree", "k": 4 }},
  "routing": {{ "kind": "ecmp" }},
  "workload": {{ "pattern": {{ "kind": "all_to_all" }} }},
  "lambda": {lambda}.0,
  "window_ms": [0, {window_hi_ms}],
  "seed": {seed}
}}
"#
    )
}

/// Computes the ground truth the daemon must reproduce: the same job run
/// directly in-process, uninterrupted, no checkpoints.
fn expected_bytes(cfg: &str, tag: &str) -> Vec<u8> {
    let dir = std::env::temp_dir();
    let cfg_path = dir.join(format!("serve_soak_{tag}_{}.json", std::process::id()));
    std::fs::write(&cfg_path, cfg).expect("write config");
    let exp = beyond_fattrees::config::load_experiment(cfg_path.to_str().unwrap())
        .expect("load experiment");
    let ckpt = dir.join(format!("serve_soak_{tag}_{}.ckpt", std::process::id()));
    let bytes = jobs::run_job(
        "soak",
        &exp,
        ckpt.to_str().unwrap(),
        3_600_000, // cadence far beyond the run: no checkpoints taken
        CrashHooks::default(),
    )
    .expect("direct run")
    .bytes;
    let _ = std::fs::remove_file(&cfg_path);
    let _ = std::fs::remove_file(&ckpt);
    bytes
}

struct Daemon {
    child: Child,
    addr: String,
    state_dir: std::path::PathBuf,
}

impl Daemon {
    /// Spawns a daemon on an ephemeral port and waits for its addr file.
    fn spawn(tag: &str, extra: &[&str]) -> Daemon {
        Daemon::spawn_with_env(tag, extra, &[])
    }

    /// Like [`Daemon::spawn`], with extra environment variables — the
    /// fault-injection soaks arm `DCN_FAILPOINTS` in the daemon (and,
    /// inherited, in its workers).
    fn spawn_with_env(tag: &str, extra: &[&str], env: &[(&str, &str)]) -> Daemon {
        let root = std::env::temp_dir().join(format!("serve_soak_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("mkdir");
        let addr_file = root.join("addr");
        let state_dir = root.join("state");
        let mut args = vec![
            "serve".to_string(),
            "--tcp".into(),
            "127.0.0.1:0".into(),
            "--addr-file".into(),
            addr_file.to_string_lossy().into_owned(),
            "--state-dir".into(),
            state_dir.to_string_lossy().into_owned(),
            "--checkpoint-every-ms".into(),
            "0".into(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_dcnserve"));
        cmd.args(&args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .env_remove("DCN_FAILPOINTS");
        for (k, v) in env {
            cmd.env(k, v);
        }
        let child = cmd.spawn().expect("spawn dcnserve");
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                if let Some(line) = s.lines().next().filter(|l| !l.is_empty()) {
                    break line.to_string();
                }
            }
            assert!(
                Instant::now() < deadline,
                "daemon never wrote its addr file"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        Daemon {
            child,
            addr,
            state_dir,
        }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(&self.addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        s.set_write_timeout(Some(Duration::from_secs(30))).unwrap();
        s
    }

    /// Sends one run request; returns (status, payload-if-ok).
    fn request(&self, cfg: &str, deadline_ms: Option<u64>, no_cache: bool) -> (String, Vec<u8>) {
        let mut conn = self.connect();
        let frame = Request::run_frame(Json::parse(cfg).expect("parse cfg"), deadline_ms, no_cache);
        write_frame(&mut conn, &frame).expect("send");
        let envelope = read_frame(&mut conn).expect("read envelope");
        let env = Json::parse(&String::from_utf8_lossy(&envelope)).expect("parse envelope");
        let status = env
            .get("status")
            .and_then(|s| s.as_str().map(str::to_string))
            .unwrap_or_default();
        if status == "ok" {
            (status, read_frame(&mut conn).expect("read payload"))
        } else {
            (status, Vec::new())
        }
    }

    /// SIGTERM, then the exit code.
    fn terminate(mut self) -> i32 {
        let pid = self.child.id().to_string();
        let _ = Command::new("kill").args(["-TERM", &pid]).status();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(st) = self.child.try_wait().expect("wait daemon") {
                let _ = std::fs::remove_dir_all(self.state_dir.parent().unwrap());
                return st.code().unwrap_or(-1);
            }
            assert!(Instant::now() < deadline, "daemon ignored SIGTERM");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill(); // safety net if an assert fired first
        let _ = self.child.wait();
    }
}

/// The headline chaos soak: crash-injected workers + concurrent clients +
/// cache corruption + protocol abuse, with byte-identical results and a
/// clean drain at the end.
#[test]
fn soak_survives_worker_kills_cache_rot_and_bad_clients() {
    // Lambda high enough that BOTH seeds' jobs span several
    // simulated-time chunks: `--checkpoint-every-ms 0` then writes real
    // checkpoints, so the injected first-attempt SIGKILL actually fires.
    // (At low lambda the Poisson flow count is small and seed-dependent —
    // some seeds drain inside the first chunk, never checkpoint, and the
    // kill hook, which triggers *after* a checkpoint, silently never
    // happens. The `worker_relaunches` assertion below guards that.)
    let cfg_a = config_json(7, 1000, 2);
    let cfg_b = config_json(8, 1000, 2);
    let want_a = Arc::new(expected_bytes(&cfg_a, "a"));
    let want_b = Arc::new(expected_bytes(&cfg_b, "b"));
    assert_ne!(
        *want_a, *want_b,
        "configs must differ for the test to mean anything"
    );

    // Every job's first worker attempt SIGKILLs itself after one
    // checkpoint; the supervisor must resume it to the same bytes.
    let d = Arc::new(Daemon::spawn(
        "chaos",
        &[
            "--inject-worker-crash",
            "--retries",
            "3",
            "--backoff-ms",
            "50",
        ],
    ));

    // Client fleet: 6 threads × 3 requests, alternating configs.
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let (d, cfg_a, cfg_b) = (Arc::clone(&d), cfg_a.clone(), cfg_b.clone());
        let (want_a, want_b) = (Arc::clone(&want_a), Arc::clone(&want_b));
        handles.push(std::thread::spawn(move || {
            for i in 0..3u64 {
                let (cfg, want) = if (t + i) % 2 == 0 {
                    (&cfg_a, &want_a)
                } else {
                    (&cfg_b, &want_b)
                };
                let (status, payload) = d.request(cfg, None, false);
                assert_eq!(status, "ok", "fleet request must complete");
                assert_eq!(
                    payload, **want,
                    "thread {t} iter {i}: response diverges from a direct run"
                );
            }
        }));
    }

    // Chaos alongside the fleet: protocol abuse and vanishing clients.
    {
        // Garbage frame: daemon answers a config error, stays up.
        let mut conn = d.connect();
        write_frame(&mut conn, b"this is not json").expect("send garbage");
        let env = read_frame(&mut conn).expect("garbage still gets an answer");
        assert!(String::from_utf8_lossy(&env).contains("error"));
    }
    {
        // Oversized frame header: connection is dropped, daemon stays up.
        let mut conn = d.connect();
        let _ = conn.write_all(&(u32::MAX).to_le_bytes());
    }
    {
        // Valid request, client vanishes before reading the response.
        let mut conn = d.connect();
        let frame = Request::run_frame(Json::parse(&cfg_a).unwrap(), None, false);
        write_frame(&mut conn, &frame).expect("send then vanish");
        drop(conn);
    }
    // Bit-flip whatever cache entries exist mid-soak; later requests must
    // quarantine them and recompute, never serve rot. A distinct offset
    // per round, so repeat flips of a recomputed entry never cancel out.
    let cache_dir = d.state_dir.join("cache");
    let flip = |offset: usize| {
        if let Ok(entries) = std::fs::read_dir(&cache_dir) {
            for e in entries.flatten() {
                let p = e.path();
                if p.extension().is_some_and(|x| x == "res") {
                    if let Ok(mut bytes) = std::fs::read(&p) {
                        if let Some(b) = bytes.get_mut(offset) {
                            *b ^= 0xff;
                            let _ = std::fs::write(&p, &bytes);
                        }
                    }
                }
            }
        }
    };
    for round in 0..10 {
        std::thread::sleep(Duration::from_millis(100));
        flip(20 + round);
    }

    for h in handles {
        h.join().expect("fleet thread panicked");
    }

    // With the fleet quiet, rot both entries deterministically: the next
    // requests must quarantine and recompute, never serve the rot.
    flip(19);
    // The rotted entries must heal: request both configs once more.
    let (status, payload) = d.request(&cfg_a, None, false);
    assert_eq!(status, "ok");
    assert_eq!(payload, *want_a, "post-corruption response diverges");
    let (status, payload) = d.request(&cfg_b, None, false);
    assert_eq!(status, "ok");
    assert_eq!(payload, *want_b, "post-corruption response diverges");

    // Stats must confirm the chaos actually happened.
    let mut conn = d.connect();
    write_frame(&mut conn, br#"{"op": "stats"}"#).expect("send stats");
    let stats = Json::parse(&String::from_utf8_lossy(
        &read_frame(&mut conn).expect("stats"),
    ))
    .expect("parse stats");
    let n = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
    assert!(n("run_ok") >= 2, "at least both cold runs completed");
    assert!(n("served_cached") >= 1, "the fleet must have hit the cache");
    assert!(
        n("worker_relaunches") >= 1,
        "the injected first-attempt kill must have forced a relaunch: {stats}"
    );
    drop(conn);

    // Quarantine holds the rotted entries; nothing was served from them.
    let quarantined = std::fs::read_dir(d.state_dir.join("cache/quarantine"))
        .map(|it| it.count())
        .unwrap_or(0);
    assert!(quarantined >= 1, "bit-flipped entries must be quarantined");

    // SIGTERM: drain cleanly.
    let d = Arc::try_unwrap(d).unwrap_or_else(|_| panic!("fleet still holds the daemon"));
    assert_eq!(d.terminate(), 0, "drain must exit 0");
}

/// Backpressure: a single-worker, zero-queue daemon answers `overloaded`
/// immediately instead of stalling when the pool is saturated.
#[test]
fn overload_sheds_instead_of_stalling() {
    let cfg = config_json(9, 300, 2);
    let want = Arc::new(expected_bytes(&cfg, "ovl"));
    let d = Arc::new(Daemon::spawn(
        "overload",
        &["--max-workers", "1", "--max-queue", "0"],
    ));

    let mut handles = Vec::new();
    for _ in 0..6 {
        let (d, cfg, want) = (Arc::clone(&d), cfg.clone(), Arc::clone(&want));
        handles.push(std::thread::spawn(move || {
            // no_cache so every request needs the (single) worker slot.
            let started = Instant::now();
            let (status, payload) = d.request(&cfg, None, true);
            assert!(
                status == "ok" || status == "overloaded",
                "unexpected status {status:?}"
            );
            if status == "ok" {
                assert_eq!(
                    payload, *want,
                    "overload survivor diverges from a direct run"
                );
            } else {
                // Shedding must be immediate, not a stall-then-refuse.
                assert!(
                    started.elapsed() < Duration::from_secs(10),
                    "overloaded answer took {:?}",
                    started.elapsed()
                );
            }
            status
        }));
    }
    let statuses: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();
    assert!(
        statuses.iter().any(|s| s == "ok"),
        "someone must get through: {statuses:?}"
    );
    assert!(
        statuses.iter().any(|s| s == "overloaded"),
        "6 concurrent uncacheable requests vs 1 worker + 0 queue must shed: {statuses:?}"
    );

    let d = Arc::try_unwrap(d).unwrap_or_else(|_| panic!("clients still hold the daemon"));
    assert_eq!(d.terminate(), 0);
}

/// Deadlines: an impossible per-request deadline answers
/// `deadline_exceeded` — the watchdog kills the worker, nothing wedges.
#[test]
fn impossible_deadline_is_refused_not_hung() {
    // A job measured at ~500 ms in a release build — an order of
    // magnitude past the supervise watchdog's 25 ms poll interval, so a
    // 1 ms deadline can never be beaten by a fast worker. (It is always
    // killed at the first poll; its full cost is never paid.)
    let big_cfg = config_json(10, 2000, 40);
    let d = Daemon::spawn("deadline", &[]);
    let started = Instant::now();
    let (status, _) = d.request(&big_cfg, Some(1), true);
    assert_eq!(status, "deadline_exceeded");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "deadline refusal took {:?}",
        started.elapsed()
    );
    // The daemon is still healthy after the watchdog kill: a reasonable
    // request completes fine.
    let (status, payload) = d.request(&config_json(10, 300, 2), None, false);
    assert_eq!(status, "ok", "daemon wedged after a deadline kill");
    assert!(!payload.is_empty());
    assert_eq!(d.terminate(), 0);
}

/// Graceful degradation: with a "full disk" injected under both the
/// worker checkpoint path and the daemon's cache store, every request
/// must still complete with byte-identical results — the service loses
/// durability (counted in `degraded`), never answers.
#[test]
fn enospc_degrades_but_serves_exact_results() {
    let cfg = config_json(31, 1000, 2);
    let want = expected_bytes(&cfg, "deg");
    let d = Daemon::spawn_with_env(
        "degraded",
        &[],
        &[(
            "DCN_FAILPOINTS",
            "ckpt.save.write=enospc;cache.store=enospc",
        )],
    );
    for i in 0..3 {
        let (status, payload) = d.request(&cfg, None, false);
        assert_eq!(status, "ok", "request {i}: ENOSPC must degrade, not fail");
        assert_eq!(
            payload, want,
            "request {i}: degraded response diverges from a direct run"
        );
    }
    let mut conn = d.connect();
    write_frame(&mut conn, br#"{"op": "stats"}"#).expect("send stats");
    let stats = Json::parse(&String::from_utf8_lossy(
        &read_frame(&mut conn).expect("stats"),
    ))
    .expect("parse stats");
    let n = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
    assert_eq!(
        n("degraded"),
        3,
        "every request lost persistence and must say so: {stats}"
    );
    assert_eq!(
        n("served_cached"),
        0,
        "nothing can be cached while stores fail: {stats}"
    );
    assert_eq!(n("run_ok"), 3, "each request recomputed: {stats}");
    assert_eq!(n("cache_entries"), 0, "no entry may survive a failed store");
    drop(conn);
    assert_eq!(d.terminate(), 0, "a degraded daemon still drains cleanly");
}

/// The `--cache-max-bytes` LRU bound: sized to hold exactly one entry,
/// the cache evicts the older entry on each new store, stays within
/// bound, and evicted results are recomputed — byte-identical, never
/// refused.
#[test]
fn cache_bound_evicts_lru_and_recomputes() {
    let cfg_a = config_json(41, 300, 2);
    let cfg_b = config_json(42, 300, 2);
    let want_a = expected_bytes(&cfg_a, "ev_a");
    let want_b = expected_bytes(&cfg_b, "ev_b");
    // One entry is the payload plus a fixed checksummed header; payload +
    // 100 admits one entry comfortably and can never fit two.
    let bound = (want_a.len() + 100).to_string();
    let d = Daemon::spawn("evict", &["--cache-max-bytes", &bound]);

    let (status, payload) = d.request(&cfg_a, None, false);
    assert_eq!((status.as_str(), &payload), ("ok", &want_a));
    let (status, payload) = d.request(&cfg_b, None, false);
    assert_eq!((status.as_str(), &payload), ("ok", &want_b));
    // Storing B must have evicted A; A is recomputed, not refused.
    let (status, payload) = d.request(&cfg_a, None, false);
    assert_eq!((status.as_str(), &payload), ("ok", &want_a));
    // A is now resident again: a repeat is a genuine cache hit.
    let (status, payload) = d.request(&cfg_a, None, false);
    assert_eq!((status.as_str(), &payload), ("ok", &want_a));

    let mut conn = d.connect();
    write_frame(&mut conn, br#"{"op": "stats"}"#).expect("send stats");
    let stats = Json::parse(&String::from_utf8_lossy(
        &read_frame(&mut conn).expect("stats"),
    ))
    .expect("parse stats");
    let n = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
    assert_eq!(n("run_ok"), 3, "A cold, B cold, A recomputed: {stats}");
    assert_eq!(
        n("served_cached"),
        1,
        "the repeat must hit the cache: {stats}"
    );
    assert!(
        n("cache_evicted") >= 2,
        "A then B must have been evicted: {stats}"
    );
    assert_eq!(n("cache_entries"), 1, "the bound holds one entry: {stats}");
    assert!(
        n("cache_bytes") <= bound.parse::<u64>().unwrap(),
        "on-disk bytes exceed the bound: {stats}"
    );
    drop(conn);
    assert_eq!(d.terminate(), 0);
}

/// Every frame the daemon reads lands in exactly one stats bucket: over a
/// known request mix, `requests` must reconcile against the sum of run
/// outcomes, shed/refused answers, structured errors, and the non-run ops
/// we sent ourselves — no silently dropped or double-counted requests.
#[test]
fn stats_reconcile_requests_by_outcome() {
    let d = Daemon::spawn("reconcile", &[]);
    let cfg_a = config_json(21, 300, 2);
    let cfg_b = config_json(22, 300, 2);
    // Two cold runs, then a warm repeat served from the cache.
    assert_eq!(d.request(&cfg_a, None, false).0, "ok");
    assert_eq!(d.request(&cfg_b, None, false).0, "ok");
    assert_eq!(d.request(&cfg_a, None, false).0, "ok");
    let env_of = |frame: &[u8]| {
        let mut conn = d.connect();
        write_frame(&mut conn, frame).expect("send frame");
        Json::parse(&String::from_utf8_lossy(
            &read_frame(&mut conn).expect("read envelope"),
        ))
        .expect("parse envelope")
    };
    // A run whose config cannot load: the structured `config` error.
    let env = env_of(br#"{"op": "run", "config": {}}"#);
    assert_eq!(env.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(env.get("kind").and_then(Json::as_str), Some("config"));
    // An unknown op: its own error kind, so protocol skew is diagnosable.
    let env = env_of(br#"{"op": "selfdestruct"}"#);
    assert_eq!(env.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(env.get("kind").and_then(Json::as_str), Some("unknown_op"));
    // A frame that is not JSON at all: a protocol error, still answered.
    let env = env_of(b"this is not json");
    assert_eq!(env.get("status").and_then(Json::as_str), Some("error"));
    // One ping and one metrics scrape, both counted as requests; the
    // exposition must agree with what we did so far.
    assert_eq!(
        env_of(br#"{"op": "ping"}"#)
            .get("status")
            .and_then(Json::as_str),
        Some("ok")
    );
    {
        let mut conn = d.connect();
        write_frame(&mut conn, br#"{"op": "metrics"}"#).expect("send metrics");
        let env = read_frame(&mut conn).expect("metrics envelope");
        assert!(String::from_utf8_lossy(&env).contains("ok"));
        let text =
            String::from_utf8(read_frame(&mut conn).expect("metrics body")).expect("utf8 body");
        assert!(
            text.contains("# TYPE dcnserve_requests_total counter"),
            "{text}"
        );
        assert!(text.contains("dcnserve_run_ok_total 2"), "{text}");
        assert!(text.contains("dcnserve_cache_served_total 1"), "{text}");
    }
    // The ledger must balance: 8 frames before this stats op, plus itself.
    let mut conn = d.connect();
    write_frame(&mut conn, br#"{"op": "stats"}"#).expect("send stats");
    let stats = Json::parse(&String::from_utf8_lossy(
        &read_frame(&mut conn).expect("read stats"),
    ))
    .expect("parse stats");
    let n = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let outcomes = n("run_ok")
        + n("served_cached")
        + n("coalesced")
        + n("overloaded")
        + n("deadline_exceeded")
        + n("errors_config")
        + n("errors_unknown_op")
        + n("errors_crash")
        + n("errors_ckpt_corrupt")
        + n("errors_internal")
        + n("draining_refused")
        + n("protocol_errors");
    let non_run_ops = 3; // the ping, the metrics scrape, and this stats op
    assert_eq!(
        n("requests"),
        outcomes + non_run_ops,
        "stats ledger does not balance: {stats}"
    );
    assert_eq!(n("run_ok"), 2);
    assert_eq!(n("served_cached"), 1);
    assert_eq!(n("errors_config"), 1);
    assert_eq!(n("errors_unknown_op"), 1);
    assert_eq!(n("cache_entries"), 2, "both cold results must be on disk");
    assert!(n("cache_bytes") > 0);
    assert!(n("uptime_ms") > 0);
    assert_eq!(
        stats
            .get("version")
            .and_then(|v| v.get("crate"))
            .and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    drop(conn);
    assert_eq!(d.terminate(), 0);
}
