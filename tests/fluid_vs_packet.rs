//! Integration: the fluid-flow model (Garg–Könemann) and the packet
//! simulator must agree on what a network can carry — the fluid optimum
//! upper-bounds packet-level goodput, and a lightly loaded network
//! delivers close to it.

use beyond_fattrees::maxflow::FlowNetwork;
use beyond_fattrees::prelude::*;

/// Packet-level per-flow goodput for one long-running flow per rack pair.
fn packet_goodput(t: &Topology, pairs: &[(u32, u32)], bytes: u64) -> f64 {
    let mut flows = Vec::new();
    for (i, &(a, b)) in pairs.iter().enumerate() {
        flows.push(FlowEvent {
            start_s: 0.0,
            src: Endpoint {
                rack: a,
                server: (i % 2) as u32,
            },
            dst: Endpoint {
                rack: b,
                server: (i % 2) as u32,
            },
            bytes,
        });
    }
    let (m, _) = run_fct_experiment(
        t,
        Routing::Ecmp,
        SimConfig::default(),
        &flows,
        (0, MS),
        60 * SEC,
    );
    assert_eq!(m.completed, m.flows);
    m.avg_long_tput_gbps
}

#[test]
fn fluid_optimum_bounds_packet_goodput_on_fat_tree() {
    let t = FatTree::full(4).build();
    // Cross-pod rack permutation.
    let pairs = vec![(0u32, 4u32), (4, 8), (8, 12), (12, 0)];
    let commodities: Vec<Commodity> = pairs
        .iter()
        .map(|&(a, b)| Commodity {
            src: a,
            dst: b,
            demand: 1.0,
        })
        .collect();
    let net = FlowNetwork::from_topology(&t);
    let fluid = max_concurrent_flow(
        &net,
        &commodities,
        GkOptions {
            epsilon: 0.03,
            target: None,
            gap: 0.02,
            max_phases: 2_000_000,
        },
    );
    // One 10 Gbps-line-rate flow per pair: fluid says full rate possible.
    let fluid_gbps = (fluid.throughput * 10.0).min(10.0);
    let packet_gbps = packet_goodput(&t, &pairs, 20_000_000);
    assert!(
        packet_gbps <= fluid_gbps * 1.05,
        "packet {packet_gbps} exceeds fluid bound {fluid_gbps}"
    );
    assert!(
        packet_gbps >= fluid_gbps * 0.75,
        "packet {packet_gbps} far below fluid {fluid_gbps} — transport waste?"
    );
}

#[test]
fn oversubscription_shows_up_in_both_models() {
    let full = FatTree::full(4).build();
    let over = FatTree::oversubscribed_core(4, 1).build();
    let pairs = vec![(0u32, 4u32), (1, 5), (8, 12), (9, 13)];

    let fluid = |t: &Topology| {
        per_server_throughput(
            t,
            &pairs,
            GkOptions {
                epsilon: 0.05,
                target: None,
                gap: 0.03,
                max_phases: 2_000_000,
            },
        )
    };
    let f_full = fluid(&full);
    let f_over = fluid(&over);
    assert!(
        f_over < f_full,
        "fluid: oversubscription must cost throughput"
    );

    let p_full = packet_goodput(&full, &pairs, 10_000_000);
    let p_over = packet_goodput(&over, &pairs, 10_000_000);
    assert!(
        p_over < p_full * 0.8,
        "packet: oversubscribed {p_over} vs full {p_full}"
    );
}
