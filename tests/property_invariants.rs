//! Cross-crate property-style tests: invariants that must hold for any
//! topology, workload, and routing configuration in their valid ranges.
//! Seeded sweeps stand in for proptest.

use beyond_fattrees::maxflow::bound::capacity_path_bound;
use beyond_fattrees::maxflow::FlowNetwork;
use beyond_fattrees::prelude::*;
use dcn_rng::Rng;

/// The TP curve dominates the fat-tree flexibility curve everywhere.
#[test]
fn tp_dominates_fat_tree() {
    let mut meta = Rng::seed_from_u64(0x7901);
    for _ in 0..24 {
        let alpha = 0.05 + meta.gen_range(0.0..0.95);
        let beta = 0.01 + meta.gen_range(0.0..0.49);
        let x = 0.01 + meta.gen_range(0.0..0.99);
        assert!(
            tp_throughput(alpha, x) + 1e-12 >= fat_tree_throughput(alpha, beta, x),
            "alpha {alpha} beta {beta} x {x}"
        );
    }
}

/// Per-server throughput never exceeds the capacity/path-length bound.
#[test]
fn gk_respects_capacity_bound() {
    let mut meta = Rng::seed_from_u64(0xCAB0);
    let mut cases = 0;
    while cases < 12 {
        let n = meta.gen_range(8u32..24);
        let d = meta.gen_range(3u32..6);
        let seed = meta.gen_range(0u64..50);
        if n <= d || !(n * d).is_multiple_of(2) {
            continue;
        }
        cases += 1;
        let t = Jellyfish::new(n, d, 2, seed).build();
        let racks = t.tors_with_servers();
        let pairs: Vec<(u32, u32)> = (0..racks.len())
            .map(|i| (racks[i], racks[(i + 1) % racks.len()]))
            .collect();
        let lam = per_server_throughput(
            &t,
            &pairs,
            GkOptions {
                epsilon: 0.1,
                target: None,
                gap: 0.05,
                max_phases: 500_000,
            },
        );
        let flows: Vec<(u32, u32, f64)> = pairs
            .iter()
            .map(|&(a, b)| (a, b, t.servers_at(a) as f64))
            .collect();
        let bound = capacity_path_bound(&t, &flows);
        assert!(lam <= bound + 1e-9, "gk {lam} exceeds bound {bound}");
    }
}

/// The GK primal never exceeds its own dual certificate.
#[test]
fn gk_primal_below_dual() {
    for seed in 0u64..12 {
        let t = Xpander::for_switches(4, 15, 2, seed).build();
        let racks = t.tors_with_servers();
        let coms: Vec<Commodity> = (0..racks.len())
            .map(|i| Commodity {
                src: racks[i],
                dst: racks[(i + 2) % racks.len()],
                demand: 2.0,
            })
            .collect();
        let net = FlowNetwork::from_topology(&t);
        let r = max_concurrent_flow(
            &net,
            &coms,
            GkOptions {
                epsilon: 0.1,
                target: None,
                gap: 0.05,
                max_phases: 500_000,
            },
        );
        assert!(r.throughput <= r.upper_bound + 1e-9);
    }
}

/// Every flow completes, and no FCT beats the physical lower bound
/// (serialization of the whole flow at line rate).
#[test]
fn packet_fct_bounded_below() {
    let mut meta = Rng::seed_from_u64(0xF1007);
    let t = FatTree::full(4).build();
    let mut cases = 0;
    while cases < 8 {
        let bytes = meta.gen_range(2_000u64..2_000_000);
        let seed = meta.gen_range(0u64..20);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(bytes), 300.0, 0.01, seed);
        if flows.is_empty() {
            continue;
        }
        cases += 1;
        let mut sim = Simulator::new(&t, Routing::Ecmp.selector(&t), SimConfig::default());
        sim.set_window(0, 10 * MS);
        sim.inject(&flows);
        let rec = sim.run(60 * SEC);
        // Line-rate serialization of the payload is a hard floor.
        let floor_ns = (bytes as f64 * 8.0 / 10.0) as u64;
        for r in &rec {
            let fct = r.fct_ns.expect("flow must finish");
            assert!(fct >= floor_ns, "fct {fct} below physical floor {floor_ns}");
        }
    }
}

/// Flow-level and packet-level simulators agree on an uncontended
/// transfer to within protocol overheads.
#[test]
fn flowsim_close_to_packet_on_idle_net() {
    let mut meta = Rng::seed_from_u64(0x1D1E);
    let t = FatTree::full(4).build();
    for _ in 0..8 {
        let bytes = meta.gen_range(1_000_000u64..20_000_000);
        let flow = FlowEvent {
            start_s: 0.0,
            src: Endpoint { rack: 0, server: 0 },
            dst: Endpoint {
                rack: 12,
                server: 0,
            },
            bytes,
        };
        let mut psim = Simulator::new(&t, Routing::Ecmp.selector(&t), SimConfig::default());
        psim.set_window(0, MS);
        psim.inject(&[flow]);
        let p = psim.run(60 * SEC)[0].fct_ns.unwrap() as f64;

        let mut fsim = FlowSim::new(&t, Routing::Ecmp.selector(&t), FlowSimConfig::default());
        fsim.inject(&[flow]);
        let f = fsim.run(60.0)[0].fct_ns.unwrap() as f64;

        // Packet-level pays headers, slow start, and store-and-forward;
        // it must be slower than fluid but within 2x on an idle network.
        assert!(p >= f * 0.99, "packet {p} faster than fluid {f}");
        assert!(p <= f * 2.0 + 1e6, "packet {p} too far above fluid {f}");
    }
}

/// Chaos fuzzing of the fault layer: for any seeded adversarial fault
/// plan ([`FaultPlan::chaos`] — random outages, gray periods, switch
/// flaps), the packet-conservation ledger balances by drop cause, the
/// traced event clock never runs backwards, and every window flow is
/// accounted for as completed or failed.
#[test]
fn chaos_fault_plans_conserve_packets() {
    let t = FatTree::full(4).build();
    for seed in 0u64..10 {
        let plan = FaultPlan::chaos(&t, 4 * MS, seed);
        plan.validate_schedule(&t, 160 * MS)
            .expect("generated chaos plans must always validate");
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 400.0, 0.0052, seed);
        let mut sim = Simulator::new(&t, Routing::Ecmp.selector(&t), SimConfig::default());
        sim.set_window(0, 4 * MS);
        sim.inject(&flows);
        sim.set_fault_plan(&plan);
        sim.set_tracer(Box::new(CountingTracer::new()));
        let rec = sim.run(160 * MS);
        check_conservation(&sim).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            sim.trace_time_regressions(),
            Some(0),
            "seed {seed}: event clock ran backwards"
        );
        let m = compute_metrics(&rec, 0, 4 * MS);
        assert_eq!(
            m.completed + m.failed,
            m.flows,
            "seed {seed}: flow accounting leak"
        );
    }
}

/// A chaos run is a pure function of its seed: the same seed reproduces
/// every flow record exactly, even through the fault controller's RNG
/// (gray-loss sampling) and reconvergence epochs.
#[test]
fn chaos_runs_are_seed_deterministic() {
    fn run(seed: u64) -> Vec<FlowRecord> {
        let t = FatTree::full(4).build();
        let plan = FaultPlan::chaos(&t, 4 * MS, seed);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 400.0, 0.0052, seed);
        let mut sim = Simulator::new(&t, Routing::Ecmp.selector(&t), SimConfig::default());
        sim.set_window(0, 4 * MS);
        sim.inject(&flows);
        sim.set_fault_plan(&plan);
        sim.run(160 * MS)
    }
    for seed in [3u64, 17] {
        assert_eq!(run(seed), run(seed), "seed {seed} not reproducible");
    }
}

/// Checkpoint/restore commutes with chaos: pausing mid-plan, snapshotting,
/// and resuming in a fresh simulator yields the records of the
/// uninterrupted run, for any seeded adversarial schedule.
#[test]
fn chaos_runs_survive_checkpoint_resume() {
    let t = FatTree::full(4).build();
    for seed in 0u64..4 {
        let plan = FaultPlan::chaos(&t, 4 * MS, seed);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 400.0, 0.0052, seed);
        let build = || {
            let mut sim = Simulator::new(&t, Routing::Ecmp.selector(&t), SimConfig::default());
            sim.set_window(0, 4 * MS);
            sim.inject(&flows);
            sim.set_fault_plan(&plan);
            sim
        };
        let straight = build().run(160 * MS);
        let mut paused = build();
        if paused.run_until(2 * MS) {
            // Plan + workload drained before the pause point: nothing to
            // resume, records must already match.
            assert_eq!(paused.finish(), straight, "seed {seed}");
            continue;
        }
        let ckpt = paused
            .checkpoint()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        drop(paused);
        let mut resumed =
            Simulator::restore(&t, Routing::Ecmp.selector(&t), SimConfig::default(), &ckpt)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            resumed.run(160 * MS),
            straight,
            "seed {seed}: resume diverged"
        );
    }
}
