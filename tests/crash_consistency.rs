//! The crash-consistency harness: every compiled-in failpoint site
//! (`dcn_core::failpoint::SITES`) is armed in turn and the recovery
//! invariant at that boundary is asserted —
//!
//! * an atomic write that fails at any rung of its ladder leaves the
//!   target either the old content whole or the new content whole, never
//!   torn, and a retry after the fault clears succeeds;
//! * a worker killed at any checkpoint-save rung relaunches to
//!   byte-identical results; a checkpoint that cannot be *loaded* is a
//!   clean documented exit (`EXIT_CKPT_CORRUPT`), and clearing the fault
//!   heals; checkpoint saves hitting ENOSPC degrade to
//!   compute-without-persist (`EXIT_OK_DEGRADED`) with exact results;
//! * a corrupt or unreadable cache entry is never served — it is
//!   quarantined (or removed when even quarantine fails) and the next
//!   store heals it;
//! * a torn socket frame is never parsed as a message;
//! * a failed worker spawn is retryable, not fatal.
//!
//! The final assertion is completeness: the matrix above must exercise
//! every name in `SITES`, so adding a site without a recovery story here
//! fails the build's tests.
//!
//! Everything runs in ONE `#[test]`: failpoint state is process-global,
//! and a single test keeps this binary free of cross-thread arming races.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use beyond_fattrees::serve::cache::{ArtifactCache, CacheKey, Lookup};
use beyond_fattrees::serve::protocol::{read_frame, write_frame, FrameError};
use dcn_bench::supervise::{self, Attempt, RetryPolicy, EXIT_CKPT_CORRUPT, EXIT_OK};
use dcn_core::failpoint::{self, SITES};
use dcn_core::write_atomic;

const OLD: &[u8] = b"{\"version\": 1, \"the old artifact\": true}\n";
const NEW: &[u8] = b"{\"version\": 2, \"the replacement, longer than the old one\": true}\n";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crash_consistency_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

// ------------------------------------------------------------------ fsio

/// Arms each rung of the `write_atomic` ladder and asserts the atomicity
/// invariant: a failure anywhere leaves the target old-and-whole or
/// new-and-whole (only a completed rename exposes new bytes), and a retry
/// once the fault clears lands the new content.
fn fsio_matrix(covered: &mut BTreeSet<&'static str>) {
    let dir = scratch("fsio");
    let target = dir.join("artifact.json");
    let target_s = target.to_str().unwrap();
    let fsio_sites = [
        "fsio.tmp_create",
        "fsio.tmp_write",
        "fsio.tmp_fsync",
        "fsio.rename",
        "fsio.dir_fsync",
    ];
    for site in fsio_sites {
        std::fs::write(&target, OLD).expect("seed old content");
        failpoint::configure(site, "1*err");
        let err = write_atomic(target_s, NEW).expect_err(site);
        assert!(err.to_string().contains("injected"), "{site}: {err}");
        let now = std::fs::read(&target).expect("target must still exist");
        if site == "fsio.dir_fsync" {
            // The rename already happened; only its durable ordering was
            // lost. The visible content is the new bytes, whole.
            assert_eq!(
                now, NEW,
                "{site}: post-rename failure must expose NEW whole"
            );
        } else {
            assert_eq!(now, OLD, "{site}: pre-rename failure must leave OLD whole");
        }
        assert!(
            now == OLD || now == NEW,
            "{site}: target is torn — neither old nor new content"
        );
        failpoint::disarm(site);
        write_atomic(target_s, NEW).expect("retry after fault clears");
        assert_eq!(
            std::fs::read(&target).unwrap(),
            NEW,
            "{site}: retry must heal"
        );
        covered.insert(site);
    }

    // A torn write: only a prefix of the payload reaches the temporary;
    // the target must be untouched and the temporary visibly truncated.
    std::fs::write(&target, OLD).expect("seed old content");
    failpoint::configure("fsio.tmp_write", "1*partial(5)");
    write_atomic(target_s, NEW).expect_err("torn write must fail");
    assert_eq!(
        std::fs::read(&target).unwrap(),
        OLD,
        "torn write must not touch target"
    );
    let tmp = dir.join("artifact.json.tmp");
    assert_eq!(
        std::fs::read(&tmp)
            .expect("truncated temporary left behind")
            .len(),
        5,
        "partial(5) must persist exactly 5 bytes"
    );
    failpoint::disarm("fsio.tmp_write");
    write_atomic(target_s, NEW).expect("retry after torn write");
    assert_eq!(std::fs::read(&target).unwrap(), NEW);

    // ENOSPC surfaces with the real error kind, so callers can branch on
    // a full disk exactly like they would outside the harness.
    std::fs::write(&target, OLD).unwrap();
    failpoint::configure("fsio.tmp_fsync", "1*enospc");
    let err = write_atomic(target_s, NEW).expect_err("enospc must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
    assert_eq!(std::fs::read(&target).unwrap(), OLD);
    failpoint::disarm_all();
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------- checkpoints (workers)

/// A config whose activity spans enough simulated-time chunks that a
/// `--checkpoint-every-ms 0` worker writes several checkpoints (lighter
/// workloads drain inside the first chunk and never checkpoint at all —
/// the kill-at-save matrix needs at least three saves to bite).
fn config_json(seed: u64) -> String {
    format!(
        r#"{{
  "topology": {{ "kind": "fat_tree", "k": 4 }},
  "routing": {{ "kind": "ecmp" }},
  "workload": {{ "pattern": {{ "kind": "all_to_all" }} }},
  "lambda": 1000.0,
  "window_ms": [0, 2],
  "seed": {seed}
}}
"#
    )
}

/// One `dcnrun worker` run with an optional `DCN_FAILPOINTS` env; returns
/// the exit code (`None` = killed by signal).
fn run_worker(cfg: &Path, result: &Path, ckpt: &Path, failpoints: Option<&str>) -> Option<i32> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dcnrun"));
    cmd.arg("worker")
        .arg(cfg)
        .arg("--result")
        .arg(result)
        .arg("--ckpt")
        .arg(ckpt)
        .args(["--checkpoint-every-ms", "0"]) // checkpoint every chunk
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .env_remove("DCN_FAILPOINTS");
    if let Some(fp) = failpoints {
        cmd.env("DCN_FAILPOINTS", fp);
    }
    cmd.status().expect("spawn worker").code()
}

/// The subprocess matrix over the checkpoint sites: power loss at each
/// save rung resumes byte-identical, an unreadable checkpoint is the
/// documented clean exit, ENOSPC on saves degrades without losing the
/// result, and death during the result write recomputes to the same
/// bytes.
fn checkpoint_matrix(covered: &mut BTreeSet<&'static str>) {
    let dir = scratch("ckpt");
    let cfg = dir.join("exp.json");
    std::fs::write(&cfg, config_json(42)).expect("write config");

    // Ground truth: one clean, uninterrupted worker.
    let result = dir.join("baseline.json");
    let ckpt = dir.join("baseline.ckpt");
    assert_eq!(run_worker(&cfg, &result, &ckpt, None), Some(EXIT_OK));
    let want = std::fs::read(&result).expect("baseline result");
    assert!(!ckpt.exists(), "clean worker must remove its checkpoint");

    // Power loss at every save rung: the worker is SIGKILLed mid-ladder
    // (after two good checkpoints, so the relaunch genuinely *resumes*),
    // and the relaunch must land byte-identical results.
    for site in ["ckpt.save.write", "ckpt.save.fsync", "ckpt.save.rename"] {
        let result = dir.join(format!("{site}.json"));
        let ckpt = dir.join(format!("{site}.ckpt"));
        let spec = format!("{site}=skip(2):1*kill");
        assert_eq!(
            run_worker(&cfg, &result, &ckpt, Some(&spec)),
            None,
            "{site}: kill action must die by signal"
        );
        assert!(!result.exists(), "{site}: no result from a killed worker");
        assert!(
            ckpt.exists(),
            "{site}: two completed checkpoints must survive the kill"
        );
        assert_eq!(
            run_worker(&cfg, &result, &ckpt, None),
            Some(EXIT_OK),
            "{site}: relaunch must succeed"
        );
        assert_eq!(
            std::fs::read(&result).unwrap(),
            want,
            "{site}: resumed result diverges from the uninterrupted run"
        );
        covered.insert(site);
    }

    // An unreadable checkpoint: resuming from bad state could silently
    // produce wrong bytes, so the worker must refuse with the documented
    // exit code — and once the fault clears, the same checkpoint resumes
    // to the right bytes.
    let result = dir.join("load.json");
    let ckpt = dir.join("load.ckpt");
    assert_eq!(
        run_worker(
            &cfg,
            &result,
            &ckpt,
            Some("ckpt.save.rename=skip(2):1*kill")
        ),
        None
    );
    assert!(ckpt.exists());
    assert_eq!(
        run_worker(&cfg, &result, &ckpt, Some("ckpt.load=err")),
        Some(EXIT_CKPT_CORRUPT),
        "an unreadable checkpoint must be the clean documented exit"
    );
    assert!(
        !result.exists(),
        "no result may be produced from a refused resume"
    );
    assert_eq!(run_worker(&cfg, &result, &ckpt, None), Some(EXIT_OK));
    assert_eq!(
        std::fs::read(&result).unwrap(),
        want,
        "healed resume diverges"
    );
    covered.insert("ckpt.load");

    // A full disk under the checkpoint directory: the run must NOT die —
    // it completes without crash protection (exit 7, `EXIT_OK_DEGRADED`)
    // and the result is still exact.
    let result = dir.join("enospc.json");
    let ckpt = dir.join("enospc.ckpt");
    assert_eq!(
        run_worker(&cfg, &result, &ckpt, Some("ckpt.save.write=enospc")),
        Some(supervise::EXIT_OK_DEGRADED),
        "ENOSPC on checkpoint saves must degrade, not fail"
    );
    assert_eq!(
        std::fs::read(&result).unwrap(),
        want,
        "degraded run must still produce exact bytes"
    );

    // Power loss while writing the *result*: the relaunch recomputes (or
    // resumes) to the same bytes — fsio sites under a real worker, not
    // just the in-process matrix.
    let result = dir.join("result_kill.json");
    let ckpt = dir.join("result_kill.ckpt");
    assert_eq!(
        run_worker(&cfg, &result, &ckpt, Some("fsio.rename=1*kill")),
        None
    );
    assert!(
        !result.exists(),
        "killed before the rename: no artifact may appear"
    );
    assert_eq!(run_worker(&cfg, &result, &ckpt, None), Some(EXIT_OK));
    assert_eq!(std::fs::read(&result).unwrap(), want);

    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------- cache

/// Cache-site matrix: a store that hits a full disk fails loudly without
/// touching existing entries; an unreadable entry is quarantined, never
/// served; a quarantine that itself fails falls back to removal. In every
/// case the next store heals.
fn cache_matrix(covered: &mut BTreeSet<&'static str>) {
    let dir = scratch("cache");
    let cache = ArtifactCache::open(dir.join("cache")).expect("open cache");
    let key = CacheKey {
        topo: 7,
        sim_cfg: 8,
        faults: 0,
        request: 9,
    };

    // Store under ENOSPC: loud failure, no entry appears.
    failpoint::configure("cache.store", "1*enospc");
    let err = cache.store(&key, OLD).expect_err("store must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
    assert_eq!(
        cache.load(&key),
        Lookup::Miss,
        "failed store must leave no entry"
    );
    failpoint::disarm("cache.store");
    cache.store(&key, OLD).expect("retry store");
    assert_eq!(cache.load(&key), Lookup::Hit(OLD.to_vec()));
    covered.insert("cache.store");

    // Transiently unreadable entry: never served while unreadable (the
    // caller recomputes), and the entry itself is untouched — once the
    // fault clears it serves again. Unreadable is NOT corrupt.
    failpoint::configure("cache.read", "1*err");
    match cache.load(&key) {
        Lookup::Quarantined(why) => assert!(why.contains("injected"), "{why}"),
        other => panic!("unreadable entry must force recompute, got {other:?}"),
    }
    assert_eq!(
        cache.load(&key),
        Lookup::Hit(OLD.to_vec()),
        "a transient read fault must heal by itself"
    );
    covered.insert("cache.read");

    // A genuinely corrupt entry whose quarantine move ALSO fails: the
    // entry must still never be served — the fallback is outright
    // removal — and the next store heals.
    let entry = cache.entry_path(&key);
    let mut rot = std::fs::read(&entry).expect("read entry to corrupt");
    let mid = rot.len() / 2;
    rot[mid] ^= 0xff;
    std::fs::write(&entry, &rot).expect("plant corruption");
    failpoint::configure("cache.quarantine", "1*err");
    match cache.load(&key) {
        Lookup::Quarantined(why) => assert!(why.contains("entry removed"), "{why}"),
        other => panic!("corrupt entry must never be served, got {other:?}"),
    }
    assert_eq!(cache.load(&key), Lookup::Miss, "removed entry must be gone");
    cache.store(&key, NEW).expect("store heals again");
    assert_eq!(cache.load(&key), Lookup::Hit(NEW.to_vec()));
    covered.insert("cache.quarantine");

    failpoint::disarm_all();
    let _ = std::fs::remove_dir_all(&dir);
}

// -------------------------------------------------------------- protocol

/// Socket-site matrix: an injected EOF at a frame boundary is a clean
/// `Closed`, and a torn frame write is never parseable as a message.
fn protocol_matrix(covered: &mut BTreeSet<&'static str>) {
    failpoint::configure("serve.sock_read", "1*eof");
    let mut empty: &[u8] = b"";
    match read_frame(&mut empty) {
        Err(FrameError::Closed) => {}
        other => panic!("EOF at frame boundary must be Closed, got {other:?}"),
    }
    failpoint::disarm("serve.sock_read");
    covered.insert("serve.sock_read");

    // Torn write: the peer sees a length prefix promising more bytes than
    // ever arrive — reading it back must be Truncated, never a message.
    failpoint::configure("serve.sock_write", "1*partial(3)");
    let mut wire = Vec::new();
    write_frame(&mut wire, b"a payload much longer than three bytes")
        .expect_err("torn write must report failure");
    assert_eq!(
        wire.len(),
        4 + 3,
        "length prefix plus exactly 3 payload bytes"
    );
    match read_frame(&mut wire.as_slice()) {
        Err(FrameError::Truncated) => {}
        other => panic!("torn frame must read as Truncated, got {other:?}"),
    }
    failpoint::disarm("serve.sock_write");
    let mut wire = Vec::new();
    write_frame(&mut wire, b"whole again").expect("retry after torn write");
    assert_eq!(read_frame(&mut wire.as_slice()).unwrap(), b"whole again");
    covered.insert("serve.sock_write");
}

// ------------------------------------------------------------- supervise

/// A failed spawn is a retryable attempt, not a crash of the supervisor:
/// the retry loop absorbs it and the next attempt succeeds.
fn supervise_matrix(covered: &mut BTreeSet<&'static str>) {
    failpoint::configure("supervise.spawn", "1*err");
    let outcome = supervise::retry(
        |_| {
            let mut c = Command::new("true");
            c.stdout(Stdio::null());
            c
        },
        None,
        2,
        RetryPolicy::new(Duration::from_millis(1)),
    )
    .expect("retry loop");
    assert_eq!(outcome.last, Attempt::Exited(EXIT_OK));
    assert_eq!(outcome.attempts, 2, "one spawn failure, one success");
    failpoint::disarm("supervise.spawn");
    covered.insert("supervise.spawn");
}

#[test]
fn every_failpoint_site_has_a_recovery_story() {
    failpoint::disarm_all();
    let mut covered: BTreeSet<&'static str> = BTreeSet::new();

    fsio_matrix(&mut covered);
    checkpoint_matrix(&mut covered);
    cache_matrix(&mut covered);
    protocol_matrix(&mut covered);
    supervise_matrix(&mut covered);

    failpoint::disarm_all();
    let all: BTreeSet<&'static str> = SITES.iter().copied().collect();
    let missing: Vec<_> = all.difference(&covered).collect();
    assert!(
        missing.is_empty(),
        "failpoint sites with no crash-consistency coverage: {missing:?} — \
         every registered site needs a recovery story in this harness"
    );
    let unknown: Vec<_> = covered.difference(&all).collect();
    assert!(
        unknown.is_empty(),
        "harness exercises unregistered sites: {unknown:?}"
    );
}
