//! Integration: the whole pipeline — topology generation, workload
//! sampling, routing, packet simulation — is byte-for-byte reproducible
//! from the seed, which is what makes the paper's "identical set of
//! flows … by fixing the seed" methodology possible.

use beyond_fattrees::prelude::*;

/// (topology edges, workload flow sizes, per-flow FCT outcomes).
type PipelineFingerprint = (Vec<(u32, u32)>, Vec<u64>, Vec<Option<u64>>);

fn pipeline(seed: u64) -> PipelineFingerprint {
    let xp = Xpander::for_switches(5, 24, 2, seed).build();
    let edges: Vec<(u32, u32)> = xp.links().iter().map(|l| (l.a, l.b)).collect();

    let pattern = Skew::new(&xp, xp.tors_with_servers(), 0.1, 0.7, seed);
    let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 2000.0, 0.01, seed);
    let sizes: Vec<u64> = flows.iter().map(|f| f.bytes).collect();

    let mut sim = Simulator::new(&xp, Routing::PAPER_HYB.selector(&xp), SimConfig::default());
    sim.set_window(0, 10 * MS);
    sim.inject(&flows);
    let rec = sim.run(20 * SEC);
    (edges, sizes, rec.iter().map(|r| r.fct_ns).collect())
}

#[test]
fn same_seed_same_everything() {
    let a = pipeline(1234);
    let b = pipeline(1234);
    assert_eq!(a.0, b.0, "topologies differ");
    assert_eq!(a.1, b.1, "workloads differ");
    assert_eq!(a.2, b.2, "simulation outcomes differ");
}

#[test]
fn different_seed_different_workload() {
    let a = pipeline(1);
    let b = pipeline(2);
    assert_ne!(a.1, b.1, "different seeds produced identical workloads");
}

/// Full pipeline with an *active* fault plan — link flaps, a switch
/// outage, and a seeded gray (probabilistic-loss) failure — run twice
/// with the same seed. Every field of every [`FlowRecord`] must match:
/// the fault controller's RNG, reconvergence epochs, and recovery
/// timestamps are all part of the deterministic replay contract.
#[test]
fn same_seed_same_everything_under_faults() {
    fn faulted_run(seed: u64, with_faults: bool) -> Vec<FlowRecord> {
        let xp = Xpander::for_switches(5, 24, 2, seed).build();
        let pattern = Skew::new(&xp, xp.tors_with_servers(), 0.1, 0.7, seed);
        let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 2000.0, 0.01, seed);

        // Gray-fail every inter-switch link for a stretch (so the plan is
        // guaranteed to intersect flow paths and exercise the seeded loss
        // RNG), plus hard link/switch flaps for reconvergence epochs.
        let mut plan = FaultPlan::new()
            .with_seed(seed)
            .link_down(MS, 3)
            .switch_down(3 * MS, 1)
            .link_up(5 * MS, 3)
            .switch_up(6 * MS, 1);
        for l in 0..xp.links().len() as u32 {
            plan = plan.link_gray(2 * MS, l, 0.05).link_clear(7 * MS, l);
        }

        let mut sim = Simulator::new(&xp, Routing::PAPER_HYB.selector(&xp), SimConfig::default());
        sim.set_window(0, 10 * MS);
        sim.inject(&flows);
        if with_faults {
            sim.set_fault_plan(&plan);
        }
        sim.run(20 * SEC)
    }

    let a = faulted_run(99, true);
    let b = faulted_run(99, true);
    assert_eq!(a, b, "fault-injected runs diverged for the same seed");
    assert!(!a.is_empty(), "fault run produced no flow records");
    let clean = faulted_run(99, false);
    assert_ne!(
        a, clean,
        "fault plan had no observable effect on any flow record"
    );
}

/// The strongest form of the replay contract: not just identical flow
/// records, but an identical *event-by-event* JSONL trace — every
/// enqueue, mark, drop, RTO, and fault transition in the same order with
/// the same timestamps — for the same seed, even with an active fault
/// plan drawing from the gray-loss RNG.
#[test]
fn same_seed_same_event_trace_under_faults() {
    fn traced_run(seed: u64) -> Vec<u8> {
        let xp = Xpander::for_switches(5, 24, 2, seed).build();
        let pattern = Skew::new(&xp, xp.tors_with_servers(), 0.1, 0.7, seed);
        let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 2000.0, 0.01, seed);
        let mut plan = FaultPlan::new()
            .with_seed(seed)
            .link_down(MS, 3)
            .link_up(5 * MS, 3);
        for l in 0..xp.links().len() as u32 {
            plan = plan.link_gray(2 * MS, l, 0.05).link_clear(7 * MS, l);
        }
        let mut sim = Simulator::new(&xp, Routing::PAPER_HYB.selector(&xp), SimConfig::default());
        sim.set_window(0, 10 * MS);
        sim.inject(&flows);
        sim.set_fault_plan(&plan);
        let buf = SharedBuf::new();
        sim.set_tracer(Box::new(JsonlTracer::new(buf.clone())));
        sim.run(20 * SEC);
        buf.contents()
    }

    let a = traced_run(1234);
    let b = traced_run(1234);
    assert!(!a.is_empty(), "trace is empty");
    assert_eq!(a, b, "same seed produced different event traces");
    assert_ne!(
        a,
        traced_run(4321),
        "different seeds produced identical traces"
    );
}
