//! Integration: the whole pipeline — topology generation, workload
//! sampling, routing, packet simulation — is byte-for-byte reproducible
//! from the seed, which is what makes the paper's "identical set of
//! flows … by fixing the seed" methodology possible.

use beyond_fattrees::prelude::*;

/// (topology edges, workload flow sizes, per-flow FCT outcomes).
type PipelineFingerprint = (Vec<(u32, u32)>, Vec<u64>, Vec<Option<u64>>);

fn pipeline(seed: u64) -> PipelineFingerprint {
    let xp = Xpander::for_switches(5, 24, 2, seed).build();
    let edges: Vec<(u32, u32)> = xp.links().iter().map(|l| (l.a, l.b)).collect();

    let pattern = Skew::new(&xp, xp.tors_with_servers(), 0.1, 0.7, seed);
    let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 2000.0, 0.01, seed);
    let sizes: Vec<u64> = flows.iter().map(|f| f.bytes).collect();

    let mut sim = Simulator::new(&xp, Routing::PAPER_HYB.selector(&xp), SimConfig::default());
    sim.set_window(0, 10 * MS);
    sim.inject(&flows);
    let rec = sim.run(20 * SEC);
    (edges, sizes, rec.iter().map(|r| r.fct_ns).collect())
}

#[test]
fn same_seed_same_everything() {
    let a = pipeline(1234);
    let b = pipeline(1234);
    assert_eq!(a.0, b.0, "topologies differ");
    assert_eq!(a.1, b.1, "workloads differ");
    assert_eq!(a.2, b.2, "simulation outcomes differ");
}

#[test]
fn different_seed_different_workload() {
    let a = pipeline(1);
    let b = pipeline(2);
    assert_ne!(a.1, b.1, "different seeds produced identical workloads");
}
