//! Integration: checkpoint corruption edge cases. A damaged checkpoint
//! must always classify as `EXIT_CKPT_CORRUPT` (a *final* failure — the
//! resume chain is broken, retrying would loop forever), never be
//! restored, and never crash the loader. Exercised at three layers:
//! `Checkpoint::load` byte-level validation, `Simulator::restore`
//! fingerprint validation, and the `dcnrun worker` process exit code.

use std::process::Command;

use beyond_fattrees::prelude::*;
use beyond_fattrees::serve::cache::fnv1a;
use dcn_bench::supervise::{Attempt, EXIT_CKPT_CORRUPT};

/// Offsets in the serialized image (see `dcn_sim::checkpoint` docs):
/// magic[0..8], version u32 [8..12], topo fp u64 [12..20], cfg fp
/// [20..28], ... payload ..., trailing whole-image FNV-1a u64.
const VERSION_AT: usize = 8;
const TOPO_FP_AT: usize = 12;

fn topo() -> Topology {
    FatTree::full(4).build()
}

/// Builds a mid-flight checkpoint image to mutilate.
fn image() -> Vec<u8> {
    let t = topo();
    let mut sim = Simulator::new(&t, Routing::Ecmp.selector(&t), SimConfig::default());
    sim.set_window(0, 2 * MS);
    let pattern = AllToAll::new(&t, t.tors_with_servers());
    sim.inject(&generate_flows(
        &pattern,
        &PFabricWebSearch::new(),
        300.0,
        0.002,
        7,
    ));
    let done = sim.run_until(MS / 2);
    assert!(!done, "run must still be in flight when snapshotted");
    sim.checkpoint().expect("checkpoint").as_bytes().to_vec()
}

/// Rewrites the trailing checksum so the image is checksum-*valid* again
/// after a targeted field edit — isolating the deeper validation layers.
fn reseal(data: &mut [u8]) {
    let n = data.len();
    let sum = fnv1a(&data[..n - 8]);
    data[n - 8..].copy_from_slice(&sum.to_le_bytes());
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("ckpt_corrupt_{name}_{}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn truncated_tail_is_rejected() {
    let img = image();
    // Every truncation point must fail cleanly: a torn write can stop
    // anywhere. (Sampled stride keeps the test fast; endpoints covered.)
    for cut in (0..img.len())
        .step_by((img.len() / 64).max(1))
        .chain([img.len() - 1])
    {
        let err = Checkpoint::from_bytes(img[..cut].to_vec())
            .err()
            .unwrap_or_else(|| panic!("truncation to {cut} bytes must not validate"));
        assert!(
            err.contains("truncated") || err.contains("checksum") || err.contains("corrupt"),
            "truncation to {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn version_bump_is_rejected_even_with_valid_checksum() {
    let mut img = image();
    img[VERSION_AT..VERSION_AT + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut img);
    let Err(err) = Checkpoint::from_bytes(img) else {
        panic!("future version must not validate");
    };
    assert!(err.contains("version"), "unexpected error {err:?}");
}

#[test]
fn bad_magic_is_rejected() {
    let mut img = image();
    img[0] ^= 0xff;
    reseal(&mut img); // even a checksum-consistent image with wrong magic
    let Err(err) = Checkpoint::from_bytes(img) else {
        panic!("bad magic must not validate");
    };
    assert!(err.contains("magic"), "unexpected error {err:?}");
}

#[test]
fn checksum_valid_but_fingerprint_mismatched_fails_restore() {
    let mut img = image();
    img[TOPO_FP_AT..TOPO_FP_AT + 8].copy_from_slice(&0xdead_beefu64.to_le_bytes());
    reseal(&mut img);
    // Byte-level validation passes — the image is internally consistent…
    let ckpt = Checkpoint::from_bytes(img).expect("resealed image is checksum-valid");
    assert_eq!(ckpt.meta().topo_fingerprint, 0xdead_beef);
    // …but it belongs to a different topology, so restoring must refuse.
    let t = topo();
    let Err(err) = Simulator::restore(&t, Routing::Ecmp.selector(&t), SimConfig::default(), &ckpt)
    else {
        panic!("fingerprint mismatch must not restore");
    };
    assert!(
        err.contains("fingerprint") || err.contains("mismatch") || err.contains("topolog"),
        "unexpected error {err:?}"
    );
}

#[test]
fn corrupt_checkpoints_are_final_never_retried() {
    // The supervisor's classification: exit 4 breaks the retry loop.
    assert!(!Attempt::Exited(EXIT_CKPT_CORRUPT).retryable());
}

/// End to end: a worker launched against a poisoned checkpoint dies with
/// `EXIT_CKPT_CORRUPT` (4), which the supervisor treats as final.
#[test]
fn worker_exits_ckpt_corrupt_on_poisoned_checkpoint() {
    let cfg_path = tmp("cfg.json");
    std::fs::write(
        &cfg_path,
        r#"{
  "topology": { "kind": "fat_tree", "k": 4 },
  "routing": { "kind": "ecmp" },
  "workload": { "pattern": { "kind": "all_to_all" } },
  "lambda": 300.0,
  "window_ms": [0, 2],
  "seed": 7
}
"#,
    )
    .expect("write config");

    let mut img = image();
    let mid = img.len() / 2;
    img[mid] ^= 0x01; // single bit flip deep in the payload
    let ckpt_path = tmp("poisoned.ckpt");
    std::fs::write(&ckpt_path, &img).expect("write poisoned checkpoint");

    let result_path = tmp("result.json");
    let status = Command::new(env!("CARGO_BIN_EXE_dcnrun"))
        .args([
            "worker",
            &cfg_path,
            "--result",
            &result_path,
            "--ckpt",
            &ckpt_path,
            "--checkpoint-every-ms",
            "0",
        ])
        .status()
        .expect("spawn dcnrun worker");
    assert_eq!(
        status.code(),
        Some(EXIT_CKPT_CORRUPT),
        "poisoned checkpoint must exit {EXIT_CKPT_CORRUPT}"
    );
    assert!(
        std::fs::metadata(&result_path).is_err(),
        "no result may be written from a corrupt resume"
    );

    for p in [cfg_path, ckpt_path, result_path] {
        let _ = std::fs::remove_file(p);
    }
}
