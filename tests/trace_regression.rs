//! Golden-trace regression tests: a tiny fixed scenario per transport,
//! traced with [`JsonlTracer`], diffed byte-for-byte against committed
//! fixtures in `tests/golden/`. Any change to event ordering, schema,
//! protocol behavior, or RNG consumption shows up as a trace diff.
//!
//! To re-bless after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trace_regression
//! ```
//!
//! and review the fixture diff like any other code change.

use beyond_fattrees::prelude::*;

/// The fixed scenario: a 4-to-1 incast onto one server of a k=4 fat-tree
/// plus one cross-rack flow, through shallow queues (10 packets, ECN at
/// 4) so the trace exercises enqueues, marks, and congestion drops while
/// staying a few hundred KB.
fn scenario(cfg: SimConfig) -> Vec<u8> {
    let t = FatTree::full(4).build();
    let tors = t.tors_with_servers();
    let ep = |rack: usize, server: u32| Endpoint {
        rack: tors[rack],
        server,
    };
    let mut flows = Vec::new();
    for (i, &src_rack) in [1usize, 2, 3, 4].iter().enumerate() {
        flows.push(FlowEvent {
            start_s: i as f64 * 2e-6,
            src: ep(src_rack, 0),
            dst: ep(0, 0),
            bytes: 15_000,
        });
    }
    flows.push(FlowEvent {
        start_s: 1e-6,
        src: ep(5, 1),
        dst: ep(6, 0),
        bytes: 30_000,
    });

    let mut cfg = cfg;
    cfg.queue_pkts = 10;
    cfg.ecn_k_pkts = 4;
    let mut sim = Simulator::new(&t, Routing::Ecmp.selector(&t), cfg);
    sim.set_window(0, 5 * MS);
    sim.inject(&flows);
    let buf = SharedBuf::new();
    sim.set_tracer(Box::new(JsonlTracer::new(buf.clone())));
    let rec = sim.run(SEC);
    assert!(
        rec.iter().all(|r| r.fct_ns.is_some()),
        "scenario flow failed to finish"
    );
    buf.contents()
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.jsonl"))
}

fn check_golden(name: &str, cfg: SimConfig) {
    let trace = scenario(cfg);
    assert!(!trace.is_empty(), "{name}: empty trace");
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &trace).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (bless fixtures with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    if trace != golden {
        // Find the first diverging line for a readable failure.
        let got = String::from_utf8_lossy(&trace);
        let want = String::from_utf8_lossy(&golden);
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(g, w, "{name}: trace diverges at line {}", i + 1);
        }
        panic!(
            "{name}: trace length changed: {} vs golden {} lines",
            got.lines().count(),
            want.lines().count()
        );
    }
}

#[test]
fn dctcp_trace_matches_golden() {
    check_golden("dctcp", SimConfig::default());
}

#[test]
fn newreno_trace_matches_golden() {
    check_golden("newreno", SimConfig::default().with_newreno());
}

#[test]
fn pfabric_trace_matches_golden() {
    check_golden("pfabric", SimConfig::default().with_pfabric());
}

/// The parallel engine's contract: replaying the golden scenarios under
/// four worker threads reproduces the committed fixtures byte-for-byte.
/// The fixtures are blessed at `threads = 1`, so this pins the sharded
/// schedule to the sequential one.
#[test]
fn golden_traces_match_at_four_threads() {
    check_golden("dctcp", SimConfig::default().with_threads(4));
    check_golden(
        "newreno",
        SimConfig::default().with_newreno().with_threads(4),
    );
    check_golden(
        "pfabric",
        SimConfig::default().with_pfabric().with_threads(4),
    );
}

/// The reproducibility contract behind the fixtures: the same seed and
/// config give byte-identical traces on back-to-back runs.
#[test]
fn traces_are_byte_identical_across_runs() {
    for cfg in [
        SimConfig::default(),
        SimConfig::default().with_newreno(),
        SimConfig::default().with_pfabric(),
    ] {
        let a = scenario(cfg);
        let b = scenario(cfg);
        assert_eq!(a, b, "same scenario produced different traces");
    }
}

/// Every golden line parses and follows the `{"t": ..., "ev": ...}`
/// schema with monotonically non-decreasing timestamps.
#[test]
fn golden_traces_are_valid_jsonl() {
    for name in ["dctcp", "newreno", "pfabric"] {
        let path = golden_path(name);
        let body =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let mut last_t = 0u64;
        for (i, line) in body.lines().enumerate() {
            let v = dcn_json::Json::parse(line)
                .unwrap_or_else(|e| panic!("{name}:{}: bad JSON: {e}", i + 1));
            let t = v
                .get("t")
                .and_then(|x| x.as_u64())
                .unwrap_or_else(|| panic!("{name}:{}: missing \"t\"", i + 1));
            assert!(t >= last_t, "{name}:{}: time went backwards", i + 1);
            last_t = t;
            let ev = v
                .get("ev")
                .and_then(|x| x.as_str())
                .unwrap_or_else(|| panic!("{name}:{}: missing \"ev\"", i + 1));
            assert!(
                ev.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{name}:{}: bad event tag {ev:?}",
                i + 1
            );
        }
    }
}
