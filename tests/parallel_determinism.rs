//! The sharded engine's headline property, exercised as a randomized
//! sweep: for *any* topology, transport, workload, and adversarial fault
//! plan, running under 2 or 4 worker threads reproduces the
//! single-thread oracle **byte-for-byte** — identical flow records,
//! identical JSONL event traces, identical telemetry streams.
//!
//! Thread count only selects how many workers drain the 8 fixed shards;
//! the event schedule is the same at every setting, so any divergence
//! here is a real engine bug (a cross-shard event leaking past a
//! barrier, a merge-order tie broken nondeterministically), not noise.

use beyond_fattrees::prelude::*;
use dcn_rng::Rng;

/// Everything a run emits, captured in memory.
struct Artifacts {
    records: Vec<FlowRecord>,
    trace: Vec<u8>,
    telemetry: Vec<u8>,
    counters: EngineCounters,
}

/// One fully instrumented run of a scenario at a given thread count.
fn run_instrumented(
    topo: &Topology,
    cfg: SimConfig,
    flows: &[FlowEvent],
    plan: Option<&FaultPlan>,
    window_end: u64,
    max_time: u64,
) -> Artifacts {
    let mut sim = Simulator::new(topo, Routing::Ecmp.selector(topo), cfg);
    sim.set_window(0, window_end);
    sim.inject(flows);
    if let Some(p) = plan {
        sim.set_fault_plan(p);
    }
    let tbuf = SharedBuf::new();
    sim.set_tracer(Box::new(JsonlTracer::new(tbuf.clone())));
    let mbuf = SharedBuf::new();
    sim.set_telemetry(Telemetry::new(
        Box::new(mbuf.clone()),
        DEFAULT_SAMPLE_EVERY_NS,
    ));
    let records = sim.run(max_time);
    let counters = sim.engine_counters();
    Artifacts {
        records,
        trace: tbuf.contents(),
        telemetry: mbuf.contents(),
        counters,
    }
}

/// A seeded random scenario: topology family, transport, workload, and
/// (on odd seeds) a chaos fault plan all drawn from the seed.
fn scenario(seed: u64) -> (Topology, SimConfig, Vec<FlowEvent>, Option<FaultPlan>) {
    let mut meta = Rng::seed_from_u64(0x5AAD ^ seed.wrapping_mul(0x9E37_79B9));
    let topo = match meta.gen_range(0u32..3) {
        0 => FatTree::full(4).build(),
        1 => Xpander::for_switches(4, 15, 2, seed).build(),
        _ => Jellyfish::new(12, 4, 2, seed).build(),
    };
    let cfg = match meta.gen_range(0u32..3) {
        0 => SimConfig::default(),
        1 => SimConfig::default().with_newreno(),
        _ => SimConfig::default().with_pfabric(),
    };
    let lambda = 1_000.0 + meta.gen_range(0.0..2_000.0);
    let pattern = AllToAll::new(&topo, topo.tors_with_servers());
    let flows = generate_flows(&pattern, &PFabricWebSearch::new(), lambda, 0.004, seed);
    let plan = (seed % 2 == 1).then(|| FaultPlan::chaos(&topo, 4 * MS, seed));
    (topo, cfg, flows, plan)
}

/// The sweep: six random scenarios, each run at 1 (oracle), 2, and 4
/// threads, every artifact compared byte-for-byte.
#[test]
fn sharded_runs_match_single_thread_oracle() {
    for seed in 0u64..6 {
        let (topo, cfg, flows, plan) = scenario(seed);
        if flows.is_empty() {
            continue; // a seed may draw an empty arrival window
        }
        if let Some(p) = &plan {
            p.validate_schedule(&topo, 80 * MS)
                .expect("chaos plans must validate");
        }
        let oracle = run_instrumented(
            &topo,
            cfg.with_threads(1),
            &flows,
            plan.as_ref(),
            4 * MS,
            80 * MS,
        );
        assert!(!oracle.trace.is_empty(), "seed {seed}: empty oracle trace");
        for threads in [2u32, 4] {
            let got = run_instrumented(
                &topo,
                cfg.with_threads(threads),
                &flows,
                plan.as_ref(),
                4 * MS,
                80 * MS,
            );
            assert_eq!(
                got.records, oracle.records,
                "seed {seed}: flow records diverge at {threads} threads"
            );
            assert_eq!(
                got.trace, oracle.trace,
                "seed {seed}: event trace diverges at {threads} threads"
            );
            assert_eq!(
                got.telemetry, oracle.telemetry,
                "seed {seed}: telemetry diverges at {threads} threads"
            );
            // The deterministic counter set is part of the contract too:
            // shard balance, cross-shard traffic, calendar/arena behavior,
            // and merge-tie counts may not depend on the thread count.
            assert_eq!(
                got.counters, oracle.counters,
                "seed {seed}: engine counters diverge at {threads} threads"
            );
        }
    }
}

/// Counters are simulator state: a snapshot→restore round-trip hands the
/// resumed engine exactly the counters the paused one held, at any pair
/// of thread counts.
#[test]
fn counters_survive_checkpoint_byte_exactly() {
    let (topo, cfg, flows, plan) = scenario(1); // odd seed: plan is Some
    let plan = plan.expect("odd seed draws a fault plan");
    let mut paused = Simulator::new(&topo, Routing::Ecmp.selector(&topo), cfg.with_threads(4));
    paused.set_window(0, 4 * MS);
    paused.inject(&flows);
    paused.set_fault_plan(&plan);
    assert!(
        !paused.run_until(2 * MS),
        "scenario 1 must still be mid-run at its window midpoint"
    );
    let at_pause = paused.engine_counters();
    assert!(at_pause.events_total() > 0, "pause point saw no events");
    let ckpt = paused.checkpoint().expect("checkpoint");
    drop(paused);
    let resumed = Simulator::restore(
        &topo,
        Routing::Ecmp.selector(&topo),
        cfg.with_threads(2),
        &ckpt,
    )
    .expect("restore");
    assert_eq!(
        resumed.engine_counters(),
        at_pause,
        "engine counters did not survive the checkpoint round-trip"
    );
}

/// Thread count is invisible to the results even mid-plan: snapshotting
/// a chaos run under one thread count and resuming under another lands
/// on the oracle's records exactly.
#[test]
fn checkpoint_crosses_thread_counts_under_chaos() {
    let (topo, cfg, flows, plan) = scenario(1); // odd seed: plan is Some
    let plan = plan.expect("odd seed draws a fault plan");
    let build = |threads: u32| {
        let mut sim = Simulator::new(
            &topo,
            Routing::Ecmp.selector(&topo),
            cfg.with_threads(threads),
        );
        sim.set_window(0, 4 * MS);
        sim.inject(&flows);
        sim.set_fault_plan(&plan);
        sim
    };
    let straight = build(1).run(80 * MS);
    let mut paused = build(4);
    if paused.run_until(2 * MS) {
        assert_eq!(paused.finish(), straight);
        return;
    }
    let ckpt = paused.checkpoint().expect("checkpoint");
    drop(paused);
    let mut resumed = Simulator::restore(
        &topo,
        Routing::Ecmp.selector(&topo),
        cfg.with_threads(2),
        &ckpt,
    )
    .expect("restore at a different thread count");
    assert_eq!(
        resumed.run(80 * MS),
        straight,
        "snapshot at 4 threads, resume at 2 diverged from the 1-thread oracle"
    );
}
