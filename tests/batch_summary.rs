//! Integration: the `dcnrun batch` work-stealing scheduler. Jobs are
//! dispatched to parallel supervisor slots (`--jobs`), so completion
//! order is nondeterministic — but `batch.summary.json` must list
//! `per_job` in the order the configs were given, count outcomes
//! correctly, and record fail-fast skips deterministically.

use std::process::Command;

use dcn_json::Json;

/// A tiny valid experiment: k=4 fat-tree, 1 ms window, low arrival rate —
/// a worker finishes it in well under a second.
fn good_config(seed: u64) -> String {
    format!(
        r#"{{
  "topology": {{ "kind": "fat_tree", "k": 4 }},
  "routing": {{ "kind": "ecmp" }},
  "workload": {{ "pattern": {{ "kind": "all_to_all" }} }},
  "lambda": 100.0,
  "window_ms": [0, 1],
  "seed": {seed}
}}
"#
    )
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("batch_summary_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

fn write_cfg(dir: &std::path::Path, stem: &str, body: &str) -> String {
    let p = dir.join(format!("{stem}.json"));
    std::fs::write(&p, body).expect("write config");
    p.to_string_lossy().into_owned()
}

fn read_summary(dir: &std::path::Path) -> Json {
    let p = dir.join("out/batch.summary.json");
    let body = std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
    Json::parse(&body).expect("summary parses")
}

fn per_job(summary: &Json) -> Vec<(String, String)> {
    summary
        .get("per_job")
        .and_then(|x| x.as_array())
        .expect("per_job array")
        .iter()
        .map(|row| {
            let job = row
                .get("job")
                .and_then(|x| x.as_str())
                .expect("job")
                .to_string();
            let status = row
                .get("status")
                .and_then(|x| x.as_str())
                .expect("status")
                .to_string();
            (job, status)
        })
        .collect()
}

/// Four jobs on four parallel slots finish in arbitrary order; the
/// summary still lists them in submission order, all ok.
#[test]
fn summary_is_ordered_by_job_id_under_parallel_dispatch() {
    let dir = tmp_dir("parallel");
    let stems = ["j0", "j1", "j2", "j3"];
    let cfgs: Vec<String> = stems
        .iter()
        .enumerate()
        .map(|(i, s)| write_cfg(&dir, s, &good_config(7 + i as u64)))
        .collect();

    let out = dir.join("out").to_string_lossy().into_owned();
    let status = Command::new(env!("CARGO_BIN_EXE_dcnrun"))
        .arg("batch")
        .args(&cfgs)
        .args([
            "--out-dir",
            &out,
            "--jobs",
            "4",
            "--retries",
            "0",
            "--keep-going",
        ])
        .status()
        .expect("spawn dcnrun batch");
    assert!(status.success(), "all-good batch must exit 0");

    let summary = read_summary(&dir);
    assert_eq!(summary.get("jobs").and_then(|x| x.as_u64()), Some(4));
    assert_eq!(summary.get("ok").and_then(|x| x.as_u64()), Some(4));
    assert_eq!(summary.get("failed").and_then(|x| x.as_u64()), Some(0));
    assert_eq!(summary.get("skipped").and_then(|x| x.as_u64()), Some(0));
    let rows = per_job(&summary);
    assert_eq!(
        rows.iter().map(|(j, _)| j.as_str()).collect::<Vec<_>>(),
        stems,
        "per_job must follow submission order, not completion order"
    );
    assert!(rows.iter().all(|(_, s)| s == "ok"), "rows: {rows:?}");
    for s in &stems {
        assert!(
            dir.join(format!("out/{s}.report.json")).exists(),
            "{s} report missing"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Fail-fast on one slot: the job after the failure never launches, and
/// the summary records it (and everything behind it) as skipped, still
/// in submission order.
#[test]
fn fail_fast_records_skipped_jobs_in_order() {
    let dir = tmp_dir("failfast");
    let cfgs = vec![
        write_cfg(&dir, "a_ok", &good_config(1)),
        write_cfg(
            &dir,
            "b_bad",
            r#"{ "topology": { "kind": "moebius_strip" } }"#,
        ),
        write_cfg(&dir, "c_never", &good_config(2)),
        write_cfg(&dir, "d_never", &good_config(3)),
    ];

    let out = dir.join("out").to_string_lossy().into_owned();
    // One slot makes dispatch order sequential, so the skip set is exact.
    let status = Command::new(env!("CARGO_BIN_EXE_dcnrun"))
        .arg("batch")
        .args(&cfgs)
        .args(["--out-dir", &out, "--jobs", "1", "--retries", "0"])
        .status()
        .expect("spawn dcnrun batch");
    assert!(
        !status.success(),
        "batch with a failing job must not exit 0"
    );

    let summary = read_summary(&dir);
    assert_eq!(summary.get("jobs").and_then(|x| x.as_u64()), Some(4));
    assert_eq!(summary.get("ok").and_then(|x| x.as_u64()), Some(1));
    assert_eq!(summary.get("failed").and_then(|x| x.as_u64()), Some(1));
    assert_eq!(summary.get("skipped").and_then(|x| x.as_u64()), Some(2));
    assert_eq!(
        summary.get("keep_going").and_then(|x| x.as_bool()),
        Some(false)
    );
    let rows = per_job(&summary);
    assert_eq!(
        rows,
        vec![
            ("a_ok".into(), "ok".into()),
            ("b_bad".into(), "config_error".into()),
            ("c_never".into(), "skipped".into()),
            ("d_never".into(), "skipped".into()),
        ]
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--keep-going` with parallel slots runs everything despite failures;
/// nothing is skipped and counts add up.
#[test]
fn keep_going_runs_every_job_despite_failures() {
    let dir = tmp_dir("keepgoing");
    let cfgs = vec![
        write_cfg(&dir, "ok0", &good_config(11)),
        write_cfg(&dir, "bad1", r#"{ "this is": "not an experiment" }"#),
        write_cfg(&dir, "ok2", &good_config(12)),
    ];

    let out = dir.join("out").to_string_lossy().into_owned();
    let status = Command::new(env!("CARGO_BIN_EXE_dcnrun"))
        .arg("batch")
        .args(&cfgs)
        .args([
            "--out-dir",
            &out,
            "--jobs",
            "2",
            "--retries",
            "0",
            "--keep-going",
        ])
        .status()
        .expect("spawn dcnrun batch");
    assert!(!status.success());

    let summary = read_summary(&dir);
    assert_eq!(summary.get("ok").and_then(|x| x.as_u64()), Some(2));
    assert_eq!(summary.get("failed").and_then(|x| x.as_u64()), Some(1));
    assert_eq!(summary.get("skipped").and_then(|x| x.as_u64()), Some(0));
    let rows = per_job(&summary);
    assert_eq!(
        rows.iter().map(|(j, _)| j.as_str()).collect::<Vec<_>>(),
        ["ok0", "bad1", "ok2"]
    );

    let _ = std::fs::remove_dir_all(&dir);
}
