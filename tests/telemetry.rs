//! Observability integration tests: same-seed telemetry streams are
//! byte-identical, the JSONL schema is integer-only with monotone sample
//! boundaries, run manifests agree with the engine's intrinsic
//! conservation counters, and the `dcnsim` / `dcnstat` binaries fail
//! cleanly and detect (only real) drift.

use std::path::PathBuf;
use std::process::Command;

use beyond_fattrees::prelude::*;
use dcn_json::Json;

/// One telemetry-enabled run; returns the raw JSONL bytes and the
/// engine's intrinsic conservation summary.
fn telemetry_run(seed: u64) -> (Vec<u8>, Conservation) {
    let xp = Xpander::for_switches(5, 24, 2, seed).build();
    let pattern = Skew::new(&xp, xp.tors_with_servers(), 0.1, 0.7, seed);
    let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 2000.0, 0.01, seed);
    assert!(!flows.is_empty());

    let mut sim = Simulator::new(&xp, Routing::PAPER_HYB.selector(&xp), SimConfig::default());
    sim.set_window(0, 10 * MS);
    sim.inject(&flows);
    sim.set_tracer(Box::new(CountingTracer::new()));
    let buf = SharedBuf::new();
    sim.set_telemetry(Telemetry::new(
        Box::new(buf.clone()),
        DEFAULT_SAMPLE_EVERY_NS,
    ));
    sim.run(20 * SEC);
    check_conservation(&sim).expect("conservation with telemetry enabled");
    (buf.contents(), sim.conservation())
}

#[test]
fn same_seed_telemetry_is_byte_identical() {
    let (a, _) = telemetry_run(42);
    let (b, _) = telemetry_run(42);
    assert!(!a.is_empty(), "telemetry stream is empty");
    assert_eq!(a, b, "same-seed telemetry streams differ");
}

/// No `Json::Num` (float) anywhere in a telemetry line.
fn assert_integer_only(v: &Json, line: &str) {
    match v {
        Json::Num(_) => panic!("float in telemetry line: {line}"),
        Json::Arr(items) => items.iter().for_each(|i| assert_integer_only(i, line)),
        Json::Obj(fields) => fields
            .iter()
            .for_each(|(_, i)| assert_integer_only(i, line)),
        _ => {}
    }
}

#[test]
fn telemetry_schema_is_integer_only_with_monotone_boundaries() {
    let (bytes, _) = telemetry_run(42);
    let body = String::from_utf8(bytes).expect("telemetry is UTF-8");
    let mut prev_t = 0u64;
    let mut lines = 0u64;
    for line in body.lines() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad telemetry line {line}: {e}"));
        assert_eq!(v.get("ev").and_then(|e| e.as_str()), Some("sample"));
        assert_integer_only(&v, line);
        let t = v.get("t").and_then(|t| t.as_u64()).expect("integer t");
        assert_eq!(t % DEFAULT_SAMPLE_EVERY_NS, 0, "t off the sample grid");
        assert!(t > prev_t, "sample times not strictly increasing");
        prev_t = t;
        for row in v.get("ch").and_then(|c| c.as_array()).unwrap_or(&[]) {
            assert_eq!(row.as_array().map(|r| r.len()), Some(4), "ch row shape");
        }
        lines += 1;
    }
    assert!(lines > 10, "expected a real sample stream, got {lines}");
}

#[test]
fn manifest_agrees_with_intrinsic_conservation() {
    let seed = 42;
    let (_, cons) = telemetry_run(seed);

    let xp = Xpander::for_switches(5, 24, 2, seed).build();
    let pattern = Skew::new(&xp, xp.tors_with_servers(), 0.1, 0.7, seed);
    let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 2000.0, 0.01, seed);
    let spec = ManifestSpec::new("telemetry-test", seed);
    let buf = SharedBuf::new();
    let (_, _, man) = run_fct_experiment_instrumented(
        &xp,
        Routing::PAPER_HYB,
        SimConfig::default(),
        &flows,
        (0, 10 * MS),
        20 * SEC,
        None,
        Some(Box::new(CountingTracer::new())),
        Some(Telemetry::new(
            Box::new(buf.clone()),
            DEFAULT_SAMPLE_EVERY_NS,
        )),
        Some(&spec),
    );
    let man = man.expect("manifest requested");

    // The manifest's conservation block is the engine's own accounting —
    // identical to what a direct simulator run reports for the same seed.
    let c = man.get("conservation").expect("conservation block");
    assert_eq!(c.get("sent").unwrap().as_u64(), Some(cons.sent));
    assert_eq!(c.get("delivered").unwrap().as_u64(), Some(cons.delivered));
    assert_eq!(c.get("dropped").unwrap().as_u64(), Some(cons.dropped));
    assert_eq!(c.get("in_flight").unwrap().as_u64(), Some(cons.in_flight));

    assert_eq!(man.get("schema").unwrap().as_u64(), Some(1));
    assert_eq!(man.get("seed").unwrap().as_u64(), Some(seed));
    let fp = man
        .get("topology")
        .and_then(|t| t.get("fingerprint"))
        .and_then(|f| f.as_str())
        .expect("topology fingerprint");
    assert_eq!(fp.len(), 16, "fingerprint is fixed-width hex");
    let tel = man.get("telemetry").expect("telemetry block");
    assert!(tel.get("samples").unwrap().as_u64().unwrap() > 0);
    assert_eq!(
        tel.get("sample_every_ns").unwrap().as_u64(),
        Some(DEFAULT_SAMPLE_EVERY_NS)
    );

    // The rendered document round-trips.
    let round = Json::parse(&man.render()).expect("manifest parses");
    assert_eq!(round.get("seed").unwrap().as_u64(), Some(seed));
}

/// Unique scratch path for one test (no wall clock: pid + label).
fn tmp_path(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dcn_obs_{}_{label}", std::process::id()))
}

#[test]
fn dcnsim_missing_config_is_a_one_line_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_dcnsim"))
        .arg("examples/configs/does_not_exist.json")
        .output()
        .expect("spawn dcnsim");
    assert!(!out.status.success(), "missing config must exit non-zero");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("dcnsim: error:"), "stderr: {err}");
    assert_eq!(err.trim_end().lines().count(), 1, "stderr: {err}");
    assert!(!err.contains("panicked"), "stderr: {err}");
}

#[test]
fn dcnsim_unknown_config_key_is_a_one_line_error() {
    let cfg = tmp_path("bad_key.json");
    std::fs::write(
        &cfg,
        r#"{"topology": {"kind": "fat_tree", "k": 4}, "lambda_typo": 2000.0}"#,
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_dcnsim"))
        .arg(&cfg)
        .output()
        .expect("spawn dcnsim");
    std::fs::remove_file(&cfg).ok();
    assert!(!out.status.success(), "unknown key must exit non-zero");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("dcnsim: error:"), "stderr: {err}");
    assert!(err.contains("unknown key \"lambda_typo\""), "stderr: {err}");
    assert!(!err.contains("panicked"), "stderr: {err}");
}

#[test]
fn dcnstat_diff_sees_zero_drift_between_same_seed_runs() {
    let man_a = tmp_path("man_a.json");
    let man_b = tmp_path("man_b.json");
    let ts_a = tmp_path("ts_a.jsonl");
    let ts_b = tmp_path("ts_b.jsonl");
    for (man, ts) in [(&man_a, &ts_a), (&man_b, &ts_b)] {
        let out = Command::new(env!("CARGO_BIN_EXE_dcnsim"))
            .arg("examples/configs/trace_tiny.json")
            .arg("--manifest")
            .arg(man)
            .arg("--telemetry")
            .arg(ts)
            .output()
            .expect("spawn dcnsim");
        assert!(
            out.status.success(),
            "dcnsim failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // Same seed, same config ⇒ byte-identical telemetry streams.
    let (a, b) = (std::fs::read(&ts_a).unwrap(), std::fs::read(&ts_b).unwrap());
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed dcnsim telemetry files differ");

    let diff = Command::new(env!("CARGO_BIN_EXE_dcnstat"))
        .args(["diff", man_a.to_str().unwrap(), man_b.to_str().unwrap()])
        .output()
        .expect("spawn dcnstat");
    assert!(
        diff.status.success(),
        "dcnstat diff reported drift: {}",
        String::from_utf8_lossy(&diff.stdout)
    );
    assert!(String::from_utf8_lossy(&diff.stdout).contains("zero drift"));

    // Tamper with one simulated field — diff must catch it and exit 1.
    let man_c = tmp_path("man_c.json");
    let body = std::fs::read_to_string(&man_a).unwrap();
    let tampered = body.replacen("\"seed\": 1", "\"seed\": 2", 1);
    assert_ne!(body, tampered, "expected a seed field to tamper with");
    std::fs::write(&man_c, tampered).unwrap();
    let diff = Command::new(env!("CARGO_BIN_EXE_dcnstat"))
        .args(["diff", man_a.to_str().unwrap(), man_c.to_str().unwrap()])
        .output()
        .expect("spawn dcnstat");
    assert!(!diff.status.success(), "tampered manifest must drift");
    assert!(String::from_utf8_lossy(&diff.stdout).contains("seed"));

    for p in [man_a, man_b, man_c, ts_a, ts_b] {
        std::fs::remove_file(p).ok();
    }
}
