//! A hermetic, hand-rolled metrics registry: counters, gauges, and
//! histograms with Prometheus-style plaintext exposition — no
//! dependencies, no background threads, no global state.
//!
//! The service layer (`dcnserve`, `dcnrun`) records operational
//! measurements through cheap cloneable handles ([`Counter`], [`Gauge`],
//! [`Histogram`]); [`Registry::render_text`] walks every registered
//! instrument and emits the standard text format:
//!
//! ```text
//! # HELP dcnserve_requests_total Requests received, any op.
//! # TYPE dcnserve_requests_total counter
//! dcnserve_requests_total 42
//! ```
//!
//! Histograms reuse [`StreamingHistogram`] — the same fixed-size
//! log-bucketed sketch the simulator uses for FCT distributions — and
//! expose as Prometheus *summaries* (quantiles + `_sum` + `_count`),
//! which fits a sketch that answers percentile queries directly.
//!
//! Handles are `Arc`-backed: recording is an atomic add (counters,
//! gauges) or a short mutex hold (histograms), so instruments can be
//! shared freely across connection threads. Everything here is
//! deterministic given the same sequence of recordings; only *what* the
//! service records (wall time, arrival order) is nondeterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dcn_sim::StreamingHistogram;

/// A monotonically increasing count. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depth, live connections).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A distribution sketch; exposed as a Prometheus summary.
#[derive(Clone)]
pub struct Histogram(Arc<Mutex<StreamingHistogram>>);

impl Histogram {
    pub fn observe(&self, v: u64) {
        self.0.lock().unwrap().record(v);
    }

    pub fn count(&self) -> u64 {
        self.0.lock().unwrap().count()
    }
}

enum Kind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Instrument {
    name: String,
    help: String,
    kind: Kind,
}

/// The instrument directory: hands out handles and renders them all.
#[derive(Default)]
pub struct Registry {
    instruments: Mutex<Vec<Instrument>>,
}

/// Prometheus metric names: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, kind: Kind) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut list = self.instruments.lock().unwrap();
        assert!(
            !list.iter().any(|i| i.name == name),
            "metric {name:?} registered twice"
        );
        list.push(Instrument {
            name: name.to_string(),
            help: help.to_string(),
            kind,
        });
    }

    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let c = Counter::default();
        self.register(name, help, Kind::Counter(c.clone()));
        c
    }

    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let g = Gauge::default();
        self.register(name, help, Kind::Gauge(g.clone()));
        g
    }

    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let h = Histogram(Arc::new(Mutex::new(StreamingHistogram::new())));
        self.register(name, help, Kind::Histogram(h.clone()));
        h
    }

    /// The full exposition document, instruments in registration order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for i in self.instruments.lock().unwrap().iter() {
            let ty = match &i.kind {
                Kind::Counter(_) => "counter",
                Kind::Gauge(_) => "gauge",
                Kind::Histogram(_) => "summary",
            };
            out.push_str(&format!("# HELP {} {}\n", i.name, i.help));
            out.push_str(&format!("# TYPE {} {}\n", i.name, ty));
            match &i.kind {
                Kind::Counter(c) => out.push_str(&format!("{} {}\n", i.name, c.get())),
                Kind::Gauge(g) => out.push_str(&format!("{} {}\n", i.name, g.get())),
                Kind::Histogram(h) => {
                    let sketch = h.0.lock().unwrap();
                    if !sketch.is_empty() {
                        for (label, p) in [("0.5", 0.50), ("0.9", 0.90), ("0.99", 0.99)] {
                            out.push_str(&format!(
                                "{}{{quantile=\"{}\"}} {}\n",
                                i.name,
                                label,
                                sketch.value_at_percentile(p)
                            ));
                        }
                    }
                    out.push_str(&format!("{}_sum {}\n", i.name, sketch.sum()));
                    out.push_str(&format!("{}_count {}\n", i.name, sketch.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let r = Registry::new();
        let c = r.counter("requests_total", "Requests received.");
        let g = r.gauge("queue_depth", "Requests waiting.");
        c.inc();
        c.add(2);
        g.set(7);
        let text = r.render_text();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("requests_total 3\n"), "{text}");
        assert!(text.contains("# TYPE queue_depth gauge"), "{text}");
        assert!(text.contains("queue_depth 7\n"), "{text}");
    }

    #[test]
    fn histograms_render_as_summaries() {
        let r = Registry::new();
        let h = r.histogram("latency_ms", "Request latency.");
        let empty = r.render_text();
        assert!(empty.contains("latency_ms_count 0"), "{empty}");
        assert!(!empty.contains("quantile"), "{empty}");
        for v in 1..=100 {
            h.observe(v);
        }
        let text = r.render_text();
        assert!(text.contains("# TYPE latency_ms summary"), "{text}");
        assert!(text.contains("latency_ms{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("latency_ms_count 100"), "{text}");
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn handles_share_state_across_clones() {
        let r = Registry::new();
        let c = r.counter("shared_total", "Shared.");
        let c2 = c.clone();
        c2.add(5);
        assert_eq!(c.get(), 5);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_are_rejected() {
        let r = Registry::new();
        let _a = r.counter("dup", "x");
        let _b = r.gauge("dup", "y");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        let r = Registry::new();
        let _ = r.counter("9starts-with-digit", "x");
    }
}
