//! JSON experiment configs: the loader behind `dcnsim` and `dcnrun`.
//!
//! A config file selects a topology, routing scheme, workload, arrival
//! rate, simulator constants, and (optionally) a fault plan plus
//! observability destinations. [`load_experiment`] turns one into a fully
//! materialized [`Experiment`] — topology built, flows generated, fault
//! schedule validated — or a one-line error `String` naming the offending
//! key. The CLIs map that error onto their `<tool>: error:` exit-1 path;
//! the `dcnrun` supervisor maps it onto its config-error exit code.
//!
//! Fault sections support three kinds:
//!
//! - `random_link_outages` — seeded uniform link choice, one down (and
//!   optionally up) time for all of them;
//! - `schedule` — an explicit event list (`link_down` / `link_up` /
//!   `switch_down` / `switch_up` / `link_gray` / `link_clear`), each with
//!   an `at_ms` timestamp;
//! - `chaos` — a seeded adversarial plan from [`FaultPlan::chaos`]:
//!   random outages, gray periods, and switch flaps inside the window.
//!
//! Every plan, however it was built, passes through
//! [`FaultPlan::validate_schedule`] against the run's simulation horizon,
//! so an event past the horizon, an up-before-down inversion, or an
//! unknown link id is rejected at load time instead of silently never
//! firing (or panicking mid-run).

use crate::prelude::*;
use dcn_json::Json;

/// A fully materialized experiment: everything
/// [`run_fct_experiment_instrumented`] needs, plus the observability
/// destinations the config (or CLI flags layered on top) requested.
pub struct Experiment {
    pub seed: u64,
    pub topo: Topology,
    pub routing: Routing,
    pub sim: SimConfig,
    pub lambda: f64,
    pub flows: Vec<FlowEvent>,
    /// Measurement window (ns).
    pub window: (u64, u64),
    /// Hard simulation-time cap (ns) — also the fault-schedule horizon.
    pub max_time: u64,
    pub faults: Option<FaultPlan>,
    /// `"trace"` destination from the config, if any.
    pub trace: Option<String>,
    /// `"telemetry"` destination from the config, if any.
    pub telemetry: Option<String>,
    pub telemetry_every_ns: u64,
    /// `"manifest"` destination from the config, if any.
    pub manifest: Option<String>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("seed", &self.seed)
            .field("topology", &self.topo.name())
            .field("routing", &self.routing)
            .field("flows", &self.flows.len())
            .field("window", &self.window)
            .field("max_time", &self.max_time)
            .field(
                "fault_events",
                &self.faults.as_ref().map(|p| p.events().len()),
            )
            .finish_non_exhaustive()
    }
}

/// Reads and materializes a config file; errors name the path.
pub fn load_experiment(path: &str) -> Result<Experiment, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let cfg = Json::parse(&body).map_err(|e| format!("parse {path}: {e}"))?;
    Experiment::from_json(&cfg)
}

/// Allowed top-level config keys.
const TOP_KEYS: &[&str] = &[
    "topology",
    "routing",
    "workload",
    "lambda",
    "window_ms",
    "seed",
    "sim",
    "faults",
    "trace",
    "telemetry",
    "telemetry_every_us",
    "manifest",
];

/// Allowed keys inside the `sim` section.
const SIM_KEYS: &[&str] = &[
    "link_gbps",
    "server_link_gbps",
    "queue_pkts",
    "ecn_k_pkts",
    "flowlet_gap_us",
    "reconverge_delay_us",
    "newreno",
    "transport",
    "queue",
    "pfabric_cwnd_pkts",
    "threads",
    "wall_counters",
];

/// The config printed by `dcnsim --print-example`.
pub const EXAMPLE: &str = r#"{
  "topology": { "kind": "xpander", "net_degree": 5, "switches": 54, "servers_per_switch": 3 },
  "routing": { "kind": "hyb", "q_bytes": 100000 },
  "workload": {
    "pattern": { "kind": "skew", "theta": 0.04, "phi": 0.77 },
    "sizes": { "kind": "pfabric_web_search" }
  },
  "lambda": 10000.0,
  "window_ms": [50, 150],
  "seed": 1,
  "sim": { "ecn_k_pkts": 20, "flowlet_gap_us": 50, "transport": "dctcp", "queue": "tail_drop_ecn" },
  "faults": { "kind": "random_link_outages", "count": 2, "down_ms": 60, "up_ms": 90, "seed": 1 }
}"#;

/// Field access helpers: every getter names the offending key on error so
/// config mistakes are self-explanatory.
fn need<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key)
        .ok_or_else(|| format!("config: missing field \"{key}\""))
}

fn need_f64(v: &Json, key: &str) -> Result<f64, String> {
    need(v, key)?
        .as_f64()
        .ok_or_else(|| format!("config: \"{key}\" must be a number"))
}

fn need_u64(v: &Json, key: &str) -> Result<u64, String> {
    need(v, key)?
        .as_u64()
        .ok_or_else(|| format!("config: \"{key}\" must be a non-negative integer"))
}

fn need_u32(v: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(need_u64(v, key)?).map_err(|_| format!("config: \"{key}\" too large"))
}

fn need_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    need(v, key)?
        .as_str()
        .ok_or_else(|| format!("config: \"{key}\" must be a string"))
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, String> {
    v.get(key)
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("config: \"{key}\" must be a number"))
        })
        .transpose()
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(x) if *x == Json::Null => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("config: \"{key}\" must be an integer")),
    }
}

fn opt_str(v: &Json, key: &str) -> Result<Option<String>, String> {
    v.get(key)
        .map(|x| {
            x.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("config: \"{key}\" must be a string path"))
        })
        .transpose()
}

fn kind<'a>(v: &'a Json, what: &str) -> Result<&'a str, String> {
    v.get("kind")
        .and_then(|k| k.as_str())
        .ok_or_else(|| format!("config: {what} needs a \"kind\" field"))
}

/// Rejects unknown keys at the top level and in the `sim` section, so a
/// typoed knob fails loudly instead of silently running the defaults.
pub fn validate_keys(cfg: &Json) -> Result<(), String> {
    let Some(fields) = cfg.as_object() else {
        return Err("config root must be a JSON object".to_string());
    };
    for (k, _) in fields {
        if !TOP_KEYS.contains(&k.as_str()) {
            return Err(format!(
                "config: unknown key \"{k}\" (expected one of: {})",
                TOP_KEYS.join(", ")
            ));
        }
    }
    if let Some(sim) = cfg.get("sim") {
        let Some(fields) = sim.as_object() else {
            return Err("config: \"sim\" must be an object".to_string());
        };
        for (k, _) in fields {
            if !SIM_KEYS.contains(&k.as_str()) {
                return Err(format!(
                    "config: unknown sim key \"{k}\" (expected one of: {})",
                    SIM_KEYS.join(", ")
                ));
            }
        }
    }
    Ok(())
}

fn build_topology(cfg: &Json, seed: u64) -> Result<Topology, String> {
    Ok(match kind(cfg, "topology")? {
        "fat_tree" => {
            let k = need_u32(cfg, "k")?;
            match opt_f64(cfg, "cost_fraction")? {
                Some(f) => FatTree::at_cost_fraction(k, f).build(),
                None => FatTree::full(k).build(),
            }
        }
        "xpander" => Xpander::for_switches(
            need_u32(cfg, "net_degree")?,
            need_u32(cfg, "switches")?,
            need_u32(cfg, "servers_per_switch")?,
            seed,
        )
        .build(),
        "jellyfish" => Jellyfish::new(
            need_u32(cfg, "switches")?,
            need_u32(cfg, "net_degree")?,
            need_u32(cfg, "servers_per_switch")?,
            seed,
        )
        .build(),
        "slim_fly" => {
            SlimFly::new(need_u32(cfg, "q")?, need_u32(cfg, "servers_per_switch")?).build()
        }
        "longhop_folded" => {
            Longhop::folded_hypercube(need_u32(cfg, "m")?, need_u32(cfg, "servers_per_switch")?)
                .build()
        }
        "dragonfly" => crate::topology::dragonfly::Dragonfly::balanced(need_u32(cfg, "h")?).build(),
        "file" => {
            let path = need_str(cfg, "path")?;
            let body =
                std::fs::read_to_string(path).map_err(|e| format!("read topology {path}: {e}"))?;
            let v = Json::parse(&body).map_err(|e| format!("parse topology {path}: {e}"))?;
            let t = Topology::from_json(&v).map_err(|e| format!("invalid topology {path}: {e}"))?;
            if !t.is_connected() {
                return Err("loaded topology is disconnected".to_string());
            }
            t
        }
        other => return Err(format!("config: unknown topology kind \"{other}\"")),
    })
}

fn parse_routing(cfg: &Json) -> Result<Routing, String> {
    Ok(match kind(cfg, "routing")? {
        "ecmp" => Routing::Ecmp,
        "vlb" => Routing::Vlb,
        "hyb" => Routing::Hyb(opt_u64(cfg, "q_bytes")?.unwrap_or(PAPER_Q_BYTES)),
        "adaptive_hyb" => Routing::AdaptiveHyb(need_u64(cfg, "ecn_marks")?),
        "ksp" => Routing::Ksp(need_u64(cfg, "k")? as usize),
        other => return Err(format!("config: unknown routing kind \"{other}\"")),
    })
}

fn parse_sim(cfg: Option<&Json>) -> Result<SimConfig, String> {
    let mut c = SimConfig::default();
    let Some(cfg) = cfg else { return Ok(c) };
    if let Some(v) = opt_f64(cfg, "link_gbps")? {
        c.link_gbps = v;
    }
    if let Some(v) = opt_f64(cfg, "server_link_gbps")? {
        c.server_link_gbps = v;
    }
    if let Some(v) = opt_u64(cfg, "queue_pkts")? {
        c.queue_pkts = v as u32;
    }
    if let Some(v) = opt_u64(cfg, "ecn_k_pkts")? {
        c.ecn_k_pkts = v as u32;
    }
    if let Some(v) = opt_u64(cfg, "flowlet_gap_us")? {
        c.flowlet_gap_ns = v * US;
    }
    if let Some(v) = opt_u64(cfg, "reconverge_delay_us")? {
        c.reconverge_delay_ns = v * US;
    }
    if cfg.get("newreno").and_then(|v| v.as_bool()) == Some(true) {
        c = c.with_newreno();
    }
    if let Some(v) = cfg.get("transport") {
        let s = v.as_str().ok_or("config: \"transport\" must be a string")?;
        c.transport = TransportKind::parse(s).ok_or_else(|| {
            format!("config: unknown transport \"{s}\" (expected one of: dctcp, newreno, pfabric)")
        })?;
    }
    if let Some(v) = cfg.get("queue") {
        let s = v.as_str().ok_or("config: \"queue\" must be a string")?;
        c.queue_disc = QueueDiscKind::parse(s).ok_or_else(|| {
            format!("config: unknown queue \"{s}\" (expected one of: tail_drop_ecn, pfabric)")
        })?;
    }
    if let Some(v) = opt_u64(cfg, "pfabric_cwnd_pkts")? {
        c.pfabric_cwnd_pkts = v as u32;
    }
    if let Some(v) = opt_u64(cfg, "threads")? {
        if v == 0 {
            return Err("config: \"threads\" must be at least 1".to_string());
        }
        c.threads = v as u32;
    }
    if cfg.get("wall_counters").and_then(|v| v.as_bool()) == Some(true) {
        c = c.with_wall_counters();
    }
    Ok(c)
}

/// One event of an explicit `"schedule"` fault plan.
fn parse_fault_event(e: &Json, plan: FaultPlan) -> Result<FaultPlan, String> {
    let op = need_str(e, "op")?;
    let at = need_u64(e, "at_ms")? * MS;
    Ok(match op {
        "link_down" => plan.link_down(at, need_u32(e, "link")?),
        "link_up" => plan.link_up(at, need_u32(e, "link")?),
        "switch_down" => plan.switch_down(at, need_u32(e, "switch")?),
        "switch_up" => plan.switch_up(at, need_u32(e, "switch")?),
        "link_gray" => plan.link_gray(at, need_u32(e, "link")?, need_f64(e, "loss")?),
        "link_clear" => plan.link_clear(at, need_u32(e, "link")?),
        other => {
            return Err(format!(
                "config: unknown fault op \"{other}\" (expected one of: link_down, link_up, \
                 switch_down, switch_up, link_gray, link_clear)"
            ))
        }
    })
}

/// Optional `faults` section. `window_end_ns` bounds generated chaos
/// plans; every plan is then validated against `horizon_ns` (the hard
/// simulation-time cap).
fn parse_faults(
    cfg: Option<&Json>,
    topo: &Topology,
    window_end_ns: u64,
    horizon_ns: u64,
) -> Result<Option<FaultPlan>, String> {
    let Some(cfg) = cfg else { return Ok(None) };
    let plan = match kind(cfg, "faults")? {
        "random_link_outages" => {
            let count = need_u64(cfg, "count")? as usize;
            let down = need_u64(cfg, "down_ms")? * MS;
            let up = opt_u64(cfg, "up_ms")?.map(|v| v * MS);
            let seed = opt_u64(cfg, "seed")?.unwrap_or(1);
            FaultPlan::random_link_outages(topo, count, down, up, seed)
        }
        "schedule" => {
            let seed = opt_u64(cfg, "seed")?.unwrap_or(1);
            let events = need(cfg, "events")?
                .as_array()
                .ok_or("config: faults \"events\" must be an array")?;
            let mut plan = FaultPlan::new().with_seed(seed);
            for e in events {
                plan = parse_fault_event(e, plan)?;
            }
            plan
        }
        "chaos" => {
            let seed = opt_u64(cfg, "seed")?.unwrap_or(1);
            FaultPlan::chaos(topo, window_end_ns, seed)
        }
        other => return Err(format!("config: unknown faults kind \"{other}\"")),
    };
    plan.validate_schedule(topo, horizon_ns)
        .map_err(|e| format!("config: invalid fault schedule: {e}"))?;
    Ok(Some(plan))
}

impl Experiment {
    /// Materializes a parsed config: validates keys, builds the topology,
    /// generates the workload, and validates the fault schedule.
    pub fn from_json(cfg: &Json) -> Result<Experiment, String> {
        validate_keys(cfg)?;

        let seed = opt_u64(cfg, "seed")?.unwrap_or(1);
        let topo = build_topology(need(cfg, "topology")?, seed)?;
        let racks = topo.tors_with_servers();

        let workload = need(cfg, "workload")?;
        let pattern_cfg = need(workload, "pattern")?;
        let pattern: Box<dyn TrafficPattern> = match kind(pattern_cfg, "workload pattern")? {
            "all_to_all" => {
                let fraction = opt_f64(pattern_cfg, "fraction")?.unwrap_or(1.0);
                Box::new(AllToAll::new(
                    &topo,
                    active_fraction(&racks, fraction, true, seed),
                ))
            }
            "permute" => {
                let fraction = opt_f64(pattern_cfg, "fraction")?.unwrap_or(1.0);
                Box::new(Permutation::new(
                    &topo,
                    active_fraction(&racks, fraction, true, seed),
                    seed,
                ))
            }
            "skew" => Box::new(Skew::new(
                &topo,
                racks.clone(),
                need_f64(pattern_cfg, "theta")?,
                need_f64(pattern_cfg, "phi")?,
                seed,
            )),
            "projector_trace" => Box::new(PairSkew::projector_trace(&topo, racks.clone(), seed)),
            other => return Err(format!("config: unknown pattern kind \"{other}\"")),
        };
        let sizes: Box<dyn FlowSizeDist> = match workload.get("sizes") {
            None => Box::new(PFabricWebSearch::new()),
            Some(s) => match kind(s, "workload sizes")? {
                "pfabric_web_search" => Box::new(PFabricWebSearch::new()),
                "pareto_hull" => Box::new(ParetoHull::new()),
                "fixed" => Box::new(FixedSize(need_u64(s, "bytes")?)),
                other => return Err(format!("config: unknown sizes kind \"{other}\"")),
            },
        };

        let window = match cfg.get("window_ms") {
            Some(w) => {
                let (a, b) = w
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .and_then(|a| Some((a[0].as_u64()?, a[1].as_u64()?)))
                    .ok_or("config: \"window_ms\" must be [start, end]")?;
                (a * MS, b * MS)
            }
            None => (50 * MS, 150 * MS),
        };
        let max_time = window.1.saturating_mul(40);
        let lambda = need_f64(cfg, "lambda")?;
        let horizon_s = window.1 as f64 / 1e9 * 1.3;
        let flows = generate_flows(pattern.as_ref(), sizes.as_ref(), lambda, horizon_s, seed);

        let faults = parse_faults(cfg.get("faults"), &topo, window.1, max_time)?;

        Ok(Experiment {
            seed,
            topo,
            routing: parse_routing(need(cfg, "routing")?)?,
            sim: parse_sim(cfg.get("sim"))?,
            lambda,
            flows,
            window,
            max_time,
            faults,
            trace: opt_str(cfg, "trace")?,
            telemetry: opt_str(cfg, "telemetry")?,
            telemetry_every_ns: opt_u64(cfg, "telemetry_every_us")?
                .map(|us| us * US)
                .unwrap_or(DEFAULT_SAMPLE_EVERY_NS),
            manifest: opt_str(cfg, "manifest")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_example_materializes() {
        let cfg = Json::parse(EXAMPLE).unwrap();
        let exp = Experiment::from_json(&cfg).expect("example config must load");
        assert_eq!(exp.seed, 1);
        assert!(!exp.flows.is_empty());
        assert_eq!(exp.window, (50 * MS, 150 * MS));
        assert_eq!(exp.max_time, 150 * MS * 40);
        assert!(exp.faults.is_some());
    }

    #[test]
    fn validate_accepts_the_example() {
        let cfg = Json::parse(EXAMPLE).unwrap();
        assert!(validate_keys(&cfg).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_top_level_key() {
        let cfg = Json::parse(r#"{"topology": {}, "lambda_typo": 1.0}"#).unwrap();
        let err = validate_keys(&cfg).unwrap_err();
        assert!(err.contains("unknown key \"lambda_typo\""), "{err}");
    }

    #[test]
    fn validate_rejects_unknown_sim_key() {
        let cfg = Json::parse(r#"{"sim": {"ecn_pkts": 4}}"#).unwrap();
        let err = validate_keys(&cfg).unwrap_err();
        assert!(err.contains("unknown sim key \"ecn_pkts\""), "{err}");
    }

    #[test]
    fn validate_rejects_non_object_root() {
        let cfg = Json::parse("[1, 2]").unwrap();
        assert!(validate_keys(&cfg).is_err());
    }

    #[test]
    fn validate_accepts_observability_keys() {
        let cfg = Json::parse(
            r#"{"trace": "t.jsonl", "telemetry": "ts.jsonl",
                "telemetry_every_us": 50, "manifest": "m.json"}"#,
        )
        .unwrap();
        assert!(validate_keys(&cfg).is_ok());
    }

    fn tiny(faults: &str) -> String {
        format!(
            r#"{{
              "topology": {{ "kind": "fat_tree", "k": 4 }},
              "routing": {{ "kind": "ecmp" }},
              "workload": {{ "pattern": {{ "kind": "all_to_all" }} }},
              "lambda": 100.0,
              "window_ms": [0, 10],
              "faults": {faults}
            }}"#
        )
    }

    #[test]
    fn explicit_schedule_is_accepted() {
        let body = tiny(
            r#"{ "kind": "schedule", "events": [
                 {"op": "link_down", "at_ms": 2, "link": 3},
                 {"op": "link_up", "at_ms": 5, "link": 3},
                 {"op": "link_gray", "at_ms": 1, "link": 4, "loss": 0.05} ] }"#,
        );
        let exp = Experiment::from_json(&Json::parse(&body).unwrap()).unwrap();
        assert_eq!(exp.faults.unwrap().events().len(), 3);
    }

    #[test]
    fn schedule_past_horizon_is_rejected() {
        // max_time = 10 ms * 40 = 400 ms; 500 ms is past it.
        let body = tiny(
            r#"{ "kind": "schedule", "events": [
                 {"op": "link_down", "at_ms": 500, "link": 3} ] }"#,
        );
        let err = Experiment::from_json(&Json::parse(&body).unwrap()).unwrap_err();
        assert!(err.contains("past the simulation horizon"), "{err}");
    }

    #[test]
    fn inverted_schedule_is_rejected() {
        let body = tiny(
            r#"{ "kind": "schedule", "events": [
                 {"op": "link_up", "at_ms": 2, "link": 3} ] }"#,
        );
        let err = Experiment::from_json(&Json::parse(&body).unwrap()).unwrap_err();
        assert!(err.contains("never down"), "{err}");
    }

    #[test]
    fn unknown_link_is_rejected() {
        let body = tiny(
            r#"{ "kind": "schedule", "events": [
                 {"op": "link_down", "at_ms": 2, "link": 99999} ] }"#,
        );
        let err = Experiment::from_json(&Json::parse(&body).unwrap()).unwrap_err();
        assert!(err.contains("unknown link"), "{err}");
    }

    #[test]
    fn outage_past_horizon_is_rejected() {
        let body = tiny(r#"{ "kind": "random_link_outages", "count": 1, "down_ms": 999 }"#);
        let err = Experiment::from_json(&Json::parse(&body).unwrap()).unwrap_err();
        assert!(err.contains("past the simulation horizon"), "{err}");
    }

    #[test]
    fn chaos_plans_always_validate() {
        let body = tiny(r#"{ "kind": "chaos", "seed": 7 }"#);
        let exp = Experiment::from_json(&Json::parse(&body).unwrap()).unwrap();
        assert!(!exp.faults.unwrap().events().is_empty());
    }

    #[test]
    fn missing_lambda_is_an_error_not_a_panic() {
        let body = r#"{
          "topology": { "kind": "fat_tree", "k": 4 },
          "routing": { "kind": "ecmp" },
          "workload": { "pattern": { "kind": "all_to_all" } }
        }"#;
        let err = Experiment::from_json(&Json::parse(body).unwrap()).unwrap_err();
        assert!(err.contains("missing field \"lambda\""), "{err}");
    }
}
