//! `dcnsim` — run a custom data center FCT experiment from a JSON config,
//! without writing Rust. The adoption-oriented entry point:
//!
//! ```text
//! cargo run --release --bin dcnsim -- experiment.json
//! cargo run --release --bin dcnsim -- --print-example > experiment.json
//! ```
//!
//! The config selects a topology, routing scheme, workload, arrival rate,
//! simulator constants, and (optionally) a fault plan; the tool prints the
//! paper's three headline metrics (and a full JSON report to stdout with
//! `--json`). Parsing, workload generation, and fault-schedule validation
//! live in [`beyond_fattrees::config`] — shared with the `dcnrun`
//! supervisor. Observability side-channels:
//!
//! - `--trace events.jsonl` (or `"trace"` in the config): every simulator
//!   event — enqueues, ECN marks, drops by cause, ACKs, RTOs, fault
//!   transitions — one JSON object per line;
//! - `--telemetry ts.jsonl` (or `"telemetry"`): periodic fabric-wide
//!   samples on a `"telemetry_every_us"` cadence (default 100 µs);
//! - `--manifest manifest.json` (or `"manifest"`): a provenance manifest
//!   with config echo, topology fingerprint, fault digest, FCT histogram
//!   summary, and packet-conservation counters.
//!
//! See DESIGN.md §Observability for the schemas; `dcnstat` post-processes
//! the trace/telemetry/manifest files. Config mistakes (missing file,
//! unknown key, wrong type, fault event past the horizon) exit with a
//! one-line `dcnsim: error: ...`.

use beyond_fattrees::config::{load_experiment, EXAMPLE};
use beyond_fattrees::prelude::*;
use dcn_json::Json;

/// One-line fatal error: `dcnsim: error: <msg>`, exit code 1 — config and
/// I/O mistakes are user errors, not panics.
fn fail(msg: &str) -> ! {
    eprintln!("dcnsim: error: {msg}");
    std::process::exit(1)
}

/// `--flag <value>` from the argument list (the flag's value wins over the
/// config file's same-named key).
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| fail(&format!("{flag} takes a file path")))
            .to_string()
    })
}

const USAGE: &str = "usage: dcnsim <config.json> [--json] [--threads N] [--dot out.dot] \
     [--trace out.jsonl] [--telemetry out.jsonl] [--manifest out.json] | dcnsim --print-example";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--print-example") {
        println!("{EXAMPLE}");
        return;
    }
    let json_out = args.iter().any(|a| a == "--json");
    // First positional argument, skipping flags that take one value.
    let mut path: Option<&String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dot" | "--trace" | "--telemetry" | "--manifest" | "--threads" => i += 1, // skip its value
            a if !a.starts_with("--") && path.is_none() => path = Some(&args[i]),
            _ => {}
        }
        i += 1;
    }
    let Some(path) = path else { fail(USAGE) };
    let mut exp = load_experiment(path).unwrap_or_else(|e| fail(&e));
    // Worker threads for the sharded engine; results are byte-identical
    // at every setting. The flag wins over the config's "threads" key.
    if let Some(v) = flag_value(&args, "--threads") {
        let n: u32 = v
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| fail("--threads takes a positive integer"));
        exp.sim.threads = n;
    }

    eprintln!(
        "topology: {} ({} switches, {} servers)",
        exp.topo.name(),
        exp.topo.num_nodes(),
        exp.topo.num_servers()
    );
    if let Some(out) = flag_value(&args, "--dot") {
        beyond_fattrees::core::write_atomic(
            &out,
            beyond_fattrees::topology::export::to_dot(&exp.topo).as_bytes(),
        )
        .unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
        eprintln!("wrote {out}");
    }
    eprintln!("workload: {} flows at λ = {}", exp.flows.len(), exp.lambda);
    if let Some(plan) = &exp.faults {
        eprintln!("faults: {} scheduled events", plan.events().len());
    }

    // Observability destinations: flags win over the config's keys.
    let trace_path = flag_value(&args, "--trace").or_else(|| exp.trace.clone());
    let tracer: Option<Box<dyn Tracer>> = trace_path.as_deref().map(|p| {
        eprintln!("tracing events to {p}");
        Box::new(JsonlTracer::create(p).unwrap_or_else(|e| fail(&format!("open trace {p}: {e}"))))
            as Box<dyn Tracer>
    });
    let telemetry_path = flag_value(&args, "--telemetry").or_else(|| exp.telemetry.clone());
    let telemetry = telemetry_path.as_deref().map(|p| {
        eprintln!("telemetry to {p} every {} ns", exp.telemetry_every_ns);
        Telemetry::to_file(p, exp.telemetry_every_ns)
            .unwrap_or_else(|e| fail(&format!("open telemetry {p}: {e}")))
    });
    let manifest_path = flag_value(&args, "--manifest").or_else(|| exp.manifest.clone());
    let spec = manifest_path.as_ref().map(|_| {
        let mut s = ManifestSpec::new("dcnsim", exp.seed);
        s.trace_path = trace_path.clone();
        s
    });

    let (m, counters, manifest) = run_fct_experiment_instrumented(
        &exp.topo,
        exp.routing,
        exp.sim,
        &exp.flows,
        exp.window,
        exp.max_time,
        exp.faults.as_ref(),
        tracer,
        telemetry,
        spec.as_ref(),
    );
    if let (Some(p), Some(man)) = (&manifest_path, &manifest) {
        man.write(p)
            .unwrap_or_else(|e| fail(&format!("write manifest {p}: {e}")));
        eprintln!("wrote {p}");
    }

    if json_out {
        let report = Json::obj(vec![
            ("topology", Json::from(exp.topo.name())),
            ("switches", Json::from(exp.topo.num_nodes())),
            ("servers", Json::from(exp.topo.num_servers())),
            ("flows_measured", Json::from(m.flows)),
            ("completed", Json::from(m.completed)),
            ("failed", Json::from(m.failed)),
            ("avg_fct_ms", Json::from(m.avg_fct_ms)),
            ("p99_short_fct_ms", Json::from(m.p99_short_fct_ms)),
            ("avg_long_tput_gbps", Json::from(m.avg_long_tput_gbps)),
            ("congestion_drops", Json::from(counters.congestion_drops)),
            ("fault_drops", Json::from(counters.fault_drops)),
            ("recovered_flows", Json::from(m.recovered_flows)),
            ("avg_recovery_ms", Json::from(m.avg_recovery_ms)),
            ("ecn_marks", Json::from(counters.ecn_marks)),
            ("events", Json::from(counters.events)),
        ]);
        println!("{}", report.pretty());
    } else {
        println!("flows measured      {}", m.flows);
        println!("completed           {}", m.completed);
        if m.failed > 0 {
            println!("failed              {}", m.failed);
        }
        println!("avg FCT             {:.3} ms", m.avg_fct_ms);
        println!("p99 short-flow FCT  {:.3} ms", m.p99_short_fct_ms);
        println!("long-flow goodput   {:.2} Gbps", m.avg_long_tput_gbps);
        println!(
            "drops (cong/fault)  {} / {}",
            counters.congestion_drops, counters.fault_drops
        );
        println!("ECN marks           {}", counters.ecn_marks);
        if m.recovered_flows > 0 {
            println!(
                "recovery            {} flows, avg {:.3} ms",
                m.recovered_flows, m.avg_recovery_ms
            );
        }
    }
}
