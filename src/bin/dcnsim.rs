//! `dcnsim` — run a custom data center FCT experiment from a JSON config,
//! without writing Rust. The adoption-oriented entry point:
//!
//! ```text
//! cargo run --release --bin dcnsim -- experiment.json
//! cargo run --release --bin dcnsim -- --print-example > experiment.json
//! ```
//!
//! The config selects a topology, routing scheme, workload, arrival rate,
//! simulator constants, and (optionally) a fault plan; the tool prints the
//! paper's three headline metrics (and a full JSON report to stdout with
//! `--json`). Observability side-channels:
//!
//! - `--trace events.jsonl` (or `"trace"` in the config): every simulator
//!   event — enqueues, ECN marks, drops by cause, ACKs, RTOs, fault
//!   transitions — one JSON object per line;
//! - `--telemetry ts.jsonl` (or `"telemetry"`): periodic fabric-wide
//!   samples on a `"telemetry_every_us"` cadence (default 100 µs);
//! - `--manifest manifest.json` (or `"manifest"`): a provenance manifest
//!   with config echo, topology fingerprint, fault digest, FCT histogram
//!   summary, and packet-conservation counters.
//!
//! See DESIGN.md §Observability for the schemas; `dcnstat` post-processes
//! the trace/telemetry/manifest files. Config mistakes (missing file,
//! unknown key, wrong type) exit with a one-line `dcnsim: error: ...`.

use beyond_fattrees::prelude::*;
use dcn_json::Json;

/// One-line fatal error: `dcnsim: error: <msg>`, exit code 1 — config and
/// I/O mistakes are user errors, not panics.
fn fail(msg: &str) -> ! {
    eprintln!("dcnsim: error: {msg}");
    std::process::exit(1)
}

/// Field access helpers: every getter names the offending key on error so
/// config mistakes are self-explanatory.
fn need<'a>(v: &'a Json, key: &str) -> &'a Json {
    v.get(key)
        .unwrap_or_else(|| fail(&format!("config: missing field \"{key}\"")))
}

fn need_f64(v: &Json, key: &str) -> f64 {
    need(v, key)
        .as_f64()
        .unwrap_or_else(|| fail(&format!("config: \"{key}\" must be a number")))
}

fn need_u64(v: &Json, key: &str) -> u64 {
    need(v, key)
        .as_u64()
        .unwrap_or_else(|| fail(&format!("config: \"{key}\" must be a non-negative integer")))
}

fn need_u32(v: &Json, key: &str) -> u32 {
    u32::try_from(need_u64(v, key))
        .unwrap_or_else(|_| fail(&format!("config: \"{key}\" too large")))
}

fn need_str<'a>(v: &'a Json, key: &str) -> &'a str {
    need(v, key)
        .as_str()
        .unwrap_or_else(|| fail(&format!("config: \"{key}\" must be a string")))
}

fn opt_f64(v: &Json, key: &str) -> Option<f64> {
    v.get(key).map(|x| {
        x.as_f64()
            .unwrap_or_else(|| fail(&format!("config: \"{key}\" must be a number")))
    })
}

fn opt_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(|x| {
        if *x == Json::Null {
            None
        } else {
            Some(
                x.as_u64()
                    .unwrap_or_else(|| fail(&format!("config: \"{key}\" must be an integer"))),
            )
        }
    })
}

fn opt_str(v: &Json, key: &str) -> Option<String> {
    v.get(key).map(|x| {
        x.as_str()
            .unwrap_or_else(|| fail(&format!("config: \"{key}\" must be a string path")))
            .to_string()
    })
}

fn kind<'a>(v: &'a Json, what: &str) -> &'a str {
    v.get("kind")
        .and_then(|k| k.as_str())
        .unwrap_or_else(|| fail(&format!("config: {what} needs a \"kind\" field")))
}

/// Allowed top-level config keys.
const TOP_KEYS: &[&str] = &[
    "topology",
    "routing",
    "workload",
    "lambda",
    "window_ms",
    "seed",
    "sim",
    "faults",
    "trace",
    "telemetry",
    "telemetry_every_us",
    "manifest",
];

/// Allowed keys inside the `sim` section.
const SIM_KEYS: &[&str] = &[
    "link_gbps",
    "server_link_gbps",
    "queue_pkts",
    "ecn_k_pkts",
    "flowlet_gap_us",
    "reconverge_delay_us",
    "newreno",
    "transport",
    "queue",
    "pfabric_cwnd_pkts",
];

/// Rejects unknown keys at the top level and in the `sim` section, so a
/// typoed knob fails loudly instead of silently running the defaults.
fn validate_keys(cfg: &Json) -> Result<(), String> {
    let Some(fields) = cfg.as_object() else {
        return Err("config root must be a JSON object".to_string());
    };
    for (k, _) in fields {
        if !TOP_KEYS.contains(&k.as_str()) {
            return Err(format!(
                "config: unknown key \"{k}\" (expected one of: {})",
                TOP_KEYS.join(", ")
            ));
        }
    }
    if let Some(sim) = cfg.get("sim") {
        let Some(fields) = sim.as_object() else {
            return Err("config: \"sim\" must be an object".to_string());
        };
        for (k, _) in fields {
            if !SIM_KEYS.contains(&k.as_str()) {
                return Err(format!(
                    "config: unknown sim key \"{k}\" (expected one of: {})",
                    SIM_KEYS.join(", ")
                ));
            }
        }
    }
    Ok(())
}

fn build_topology(cfg: &Json, seed: u64) -> Topology {
    match kind(cfg, "topology") {
        "fat_tree" => {
            let k = need_u32(cfg, "k");
            match opt_f64(cfg, "cost_fraction") {
                Some(f) => FatTree::at_cost_fraction(k, f).build(),
                None => FatTree::full(k).build(),
            }
        }
        "xpander" => Xpander::for_switches(
            need_u32(cfg, "net_degree"),
            need_u32(cfg, "switches"),
            need_u32(cfg, "servers_per_switch"),
            seed,
        )
        .build(),
        "jellyfish" => Jellyfish::new(
            need_u32(cfg, "switches"),
            need_u32(cfg, "net_degree"),
            need_u32(cfg, "servers_per_switch"),
            seed,
        )
        .build(),
        "slim_fly" => SlimFly::new(need_u32(cfg, "q"), need_u32(cfg, "servers_per_switch")).build(),
        "longhop_folded" => {
            Longhop::folded_hypercube(need_u32(cfg, "m"), need_u32(cfg, "servers_per_switch"))
                .build()
        }
        "dragonfly" => {
            beyond_fattrees::topology::dragonfly::Dragonfly::balanced(need_u32(cfg, "h")).build()
        }
        "file" => {
            let path = need_str(cfg, "path");
            let body = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("read topology {path}: {e}")));
            let v =
                Json::parse(&body).unwrap_or_else(|e| fail(&format!("parse topology {path}: {e}")));
            let t = Topology::from_json(&v)
                .unwrap_or_else(|e| fail(&format!("invalid topology {path}: {e}")));
            if !t.is_connected() {
                fail("loaded topology is disconnected");
            }
            t
        }
        other => fail(&format!("config: unknown topology kind \"{other}\"")),
    }
}

fn parse_routing(cfg: &Json) -> Routing {
    match kind(cfg, "routing") {
        "ecmp" => Routing::Ecmp,
        "vlb" => Routing::Vlb,
        "hyb" => Routing::Hyb(opt_u64(cfg, "q_bytes").unwrap_or(PAPER_Q_BYTES)),
        "adaptive_hyb" => Routing::AdaptiveHyb(need_u64(cfg, "ecn_marks")),
        "ksp" => Routing::Ksp(need_u64(cfg, "k") as usize),
        other => fail(&format!("config: unknown routing kind \"{other}\"")),
    }
}

fn parse_sim(cfg: Option<&Json>) -> SimConfig {
    let mut c = SimConfig::default();
    let Some(cfg) = cfg else { return c };
    if let Some(v) = opt_f64(cfg, "link_gbps") {
        c.link_gbps = v;
    }
    if let Some(v) = opt_f64(cfg, "server_link_gbps") {
        c.server_link_gbps = v;
    }
    if let Some(v) = opt_u64(cfg, "queue_pkts") {
        c.queue_pkts = v as u32;
    }
    if let Some(v) = opt_u64(cfg, "ecn_k_pkts") {
        c.ecn_k_pkts = v as u32;
    }
    if let Some(v) = opt_u64(cfg, "flowlet_gap_us") {
        c.flowlet_gap_ns = v * US;
    }
    if let Some(v) = opt_u64(cfg, "reconverge_delay_us") {
        c.reconverge_delay_ns = v * US;
    }
    if cfg.get("newreno").and_then(|v| v.as_bool()) == Some(true) {
        c = c.with_newreno();
    }
    if let Some(v) = cfg.get("transport") {
        let s = v
            .as_str()
            .unwrap_or_else(|| fail("config: \"transport\" must be a string"));
        c.transport = TransportKind::parse(s).unwrap_or_else(|| {
            fail(&format!(
                "config: unknown transport \"{s}\" (expected one of: dctcp, newreno, pfabric)"
            ))
        });
    }
    if let Some(v) = cfg.get("queue") {
        let s = v
            .as_str()
            .unwrap_or_else(|| fail("config: \"queue\" must be a string"));
        c.queue_disc = QueueDiscKind::parse(s).unwrap_or_else(|| {
            fail(&format!(
                "config: unknown queue \"{s}\" (expected one of: tail_drop_ecn, pfabric)"
            ))
        });
    }
    if let Some(v) = opt_u64(cfg, "pfabric_cwnd_pkts") {
        c.pfabric_cwnd_pkts = v as u32;
    }
    c
}

/// Optional `faults` section: seeded random outages injected mid-run.
///
/// ```json
/// "faults": { "kind": "random_link_outages", "count": 3,
///             "down_ms": 60, "up_ms": 90, "seed": 1 }
/// ```
///
/// `up_ms` may be omitted (or `null`) for permanent failures.
fn parse_faults(cfg: Option<&Json>, topo: &Topology) -> Option<FaultPlan> {
    let cfg = cfg?;
    match kind(cfg, "faults") {
        "random_link_outages" => {
            let count = need_u64(cfg, "count") as usize;
            let down = need_u64(cfg, "down_ms") * MS;
            let up = opt_u64(cfg, "up_ms").map(|v| v * MS);
            let seed = opt_u64(cfg, "seed").unwrap_or(1);
            Some(FaultPlan::random_link_outages(topo, count, down, up, seed))
        }
        other => fail(&format!("config: unknown faults kind \"{other}\"")),
    }
}

/// `--flag <value>` from the argument list (the flag's value wins over the
/// config file's same-named key).
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| fail(&format!("{flag} takes a file path")))
            .to_string()
    })
}

const EXAMPLE: &str = r#"{
  "topology": { "kind": "xpander", "net_degree": 5, "switches": 54, "servers_per_switch": 3 },
  "routing": { "kind": "hyb", "q_bytes": 100000 },
  "workload": {
    "pattern": { "kind": "skew", "theta": 0.04, "phi": 0.77 },
    "sizes": { "kind": "pfabric_web_search" }
  },
  "lambda": 10000.0,
  "window_ms": [50, 150],
  "seed": 1,
  "sim": { "ecn_k_pkts": 20, "flowlet_gap_us": 50, "transport": "dctcp", "queue": "tail_drop_ecn" },
  "faults": { "kind": "random_link_outages", "count": 2, "down_ms": 60, "up_ms": 90, "seed": 1 }
}"#;

const USAGE: &str = "usage: dcnsim <config.json> [--json] [--dot out.dot] [--trace out.jsonl] \
     [--telemetry out.jsonl] [--manifest out.json] | dcnsim --print-example";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--print-example") {
        println!("{EXAMPLE}");
        return;
    }
    let json_out = args.iter().any(|a| a == "--json");
    // First positional argument, skipping flags that take one value.
    let mut path: Option<&String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dot" | "--trace" | "--telemetry" | "--manifest" => i += 1, // skip its value
            a if !a.starts_with("--") && path.is_none() => path = Some(&args[i]),
            _ => {}
        }
        i += 1;
    }
    let Some(path) = path else { fail(USAGE) };
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    let cfg = Json::parse(&body).unwrap_or_else(|e| fail(&format!("parse {path}: {e}")));
    if let Err(e) = validate_keys(&cfg) {
        fail(&e);
    }

    let seed = opt_u64(&cfg, "seed").unwrap_or(1);
    let topo = build_topology(need(&cfg, "topology"), seed);
    eprintln!(
        "topology: {} ({} switches, {} servers)",
        topo.name(),
        topo.num_nodes(),
        topo.num_servers()
    );
    if let Some(out) = flag_value(&args, "--dot") {
        std::fs::write(&out, beyond_fattrees::topology::export::to_dot(&topo))
            .unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
        eprintln!("wrote {out}");
    }

    let racks = topo.tors_with_servers();
    let workload = need(&cfg, "workload");
    let pattern_cfg = need(workload, "pattern");
    let pattern: Box<dyn TrafficPattern> = match kind(pattern_cfg, "workload pattern") {
        "all_to_all" => {
            let fraction = opt_f64(pattern_cfg, "fraction").unwrap_or(1.0);
            Box::new(AllToAll::new(
                &topo,
                active_fraction(&racks, fraction, true, seed),
            ))
        }
        "permute" => {
            let fraction = opt_f64(pattern_cfg, "fraction").unwrap_or(1.0);
            Box::new(Permutation::new(
                &topo,
                active_fraction(&racks, fraction, true, seed),
                seed,
            ))
        }
        "skew" => Box::new(Skew::new(
            &topo,
            racks.clone(),
            need_f64(pattern_cfg, "theta"),
            need_f64(pattern_cfg, "phi"),
            seed,
        )),
        "projector_trace" => Box::new(PairSkew::projector_trace(&topo, racks.clone(), seed)),
        other => fail(&format!("config: unknown pattern kind \"{other}\"")),
    };
    let sizes: Box<dyn FlowSizeDist> = match workload.get("sizes") {
        None => Box::new(PFabricWebSearch::new()),
        Some(s) => match kind(s, "workload sizes") {
            "pfabric_web_search" => Box::new(PFabricWebSearch::new()),
            "pareto_hull" => Box::new(ParetoHull::new()),
            "fixed" => Box::new(FixedSize(need_u64(s, "bytes"))),
            other => fail(&format!("config: unknown sizes kind \"{other}\"")),
        },
    };

    let window = match cfg.get("window_ms").map(|w| {
        w.as_array()
            .filter(|a| a.len() == 2)
            .and_then(|a| Some((a[0].as_u64()?, a[1].as_u64()?)))
            .unwrap_or_else(|| fail("config: \"window_ms\" must be [start, end]"))
    }) {
        Some((a, b)) => (a * MS, b * MS),
        None => (50 * MS, 150 * MS),
    };
    let lambda = need_f64(&cfg, "lambda");
    let horizon_s = window.1 as f64 / 1e9 * 1.3;
    let flows = generate_flows(pattern.as_ref(), sizes.as_ref(), lambda, horizon_s, seed);
    eprintln!("workload: {} flows at λ = {}", flows.len(), lambda);

    let faults = parse_faults(cfg.get("faults"), &topo);
    if let Some(plan) = &faults {
        eprintln!("faults: {} scheduled events", plan.events().len());
    }
    // Observability destinations: flags win over the config's keys.
    let trace_path = flag_value(&args, "--trace").or_else(|| opt_str(&cfg, "trace"));
    let tracer: Option<Box<dyn Tracer>> = trace_path.as_deref().map(|p| {
        eprintln!("tracing events to {p}");
        Box::new(JsonlTracer::create(p).unwrap_or_else(|e| fail(&format!("open trace {p}: {e}"))))
            as Box<dyn Tracer>
    });
    let telemetry_path = flag_value(&args, "--telemetry").or_else(|| opt_str(&cfg, "telemetry"));
    let telemetry = telemetry_path.as_deref().map(|p| {
        let every = opt_u64(&cfg, "telemetry_every_us")
            .map(|us| us * US)
            .unwrap_or(DEFAULT_SAMPLE_EVERY_NS);
        eprintln!("telemetry to {p} every {} ns", every);
        Telemetry::to_file(p, every).unwrap_or_else(|e| fail(&format!("open telemetry {p}: {e}")))
    });
    let manifest_path = flag_value(&args, "--manifest").or_else(|| opt_str(&cfg, "manifest"));
    let spec = manifest_path.as_ref().map(|_| {
        let mut s = ManifestSpec::new("dcnsim", seed);
        s.trace_path = trace_path.clone();
        s
    });

    let (m, counters, manifest) = run_fct_experiment_instrumented(
        &topo,
        parse_routing(need(&cfg, "routing")),
        parse_sim(cfg.get("sim")),
        &flows,
        window,
        window.1.saturating_mul(40),
        faults.as_ref(),
        tracer,
        telemetry,
        spec.as_ref(),
    );
    if let (Some(p), Some(man)) = (&manifest_path, &manifest) {
        man.write(p)
            .unwrap_or_else(|e| fail(&format!("write manifest {p}: {e}")));
        eprintln!("wrote {p}");
    }

    if json_out {
        let report = Json::obj(vec![
            ("topology", Json::from(topo.name())),
            ("switches", Json::from(topo.num_nodes())),
            ("servers", Json::from(topo.num_servers())),
            ("flows_measured", Json::from(m.flows)),
            ("completed", Json::from(m.completed)),
            ("failed", Json::from(m.failed)),
            ("avg_fct_ms", Json::from(m.avg_fct_ms)),
            ("p99_short_fct_ms", Json::from(m.p99_short_fct_ms)),
            ("avg_long_tput_gbps", Json::from(m.avg_long_tput_gbps)),
            ("congestion_drops", Json::from(counters.congestion_drops)),
            ("fault_drops", Json::from(counters.fault_drops)),
            ("recovered_flows", Json::from(m.recovered_flows)),
            ("avg_recovery_ms", Json::from(m.avg_recovery_ms)),
            ("ecn_marks", Json::from(counters.ecn_marks)),
            ("events", Json::from(counters.events)),
        ]);
        println!("{}", report.pretty());
    } else {
        println!("flows measured      {}", m.flows);
        println!("completed           {}", m.completed);
        if m.failed > 0 {
            println!("failed              {}", m.failed);
        }
        println!("avg FCT             {:.3} ms", m.avg_fct_ms);
        println!("p99 short-flow FCT  {:.3} ms", m.p99_short_fct_ms);
        println!("long-flow goodput   {:.2} Gbps", m.avg_long_tput_gbps);
        println!(
            "drops (cong/fault)  {} / {}",
            counters.congestion_drops, counters.fault_drops
        );
        println!("ECN marks           {}", counters.ecn_marks);
        if m.recovered_flows > 0 {
            println!(
                "recovery            {} flows, avg {:.3} ms",
                m.recovered_flows, m.avg_recovery_ms
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_the_example() {
        let cfg = Json::parse(EXAMPLE).unwrap();
        assert!(validate_keys(&cfg).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_top_level_key() {
        let cfg = Json::parse(r#"{"topology": {}, "lambda_typo": 1.0}"#).unwrap();
        let err = validate_keys(&cfg).unwrap_err();
        assert!(err.contains("unknown key \"lambda_typo\""), "{err}");
    }

    #[test]
    fn validate_rejects_unknown_sim_key() {
        let cfg = Json::parse(r#"{"sim": {"ecn_pkts": 4}}"#).unwrap();
        let err = validate_keys(&cfg).unwrap_err();
        assert!(err.contains("unknown sim key \"ecn_pkts\""), "{err}");
    }

    #[test]
    fn validate_rejects_non_object_root() {
        let cfg = Json::parse("[1, 2]").unwrap();
        assert!(validate_keys(&cfg).is_err());
    }

    #[test]
    fn validate_accepts_observability_keys() {
        let cfg = Json::parse(
            r#"{"trace": "t.jsonl", "telemetry": "ts.jsonl",
                "telemetry_every_us": 50, "manifest": "m.json"}"#,
        )
        .unwrap();
        assert!(validate_keys(&cfg).is_ok());
    }
}
