//! `dcnsim` — run a custom data center FCT experiment from a JSON config,
//! without writing Rust. The adoption-oriented entry point:
//!
//! ```text
//! cargo run --release --bin dcnsim -- experiment.json
//! cargo run --release --bin dcnsim -- --print-example > experiment.json
//! ```
//!
//! The config selects a topology, routing scheme, workload, arrival rate,
//! and simulator constants; the tool prints the paper's three headline
//! metrics (and a full JSON report to stdout with `--json`).

use beyond_fattrees::prelude::*;
use serde::Deserialize;

#[derive(Deserialize, Debug)]
#[serde(deny_unknown_fields)]
struct Config {
    topology: TopologyCfg,
    routing: RoutingCfg,
    workload: WorkloadCfg,
    /// Aggregate flow arrivals per second.
    lambda: f64,
    /// Measurement window in milliseconds [start, end).
    #[serde(default = "default_window_ms")]
    window_ms: (u64, u64),
    #[serde(default = "default_seed")]
    seed: u64,
    #[serde(default)]
    sim: SimCfg,
}

fn default_window_ms() -> (u64, u64) {
    (50, 150)
}
fn default_seed() -> u64 {
    1
}

#[derive(Deserialize, Debug)]
#[serde(tag = "kind", rename_all = "snake_case", deny_unknown_fields)]
enum TopologyCfg {
    FatTree { k: u32, #[serde(default)] cost_fraction: Option<f64> },
    Xpander { net_degree: u32, switches: u32, servers_per_switch: u32 },
    Jellyfish { switches: u32, net_degree: u32, servers_per_switch: u32 },
    SlimFly { q: u32, servers_per_switch: u32 },
    LonghopFolded { m: u32, servers_per_switch: u32 },
    Dragonfly { h: u32 },
    /// Load a serialized [`Topology`] (JSON, as produced by serde) from disk.
    File { path: String },
}

impl TopologyCfg {
    fn build(&self, seed: u64) -> Topology {
        match *self {
            TopologyCfg::FatTree { k, cost_fraction } => match cost_fraction {
                Some(f) => FatTree::at_cost_fraction(k, f).build(),
                None => FatTree::full(k).build(),
            },
            TopologyCfg::Xpander { net_degree, switches, servers_per_switch } => {
                Xpander::for_switches(net_degree, switches, servers_per_switch, seed).build()
            }
            TopologyCfg::Jellyfish { switches, net_degree, servers_per_switch } => {
                Jellyfish::new(switches, net_degree, servers_per_switch, seed).build()
            }
            TopologyCfg::SlimFly { q, servers_per_switch } => {
                SlimFly::new(q, servers_per_switch).build()
            }
            TopologyCfg::LonghopFolded { m, servers_per_switch } => {
                Longhop::folded_hypercube(m, servers_per_switch).build()
            }
            TopologyCfg::Dragonfly { h } => {
                beyond_fattrees::topology::dragonfly::Dragonfly::balanced(h).build()
            }
            TopologyCfg::File { ref path } => {
                let body = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("read topology {path}: {e}"));
                let t: Topology = serde_json::from_str(&body)
                    .unwrap_or_else(|e| panic!("parse topology {path}: {e}"));
                assert!(t.is_connected(), "loaded topology is disconnected");
                t
            }
        }
    }
}

#[derive(Deserialize, Debug)]
#[serde(tag = "kind", rename_all = "snake_case", deny_unknown_fields)]
enum RoutingCfg {
    Ecmp,
    Vlb,
    Hyb { #[serde(default = "default_q")] q_bytes: u64 },
    AdaptiveHyb { ecn_marks: u64 },
    Ksp { k: usize },
}

fn default_q() -> u64 {
    PAPER_Q_BYTES
}

impl RoutingCfg {
    fn to_routing(&self) -> Routing {
        match *self {
            RoutingCfg::Ecmp => Routing::Ecmp,
            RoutingCfg::Vlb => Routing::Vlb,
            RoutingCfg::Hyb { q_bytes } => Routing::Hyb(q_bytes),
            RoutingCfg::AdaptiveHyb { ecn_marks } => Routing::AdaptiveHyb(ecn_marks),
            RoutingCfg::Ksp { k } => Routing::Ksp(k),
        }
    }
}

#[derive(Deserialize, Debug)]
#[serde(deny_unknown_fields)]
struct WorkloadCfg {
    pattern: PatternCfg,
    #[serde(default)]
    sizes: SizeCfg,
}

#[derive(Deserialize, Debug)]
#[serde(tag = "kind", rename_all = "snake_case", deny_unknown_fields)]
enum PatternCfg {
    AllToAll { #[serde(default = "one")] fraction: f64 },
    Permute { #[serde(default = "one")] fraction: f64 },
    Skew { theta: f64, phi: f64 },
    ProjectorTrace,
}

fn one() -> f64 {
    1.0
}

#[derive(Deserialize, Debug, Default)]
#[serde(tag = "kind", rename_all = "snake_case", deny_unknown_fields)]
enum SizeCfg {
    #[default]
    PfabricWebSearch,
    ParetoHull,
    Fixed { bytes: u64 },
}

#[derive(Deserialize, Debug, Default)]
#[serde(deny_unknown_fields)]
struct SimCfg {
    link_gbps: Option<f64>,
    server_link_gbps: Option<f64>,
    queue_pkts: Option<u32>,
    ecn_k_pkts: Option<u32>,
    flowlet_gap_us: Option<u64>,
    newreno: Option<bool>,
}

impl SimCfg {
    fn to_config(&self) -> SimConfig {
        let mut c = SimConfig::default();
        if let Some(v) = self.link_gbps {
            c.link_gbps = v;
        }
        if let Some(v) = self.server_link_gbps {
            c.server_link_gbps = v;
        }
        if let Some(v) = self.queue_pkts {
            c.queue_pkts = v;
        }
        if let Some(v) = self.ecn_k_pkts {
            c.ecn_k_pkts = v;
        }
        if let Some(v) = self.flowlet_gap_us {
            c.flowlet_gap_ns = v * US;
        }
        if self.newreno == Some(true) {
            c = c.with_newreno();
        }
        c
    }
}

const EXAMPLE: &str = r#"{
  "topology": { "kind": "xpander", "net_degree": 5, "switches": 54, "servers_per_switch": 3 },
  "routing": { "kind": "hyb", "q_bytes": 100000 },
  "workload": {
    "pattern": { "kind": "skew", "theta": 0.04, "phi": 0.77 },
    "sizes": { "kind": "pfabric_web_search" }
  },
  "lambda": 10000.0,
  "window_ms": [50, 150],
  "seed": 1,
  "sim": { "ecn_k_pkts": 20, "flowlet_gap_us": 50 }
}"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--print-example") {
        println!("{EXAMPLE}");
        return;
    }
    let json_out = args.iter().any(|a| a == "--json");
    // First positional argument, skipping flag values (--dot takes one).
    let mut path: Option<&String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dot" => i += 1, // skip its value
            a if !a.starts_with("--") && path.is_none() => path = Some(&args[i]),
            _ => {}
        }
        i += 1;
    }
    let path =
        path.expect("usage: dcnsim <config.json> [--json] [--dot out.dot] | dcnsim --print-example");
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let cfg: Config = serde_json::from_str(&body).unwrap_or_else(|e| panic!("parse {path}: {e}"));

    let topo = cfg.topology.build(cfg.seed);
    eprintln!(
        "topology: {} ({} switches, {} servers)",
        topo.name(),
        topo.num_nodes(),
        topo.num_servers()
    );
    if let Some(i) = args.iter().position(|a| a == "--dot") {
        let out = args.get(i + 1).expect("--dot takes a file path");
        std::fs::write(out, beyond_fattrees::topology::export::to_dot(&topo))
            .unwrap_or_else(|e| panic!("write {out}: {e}"));
        eprintln!("wrote {out}");
    }

    let racks = topo.tors_with_servers();
    let pattern: Box<dyn TrafficPattern> = match cfg.workload.pattern {
        PatternCfg::AllToAll { fraction } => Box::new(AllToAll::new(
            &topo,
            active_fraction(&racks, fraction, true, cfg.seed),
        )),
        PatternCfg::Permute { fraction } => Box::new(Permutation::new(
            &topo,
            active_fraction(&racks, fraction, true, cfg.seed),
            cfg.seed,
        )),
        PatternCfg::Skew { theta, phi } => {
            Box::new(Skew::new(&topo, racks.clone(), theta, phi, cfg.seed))
        }
        PatternCfg::ProjectorTrace => {
            Box::new(PairSkew::projector_trace(&topo, racks.clone(), cfg.seed))
        }
    };
    let sizes: Box<dyn FlowSizeDist> = match cfg.workload.sizes {
        SizeCfg::PfabricWebSearch => Box::new(PFabricWebSearch::new()),
        SizeCfg::ParetoHull => Box::new(ParetoHull::new()),
        SizeCfg::Fixed { bytes } => Box::new(FixedSize(bytes)),
    };

    let window = (cfg.window_ms.0 * MS, cfg.window_ms.1 * MS);
    let horizon_s = window.1 as f64 / 1e9 * 1.3;
    let flows = generate_flows(pattern.as_ref(), sizes.as_ref(), cfg.lambda, horizon_s, cfg.seed);
    eprintln!("workload: {} flows at λ = {}", flows.len(), cfg.lambda);

    let (m, counters) = run_fct_experiment(
        &topo,
        cfg.routing.to_routing(),
        cfg.sim.to_config(),
        &flows,
        window,
        window.1.saturating_mul(40),
    );

    if json_out {
        let report = serde_json::json!({
            "topology": topo.name(),
            "switches": topo.num_nodes(),
            "servers": topo.num_servers(),
            "flows_measured": m.flows,
            "completed": m.completed,
            "avg_fct_ms": m.avg_fct_ms,
            "p99_short_fct_ms": m.p99_short_fct_ms,
            "avg_long_tput_gbps": m.avg_long_tput_gbps,
            "drops": counters.drops,
            "ecn_marks": counters.ecn_marks,
            "events": counters.events,
        });
        println!("{}", serde_json::to_string_pretty(&report).unwrap());
    } else {
        println!("flows measured      {}", m.flows);
        println!("completed           {}", m.completed);
        println!("avg FCT             {:.3} ms", m.avg_fct_ms);
        println!("p99 short-flow FCT  {:.3} ms", m.p99_short_fct_ms);
        println!("long-flow goodput   {:.2} Gbps", m.avg_long_tput_gbps);
        println!("drops / ECN marks   {} / {}", counters.drops, counters.ecn_marks);
    }
}
