//! `dcnrun` — a crash-safe supervisor for simulation runs.
//!
//! `dcnsim` runs one experiment in one process: a crash, OOM kill, or
//! live-lock loses everything. `dcnrun` splits the work across a
//! supervisor and per-job worker processes so long batches survive all
//! three:
//!
//! ```text
//! dcnrun run  experiment.json                  # one supervised job
//! dcnrun batch a.json b.json c.json --out-dir runs
//! dcnrun chaos --plans 20 --seed 1             # fuzz fault plans
//! ```
//!
//! Each worker periodically checkpoints full simulator state (see
//! `dcn_sim::checkpoint`) into `<out-dir>/<job>.ckpt`. If the worker dies,
//! the supervisor relaunches it with exponential backoff and the worker
//! resumes from the last good checkpoint — results are byte-identical to
//! an uninterrupted run. A *hung* worker is killed by the wall-clock
//! watchdog (`--timeout-s`). Whatever happens, the supervisor writes a
//! `<job>.report.json` (attempts, outcome, salvaged-checkpoint info) and
//! workers write `<job>.result.json` — both atomically (temporary +
//! rename), so no crash leaves a truncated file.
//!
//! A batch stops at the first failed job by default; `--keep-going` runs
//! every job regardless and reports the failures at the end. Either way
//! `batch` writes a `<out-dir>/batch.summary.json` (per-job status,
//! ok/failed/skipped counts) and exits nonzero iff any job failed.
//!
//! Exit codes (worst across a batch): 0 ok, 1 invalid config, 2 worker
//! crash, 3 watchdog timeout, 4 corrupt/unloadable checkpoint.
//!
//! `dcnrun chaos` fuzzes the fault layer in-process: seeded adversarial
//! fault plans (`FaultPlan::chaos`) run against every transport, asserting
//! packet conservation by drop cause, a monotone event clock, bounded
//! event counts (no deadlock/livelock), and `completed + failed == flows`
//! for every plan.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::Command;
use std::time::Duration;

use beyond_fattrees::jobs::{self, CrashHooks};
use beyond_fattrees::metrics::Registry;
use beyond_fattrees::prelude::*;
use dcn_bench::supervise::{
    self, Attempt, EXIT_CKPT_CORRUPT, EXIT_CONFIG, EXIT_CRASH, EXIT_OK, EXIT_TIMEOUT,
};
use dcn_core::write_atomic;
use dcn_json::Json;

const USAGE: &str = "usage: dcnrun run <config.json> [options]
       dcnrun batch <config.json>... [options]
       dcnrun chaos [--plans N] [--seed N] [--transport dctcp|newreno|pfabric|all]

options:
  --out-dir DIR             result/checkpoint/report directory (default: runs)
  --timeout-s N             wall-clock watchdog per attempt (default: none)
  --retries N               relaunch budget per job (default: 2)
  --backoff-ms N            base retry backoff, doubles per attempt with jitter (default: 200)
  --checkpoint-every-ms N   worker auto-checkpoint cadence; 0 = every chunk (default: 1000)
  --jobs N                  batch: parallel worker processes (default: all cores)
  --keep-going              batch: run every job even after failures (default: stop at first)
  --metrics PATH            write Prometheus-style supervision metrics here at exit";

fn fail(msg: &str) -> ! {
    eprintln!("dcnrun: error: {msg}");
    std::process::exit(EXIT_CONFIG)
}

/// `--flag <value>` anywhere in `args`.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| fail(&format!("{flag} takes a value")))
            .to_string()
    })
}

fn flag_u64(args: &[String], flag: &str) -> Option<u64> {
    flag_value(args, flag).map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail(&format!("{flag} takes an integer, got \"{v}\"")))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => supervisor(&args[1..], false),
        Some("batch") => supervisor(&args[1..], true),
        Some("chaos") => chaos(&args[1..]),
        Some("worker") => worker(&args[1..]),
        _ => fail(USAGE),
    };
    std::process::exit(code)
}

// ---------------------------------------------------------------- worker

/// Hidden subcommand: runs one experiment, checkpointing as it goes.
/// Resumes automatically if the checkpoint file exists (the supervisor
/// removes stale ones before the first attempt). The body lives in
/// `beyond_fattrees::jobs`, shared with the `dcnserve` daemon's workers.
fn worker(args: &[String]) -> i32 {
    let Some(cfg_path) = args.first().filter(|a| !a.starts_with("--")) else {
        fail("worker needs a config path");
    };
    let result_path = flag_value(args, "--result").unwrap_or_else(|| fail("worker needs --result"));
    let ckpt_path = flag_value(args, "--ckpt").unwrap_or_else(|| fail("worker needs --ckpt"));
    let every_ms = flag_u64(args, "--checkpoint-every-ms").unwrap_or(1000);
    let hooks = CrashHooks {
        die_after_checkpoints: flag_u64(args, "--die-after-checkpoints"),
        stall_after_checkpoints: flag_u64(args, "--stall-after-checkpoints"),
    };
    jobs::worker_main(
        "dcnrun",
        cfg_path,
        &result_path,
        &ckpt_path,
        every_ms,
        hooks,
    )
}

// ------------------------------------------------------------ supervisor

fn status_label(a: Attempt) -> &'static str {
    if a.degraded() {
        // Correct result, but the worker ran without durable
        // checkpointing (e.g. the checkpoint disk filled mid-run).
        return "ok_degraded";
    }
    match a.exit_code() {
        EXIT_OK => "ok",
        EXIT_CONFIG => "config_error",
        EXIT_TIMEOUT => "timeout",
        EXIT_CKPT_CORRUPT => "checkpoint_corrupt",
        _ => "crash",
    }
}

fn supervisor(args: &[String], batch: bool) -> i32 {
    let configs: Vec<&String> = {
        let mut out = Vec::new();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--out-dir"
                | "--timeout-s"
                | "--retries"
                | "--backoff-ms"
                | "--checkpoint-every-ms"
                | "--jobs"
                | "--metrics"
                | "--die-after-checkpoints"
                | "--stall-after-checkpoints" => i += 1,
                "--keep-going" => {}
                a if !a.starts_with("--") => out.push(&args[i]),
                other => fail(&format!("unknown option {other}\n{USAGE}")),
            }
            i += 1;
        }
        out
    };
    if configs.is_empty() {
        fail(USAGE);
    }
    let keep_going = args.iter().any(|a| a == "--keep-going");
    let out_dir = flag_value(args, "--out-dir").unwrap_or_else(|| "runs".to_string());
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| fail(&format!("create {out_dir}: {e}")));
    let timeout = flag_u64(args, "--timeout-s").map(Duration::from_secs);
    let retries = flag_u64(args, "--retries").unwrap_or(2) as u32;
    let backoff = Duration::from_millis(flag_u64(args, "--backoff-ms").unwrap_or(200));
    let every_ms = flag_u64(args, "--checkpoint-every-ms").unwrap_or(1000);
    let die_after = flag_u64(args, "--die-after-checkpoints");
    let stall_after = flag_u64(args, "--stall-after-checkpoints");
    let slots = match flag_u64(args, "--jobs") {
        Some(0) => fail("--jobs must be at least 1"),
        Some(n) => n as usize,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    let exe = std::env::current_exe().unwrap_or_else(|e| fail(&format!("current_exe: {e}")));

    // One supervised job: clean stale artifacts, retry the worker to a
    // final outcome, write its report. Runs on a scheduler thread; every
    // artifact path is job-unique, so jobs never contend on files.
    let run_one = |idx: usize| {
        let cfg_path = configs[idx];
        let stem = std::path::Path::new(cfg_path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "job".to_string());
        let result = format!("{out_dir}/{stem}.result.json");
        let ckpt = format!("{out_dir}/{stem}.ckpt");
        let report_path = format!("{out_dir}/{stem}.report.json");
        // A fresh supervision run starts clean: stale checkpoints or
        // results from an earlier batch must not leak into this one.
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(&result);

        let outcome = supervise::retry(
            |attempt| {
                let mut c = Command::new(&exe);
                c.arg("worker")
                    .arg(cfg_path)
                    .arg("--result")
                    .arg(&result)
                    .arg("--ckpt")
                    .arg(&ckpt)
                    .arg("--checkpoint-every-ms")
                    .arg(every_ms.to_string());
                if attempt == 0 {
                    // Failure-injection hooks fire on the first attempt
                    // only, so the relaunch path is what gets tested.
                    if let Some(n) = die_after {
                        c.arg("--die-after-checkpoints").arg(n.to_string());
                    }
                    if let Some(n) = stall_after {
                        c.arg("--stall-after-checkpoints").arg(n.to_string());
                    }
                }
                c
            },
            timeout,
            retries,
            // Per-job jitter stream: parallel jobs whose workers die
            // together de-phase their retries instead of re-colliding.
            supervise::RetryPolicy::new(backoff).with_seed(idx as u64),
        );
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => fail(&format!("spawn worker for {cfg_path}: {e}")),
        };

        let mut fields = vec![
            ("job", Json::from(stem.as_str())),
            ("config", Json::from(cfg_path.as_str())),
            ("status", Json::from(status_label(outcome.last))),
            ("exit_code", Json::from(outcome.exit_code() as u64)),
            ("attempts", Json::from(outcome.attempts as u64)),
            ("wall_ms", Json::from(outcome.wall.as_millis() as u64)),
        ];
        if outcome.exit_code() == EXIT_OK {
            fields.push(("result", Json::from(result.as_str())));
        } else {
            // Partial-result salvage: report how far the last good
            // checkpoint got, so the work is resumable/attributable.
            let salvage = match Checkpoint::load(&ckpt) {
                Ok(c) => {
                    let meta = c.meta();
                    Json::obj(vec![
                        ("checkpoint", Json::from(ckpt.as_str())),
                        ("t_ns", Json::from(meta.now)),
                        ("events", Json::from(meta.events_processed)),
                    ])
                }
                Err(e) => Json::from(format!("no usable checkpoint: {e}").as_str()),
            };
            fields.push(("salvage", salvage));
        }
        let mut body = Json::obj(fields).pretty();
        body.push('\n');
        write_atomic(&report_path, body.as_bytes())
            .unwrap_or_else(|e| fail(&format!("write report {report_path}: {e}")));
        eprintln!(
            "dcnrun: {stem}: {} (attempts {}, {:.1}s) -> {report_path}",
            status_label(outcome.last),
            outcome.attempts,
            outcome.wall.as_secs_f64()
        );
        let keep_dispatching = outcome.exit_code() == EXIT_OK || keep_going;
        ((stem, outcome), keep_dispatching)
    };

    // Work-stealing dispatch across `--jobs` supervisor slots (a single
    // slot for `dcnrun run`): idle slots claim the next config, a failure
    // without --keep-going stops dispatch, and the summary below is
    // always emitted in job order regardless of completion order.
    let (finished, skipped_idx) =
        supervise::run_queue(configs.len(), if batch { slots } else { 1 }, run_one);

    let mut worst = EXIT_OK;
    let mut per_job: Vec<Json> = Vec::new();
    let mut counts = (0u64, 0u64); // (ok, failed)
    for (i, (stem, outcome)) in &finished {
        worst = worst.max(outcome.exit_code());
        per_job.push(Json::obj(vec![
            ("job", Json::from(stem.as_str())),
            ("config", Json::from(configs[*i].as_str())),
            ("status", Json::from(status_label(outcome.last))),
            ("exit_code", Json::from(outcome.exit_code() as u64)),
            ("attempts", Json::from(outcome.attempts as u64)),
        ]));
        if outcome.exit_code() == EXIT_OK {
            counts.0 += 1;
        } else {
            counts.1 += 1;
        }
    }

    // Operational metrics for the whole supervision run, in the same
    // Prometheus text format `dcnserve metrics` exposes — one registry,
    // one render, one atomic write.
    if let Some(path) = flag_value(args, "--metrics") {
        let reg = Registry::new();
        let jobs_total = reg.counter("dcnrun_jobs_total", "Jobs dispatched or skipped.");
        let jobs_ok = reg.counter("dcnrun_jobs_ok_total", "Jobs that finished with exit 0.");
        let jobs_degraded = reg.counter(
            "dcnrun_jobs_degraded_total",
            "Jobs that finished correctly but without durable checkpointing.",
        );
        let jobs_failed = reg.counter("dcnrun_jobs_failed_total", "Jobs that exhausted retries.");
        let jobs_skipped = reg.counter(
            "dcnrun_jobs_skipped_total",
            "Jobs never launched after a fail-fast abort.",
        );
        let attempts = reg.counter(
            "dcnrun_worker_attempts_total",
            "Worker launches, including relaunches.",
        );
        let relaunches = reg.counter(
            "dcnrun_worker_relaunches_total",
            "Worker launches beyond each job's first attempt.",
        );
        let worst_gauge = reg.gauge("dcnrun_worst_exit_code", "Worst exit code across the run.");
        let wall = reg.histogram("dcnrun_job_wall_ms", "Per-job supervised wall time, ms.");
        jobs_total.add(configs.len() as u64);
        jobs_ok.add(counts.0);
        jobs_failed.add(counts.1);
        jobs_skipped.add(skipped_idx.len() as u64);
        for (_i, (_stem, outcome)) in &finished {
            attempts.add(outcome.attempts as u64);
            relaunches.add(outcome.attempts.saturating_sub(1) as u64);
            wall.observe(outcome.wall.as_millis() as u64);
            if outcome.last.degraded() {
                jobs_degraded.inc();
            }
        }
        worst_gauge.set(worst as u64);
        write_atomic(&path, reg.render_text().as_bytes())
            .unwrap_or_else(|e| fail(&format!("write metrics {path}: {e}")));
    }

    // The per-batch summary: every job's fate in one artifact, including
    // the ones a fail-fast abort never launched.
    if batch {
        let skipped: Vec<&String> = skipped_idx.iter().map(|&i| configs[i]).collect();
        for cfg_path in &skipped {
            let stem = std::path::Path::new(cfg_path.as_str())
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "job".to_string());
            per_job.push(Json::obj(vec![
                ("job", Json::from(stem.as_str())),
                ("config", Json::from(cfg_path.as_str())),
                ("status", Json::from("skipped")),
            ]));
        }
        if !skipped.is_empty() {
            eprintln!(
                "dcnrun: batch aborted after first failure; {} job(s) skipped \
                 (use --keep-going to run them all)",
                skipped.len()
            );
        }
        let summary = Json::obj(vec![
            ("jobs", Json::from(configs.len() as u64)),
            ("ok", Json::from(counts.0)),
            ("failed", Json::from(counts.1)),
            ("skipped", Json::from(skipped.len() as u64)),
            ("keep_going", Json::from(keep_going)),
            ("worst_exit", Json::from(worst as u64)),
            ("per_job", Json::Arr(per_job)),
        ]);
        let mut body = summary.pretty();
        body.push('\n');
        let summary_path = format!("{out_dir}/batch.summary.json");
        write_atomic(&summary_path, body.as_bytes())
            .unwrap_or_else(|e| fail(&format!("write summary {summary_path}: {e}")));
        eprintln!(
            "dcnrun: batch: {} ok, {} failed, {} skipped -> {summary_path}",
            counts.0,
            counts.1,
            skipped.len()
        );
    }
    worst
}

// ----------------------------------------------------------------- chaos

/// One chaos case: a seeded adversarial fault plan driven to completion
/// under one transport, with every run-level invariant checked. Returns
/// the violations found (empty = clean).
fn chaos_case(topo: &Topology, plan: &FaultPlan, cfg: SimConfig, seed: u64) -> Vec<String> {
    let window = (0, 4 * MS);
    let max_time = 40 * MS;
    let run = catch_unwind(AssertUnwindSafe(|| {
        let pattern = AllToAll::new(topo, topo.tors_with_servers());
        let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 400.0, 0.0052, seed);
        let mut sim = Simulator::new(topo, Routing::Ecmp.selector(topo), cfg);
        sim.set_window(window.0, window.1);
        sim.inject(&flows);
        sim.set_fault_plan(plan);
        sim.set_tracer(Box::new(CountingTracer::new()));
        let records = sim.run(max_time);
        let conservation = check_conservation(&sim).map(|_| ());
        let regressions = sim.trace_time_regressions().unwrap_or(0);
        let m = compute_metrics(&records, window.0, window.1);
        (conservation, regressions, m.flows, m.completed, m.failed)
    }));
    let mut violations = Vec::new();
    match run {
        Err(_) => violations.push("simulator panicked (deadlock watchdog or invariant)".into()),
        Ok((conservation, regressions, flows, completed, failed)) => {
            if let Err(e) = conservation {
                violations.push(format!("conservation: {e}"));
            }
            if regressions > 0 {
                violations.push(format!("monotone clock: {regressions} regressions"));
            }
            if completed + failed != flows {
                violations.push(format!(
                    "accounting: completed {completed} + failed {failed} != flows {flows}"
                ));
            }
        }
    }
    violations
}

fn chaos(args: &[String]) -> i32 {
    let plans = flag_u64(args, "--plans").unwrap_or(20);
    let seed0 = flag_u64(args, "--seed").unwrap_or(1);
    let which = flag_value(args, "--transport").unwrap_or_else(|| "all".to_string());
    let transports: Vec<(&str, SimConfig)> = match which.as_str() {
        "dctcp" => vec![("dctcp", SimConfig::default())],
        "newreno" => vec![("newreno", SimConfig::default().with_newreno())],
        "pfabric" => vec![("pfabric", SimConfig::default().with_pfabric())],
        "all" => vec![
            ("dctcp", SimConfig::default()),
            ("newreno", SimConfig::default().with_newreno()),
            ("pfabric", SimConfig::default().with_pfabric()),
        ],
        other => fail(&format!("unknown transport \"{other}\"")),
    };

    let topo = FatTree::full(4).build();
    let max_time = 40 * MS;
    let mut bad = 0u64;
    let mut cases = 0u64;
    for p in 0..plans {
        let seed = seed0.wrapping_add(p);
        let plan = FaultPlan::chaos(&topo, 4 * MS, seed);
        if let Err(e) = plan.validate_schedule(&topo, max_time) {
            eprintln!("dcnrun: chaos seed {seed}: generated plan invalid: {e}");
            bad += 1;
            continue;
        }
        for (name, base) in &transports {
            cases += 1;
            let mut cfg = *base;
            // Runaway watchdog: an adversarial schedule must never make a
            // small run process unbounded events (livelock).
            cfg.max_events = 50_000_000;
            for v in chaos_case(&topo, &plan, cfg, seed) {
                eprintln!("dcnrun: chaos seed {seed} transport {name}: VIOLATION: {v}");
                bad += 1;
            }
        }
    }
    println!(
        "chaos: {plans} plans x {} transports = {cases} runs, {bad} violations",
        transports.len()
    );
    if bad == 0 {
        EXIT_OK
    } else {
        EXIT_CRASH
    }
}
