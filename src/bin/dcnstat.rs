//! `dcnstat` — post-process the simulator's observability artifacts into
//! inspectable tables:
//!
//! ```text
//! dcnstat queues <telemetry.jsonl> [--ch N]   queue timeline TSV
//! dcnstat util   <telemetry.jsonl>            per-channel utilization TSV
//! dcnstat hist   <trace.jsonl>                FCT / queue-delay / flowlet-gap histograms
//! dcnstat diff   <a/manifest.json> <b/manifest.json>   field-by-field manifest compare
//! dcnstat bench  <BENCH_sim.json> [<other.json>]       perf baseline table / diff
//! dcnstat shards <manifest.json>              per-shard engine counter breakdown
//! dcnstat top    (--tcp ADDR | --unix PATH)   live dcnserve stats, refreshing
//! ```
//!
//! `queues` and `util` read the time-series JSONL a telemetry-enabled run
//! emits (`dcnsim --telemetry ts.jsonl`); `hist` grinds a raw event trace
//! (`--trace`) into streaming-histogram summaries; `diff` compares two run
//! manifests, skipping wall-clock and output-path fields, and exits
//! non-zero when any simulated field drifts — two same-seed runs must
//! report "zero drift".
//!
//! `bench` reads the engine-perf baselines `bench perf --bless` writes:
//! with one file it prints the per-case rate table; with two it prints a
//! speedup table (old → new), highlights cases whose rate regressed below
//! the CI floor, and reports any simulated-field drift — so a perf
//! trajectory of committed baselines stays readable across re-anchors.
//!
//! `shards` renders a manifest's `engine` counter block as a per-shard
//! balance table (events share, cross-shard traffic, calendar/arena
//! high-water, and — when the run enabled wall counters — drain time),
//! the fastest way to see why adding threads didn't help. `top` polls a
//! running `dcnserve`'s `stats` op and redraws a compact operational
//! table every `--interval-ms` (default 1000), `--count N` times
//! (default: until interrupted).

use std::collections::HashMap;
use std::io::{self, IsTerminal, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use beyond_fattrees::prelude::*;
use beyond_fattrees::serve::protocol::{read_frame, write_frame};
use dcn_json::Json;

fn fail(msg: &str) -> ! {
    eprintln!("dcnstat: error: {msg}");
    std::process::exit(1)
}

const USAGE: &str = "usage: dcnstat queues <telemetry.jsonl> [--ch N] \
     | dcnstat util <telemetry.jsonl> | dcnstat hist <trace.jsonl> \
     | dcnstat diff <a/manifest.json> <b/manifest.json> \
     | dcnstat bench <BENCH_sim.json> [<other.json>] \
     | dcnstat shards <manifest.json> \
     | dcnstat top (--tcp ADDR | --unix PATH) [--interval-ms N] [--count N]";

/// Parses every JSONL line of `path`.
fn read_jsonl(path: &str) -> Vec<Json> {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    body.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| Json::parse(l).unwrap_or_else(|e| fail(&format!("{path}:{}: {e}", i + 1))))
        .collect()
}

fn get_u64(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(|x| x.as_u64())
        .unwrap_or_else(|| fail(&format!("missing integer field \"{key}\" in {v}")))
}

fn is_sample(v: &Json) -> bool {
    v.get("ev").and_then(|e| e.as_str()) == Some("sample")
}

/// Per-channel rows of a sample: `[id, qlen, qbytes, tx_bytes]`.
fn sample_channels(v: &Json) -> Vec<(u32, u64, u64, u64)> {
    let Some(arr) = v.get("ch").and_then(|c| c.as_array()) else {
        return Vec::new();
    };
    arr.iter()
        .map(|row| {
            let row = row
                .as_array()
                .filter(|r| r.len() == 4)
                .unwrap_or_else(|| fail(&format!("malformed ch row in {v}")));
            let f = |i: usize| {
                row[i]
                    .as_u64()
                    .unwrap_or_else(|| fail("non-integer ch row field"))
            };
            (f(0) as u32, f(1), f(2), f(3))
        })
        .collect()
}

/// `queues`: fabric-wide (or per-channel with `--ch N`) queue timeline.
fn cmd_queues(path: &str, ch: Option<u32>, out: &mut dyn Write) -> io::Result<()> {
    let samples: Vec<Json> = read_jsonl(path).into_iter().filter(is_sample).collect();
    if samples.is_empty() {
        fail(&format!("{path}: no telemetry samples"));
    }
    match ch {
        None => {
            writeln!(
                out,
                "t_ns\tqueued_pkts\tqueued_bytes\ttx_bytes\tflows_active\tinflight_bytes"
            )?;
            for s in &samples {
                writeln!(
                    out,
                    "{}\t{}\t{}\t{}\t{}\t{}",
                    get_u64(s, "t"),
                    get_u64(s, "queued_pkts"),
                    get_u64(s, "queued_bytes"),
                    get_u64(s, "tx_bytes"),
                    get_u64(s, "flows_active"),
                    get_u64(s, "inflight_bytes"),
                )?;
            }
        }
        Some(want) => {
            writeln!(out, "t_ns\tqueue_pkts\tqueue_bytes\ttx_bytes")?;
            for s in &samples {
                let row = sample_channels(s)
                    .into_iter()
                    .find(|&(id, ..)| id == want)
                    .map(|(_, qlen, qbytes, tx)| (qlen, qbytes, tx))
                    .unwrap_or((0, 0, 0)); // sparse: absent means idle
                writeln!(out, "{}\t{}\t{}\t{}", get_u64(s, "t"), row.0, row.1, row.2)?;
            }
        }
    }
    Ok(())
}

/// `util`: per-channel transmitted bytes and utilization over the sampled
/// span, highest total first.
fn cmd_util(path: &str, out: &mut dyn Write) -> io::Result<()> {
    let samples: Vec<Json> = read_jsonl(path).into_iter().filter(is_sample).collect();
    if samples.is_empty() {
        fail(&format!("{path}: no telemetry samples"));
    }
    let times: Vec<u64> = samples.iter().map(|s| get_u64(s, "t")).collect();
    // Interval length: the sampling cadence (smallest gap between
    // consecutive samples; boundaries may be skipped in idle stretches).
    let every = times
        .windows(2)
        .map(|w| w[1] - w[0])
        .filter(|&d| d > 0)
        .min()
        .unwrap_or(times[0].max(1));
    // A sample stamped at boundary `t` covers (t - every, t]; the first
    // boundary is `every`, so the last stamp is the full covered span.
    let span = (*times.last().unwrap()).max(1);
    let mut totals: HashMap<u32, (u64, u64)> = HashMap::new(); // ch -> (total, peak interval)
    for s in &samples {
        for (id, _, _, tx) in sample_channels(s) {
            let e = totals.entry(id).or_insert((0, 0));
            e.0 += tx;
            e.1 = e.1.max(tx);
        }
    }
    let mut rows: Vec<(u32, u64, u64)> = totals
        .into_iter()
        .map(|(id, (total, peak))| (id, total, peak))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    writeln!(out, "ch\ttx_bytes\tavg_gbps\tpeak_gbps")?;
    for (id, total, peak) in rows {
        writeln!(
            out,
            "{}\t{}\t{:.3}\t{:.3}",
            id,
            total,
            total as f64 * 8.0 / span as f64,
            peak as f64 * 8.0 / every as f64,
        )?;
    }
    Ok(())
}

/// `hist`: distribution summaries from a raw event trace — FCT
/// (`flow_finish`), queue delay (`enqueue`→`dequeue` pairing), and
/// flowlet gaps (consecutive `flowlet_switch` per flow).
fn cmd_hist(path: &str, out: &mut dyn Write) -> io::Result<()> {
    let events = read_jsonl(path);
    let mut fct = StreamingHistogram::new();
    let mut qdelay = StreamingHistogram::new();
    let mut gaps = StreamingHistogram::new();
    // (ch, flow, seq, is_ack) → enqueue time. StartTx packets bypass the
    // queue and emit no enqueue, so only queued packets pair up.
    let mut enq: HashMap<(u64, u64, u64, bool), u64> = HashMap::new();
    let mut last_flowlet: HashMap<u64, u64> = HashMap::new();
    for e in &events {
        let t = get_u64(e, "t");
        match e.get("ev").and_then(|v| v.as_str()).unwrap_or("") {
            "flow_finish" => fct.record(get_u64(e, "fct")),
            "enqueue" | "dequeue" => {
                let is_ack = e.get("ack").and_then(|a| a.as_bool()).unwrap_or(false);
                let key = (
                    get_u64(e, "ch"),
                    get_u64(e, "flow"),
                    get_u64(e, "seq"),
                    is_ack,
                );
                if e.get("ev").and_then(|v| v.as_str()) == Some("enqueue") {
                    enq.insert(key, t);
                } else if let Some(t0) = enq.remove(&key) {
                    qdelay.record(t - t0);
                }
            }
            "flowlet_switch" => {
                let flow = get_u64(e, "flow");
                if let Some(prev) = last_flowlet.insert(flow, t) {
                    gaps.record(t - prev);
                }
            }
            _ => {}
        }
    }
    writeln!(
        out,
        "dist\tcount\tmin_ns\tp50_ns\tp90_ns\tp99_ns\tmax_ns\tmean_ns"
    )?;
    for (name, h) in [
        ("fct", &fct),
        ("queue_delay", &qdelay),
        ("flowlet_gap", &gaps),
    ] {
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.1}",
            name,
            h.count(),
            h.min(),
            h.value_at_percentile(0.50),
            h.value_at_percentile(0.90),
            h.value_at_percentile(0.99),
            h.max(),
            h.mean(),
        )?;
    }
    Ok(())
}

/// Whether a manifest field describes how the run was *observed* rather
/// than what it *simulated*: wall-clock measurements, caller-chosen
/// output paths, and the telemetry side-channel block (present only when
/// sampling was enabled).
fn ignored_key(key: &str) -> bool {
    WALL_CLOCK_FIELDS.contains(&key) || key == "path" || key == "telemetry"
}

/// Recursive field-by-field compare; pushes one `path: a vs b` line per
/// drifted field.
fn diff_json(a: &Json, b: &Json, path: &str, out: &mut Vec<String>) {
    let sub = |k: &str| {
        if path.is_empty() {
            k.to_string()
        } else {
            format!("{path}.{k}")
        }
    };
    match (a, b) {
        (Json::Obj(fa), Json::Obj(fb)) => {
            for (k, va) in fa {
                if ignored_key(k) {
                    continue;
                }
                match fb.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => diff_json(va, vb, &sub(k), out),
                    None => out.push(format!("{}: {va} vs <absent>", sub(k))),
                }
            }
            for (k, vb) in fb {
                if !ignored_key(k) && !fa.iter().any(|(ka, _)| ka == k) {
                    out.push(format!("{}: <absent> vs {vb}", sub(k)));
                }
            }
        }
        (Json::Arr(aa), Json::Arr(ab)) if aa.len() == ab.len() => {
            for (i, (va, vb)) in aa.iter().zip(ab).enumerate() {
                diff_json(va, vb, &format!("{path}[{i}]"), out);
            }
        }
        _ => {
            if a != b {
                out.push(format!("{path}: {a} vs {b}"));
            }
        }
    }
}

/// `diff`: compare two run manifests; returns whether any field drifted.
fn cmd_diff(a_path: &str, b_path: &str, out: &mut dyn Write) -> io::Result<bool> {
    let read = |p: &str| {
        let body = std::fs::read_to_string(p).unwrap_or_else(|e| fail(&format!("read {p}: {e}")));
        Json::parse(&body).unwrap_or_else(|e| fail(&format!("parse {p}: {e}")))
    };
    let (a, b) = (read(a_path), read(b_path));
    let mut drift = Vec::new();
    diff_json(&a, &b, "", &mut drift);
    if drift.is_empty() {
        writeln!(
            out,
            "zero drift: {a_path} and {b_path} report identical simulated results"
        )?;
    } else {
        writeln!(out, "{} field(s) drifted:", drift.len())?;
        for d in &drift {
            writeln!(out, "  {d}")?;
        }
    }
    Ok(!drift.is_empty())
}

/// Parses a `BENCH_sim.json` document and returns its case rows.
fn read_bench(path: &str) -> Vec<Json> {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    let doc = Json::parse(&body).unwrap_or_else(|e| fail(&format!("parse {path}: {e}")));
    if doc.get("schema").and_then(|s| s.as_str()) != Some(dcn_bench::perf::PERF_SCHEMA) {
        fail(&format!(
            "{path}: not a {} document",
            dcn_bench::perf::PERF_SCHEMA
        ));
    }
    doc.get("cases")
        .and_then(|c| c.as_array())
        .unwrap_or_else(|| fail(&format!("{path}: missing cases array")))
        .to_vec()
}

/// `bench <file>`: per-case rate table of one perf baseline.
fn bench_report(cases: &[Json], out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "case\tevents\twall_ms\tevents_per_sec")?;
    for c in cases {
        writeln!(
            out,
            "{}\t{}\t{}\t{}",
            dcn_bench::perf::case_label(c),
            c.get("events").and_then(|v| v.as_u64()).unwrap_or(0),
            c.get("wall_ms").and_then(|v| v.as_u64()).unwrap_or(0),
            dcn_bench::perf::case_rate(c).unwrap_or(0.0) as u64,
        )?;
    }
    Ok(())
}

/// `bench <old> <new>`: speedup table plus simulated-field drift; returns
/// whether anything regressed (rate below the CI floor) or drifted.
fn bench_compare(old: &[Json], new: &[Json], out: &mut dyn Write) -> io::Result<bool> {
    let mut bad = false;
    writeln!(out, "case\told_ev_s\tnew_ev_s\tspeedup\tnote")?;
    for o in old {
        let label = dcn_bench::perf::case_label(o);
        let Some(n) = new.iter().find(|c| dcn_bench::perf::case_label(c) == label) else {
            bad = true;
            writeln!(out, "{label}\t-\t-\t-\tMISSING in new")?;
            continue;
        };
        let (or, nr) = (
            dcn_bench::perf::case_rate(o).unwrap_or(0.0),
            dcn_bench::perf::case_rate(n).unwrap_or(0.0),
        );
        let speedup = if or > 0.0 { nr / or } else { 0.0 };
        let mut drift = Vec::new();
        diff_json(o, n, &label, &mut drift);
        let note = if speedup < dcn_bench::perf::PERF_RATE_FLOOR {
            bad = true;
            "REGRESSED (below CI floor)"
        } else if !drift.is_empty() {
            bad = true;
            "simulated fields drifted"
        } else if speedup < 1.0 {
            "slower (within floor)"
        } else {
            "ok"
        };
        writeln!(out, "{label}\t{:.0}\t{:.0}\t{speedup:.2}x\t{note}", or, nr)?;
        for d in &drift {
            writeln!(out, "  {d}")?;
        }
    }
    for n in new {
        let label = dcn_bench::perf::case_label(n);
        if !old.iter().any(|c| dcn_bench::perf::case_label(c) == label) {
            writeln!(out, "{label}\t-\t-\t-\tnew case")?;
        }
    }
    Ok(bad)
}

// ---------------------------------------------------------------- shards

/// `shards <manifest.json>`: per-shard balance table from the manifest's
/// `engine` counter block. The deterministic columns render always; the
/// wall-clock drain column appears only when the run recorded it
/// (`SimConfig::wall_counters`), since all-zero timings would mislead.
fn cmd_shards(path: &str, out: &mut dyn Write) -> io::Result<()> {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    let doc = Json::parse(&body).unwrap_or_else(|e| fail(&format!("parse {path}: {e}")));
    let eng = doc
        .get("engine")
        .unwrap_or_else(|| fail(&format!("{path}: no engine counter block in manifest")));
    render_shards(eng, out)
}

fn render_shards(eng: &Json, out: &mut dyn Write) -> io::Result<()> {
    let u = |v: &Json, k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
    let events_total = u(eng, "events_total");
    writeln!(
        out,
        "epochs {}  events {}  cross_shard {}  merge_ties {}  imbalance {:.3}",
        u(eng, "epochs"),
        events_total,
        u(eng, "cross_shard_total"),
        u(eng, "merge_ties"),
        eng.get("imbalance").and_then(|v| v.as_f64()).unwrap_or(0.0),
    )?;
    let u64s = |v: Option<&Json>| -> Vec<u64> {
        v.and_then(|a| a.as_array())
            .map(|a| a.iter().map(|x| x.as_u64().unwrap_or(0)).collect())
            .unwrap_or_default()
    };
    let drain = u64s(eng.get("drain_ns"));
    let have_wall = drain.iter().any(|&v| v > 0);
    let shards = eng
        .get("shards")
        .and_then(|s| s.as_array())
        .unwrap_or_else(|| fail("engine block has no shards array"));
    write!(
        out,
        "shard\tevents\tshare\txshard_out\tcal_peak\tspills\tfallbacks\tarena_live\tarena_hwm"
    )?;
    writeln!(out, "{}", if have_wall { "\tdrain_ms" } else { "" })?;
    for (i, s) in shards.iter().enumerate() {
        let xshard: u64 = u64s(s.get("cross_shard")).iter().sum();
        let share = u(s, "events") as f64 / events_total.max(1) as f64;
        write!(
            out,
            "{i}\t{}\t{:.1}%\t{xshard}\t{}\t{}\t{}\t{}\t{}",
            u(s, "events"),
            share * 100.0,
            u(s, "calendar_peak"),
            u(s, "ladder_spills"),
            u(s, "scatter_fallbacks"),
            u(s, "arena_live"),
            u(s, "arena_high_water"),
        )?;
        if have_wall {
            let ms = drain.get(i).copied().unwrap_or(0) as f64 / 1e6;
            write!(out, "\t{ms:.2}")?;
        }
        writeln!(out)?;
    }
    if have_wall {
        writeln!(
            out,
            "barrier_wait_ms {:.2}  mailbox_flush_ms {:.2}",
            u(eng, "barrier_wait_ns") as f64 / 1e6,
            u(eng, "mailbox_flush_ns") as f64 / 1e6,
        )?;
    }
    Ok(())
}

// ------------------------------------------------------------------- top

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// `--flag <value>` anywhere in `args`.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| fail(&format!("{flag} takes a value")))
            .to_string()
    })
}

/// One `stats` round-trip on a fresh connection; returns the envelope.
/// I/O failures (refused connection, reset mid-frame) come back as `Err`
/// so `top` can ride out a daemon restart; a daemon that *answers* with
/// garbage or a non-ok status is still fatal — that is a bug, not churn.
fn poll_stats(args: &[String]) -> io::Result<Json> {
    let mut conn = if let Some(addr) = flag_value(args, "--tcp") {
        let s = TcpStream::connect(&addr)?;
        let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = s.set_write_timeout(Some(Duration::from_secs(10)));
        Conn::Tcp(s)
    } else if let Some(path) = flag_value(args, "--unix") {
        let s = UnixStream::connect(&path)?;
        let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = s.set_write_timeout(Some(Duration::from_secs(10)));
        Conn::Unix(s)
    } else {
        fail("top needs --tcp ADDR or --unix PATH")
    };
    write_frame(&mut conn, br#"{"op": "stats"}"#)?;
    let bytes = read_frame(&mut conn).map_err(|e| io::Error::other(e.to_string()))?;
    let env = Json::parse(&String::from_utf8_lossy(&bytes))
        .unwrap_or_else(|e| fail(&format!("parse stats response: {e}")));
    if env.get("status").and_then(|s| s.as_str()) != Some("ok") {
        fail(&format!("stats request failed: {env}"));
    }
    Ok(env)
}

/// One refresh of the `top` table from a stats envelope.
fn render_stats(stats: &Json, out: &mut dyn Write) -> io::Result<()> {
    let n = |k: &str| stats.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    let version = stats
        .get("version")
        .and_then(|v| v.get("crate"))
        .and_then(|v| v.as_str())
        .unwrap_or("?");
    let errors = n("errors_config")
        + n("errors_unknown_op")
        + n("errors_crash")
        + n("errors_ckpt_corrupt")
        + n("errors_internal");
    writeln!(
        out,
        "dcnserve {version}  up {:.1}s  conns {}  workers {} running / {} queued",
        n("uptime_ms") as f64 / 1e3,
        n("conns"),
        n("workers_running"),
        n("workers_queued"),
    )?;
    writeln!(
        out,
        "requests {}: ok {}  cached {}  coalesced {}  shed {}  deadline {}  errors {}",
        n("requests"),
        n("run_ok"),
        n("served_cached"),
        n("coalesced"),
        n("overloaded"),
        n("deadline_exceeded"),
        errors,
    )?;
    writeln!(
        out,
        "cache: {} entries  {} bytes  hits {}  misses {}  stores {}  quarantined {}",
        n("cache_entries"),
        n("cache_bytes"),
        n("cache_hits"),
        n("cache_misses"),
        n("cache_stores"),
        n("cache_quarantined"),
    )?;
    writeln!(
        out,
        "relaunches {}  protocol_errors {}  disconnects {}  draining_refused {}",
        n("worker_relaunches"),
        n("protocol_errors"),
        n("disconnects"),
        n("draining_refused"),
    )?;
    Ok(())
}

/// `top`: poll a running dcnserve and redraw the table until `--count`
/// refreshes have printed (0 = forever) or the pipe closes.
fn cmd_top(args: &[String], out: &mut dyn Write) -> io::Result<()> {
    let interval = Duration::from_millis(
        flag_value(args, "--interval-ms")
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| fail("--interval-ms takes an integer"))
            })
            .unwrap_or(1000),
    );
    let count: u64 = flag_value(args, "--count")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--count takes an integer"))
        })
        .unwrap_or(0);
    let tty = io::stdout().is_terminal();
    let mut shown = 0u64;
    // Bounded reconnect: a daemon restart (refused/reset for a few polls)
    // should not kill a dashboard, but a daemon that stays down is an
    // error, not something to spin on forever.
    const MAX_CONSECUTIVE_FAILURES: u32 = 5;
    let mut failures = 0u32;
    loop {
        match poll_stats(args) {
            Ok(stats) => {
                failures = 0;
                if tty {
                    // Home + clear: redraw in place on a live terminal;
                    // plain appended blocks when piped (logs, CI).
                    write!(out, "\x1b[H\x1b[2J")?;
                }
                render_stats(&stats, out)?;
                out.flush()?;
                shown += 1;
                if count != 0 && shown >= count {
                    return Ok(());
                }
            }
            Err(e) => {
                failures += 1;
                if failures >= MAX_CONSECUTIVE_FAILURES {
                    fail(&format!(
                        "poll stats: {e} ({failures} consecutive failures, giving up)"
                    ));
                }
                eprintln!("dcnstat: poll stats: {e} (retry {failures}/{MAX_CONSECUTIVE_FAILURES})");
            }
        }
        std::thread::sleep(interval);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { fail(USAGE) };
    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    let mut drifted = false;
    let result = match cmd.as_str() {
        "queues" => {
            let path = args.get(1).unwrap_or_else(|| fail(USAGE));
            let ch = args.iter().position(|a| a == "--ch").map(|i| {
                args.get(i + 1)
                    .and_then(|v| v.parse::<u32>().ok())
                    .unwrap_or_else(|| fail("--ch takes a channel id"))
            });
            cmd_queues(path, ch, &mut out)
        }
        "util" => cmd_util(args.get(1).unwrap_or_else(|| fail(USAGE)), &mut out),
        "hist" => cmd_hist(args.get(1).unwrap_or_else(|| fail(USAGE)), &mut out),
        "diff" => {
            let a = args.get(1).unwrap_or_else(|| fail(USAGE));
            let b = args.get(2).unwrap_or_else(|| fail(USAGE));
            cmd_diff(a, b, &mut out).map(|d| drifted = d)
        }
        "bench" => {
            let a = read_bench(args.get(1).unwrap_or_else(|| fail(USAGE)));
            match args.get(2) {
                None => bench_report(&a, &mut out),
                Some(b) => bench_compare(&a, &read_bench(b), &mut out).map(|d| drifted = d),
            }
        }
        "shards" => cmd_shards(args.get(1).unwrap_or_else(|| fail(USAGE)), &mut out),
        "top" => cmd_top(&args[1..], &mut out),
        other => fail(&format!("unknown subcommand \"{other}\"\n{USAGE}")),
    };
    match result.and_then(|_| out.flush()) {
        // A closed pipe (e.g. `dcnstat queues ts.jsonl | head`) is a
        // normal way to consume TSV output, not an error.
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => fail(&format!("write output: {e}")),
        Ok(()) => {}
    }
    if drifted {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_identical_documents_is_empty() {
        let a = Json::parse(r#"{"seed": 1, "metrics": {"avg_fct_ms": 1.5}}"#).unwrap();
        let mut out = Vec::new();
        diff_json(&a, &a.clone(), "", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn diff_ignores_wall_clock_and_observability_fields() {
        let a = Json::parse(
            r#"{"seed": 1, "wall_ms": 12.5, "trace_path": "a.jsonl",
                "telemetry": {"samples": 9, "path": "a_ts.jsonl"}}"#,
        )
        .unwrap();
        // Run b measured different wall time and sampled no telemetry at
        // all — still the same simulation.
        let b = Json::parse(
            r#"{"seed": 1, "wall_ms": 99.0, "trace_path": "b.jsonl",
                "telemetry": null}"#,
        )
        .unwrap();
        let mut out = Vec::new();
        diff_json(&a, &b, "", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn diff_reports_nested_drift_with_dotted_path() {
        let a = Json::parse(r#"{"conservation": {"sent": 100, "delivered": 99}}"#).unwrap();
        let b = Json::parse(r#"{"conservation": {"sent": 100, "delivered": 98}}"#).unwrap();
        let mut out = Vec::new();
        diff_json(&a, &b, "", &mut out);
        assert_eq!(out, vec!["conservation.delivered: 99 vs 98"]);
    }

    #[test]
    fn diff_catches_missing_and_extra_keys() {
        let a = Json::parse(r#"{"seed": 1, "only_a": 2}"#).unwrap();
        let b = Json::parse(r#"{"seed": 1, "only_b": 3}"#).unwrap();
        let mut out = Vec::new();
        diff_json(&a, &b, "", &mut out);
        assert_eq!(out.len(), 2);
        assert!(
            out[0].contains("only_a") && out[1].contains("only_b"),
            "{out:?}"
        );
    }

    fn bench_case(transport: &str, events: u64, rate: u64) -> Json {
        Json::parse(&format!(
            r#"{{"topology": "fat_tree_k4", "transport": "{transport}",
                 "events": {events}, "wall_ms": 10, "events_per_sec_wall": {rate}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn bench_report_prints_one_row_per_case() {
        let cases = vec![
            bench_case("dctcp", 100, 1000),
            bench_case("pfabric", 50, 900),
        ];
        let mut out = Vec::new();
        bench_report(&cases, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(s.lines().count(), 3, "{s}");
        assert!(s.contains("fat_tree_k4/dctcp/t1\t100\t10\t1000"), "{s}");
    }

    #[test]
    fn bench_compare_reports_speedup_and_ignores_wall_fields() {
        let old = vec![bench_case("dctcp", 100, 1000)];
        let new = vec![bench_case("dctcp", 100, 3000)];
        let mut out = Vec::new();
        let bad = bench_compare(&old, &new, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(!bad, "{s}");
        assert!(s.contains("3.00x\tok"), "{s}");
    }

    #[test]
    fn bench_compare_flags_floor_regression_and_drift() {
        let old = vec![bench_case("dctcp", 100, 1000)];
        let mut out = Vec::new();
        assert!(
            bench_compare(&old, &[bench_case("dctcp", 100, 400)], &mut out).unwrap(),
            "rate below half the old baseline must regress"
        );
        let mut out = Vec::new();
        assert!(
            bench_compare(&old, &[bench_case("dctcp", 101, 1000)], &mut out).unwrap(),
            "simulated-field drift must be flagged"
        );
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("drifted"), "{s}");
    }

    #[test]
    fn sample_channel_rows_parse() {
        let s = Json::parse(r#"{"t": 100, "ev": "sample", "ch": [[3, 1, 1540, 3080]]}"#).unwrap();
        assert!(is_sample(&s));
        assert_eq!(sample_channels(&s), vec![(3, 1, 1540, 3080)]);
    }

    #[test]
    fn shards_table_renders_deterministic_columns() {
        let eng = Json::parse(
            r#"{"epochs": 4, "merge_ties": 1, "events_total": 100,
                "cross_shard_total": 30, "imbalance": 1.25,
                "shards": [
                  {"events": 60, "cross_shard": [0, 20], "calendar_peak": 5,
                   "ladder_spills": 0, "scatter_fallbacks": 0,
                   "arena_live": 0, "arena_high_water": 9},
                  {"events": 40, "cross_shard": [10, 0], "calendar_peak": 3,
                   "ladder_spills": 1, "scatter_fallbacks": 2,
                   "arena_live": 0, "arena_high_water": 7}],
                "drain_ns": [0, 0], "barrier_wait_ns": 0, "mailbox_flush_ns": 0}"#,
        )
        .unwrap();
        let mut out = Vec::new();
        render_shards(&eng, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("epochs 4"), "{s}");
        assert!(s.contains("0\t60\t60.0%\t20\t5\t0\t0\t0\t9"), "{s}");
        assert!(s.contains("1\t40\t40.0%\t10\t3\t1\t2\t0\t7"), "{s}");
        // All-zero wall counters: no misleading timing columns.
        assert!(!s.contains("drain_ms"), "{s}");
        assert!(!s.contains("barrier_wait_ms"), "{s}");
    }

    #[test]
    fn shards_table_adds_wall_columns_when_recorded() {
        let eng = Json::parse(
            r#"{"epochs": 1, "merge_ties": 0, "events_total": 10,
                "cross_shard_total": 0, "imbalance": 1.0,
                "shards": [{"events": 10, "cross_shard": [0], "calendar_peak": 1,
                            "ladder_spills": 0, "scatter_fallbacks": 0,
                            "arena_live": 0, "arena_high_water": 1}],
                "drain_ns": [2500000], "barrier_wait_ns": 1000000,
                "mailbox_flush_ns": 500000}"#,
        )
        .unwrap();
        let mut out = Vec::new();
        render_shards(&eng, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("drain_ms"), "{s}");
        assert!(s.contains("\t2.50"), "{s}");
        assert!(
            s.contains("barrier_wait_ms 1.00  mailbox_flush_ms 0.50"),
            "{s}"
        );
    }

    #[test]
    fn top_table_renders_stats_envelope() {
        let stats = Json::parse(
            r#"{"status": "ok", "version": {"crate": "0.1.0"}, "uptime_ms": 2500,
                "requests": 10, "run_ok": 7, "served_cached": 2, "coalesced": 1,
                "overloaded": 0, "deadline_exceeded": 0, "errors_config": 1,
                "errors_unknown_op": 1, "conns": 3, "workers_running": 2,
                "workers_queued": 1, "cache_entries": 4, "cache_bytes": 4096,
                "cache_hits": 2, "cache_misses": 8}"#,
        )
        .unwrap();
        let mut out = Vec::new();
        render_stats(&stats, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("dcnserve 0.1.0  up 2.5s"), "{s}");
        assert!(s.contains("workers 2 running / 1 queued"), "{s}");
        assert!(s.contains("requests 10: ok 7  cached 2"), "{s}");
        assert!(s.contains("errors 2"), "{s}");
        assert!(s.contains("cache: 4 entries  4096 bytes"), "{s}");
    }

    /// The diff satellite: two same-seed runs at different thread counts —
    /// with wall-clock counters enabled, so every nondeterministic leaf the
    /// engine can emit is present — must diff clean, because everything
    /// simulated (including the deterministic counter set) is
    /// thread-invariant and the wall leaves sit under `WALL_CLOCK_FIELDS`.
    #[test]
    fn same_seed_manifests_diff_clean_across_thread_counts() {
        let manifest_at = |threads: u32| {
            let topo = FatTree::full(4).build();
            let pattern = AllToAll::new(&topo, topo.tors_with_servers());
            let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 200.0, 0.01, 7);
            let spec = ManifestSpec::new("dcnstat-test", 7);
            let cfg = SimConfig::default()
                .with_threads(threads)
                .with_wall_counters();
            let (_, _, manifest) = run_fct_experiment_instrumented(
                &topo,
                Routing::Ecmp,
                cfg,
                &flows,
                (0, 2 * MS),
                40 * MS,
                None,
                None,
                None,
                Some(&spec),
            );
            manifest.unwrap().json().clone()
        };
        let (a, b) = (manifest_at(1), manifest_at(4));
        let mut drift = Vec::new();
        diff_json(&a, &b, "", &mut drift);
        assert!(drift.is_empty(), "thread-count drift: {drift:?}");
    }
}
