//! `dcnserve` — a crash-tolerant experiment service.
//!
//! The long-running front door to the simulation stack: clients submit
//! experiment configs (the same JSON `dcnsim`/`dcnrun` read) over a TCP
//! or unix socket, the daemon executes them in supervised, checkpointed
//! worker processes, and results land in a checksummed content-addressed
//! cache so repeated requests are served in microseconds — byte-identical
//! to a fresh computation.
//!
//! ```text
//! dcnserve serve --tcp 127.0.0.1:7440 --state-dir serve-state
//! dcnserve request experiment.json --tcp 127.0.0.1:7440   # result JSON on stdout
//! dcnserve ping --tcp 127.0.0.1:7440
//! dcnserve stats --tcp 127.0.0.1:7440
//! dcnserve metrics --tcp 127.0.0.1:7440   # Prometheus text on stdout
//! ```
//!
//! Robustness guarantees (see `beyond_fattrees::serve` for the details):
//! workers that crash or are SIGKILLed resume from their last checkpoint;
//! hung workers are killed by the deadline watchdog; overload answers
//! `overloaded` immediately instead of queueing unboundedly; corrupt
//! cache entries are quarantined and recomputed, never served; slow and
//! idle clients are timed out; SIGTERM drains gracefully.
//!
//! Exit codes extend `dcnrun`'s taxonomy: 0 ok (clean drain), 1 bad
//! config/CLI, 2 crash, 3 timeout, 4 corrupt checkpoint, 5 socket
//! bind/listen failure, 6 drain timeout.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use beyond_fattrees::jobs::{self, CrashHooks};
use beyond_fattrees::serve::protocol::{read_frame, write_frame, Request};
use beyond_fattrees::serve::server::{serve, ServeOptions};
use dcn_json::Json;

const USAGE: &str = "usage: dcnserve serve   [--tcp ADDR] [--unix PATH] [--state-dir DIR] [options]
       dcnserve request <config.json> (--tcp ADDR | --unix PATH) [--deadline-ms N] [--no-cache]
       dcnserve ping    (--tcp ADDR | --unix PATH)
       dcnserve stats   (--tcp ADDR | --unix PATH)
       dcnserve metrics (--tcp ADDR | --unix PATH)

serve options:
  --tcp ADDR                listen address, port 0 picks a free port (default: 127.0.0.1:7440)
  --unix PATH               also/instead listen on a unix socket
  --state-dir DIR           cache + job spool root (default: dcnserve-state)
  --addr-file PATH          write the bound address(es) here once listening
  --max-workers N           concurrent worker processes (default: #cores)
  --max-queue N             queued requests beyond the pool before shedding (default: 16)
  --deadline-ms N           default per-request deadline (default: 120000)
  --idle-timeout-ms N       reap idle connections (default: 30000)
  --write-timeout-ms N      slow-client write guard (default: 5000)
  --drain-timeout-ms N      SIGTERM drain budget (default: 30000)
  --checkpoint-every-ms N   worker checkpoint cadence, 0 = every chunk (default: 1000)
  --retries N               worker relaunch budget per request (default: 2)
  --backoff-ms N            base retry backoff, exponential with jitter (default: 200)
  --cache-max-bytes N       LRU bound on cache entry bytes, 0 = unbounded (default: 0)";

fn fail(msg: &str) -> ! {
    eprintln!("dcnserve: error: {msg}");
    std::process::exit(1)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| fail(&format!("{flag} takes a value")))
            .to_string()
    })
}

fn flag_u64(args: &[String], flag: &str) -> Option<u64> {
    flag_value(args, flag).map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail(&format!("{flag} takes an integer, got \"{v}\"")))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => serve_cmd(&args[1..]),
        Some("request") => client_cmd(&args[1..], ClientOp::Request),
        Some("ping") => client_cmd(&args[1..], ClientOp::Ping),
        Some("stats") => client_cmd(&args[1..], ClientOp::Stats),
        Some("metrics") => client_cmd(&args[1..], ClientOp::Metrics),
        Some("worker") => worker_cmd(&args[1..]),
        _ => fail(USAGE),
    };
    std::process::exit(code)
}

// ----------------------------------------------------------------- serve

fn serve_cmd(args: &[String]) -> i32 {
    let mut opts = ServeOptions {
        tcp: flag_value(args, "--tcp"),
        unix: flag_value(args, "--unix"),
        ..ServeOptions::default()
    };
    if opts.tcp.is_none() && opts.unix.is_none() {
        opts.tcp = Some("127.0.0.1:7440".to_string());
    }
    if let Some(d) = flag_value(args, "--state-dir") {
        opts.state_dir = d;
    }
    opts.addr_file = flag_value(args, "--addr-file");
    if let Some(n) = flag_u64(args, "--max-workers") {
        opts.max_workers = n.max(1) as usize;
    }
    if let Some(n) = flag_u64(args, "--max-queue") {
        opts.max_queue = n as usize;
    }
    if let Some(n) = flag_u64(args, "--deadline-ms") {
        opts.default_deadline_ms = n;
    }
    if let Some(n) = flag_u64(args, "--idle-timeout-ms") {
        opts.idle_timeout_ms = n;
    }
    if let Some(n) = flag_u64(args, "--write-timeout-ms") {
        opts.write_timeout_ms = n;
    }
    if let Some(n) = flag_u64(args, "--drain-timeout-ms") {
        opts.drain_timeout_ms = n;
    }
    if let Some(n) = flag_u64(args, "--checkpoint-every-ms") {
        opts.checkpoint_every_ms = n;
    }
    if let Some(n) = flag_u64(args, "--retries") {
        opts.retries = n as u32;
    }
    if let Some(n) = flag_u64(args, "--backoff-ms") {
        opts.backoff_ms = n;
    }
    if let Some(n) = flag_u64(args, "--cache-max-bytes") {
        opts.cache_max_bytes = (n > 0).then_some(n);
    }
    // Hidden chaos hook for the soak tests: every job's first worker
    // attempt SIGKILLs itself after one checkpoint.
    opts.inject_worker_crash = args.iter().any(|a| a == "--inject-worker-crash");
    serve(opts)
}

// ---------------------------------------------------------------- worker

/// Hidden subcommand: one supervised job, same CLI shape as `dcnrun
/// worker`, body shared via `beyond_fattrees::jobs`.
fn worker_cmd(args: &[String]) -> i32 {
    let Some(cfg_path) = args.first().filter(|a| !a.starts_with("--")) else {
        fail("worker needs a config path");
    };
    let result = flag_value(args, "--result").unwrap_or_else(|| fail("worker needs --result"));
    let ckpt = flag_value(args, "--ckpt").unwrap_or_else(|| fail("worker needs --ckpt"));
    let every_ms = flag_u64(args, "--checkpoint-every-ms").unwrap_or(1000);
    let hooks = CrashHooks {
        die_after_checkpoints: flag_u64(args, "--die-after-checkpoints"),
        stall_after_checkpoints: flag_u64(args, "--stall-after-checkpoints"),
    };
    jobs::worker_main("dcnserve", cfg_path, &result, &ckpt, every_ms, hooks)
}

// ---------------------------------------------------------------- client

enum ClientOp {
    Request,
    Ping,
    Stats,
    Metrics,
}

enum ClientConn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for ClientConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientConn::Tcp(s) => s.read(buf),
            ClientConn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientConn::Tcp(s) => s.write(buf),
            ClientConn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientConn::Tcp(s) => s.flush(),
            ClientConn::Unix(s) => s.flush(),
        }
    }
}

fn connect(args: &[String]) -> ClientConn {
    if let Some(addr) = flag_value(args, "--tcp") {
        let s = TcpStream::connect(&addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
        let _ = s.set_read_timeout(Some(Duration::from_secs(600)));
        let _ = s.set_write_timeout(Some(Duration::from_secs(30)));
        ClientConn::Tcp(s)
    } else if let Some(path) = flag_value(args, "--unix") {
        let s =
            UnixStream::connect(&path).unwrap_or_else(|e| fail(&format!("connect {path}: {e}")));
        let _ = s.set_read_timeout(Some(Duration::from_secs(600)));
        let _ = s.set_write_timeout(Some(Duration::from_secs(30)));
        ClientConn::Unix(s)
    } else {
        fail("need --tcp ADDR or --unix PATH")
    }
}

/// Sends one request, prints the result payload (for `request`) or the
/// envelope (for `ping`/`stats`) on stdout. Exit code 0 only for an `ok`
/// status.
fn client_cmd(args: &[String], op: ClientOp) -> i32 {
    let frame = match &op {
        ClientOp::Ping => br#"{"op": "ping"}"#.to_vec(),
        ClientOp::Stats => br#"{"op": "stats"}"#.to_vec(),
        ClientOp::Metrics => br#"{"op": "metrics"}"#.to_vec(),
        ClientOp::Request => {
            let Some(cfg_path) = args.first().filter(|a| !a.starts_with("--")) else {
                fail("request needs a config path");
            };
            let body = std::fs::read_to_string(cfg_path)
                .unwrap_or_else(|e| fail(&format!("read {cfg_path}: {e}")));
            let cfg =
                Json::parse(&body).unwrap_or_else(|e| fail(&format!("parse {cfg_path}: {e}")));
            Request::run_frame(
                cfg,
                flag_u64(args, "--deadline-ms"),
                args.iter().any(|a| a == "--no-cache"),
            )
        }
    };
    let mut conn = connect(args);
    write_frame(&mut conn, &frame).unwrap_or_else(|e| fail(&format!("send request: {e}")));
    let envelope_bytes =
        read_frame(&mut conn).unwrap_or_else(|e| fail(&format!("read response: {e}")));
    let envelope = String::from_utf8_lossy(&envelope_bytes).into_owned();
    let status = Json::parse(&envelope)
        .ok()
        .and_then(|v| v.get("status").and_then(|s| s.as_str().map(str::to_string)))
        .unwrap_or_else(|| "malformed".to_string());

    match op {
        ClientOp::Request if status == "ok" => {
            eprintln!("dcnserve: {}", envelope.replace('\n', " "));
            let payload =
                read_frame(&mut conn).unwrap_or_else(|e| fail(&format!("read result: {e}")));
            std::io::stdout()
                .write_all(&payload)
                .unwrap_or_else(|e| fail(&format!("stdout: {e}")));
            0
        }
        ClientOp::Request => {
            eprintln!("dcnserve: request failed:\n{envelope}");
            1
        }
        ClientOp::Metrics if status == "ok" => {
            // The exposition body follows the envelope as a plaintext
            // frame; print it verbatim for scrapers and humans alike.
            let text =
                read_frame(&mut conn).unwrap_or_else(|e| fail(&format!("read metrics: {e}")));
            std::io::stdout()
                .write_all(&text)
                .unwrap_or_else(|e| fail(&format!("stdout: {e}")));
            0
        }
        ClientOp::Metrics => {
            eprintln!("dcnserve: metrics failed:\n{envelope}");
            1
        }
        ClientOp::Ping | ClientOp::Stats => {
            println!("{envelope}");
            i32::from(status != "ok")
        }
    }
}
