//! # beyond-fattrees
//!
//! A from-scratch Rust reproduction of **"Beyond fat-trees without
//! antennae, mirrors, and disco-balls"** (Kassing, Valadarsky, Shahaf,
//! Schapira, Singla — SIGCOMM 2017): static expander-based data center
//! networks evaluated against abstract dynamic (reconfigurable) topologies
//! and full-bandwidth fat-trees, in both a fluid-flow throughput model and
//! a packet-level simulator with simple oblivious routing (ECMP / VLB /
//! the paper's HYB hybrid) over DCTCP.
//!
//! This crate is a facade re-exporting the workspace's libraries:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`topology`] | `dcn-topology` | fat-tree, Xpander, Jellyfish, SlimFly, Longhop, metrics |
//! | [`maxflow`] | `dcn-maxflow` | Garg–Könemann concurrent flow, Dinic, simplex LP, bounds |
//! | [`workloads`] | `dcn-workloads` | pFabric / Pareto-HULL sizes, A2A / Permute / Skew TMs |
//! | [`routing`] | `dcn-routing` | ECMP, VLB, HYB, k-shortest paths |
//! | [`sim`] | `dcn-sim` | packet-level DCTCP simulator |
//! | [`flowsim`] | `dcn-flowsim` | flow-level max-min fair simulator |
//! | [`core`] | `dcn-core` | TP metric, dynamic models, cost model, experiments |
//!
//! ## Quickstart
//!
//! ```
//! use beyond_fattrees::prelude::*;
//!
//! // The paper's §6.4 comparison at test scale: a full-bandwidth fat-tree
//! // vs an Xpander at ~2/3 the cost.
//! let pair = paper_networks(Scale::Tiny, 42);
//! let pattern = AllToAll::new(&pair.xpander, pair.xpander.tors_with_servers());
//! let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 500.0, 0.01, 7);
//! let (metrics, _) = run_fct_experiment(
//!     &pair.xpander, Routing::PAPER_HYB, SimConfig::default(),
//!     &flows, (0, 10_000_000), 10_000_000_000,
//! );
//! assert_eq!(metrics.completed, metrics.flows);
//! ```

pub mod config;
pub mod jobs;
pub mod metrics;
pub mod serve;

pub use dcn_core as core;
pub use dcn_flowsim as flowsim;
pub use dcn_maxflow as maxflow;
pub use dcn_routing as routing;
pub use dcn_sim as sim;
pub use dcn_topology as topology;
pub use dcn_workloads as workloads;

/// Everything needed for typical experiments, in one import.
pub mod prelude {
    pub use dcn_core::{
        default_window, delta_lowest, equal_cost_xpander, fat_tree_throughput, paper_networks,
        run_fct_experiment, run_fct_experiment_instrumented, run_fct_experiment_traced,
        run_fct_experiment_with_faults, tp_throughput, FlexCurve, ManifestSpec, NetworkPair,
        RestrictedDynamic, Routing, RunManifest, Scale, SimCounters, UnrestrictedDynamic,
        WALL_CLOCK_FIELDS,
    };
    pub use dcn_flowsim::{FlowSim, FlowSimConfig};
    pub use dcn_maxflow::{max_concurrent_flow, per_server_throughput, Commodity, GkOptions};
    pub use dcn_routing::{EcmpTable, PathSelector, RoutingSuite, Vlb, PAPER_Q_BYTES};
    pub use dcn_sim::{
        check_conservation, compute_metrics, compute_metrics_with_dists, config_fingerprint,
        ChannelCounters, Checkpoint, CheckpointMeta, Conservation, CountingTracer, DropCounters,
        EngineCounters, FaultEvent, FaultKind, FaultPlan, FctDistributions, FlowRecord,
        JsonlTracer, Metrics, NopTracer, QueueDiscKind, QueueDiscipline, Sample, ShardCounters,
        SharedBuf, SimConfig, Simulator, StreamingHistogram, Telemetry, TraceCounters, TraceEvent,
        Tracer, Transport, TransportKind, WallClockCounters, DEFAULT_SAMPLE_EVERY_NS, MS, SEC, US,
    };
    pub use dcn_topology::{
        fattree::FatTree, jellyfish::Jellyfish, longhop::Longhop, slimfly::SlimFly, toy::ToyFig4,
        xpander::Xpander, NodeId, NodeKind, Topology,
    };
    pub use dcn_workloads::{
        active_fraction, active_racks_for_servers, generate_flows, longest_matching, AllToAll,
        Endpoint, ExplicitServers, FixedSize, FlowEvent, FlowSizeDist, PFabricWebSearch, PairSkew,
        ParetoHull, Permutation, Skew, TrafficPattern,
    };
}
