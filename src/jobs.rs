//! The supervised-worker job runner shared by `dcnrun` and `dcnserve`.
//!
//! Both binaries execute experiments in disposable worker processes so a
//! crash, OOM kill, or live-lock loses at most one checkpoint interval.
//! This module is the worker's body: drive a materialized
//! [`Experiment`](crate::config::Experiment) in simulated-time chunks,
//! checkpoint full simulator state on a wall-clock cadence, resume
//! automatically from an existing checkpoint, and render the final result
//! as deterministic JSON bytes — a crashed-and-resumed job produces bytes
//! identical to an uninterrupted one, which is what lets `dcnserve` cache
//! results and serve them interchangeably with fresh computations.
//!
//! Failures carry the `dcn_bench::supervise` exit-code taxonomy so the
//! supervising parent (either binary) classifies them without parsing
//! stderr: config problems are final, crashes are retryable, corrupt
//! checkpoints break the resume chain and are final.

use std::process::Command;
use std::time::{Duration, Instant};

use crate::config::Experiment;
use crate::prelude::*;
use dcn_bench::supervise::{EXIT_CKPT_CORRUPT, EXIT_CONFIG, EXIT_CRASH, EXIT_OK_DEGRADED};

/// Failure-injection hooks threaded from hidden CLI flags; they make the
/// supervision paths testable against genuinely unclean deaths.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrashHooks {
    /// SIGKILL the process right after writing the Nth checkpoint.
    pub die_after_checkpoints: Option<u64>,
    /// Hang forever right after writing the Nth checkpoint.
    pub stall_after_checkpoints: Option<u64>,
}

/// Why a job could not produce result bytes, carrying the exit code the
/// worker process should die with.
#[derive(Debug)]
pub struct JobFailure {
    pub exit_code: i32,
    pub message: String,
}

impl JobFailure {
    fn config(message: String) -> Self {
        JobFailure {
            exit_code: EXIT_CONFIG,
            message,
        }
    }

    fn corrupt(message: String) -> Self {
        JobFailure {
            exit_code: EXIT_CKPT_CORRUPT,
            message,
        }
    }
}

/// Kills the current process without running destructors or exit
/// handlers — the crash-injection hook, so resume is exercised against a
/// genuinely unclean death.
fn die_uncleanly() -> ! {
    let pid = std::process::id().to_string();
    let _ = Command::new("kill").args(["-9", &pid]).status();
    std::process::abort() // no `kill` binary: SIGABRT is unclean enough
}

/// Builds a fresh (non-resumed) simulator for `exp`, with the config's
/// observability destinations attached.
fn fresh_simulator(exp: &Experiment) -> Result<Simulator, JobFailure> {
    let mut s = Simulator::new(&exp.topo, exp.routing.selector(&exp.topo), exp.sim);
    s.set_window(exp.window.0, exp.window.1);
    s.inject(&exp.flows);
    if let Some(plan) = &exp.faults {
        s.set_fault_plan(plan);
    }
    if let Some(p) = &exp.trace {
        match JsonlTracer::create(p) {
            Ok(t) => s.set_tracer(Box::new(t)),
            Err(e) => return Err(JobFailure::config(format!("open trace {p}: {e}"))),
        }
    }
    if let Some(p) = &exp.telemetry {
        match Telemetry::to_file(p, exp.telemetry_every_ns) {
            Ok(t) => s.set_telemetry(t),
            Err(e) => return Err(JobFailure::config(format!("open telemetry {p}: {e}"))),
        }
    }
    Ok(s)
}

/// A finished job: the result bytes plus whether durable persistence was
/// lost along the way (checkpoint writes failing — e.g. a full disk —
/// downgrade the run to compute-without-persist instead of killing it).
#[derive(Debug)]
pub struct JobResult {
    pub bytes: Vec<u8>,
    pub degraded: bool,
}

/// Runs `exp` to completion with periodic checkpoints and returns the
/// result JSON bytes. If `ckpt_path` already holds a checkpoint, the run
/// resumes from it (the supervisor removes stale ones before a fresh
/// job); `every_ms` is the wall-clock checkpoint cadence, 0 meaning every
/// simulated-time chunk (the deterministic test mode).
///
/// The result is derived from simulator state only, so a crashed-and-
/// resumed job returns byte-identical bytes to an uninterrupted one.
///
/// A checkpoint that cannot be *saved* (ENOSPC, injected fault) does not
/// fail the job: the run continues without crash protection and the
/// result is flagged [`JobResult::degraded`] — losing a safety net is
/// strictly better than losing the computation. A checkpoint that cannot
/// be *loaded* is still fatal (`EXIT_CKPT_CORRUPT`): resuming from bad
/// state could silently produce wrong bytes.
pub fn run_job(
    tool: &str,
    exp: &Experiment,
    ckpt_path: &str,
    every_ms: u64,
    hooks: CrashHooks,
) -> Result<JobResult, JobFailure> {
    // Route checkpoint persistence through the failpoint registry. The
    // hook is a OnceLock — repeated installs are no-ops — and costs one
    // disarmed atomic load per site when no faults are armed.
    dcn_sim::install_io_hook(dcn_core::failpoint::fail_io);
    let mut sim = if std::fs::metadata(ckpt_path).is_ok() {
        let ckpt = Checkpoint::load(ckpt_path)
            .map_err(|e| JobFailure::corrupt(format!("load checkpoint {ckpt_path}: {e}")))?;
        let s = Simulator::restore(&exp.topo, exp.routing.selector(&exp.topo), exp.sim, &ckpt)
            .map_err(|e| JobFailure::corrupt(format!("restore {ckpt_path}: {e}")))?;
        eprintln!(
            "{tool}: resumed from {ckpt_path} at t={} ns ({} events)",
            s.now(),
            s.events_processed()
        );
        s
    } else {
        fresh_simulator(exp)?
    };

    // Drive in simulated-time chunks; between chunks, checkpoint on the
    // wall-clock cadence (0 = every chunk, the deterministic test mode).
    let chunk = (exp.max_time / 200).max(1);
    let mut written = 0u64;
    let mut degraded = false;
    let mut last_ckpt = Instant::now();
    let mut done = false;
    // First chunk boundary strictly ahead of the clock (resume lands
    // exactly on one).
    let mut stop = (sim.now() / chunk + 1) * chunk;
    while stop < exp.max_time {
        done = sim.run_until(stop);
        stop += chunk;
        if done {
            break;
        }
        if !degraded && (every_ms == 0 || last_ckpt.elapsed() >= Duration::from_millis(every_ms)) {
            let ckpt = sim
                .checkpoint()
                .map_err(|e| JobFailure::config(format!("checkpoint: {e}")))?;
            match ckpt.save(ckpt_path) {
                Ok(()) => written += 1,
                Err(e) => {
                    // Persistence failed (full disk, injected fault):
                    // degrade to compute-without-persist. The result is
                    // still exact; only crash protection is lost. Any
                    // partial checkpoint on disk is removed so a later
                    // resume cannot read it — the `.tmp` never became
                    // `ckpt_path`, but a *stale complete* checkpoint from
                    // an earlier save would rewind a resumed run, which
                    // is correct but wasteful; keep it.
                    eprintln!(
                        "{tool}: warning: checkpoint save failed ({e}); \
                         continuing without crash protection"
                    );
                    degraded = true;
                }
            }
            last_ckpt = Instant::now();
            if hooks.die_after_checkpoints == Some(written) && written > 0 {
                die_uncleanly();
            }
            if hooks.stall_after_checkpoints == Some(written) && written > 0 {
                loop {
                    std::thread::sleep(Duration::from_secs(3600)); // hang forever
                }
            }
        }
    }
    if !done {
        sim.run_until(exp.max_time);
    }
    let records = sim.finish();
    let m = compute_metrics(&records, exp.window.0, exp.window.1);
    let drops = sim.drop_breakdown();

    let report = dcn_json::Json::obj(vec![
        ("seed", dcn_json::Json::from(exp.seed)),
        ("topology", dcn_json::Json::from(exp.topo.name())),
        ("flows_measured", dcn_json::Json::from(m.flows)),
        ("completed", dcn_json::Json::from(m.completed)),
        ("failed", dcn_json::Json::from(m.failed)),
        ("avg_fct_ms", dcn_json::Json::from(m.avg_fct_ms)),
        ("p99_short_fct_ms", dcn_json::Json::from(m.p99_short_fct_ms)),
        (
            "avg_long_tput_gbps",
            dcn_json::Json::from(m.avg_long_tput_gbps),
        ),
        (
            "congestion_drops",
            dcn_json::Json::from(drops.congestion + drops.eviction),
        ),
        (
            "fault_drops",
            dcn_json::Json::from(drops.fault + drops.noroute),
        ),
        ("ecn_marks", dcn_json::Json::from(sim.total_marks())),
        ("events", dcn_json::Json::from(sim.events_processed())),
    ]);
    let mut body = report.pretty();
    body.push('\n');
    Ok(JobResult {
        bytes: body.into_bytes(),
        degraded,
    })
}

/// The full hidden-`worker`-subcommand body shared by `dcnrun` and
/// `dcnserve`: load the config, run the job (resuming if a checkpoint
/// exists), write the result atomically, clean up the checkpoint, and
/// return the process exit code from the supervise taxonomy.
pub fn worker_main(
    tool: &str,
    cfg_path: &str,
    result_path: &str,
    ckpt_path: &str,
    every_ms: u64,
    hooks: CrashHooks,
) -> i32 {
    let exp = match crate::config::load_experiment(cfg_path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{tool}: error: {e}");
            return EXIT_CONFIG;
        }
    };
    let result = match run_job(tool, &exp, ckpt_path, every_ms, hooks) {
        Ok(r) => r,
        Err(f) => {
            eprintln!("{tool}: error: {}", f.message);
            return f.exit_code;
        }
    };
    if let Err(e) = dcn_core::write_atomic(result_path, &result.bytes) {
        eprintln!("{tool}: error: write result {result_path}: {e}");
        return EXIT_CRASH;
    }
    let _ = std::fs::remove_file(ckpt_path); // job done; nothing to resume
    if result.degraded {
        // The bytes are correct and durably written; only checkpoint
        // persistence was lost mid-run. Report that out-of-band via the
        // taxonomy so the supervisor can count it without parsing stderr.
        return EXIT_OK_DEGRADED;
    }
    dcn_bench::supervise::EXIT_OK
}
