//! The `dcnserve` daemon: accept loop, per-connection protocol driver,
//! request coalescing, worker supervision, and graceful drain.
//!
//! Robustness posture, layer by layer:
//!
//! - **Workers are disposable.** Every `run` request executes in a child
//!   process through the `dcn_bench::supervise` machinery — the same
//!   auto-checkpoint / watchdog / retry-from-checkpoint loop `dcnrun`
//!   uses — so a SIGKILLed or hung worker costs one checkpoint interval,
//!   not the request. Resumed results are byte-identical to
//!   uninterrupted ones (the PR-5 checkpoint guarantee), so retries are
//!   invisible to clients.
//! - **Deadlines propagate.** A request's `deadline_ms` bounds queue
//!   wait, every worker attempt (as the watchdog timeout), and retry
//!   backoff; when it expires the worker is killed and the client gets
//!   `deadline_exceeded`, never silence.
//! - **Load sheds, never stalls.** Admission control
//!   ([`super::admission`]) fronts the worker pool with a bounded queue
//!   and explicit `overloaded` rejections.
//! - **Slow or vanished clients cannot wedge the daemon.** Sockets carry
//!   write timeouts, idle connections are reaped, and a client
//!   disconnecting mid-frame just ends its connection thread.
//! - **The cache heals itself.** Entries are checksummed on read;
//!   corruption is quarantined and the result recomputed
//!   ([`super::cache`]).
//! - **Identical concurrent requests coalesce.** One worker computes; the
//!   followers wait (bounded by their deadlines) and serve the cached
//!   bytes — also what keeps two workers from racing on one checkpoint
//!   path.
//! - **SIGTERM drains.** The listener stops accepting, open connections
//!   get `draining` for new requests, in-flight jobs finish (or hit
//!   their deadlines), and the process exits with a code from the
//!   taxonomy below.
//!
//! Exit codes extend `dcnrun`'s 0–4 (see [`dcn_bench::supervise`]):
//! [`EXIT_SOCKET`] (5) — could not bind/listen; [`EXIT_DRAIN_TIMEOUT`]
//! (6) — SIGTERM received but connections outlived the drain budget.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dcn_bench::supervise::{self, Attempt, EXIT_CKPT_CORRUPT, EXIT_CONFIG, EXIT_OK};
use dcn_json::Json;

use super::admission::{Admission, Admit};
use super::cache::{self, fnv1a, ArtifactCache, CacheKey, Lookup};
use super::protocol::{self, envelope, FrameError, ParseError, Request};
use crate::config::Experiment;
use crate::metrics::{Counter, Gauge, Histogram, Registry};
use dcn_sim::config_fingerprint;

/// Could not bind or listen on the requested socket.
pub const EXIT_SOCKET: i32 = 5;
/// Drain deadline passed with connections still open.
pub const EXIT_DRAIN_TIMEOUT: i32 = 6;

/// Everything the daemon is configured with; `Default` is a sane
/// production-ish shape, the CLI layers flags on top.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// TCP listen address (`"127.0.0.1:0"` picks a free port).
    pub tcp: Option<String>,
    /// Unix-domain socket path (alternative or addition to TCP).
    pub unix: Option<String>,
    /// Root for `cache/`, `jobs/` spool, and worker checkpoints.
    pub state_dir: String,
    /// Written (atomically) with the bound address once listening —
    /// how tests and scripts find an ephemeral port.
    pub addr_file: Option<String>,
    pub max_workers: usize,
    pub max_queue: usize,
    /// Applied when a request carries no `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Reap a connection idle longer than this.
    pub idle_timeout_ms: u64,
    /// Slow-client guard on every socket write.
    pub write_timeout_ms: u64,
    /// How long SIGTERM waits for connections to finish.
    pub drain_timeout_ms: u64,
    /// Worker auto-checkpoint cadence (0 = every chunk).
    pub checkpoint_every_ms: u64,
    /// Worker relaunch budget per request.
    pub retries: u32,
    /// Base retry backoff; grows exponentially with deterministic jitter
    /// (see [`supervise::RetryPolicy`]), capped at 10 s.
    pub backoff_ms: u64,
    /// LRU bound on total cache entry bytes (`None` = unbounded). On
    /// overflow, least-recently-used entries are evicted atomically after
    /// each store.
    pub cache_max_bytes: Option<u64>,
    /// Chaos hook: first worker attempt of every job SIGKILLs itself
    /// after its first checkpoint, so retry-from-checkpoint is exercised
    /// on live traffic.
    pub inject_worker_crash: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            tcp: Some("127.0.0.1:7440".to_string()),
            unix: None,
            state_dir: "dcnserve-state".to_string(),
            addr_file: None,
            max_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_queue: 16,
            default_deadline_ms: 120_000,
            idle_timeout_ms: 30_000,
            write_timeout_ms: 5_000,
            drain_timeout_ms: 30_000,
            checkpoint_every_ms: 1_000,
            retries: 2,
            backoff_ms: 200,
            cache_max_bytes: None,
            inject_worker_crash: false,
        }
    }
}

/// Daemon-wide counters, served by the `stats` op and exposed through
/// the `metrics` op. Each field is a [`Registry`] handle, so the JSON
/// stats response and the Prometheus exposition read the same cells —
/// there is one source of truth for every count.
#[derive(Debug)]
pub struct Stats {
    pub requests: Counter,
    pub run_ok: Counter,
    pub served_cached: Counter,
    pub recomputed_after_quarantine: Counter,
    pub coalesced: Counter,
    pub overloaded: Counter,
    pub deadline_exceeded: Counter,
    pub errors_config: Counter,
    pub errors_unknown_op: Counter,
    pub errors_crash: Counter,
    pub errors_ckpt_corrupt: Counter,
    pub errors_internal: Counter,
    pub draining_refused: Counter,
    pub worker_relaunches: Counter,
    pub protocol_errors: Counter,
    pub disconnects: Counter,
    pub conns: Counter,
    /// Requests answered correctly but without durable persistence —
    /// the worker lost checkpointing (ENOSPC) or the result could not be
    /// cached. Correctness held; durability degraded.
    pub degraded: Counter,
}

impl Stats {
    fn new(reg: &Registry) -> Stats {
        let c = |name, help| reg.counter(name, help);
        Stats {
            requests: c("dcnserve_requests_total", "Requests received, any op."),
            run_ok: c(
                "dcnserve_run_ok_total",
                "Run requests computed successfully (cache misses).",
            ),
            served_cached: c(
                "dcnserve_cache_served_total",
                "Run requests answered from the verified cache.",
            ),
            recomputed_after_quarantine: c(
                "dcnserve_recomputed_after_quarantine_total",
                "Runs recomputed because the cached entry was corrupt.",
            ),
            coalesced: c(
                "dcnserve_coalesced_total",
                "Followers served from a leader's freshly cached result.",
            ),
            overloaded: c(
                "dcnserve_shed_overloaded_total",
                "Run requests shed by admission control.",
            ),
            deadline_exceeded: c(
                "dcnserve_deadline_exceeded_total",
                "Requests that ran out of deadline budget.",
            ),
            errors_config: c(
                "dcnserve_errors_config_total",
                "Requests rejected for a malformed frame or config.",
            ),
            errors_unknown_op: c(
                "dcnserve_errors_unknown_op_total",
                "Requests with an op this server does not implement.",
            ),
            errors_crash: c(
                "dcnserve_errors_crash_total",
                "Runs that exhausted the worker relaunch budget.",
            ),
            errors_ckpt_corrupt: c(
                "dcnserve_errors_checkpoint_corrupt_total",
                "Runs aborted on a corrupt checkpoint (chain discarded).",
            ),
            errors_internal: c(
                "dcnserve_errors_internal_total",
                "Daemon-side failures (spawn, spool, panic).",
            ),
            draining_refused: c(
                "dcnserve_draining_refused_total",
                "Requests refused because the daemon was draining.",
            ),
            worker_relaunches: c(
                "dcnserve_worker_relaunches_total",
                "Worker processes relaunched after a retryable failure.",
            ),
            protocol_errors: c(
                "dcnserve_protocol_errors_total",
                "Frames that could not be parsed as requests.",
            ),
            disconnects: c(
                "dcnserve_disconnects_total",
                "Clients that vanished mid-conversation.",
            ),
            conns: c("dcnserve_connections_total", "Connections accepted."),
            degraded: c(
                "dcnserve_degraded_total",
                "Requests served correctly but without durable persistence.",
            ),
        }
    }
}

/// SIGTERM/SIGINT flag. Signal handlers may only touch statics, so the
/// drain switch is process-global; `dcnserve` runs one server per
/// process.
static DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_drain_handler() {
    extern "C" fn on_signal(_sig: i32) {
        DRAIN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(15, on_signal); // SIGTERM
        signal(2, on_signal); // SIGINT
    }
}

/// Test hook: trip the drain switch in-process.
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

fn draining() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

// ------------------------------------------------------------ coalescing

/// Single-flight registry: at most one worker computes a given cache key
/// at a time; identical concurrent requests wait and then read the cache.
#[derive(Default)]
struct InFlight {
    keys: Mutex<HashSet<String>>,
    done: Condvar,
}

enum Flight {
    /// This request computes; the guard releases the key on drop (even on
    /// panic, so a dying leader never strands its followers).
    Leader(FlightGuard),
    /// Another request was computing and has now finished (one way or the
    /// other): re-check the cache.
    Followed,
    DeadlineExceeded,
}

struct FlightGuard {
    reg: Arc<InFlight>,
    key: String,
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        self.reg.keys.lock().unwrap().remove(&self.key);
        self.reg.done.notify_all();
    }
}

impl InFlight {
    fn begin(self: &Arc<Self>, key: &str, deadline: Instant) -> Flight {
        let mut keys = self.keys.lock().unwrap();
        if keys.insert(key.to_string()) {
            return Flight::Leader(FlightGuard {
                reg: Arc::clone(self),
                key: key.to_string(),
            });
        }
        while keys.contains(key) {
            let now = Instant::now();
            if now >= deadline {
                return Flight::DeadlineExceeded;
            }
            let (k, _) = self
                .done
                .wait_timeout(keys, deadline.duration_since(now))
                .unwrap();
            keys = k;
        }
        Flight::Followed
    }
}

// -------------------------------------------------------------- sockets

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn configure(&self, read_ms: u64, write_ms: u64) {
        let r = Some(Duration::from_millis(read_ms.max(1)));
        let w = Some(Duration::from_millis(write_ms.max(1)));
        match self {
            Conn::Tcp(s) => {
                let _ = s.set_read_timeout(r);
                let _ = s.set_write_timeout(w);
            }
            Conn::Unix(s) => {
                let _ = s.set_read_timeout(r);
                let _ = s.set_write_timeout(w);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------- shared state

struct Server {
    opts: ServeOptions,
    cache: ArtifactCache,
    gate: Arc<Admission>,
    inflight: Arc<InFlight>,
    registry: Registry,
    stats: Stats,
    /// Liveness gauges synced from their sources at render time (the
    /// admission gate and the cache own the live values).
    workers_running: Gauge,
    workers_queued: Gauge,
    cache_entries: Gauge,
    cache_bytes: Gauge,
    uptime_ms: Gauge,
    /// End-to-end `run` handling wall time, cached hits included.
    run_latency_ms: Histogram,
    started: Instant,
    active_conns: AtomicUsize,
    /// Uniquifies spool paths for non-coalescable (`no_cache`) jobs.
    job_serial: AtomicU64,
    jobs_dir: PathBuf,
    worker_exe: PathBuf,
}

impl Server {
    /// Version identity reported by `stats`: the crate plus the on-disk
    /// format versions a state dir depends on.
    fn version_json() -> Json {
        Json::obj(vec![
            ("crate", Json::from(env!("CARGO_PKG_VERSION"))),
            (
                "checkpoint_format",
                Json::from(dcn_sim::checkpoint::VERSION),
            ),
            ("cache_format", Json::from(cache::FORMAT_VERSION)),
        ])
    }

    /// Refreshes the gauges whose truth lives elsewhere (admission gate
    /// occupancy, cache directory, the clock). Called before every
    /// `stats`/`metrics` render so both views are consistent.
    fn sync_gauges(&self) {
        let (running, queued) = self.gate.occupancy();
        self.workers_running.set(running as u64);
        self.workers_queued.set(queued as u64);
        let (entries, bytes) = self.cache.disk_usage();
        self.cache_entries.set(entries);
        self.cache_bytes.set(bytes);
        self.uptime_ms
            .set(self.started.elapsed().as_millis() as u64);
    }

    fn stats_json(&self) -> Vec<u8> {
        self.sync_gauges();
        let s = &self.stats;
        let c = &self.cache.stats;
        let a = |v: &AtomicU64| Json::from(v.load(Ordering::Relaxed));
        let g = |v: &Counter| Json::from(v.get());
        envelope::ok_fields(vec![
            ("version", Self::version_json()),
            ("uptime_ms", Json::from(self.uptime_ms.get())),
            ("requests", g(&s.requests)),
            ("run_ok", g(&s.run_ok)),
            ("served_cached", g(&s.served_cached)),
            (
                "recomputed_after_quarantine",
                g(&s.recomputed_after_quarantine),
            ),
            ("coalesced", g(&s.coalesced)),
            ("overloaded", g(&s.overloaded)),
            ("deadline_exceeded", g(&s.deadline_exceeded)),
            ("errors_config", g(&s.errors_config)),
            ("errors_unknown_op", g(&s.errors_unknown_op)),
            ("errors_crash", g(&s.errors_crash)),
            ("errors_ckpt_corrupt", g(&s.errors_ckpt_corrupt)),
            ("errors_internal", g(&s.errors_internal)),
            ("draining_refused", g(&s.draining_refused)),
            ("worker_relaunches", g(&s.worker_relaunches)),
            ("protocol_errors", g(&s.protocol_errors)),
            ("disconnects", g(&s.disconnects)),
            ("conns", g(&s.conns)),
            ("degraded", g(&s.degraded)),
            ("cache_hits", a(&c.hits)),
            ("cache_misses", a(&c.misses)),
            ("cache_stores", a(&c.stores)),
            ("cache_quarantined", a(&c.quarantined)),
            ("cache_evicted", a(&c.evicted)),
            ("cache_quarantine_pruned", a(&c.quarantine_pruned)),
            ("cache_entries", Json::from(self.cache_entries.get())),
            ("cache_bytes", Json::from(self.cache_bytes.get())),
            ("workers_running", Json::from(self.workers_running.get())),
            ("workers_queued", Json::from(self.workers_queued.get())),
        ])
    }

    /// The Prometheus-style plaintext exposition body. Cache read-side
    /// counters live in [`cache::CacheStats`] atomics, so they are
    /// appended here rather than registered.
    fn metrics_text(&self) -> String {
        self.sync_gauges();
        let mut text = self.registry.render_text();
        let c = &self.cache.stats;
        for (name, help, v) in [
            (
                "dcnserve_cache_hits_total",
                "Verified cache reads.",
                c.hits.load(Ordering::Relaxed),
            ),
            (
                "dcnserve_cache_misses_total",
                "Cache lookups that found no entry.",
                c.misses.load(Ordering::Relaxed),
            ),
            (
                "dcnserve_cache_stores_total",
                "Results written to the cache.",
                c.stores.load(Ordering::Relaxed),
            ),
            (
                "dcnserve_cache_quarantined_total",
                "Corrupt entries moved to quarantine.",
                c.quarantined.load(Ordering::Relaxed),
            ),
            (
                "dcnserve_cache_evicted_total",
                "Entries evicted by the cache size bound (LRU).",
                c.evicted.load(Ordering::Relaxed),
            ),
            (
                "dcnserve_cache_quarantine_pruned_total",
                "Quarantined files pruned by the count cap.",
                c.quarantine_pruned.load(Ordering::Relaxed),
            ),
        ] {
            text.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        }
        text
    }
}

/// A finished `run` request, ready to frame back.
enum RunReply {
    Ok {
        cached: bool,
        key: String,
        attempts: u32,
        payload: Vec<u8>,
    },
    Envelope(Vec<u8>),
}

/// Derives the cache key for a materialized experiment + its canonical
/// config bytes.
fn cache_key(exp: &Experiment, canonical: &[u8]) -> CacheKey {
    CacheKey {
        topo: exp.topo.fingerprint(),
        sim_cfg: config_fingerprint(&exp.sim),
        faults: exp.faults.as_ref().map(|p| p.digest()).unwrap_or(0),
        request: fnv1a(canonical),
    }
}

/// Runs one job in supervised worker processes until success, a final
/// error, the retry budget, or the deadline — whichever first.
fn run_supervised_job(
    srv: &Server,
    cfg_path: &Path,
    result_path: &Path,
    ckpt_path: &Path,
    deadline: Instant,
) -> RunReplyKind {
    // Jitter stream seeded per job (by spool path), so N coalesced keys
    // whose workers died together retry out of phase instead of as one
    // thundering herd — while any single job replays deterministically.
    let policy = supervise::RetryPolicy::new(Duration::from_millis(srv.opts.backoff_ms))
        .with_seed(fnv1a(cfg_path.as_os_str().as_encoded_bytes()));
    let mut attempts = 0u32;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return RunReplyKind::DeadlineExceeded;
        }
        let mut cmd = Command::new(&srv.worker_exe);
        cmd.arg("worker")
            .arg(cfg_path)
            .arg("--result")
            .arg(result_path)
            .arg("--ckpt")
            .arg(ckpt_path)
            .arg("--checkpoint-every-ms")
            .arg(srv.opts.checkpoint_every_ms.to_string());
        if attempts == 0 && srv.opts.inject_worker_crash {
            cmd.arg("--die-after-checkpoints").arg("1");
        }
        let attempt = match supervise::run_attempt(&mut cmd, Some(remaining)) {
            Ok(a) => a,
            Err(e) => return RunReplyKind::Internal(format!("supervise worker: {e}")),
        };
        attempts += 1;
        match attempt {
            Attempt::Exited(EXIT_OK) => {
                return RunReplyKind::Ok {
                    attempts,
                    degraded: false,
                }
            }
            a if a.degraded() => {
                // Correct result, no durable checkpointing along the way.
                return RunReplyKind::Ok {
                    attempts,
                    degraded: true,
                };
            }
            Attempt::TimedOut => return RunReplyKind::DeadlineExceeded,
            Attempt::Exited(EXIT_CONFIG) => return RunReplyKind::Config,
            Attempt::Exited(EXIT_CKPT_CORRUPT) => return RunReplyKind::CkptCorrupt,
            a if a.retryable() && attempts <= srv.opts.retries => {
                srv.stats.worker_relaunches.inc();
                let pause = policy
                    .delay(attempts - 1)
                    .min(deadline.saturating_duration_since(Instant::now()));
                std::thread::sleep(pause);
            }
            _ => return RunReplyKind::Crash { attempts },
        }
    }
}

enum RunReplyKind {
    Ok { attempts: u32, degraded: bool },
    DeadlineExceeded,
    Config,
    CkptCorrupt,
    Crash { attempts: u32 },
    Internal(String),
}

fn handle_run(srv: &Server, config: Json, deadline_ms: Option<u64>, no_cache: bool) -> RunReply {
    let deadline =
        Instant::now() + Duration::from_millis(deadline_ms.unwrap_or(srv.opts.default_deadline_ms));

    // Materialize to validate and to derive the content-addressed key.
    // Config mistakes answer immediately; nothing is spawned or queued.
    let exp = match Experiment::from_json(&config) {
        Ok(e) => e,
        Err(e) => {
            srv.stats.errors_config.inc();
            return RunReply::Envelope(envelope::error("config", &e));
        }
    };
    let mut canonical = config.pretty();
    canonical.push('\n');
    let key = cache_key(&exp, canonical.as_bytes());
    let hex = key.hex();
    drop(exp); // the worker re-materializes; no need to hold flows here

    let mut recovered_from_quarantine = false;
    let mut waited_on_leader = false;
    // Coalescing loop: serve from cache, or compute as the single leader
    // for this key. `no_cache` requests skip both the cache read and the
    // registry (their spool paths are uniquified below instead).
    let _guard = loop {
        if !no_cache {
            match srv.cache.load(&key) {
                Lookup::Hit(payload) => {
                    srv.stats.served_cached.inc();
                    if waited_on_leader {
                        srv.stats.coalesced.inc();
                    }
                    return RunReply::Ok {
                        cached: true,
                        key: hex,
                        attempts: 0,
                        payload,
                    };
                }
                Lookup::Quarantined(why) => {
                    eprintln!("dcnserve: cache entry {hex}: {why}");
                    recovered_from_quarantine = true;
                }
                Lookup::Miss => {}
            }
        }
        if no_cache {
            break None;
        }
        match srv.inflight.begin(&hex, deadline) {
            Flight::Leader(g) => break Some(g),
            Flight::Followed => waited_on_leader = true, // re-check the cache
            Flight::DeadlineExceeded => {
                srv.stats.deadline_exceeded.inc();
                return RunReply::Envelope(envelope::status("deadline_exceeded"));
            }
        }
    };

    // Bounded admission into the worker pool.
    let _permit = match srv.gate.acquire(deadline) {
        Admit::Granted(p) => p,
        Admit::Overloaded => {
            srv.stats.overloaded.inc();
            return RunReply::Envelope(envelope::status("overloaded"));
        }
        Admit::DeadlineExceeded => {
            srv.stats.deadline_exceeded.inc();
            return RunReply::Envelope(envelope::status("deadline_exceeded"));
        }
    };

    // Spool the canonical config; the worker loads it by path. `no_cache`
    // jobs get unique paths so concurrent ones never share a checkpoint.
    let stem = if no_cache {
        format!("{hex}-u{}", srv.job_serial.fetch_add(1, Ordering::Relaxed))
    } else {
        hex.clone()
    };
    let cfg_path = srv.jobs_dir.join(format!("{stem}.json"));
    let result_path = srv.jobs_dir.join(format!("{stem}.result.json"));
    let ckpt_path = srv.jobs_dir.join(format!("{stem}.ckpt"));
    if let Err(e) = dcn_core::write_atomic(&cfg_path, canonical.as_bytes()) {
        srv.stats.errors_internal.inc();
        return RunReply::Envelope(envelope::error("internal", &format!("spool config: {e}")));
    }
    let _ = std::fs::remove_file(&result_path); // never serve a stale file

    let outcome = run_supervised_job(srv, &cfg_path, &result_path, &ckpt_path, deadline);
    match outcome {
        RunReplyKind::Ok { attempts, degraded } => {
            let payload = match std::fs::read(&result_path) {
                Ok(b) => b,
                Err(e) => {
                    srv.stats.errors_internal.inc();
                    return RunReply::Envelope(envelope::error(
                        "internal",
                        &format!("worker succeeded but result unreadable: {e}"),
                    ));
                }
            };
            let mut degraded = degraded;
            if let Err(e) = srv.cache.store(&key, &payload) {
                // Serving beats caching: log, count the lost durability,
                // and answer anyway.
                eprintln!("dcnserve: cache store {hex}: {e}");
                degraded = true;
            }
            if degraded {
                srv.stats.degraded.inc();
            }
            let _ = std::fs::remove_file(&cfg_path);
            let _ = std::fs::remove_file(&result_path);
            srv.stats.run_ok.inc();
            if recovered_from_quarantine {
                srv.stats.recomputed_after_quarantine.inc();
            }
            RunReply::Ok {
                cached: false,
                key: hex,
                attempts,
                payload,
            }
        }
        RunReplyKind::DeadlineExceeded => {
            srv.stats.deadline_exceeded.inc();
            // The checkpoint stays: an identical future request resumes
            // from it instead of starting over.
            RunReply::Envelope(envelope::status("deadline_exceeded"))
        }
        RunReplyKind::Config => {
            srv.stats.errors_config.inc();
            RunReply::Envelope(envelope::error("config", "worker rejected the config"))
        }
        RunReplyKind::CkptCorrupt => {
            srv.stats.errors_ckpt_corrupt.inc();
            // Break the poisoned resume chain so the next identical
            // request starts clean instead of failing forever.
            let _ = std::fs::remove_file(&ckpt_path);
            RunReply::Envelope(envelope::error(
                "checkpoint_corrupt",
                "resume chain broken; checkpoint discarded — retry the request",
            ))
        }
        RunReplyKind::Crash { attempts } => {
            srv.stats.errors_crash.inc();
            RunReply::Envelope(envelope::error(
                "crash",
                &format!("worker kept crashing ({attempts} attempts)"),
            ))
        }
        RunReplyKind::Internal(msg) => {
            srv.stats.errors_internal.inc();
            RunReply::Envelope(envelope::error("internal", &msg))
        }
    }
}

// ---------------------------------------------------- connection driver

/// Read poll granularity: short enough that drain and idle checks are
/// responsive, long enough to cost nothing.
const READ_POLL_MS: u64 = 250;

fn handle_conn(srv: &Server, mut conn: Conn) {
    conn.configure(
        srv.opts.idle_timeout_ms.min(READ_POLL_MS),
        srv.opts.write_timeout_ms,
    );
    let mut idle_deadline = Instant::now() + Duration::from_millis(srv.opts.idle_timeout_ms);
    loop {
        let frame = match protocol::read_frame(&mut conn) {
            Ok(f) => f,
            Err(FrameError::TimedOut) => {
                if draining() || Instant::now() >= idle_deadline {
                    return; // reap: drain in progress or client idle
                }
                continue;
            }
            Err(FrameError::Closed) => return,
            Err(FrameError::Truncated) => {
                srv.stats.disconnects.inc();
                return;
            }
            Err(FrameError::TooLarge(_)) | Err(FrameError::Io(_)) => {
                srv.stats.protocol_errors.inc();
                return;
            }
        };
        srv.stats.requests.inc();
        if draining() {
            srv.stats.draining_refused.inc();
            let _ = protocol::write_frame(&mut conn, &envelope::status("draining"));
            return;
        }
        let request = match Request::parse(&frame) {
            Ok(r) => r,
            Err(e) => {
                // Unknown ops get their own structured error (protocol
                // skew is diagnosable); everything else is `config`.
                let env = match &e {
                    ParseError::UnknownOp(_) => {
                        srv.stats.errors_unknown_op.inc();
                        envelope::error("unknown_op", &e.to_string())
                    }
                    ParseError::Invalid(msg) => {
                        srv.stats.protocol_errors.inc();
                        envelope::error("config", msg)
                    }
                };
                if protocol::write_frame(&mut conn, &env).is_err() {
                    return;
                }
                idle_deadline = Instant::now() + Duration::from_millis(srv.opts.idle_timeout_ms);
                continue;
            }
        };
        let write_ok = match request {
            Request::Ping => protocol::write_frame(&mut conn, &envelope::status("ok")).is_ok(),
            Request::Stats => protocol::write_frame(&mut conn, &srv.stats_json()).is_ok(),
            Request::Metrics => {
                let text = srv.metrics_text();
                protocol::write_frame(&mut conn, &envelope::status("ok"))
                    .and_then(|()| protocol::write_frame(&mut conn, text.as_bytes()))
                    .is_ok()
            }
            Request::Run {
                config,
                deadline_ms,
                no_cache,
            } => {
                let t0 = Instant::now();
                let reply = handle_run(srv, config, deadline_ms, no_cache);
                srv.run_latency_ms.observe(t0.elapsed().as_millis() as u64);
                match reply {
                    RunReply::Ok {
                        cached,
                        key,
                        attempts,
                        payload,
                    } => {
                        protocol::write_frame(&mut conn, &envelope::ok_run(cached, &key, attempts))
                            .and_then(|()| protocol::write_frame(&mut conn, &payload))
                            .is_ok()
                    }
                    RunReply::Envelope(env) => protocol::write_frame(&mut conn, &env).is_ok(),
                }
            }
        };
        if !write_ok {
            // Slow or gone client: its problem, not the daemon's.
            srv.stats.disconnects.inc();
            return;
        }
        idle_deadline = Instant::now() + Duration::from_millis(srv.opts.idle_timeout_ms);
    }
}

// ------------------------------------------------------------ accept loop

/// Runs the daemon until SIGTERM/SIGINT, then drains. Returns the process
/// exit code.
pub fn serve(opts: ServeOptions) -> i32 {
    #[cfg(unix)]
    install_drain_handler();
    DRAIN.store(false, Ordering::SeqCst);

    let state = PathBuf::from(&opts.state_dir);
    let jobs_dir = state.join("jobs");
    if let Err(e) = std::fs::create_dir_all(&jobs_dir) {
        eprintln!("dcnserve: error: create {}: {e}", jobs_dir.display());
        return EXIT_CONFIG;
    }
    let cache = match ArtifactCache::open_bounded(state.join("cache"), opts.cache_max_bytes) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dcnserve: error: open cache: {e}");
            return EXIT_CONFIG;
        }
    };
    let worker_exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dcnserve: error: current_exe: {e}");
            return EXIT_CONFIG;
        }
    };

    let mut listeners: Vec<Listener> = Vec::new();
    let mut bound = Vec::new();
    if let Some(addr) = &opts.tcp {
        match TcpListener::bind(addr) {
            Ok(l) => {
                let local = l
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| addr.clone());
                let _ = l.set_nonblocking(true);
                listeners.push(Listener::Tcp(l));
                bound.push(local);
            }
            Err(e) => {
                eprintln!("dcnserve: error: bind {addr}: {e}");
                return EXIT_SOCKET;
            }
        }
    }
    if let Some(path) = &opts.unix {
        let _ = std::fs::remove_file(path); // stale socket from a crash
        match UnixListener::bind(path) {
            Ok(l) => {
                let _ = l.set_nonblocking(true);
                listeners.push(Listener::Unix(l));
                bound.push(path.clone());
            }
            Err(e) => {
                eprintln!("dcnserve: error: bind {path}: {e}");
                return EXIT_SOCKET;
            }
        }
    }
    if listeners.is_empty() {
        eprintln!("dcnserve: error: nothing to listen on (need --tcp and/or --unix)");
        return EXIT_CONFIG;
    }
    if let Some(f) = &opts.addr_file {
        let body = format!("{}\n", bound.join("\n"));
        if let Err(e) = dcn_core::write_atomic(f, body.as_bytes()) {
            eprintln!("dcnserve: error: write addr file {f}: {e}");
            return EXIT_CONFIG;
        }
    }
    for b in &bound {
        eprintln!("dcnserve: listening on {b}");
    }

    let registry = Registry::new();
    let stats = Stats::new(&registry);
    let workers_running = registry.gauge(
        "dcnserve_workers_running",
        "Worker processes currently executing.",
    );
    let workers_queued = registry.gauge(
        "dcnserve_workers_queued",
        "Admitted requests waiting for a worker slot.",
    );
    let cache_entries = registry.gauge(
        "dcnserve_cache_entries",
        "Result artifacts on disk in the cache.",
    );
    let cache_bytes = registry.gauge(
        "dcnserve_cache_bytes",
        "Bytes of result artifacts on disk in the cache.",
    );
    let uptime_ms = registry.gauge(
        "dcnserve_uptime_ms",
        "Milliseconds since the daemon started.",
    );
    let run_latency_ms = registry.histogram(
        "dcnserve_run_latency_ms",
        "End-to-end run request handling time, cache hits included.",
    );
    let srv = Arc::new(Server {
        gate: Admission::new(opts.max_workers, opts.max_queue),
        inflight: Arc::new(InFlight::default()),
        registry,
        stats,
        workers_running,
        workers_queued,
        cache_entries,
        cache_bytes,
        uptime_ms,
        run_latency_ms,
        started: Instant::now(),
        active_conns: AtomicUsize::new(0),
        job_serial: AtomicU64::new(0),
        jobs_dir,
        worker_exe,
        cache,
        opts,
    });

    while !draining() {
        let mut accepted = false;
        for l in &listeners {
            let conn = match l {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            match conn {
                Ok(conn) => {
                    accepted = true;
                    srv.stats.conns.inc();
                    srv.active_conns.fetch_add(1, Ordering::SeqCst);
                    let srv2 = Arc::clone(&srv);
                    std::thread::spawn(move || {
                        // Permit/flight guards release on unwind, so one
                        // bad connection cannot poison the daemon.
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            handle_conn(&srv2, conn)
                        }));
                        srv2.active_conns.fetch_sub(1, Ordering::SeqCst);
                        if r.is_err() {
                            srv2.stats.errors_internal.inc();
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => eprintln!("dcnserve: accept: {e}"),
            }
        }
        if !accepted {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // Drain: stop accepting (loop exited), wait for connection threads —
    // which finish or checkpoint their in-flight jobs — up to the budget.
    eprintln!("dcnserve: draining (refusing new work)");
    if let Some(path) = &srv.opts.unix {
        let _ = std::fs::remove_file(path);
    }
    let drain_deadline = Instant::now() + Duration::from_millis(srv.opts.drain_timeout_ms);
    while srv.active_conns.load(Ordering::SeqCst) > 0 {
        if Instant::now() >= drain_deadline {
            eprintln!(
                "dcnserve: drain timeout with {} connections still open",
                srv.active_conns.load(Ordering::SeqCst)
            );
            return EXIT_DRAIN_TIMEOUT;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("dcnserve: drained cleanly");
    EXIT_OK
}
