//! Wire protocol for `dcnserve`: length-prefixed JSON frames.
//!
//! Every message is one *frame*: a little-endian `u32` byte length
//! followed by that many bytes of UTF-8 JSON. Frames are capped at
//! [`MAX_FRAME`] so a malicious or corrupted length prefix cannot make
//! the server allocate unbounded memory.
//!
//! A conversation is: the client sends one request frame, the server
//! answers with one *envelope* frame (`{"status": ...}`), and — only when
//! the status is `"ok"` for a `run` request — one *payload* frame holding
//! the raw result bytes exactly as the worker wrote them. Shipping the
//! payload as opaque bytes (not re-parsed JSON) is what makes the
//! cold-run / warm-cache / recomputed-after-corruption responses provably
//! byte-identical.
//!
//! Requests:
//!
//! ```text
//! {"op": "run", "config": {...}, "deadline_ms": 30000, "no_cache": false}
//! {"op": "ping"}
//! {"op": "stats"}
//! {"op": "metrics"}
//! ```
//!
//! Envelope statuses: `ok`, `overloaded`, `draining`, `deadline_exceeded`,
//! and `error` (with `kind` ∈ `config` / `unknown_op` / `crash` /
//! `checkpoint_corrupt` / `internal` and a human `message`). A request
//! whose `op` the server does not recognize gets a structured
//! `unknown_op` error naming the op — distinguishable from a malformed
//! frame (`config`), so old clients against new servers fail loudly and
//! descriptively.
//!
//! `metrics` is the one non-JSON response: the envelope is followed by a
//! single frame of plaintext Prometheus-style exposition (the same
//! counters `stats` reports, plus histograms), for scraping through the
//! framed socket without a second listener.

use std::io::{self, Read, Write};

use dcn_core::failpoint;
use dcn_json::Json;

/// Hard cap on a single frame, requests and responses alike.
pub const MAX_FRAME: usize = 16 << 20;

/// How reading a frame can end short of a complete message. Timeouts are
/// split from other I/O errors because the server treats them as *policy*
/// (idle reaping, drain polling), not failure.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The peer disconnected mid-frame — a truncated message.
    Truncated,
    /// The read timed out (the stream has a read timeout installed).
    TimedOut,
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "peer disconnected mid-frame"),
            FrameError::TimedOut => write!(f, "read timed out"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap {MAX_FRAME}"),
            FrameError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

fn classify(e: io::Error, started: bool) -> FrameError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FrameError::TimedOut,
        io::ErrorKind::UnexpectedEof if started => FrameError::Truncated,
        io::ErrorKind::UnexpectedEof => FrameError::Closed,
        _ => FrameError::Io(e.to_string()),
    }
}

/// Reads exactly one frame. `Closed` means the peer finished the
/// conversation cleanly (EOF on a frame boundary); any mid-frame EOF is
/// `Truncated` — the caller must not treat partial bytes as a message.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    // Failpoint `serve.sock_read`: an injected error here exercises the
    // same classification a real socket fault would (`eof` at frame start
    // → Closed, not Truncated).
    if let Err(e) = failpoint::fail_io("serve.sock_read") {
        return Err(classify(e, false));
    }
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(classify(e, got > 0)),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut body[got..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(classify(e, true)),
        }
    }
    Ok(body)
}

/// Writes one frame and flushes. The caller installs write timeouts on
/// the stream; a slow client surfaces here as an error, never a stall.
pub fn write_frame(w: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds cap {MAX_FRAME}", bytes.len()),
        ));
    }
    // Failpoint `serve.sock_write`: `partial(n)` emits the length prefix
    // plus the first n payload bytes and then fails — the torn frame a
    // mid-write disconnect leaves on the wire. The reader on the other
    // end must classify it as Truncated, never parse it.
    if let Some(n) = failpoint::partial_write("serve.sock_write")? {
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        let n = (n as usize).min(bytes.len());
        w.write_all(&bytes[..n])?;
        let _ = w.flush();
        return Err(io::Error::other("injected failpoint: torn frame write"));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    Run {
        config: Json,
        /// Wall-clock budget for the whole request, ms.
        deadline_ms: Option<u64>,
        /// Skip the cache read (the result is still stored).
        no_cache: bool,
    },
    Ping,
    Stats,
    /// Plaintext Prometheus-style exposition of the daemon's metrics.
    Metrics,
}

/// Why a request frame could not become a [`Request`]. `UnknownOp` is
/// split out so the server can answer with a structured `unknown_op`
/// error envelope instead of lumping protocol-version skew in with
/// malformed JSON.
#[derive(Debug)]
pub enum ParseError {
    /// Valid JSON with an `op` the server does not implement.
    UnknownOp(String),
    /// Everything else: bad UTF-8, bad JSON, missing/ill-typed fields.
    Invalid(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownOp(op) => write!(f, "unknown op \"{op}\""),
            ParseError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl From<&str> for ParseError {
    fn from(msg: &str) -> ParseError {
        ParseError::Invalid(msg.to_string())
    }
}

impl Request {
    /// Parses a request frame; errors are one-line human messages the
    /// server echoes back in a `config`- or `unknown_op`-kind error
    /// envelope.
    pub fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        let text = std::str::from_utf8(bytes).map_err(|_| "request is not UTF-8")?;
        let v = Json::parse(text)
            .map_err(|e| ParseError::Invalid(format!("request is not JSON: {e}")))?;
        let op = v
            .get("op")
            .and_then(|o| o.as_str())
            .ok_or("request needs an \"op\" string")?;
        Ok(match op {
            "ping" => Request::Ping,
            "stats" => Request::Stats,
            "metrics" => Request::Metrics,
            "run" => Request::Run {
                config: v.get("config").cloned().ok_or("run needs a \"config\"")?,
                deadline_ms: match v.get("deadline_ms") {
                    None => None,
                    Some(d) => Some(d.as_u64().ok_or("\"deadline_ms\" must be an integer")?),
                },
                no_cache: v.get("no_cache").and_then(|b| b.as_bool()).unwrap_or(false),
            },
            other => return Err(ParseError::UnknownOp(other.to_string())),
        })
    }

    /// Serializes a `run` request body (the client side of [`parse`]).
    pub fn run_frame(config: Json, deadline_ms: Option<u64>, no_cache: bool) -> Vec<u8> {
        let mut fields = vec![("op", Json::from("run")), ("config", config)];
        if let Some(d) = deadline_ms {
            fields.push(("deadline_ms", Json::from(d)));
        }
        if no_cache {
            fields.push(("no_cache", Json::from(true)));
        }
        Json::obj(fields).pretty().into_bytes()
    }
}

/// Envelope builders — one place so the status vocabulary stays closed.
pub mod envelope {
    use super::Json;

    pub fn ok_run(cached: bool, key: &str, attempts: u32) -> Vec<u8> {
        Json::obj(vec![
            ("status", Json::from("ok")),
            ("cached", Json::from(cached)),
            ("key", Json::from(key)),
            ("attempts", Json::from(attempts as u64)),
        ])
        .pretty()
        .into_bytes()
    }

    pub fn ok_fields(fields: Vec<(&str, Json)>) -> Vec<u8> {
        let mut all = vec![("status", Json::from("ok"))];
        all.extend(fields);
        Json::obj(all).pretty().into_bytes()
    }

    pub fn status(s: &str) -> Vec<u8> {
        Json::obj(vec![("status", Json::from(s))])
            .pretty()
            .into_bytes()
    }

    pub fn error(kind: &str, message: &str) -> Vec<u8> {
        Json::obj(vec![
            ("status", Json::from("error")),
            ("kind", Json::from(kind)),
            ("message", Json::from(message)),
        ])
        .pretty()
        .into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failpoint state is process-global; tests in this module serialize
    /// so one test arming `serve.*` cannot trip another's frame I/O.
    static FP_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn fp_lock() -> std::sync::MutexGuard<'static, ()> {
        FP_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A reader that delivers the stream one byte per `read` call — the
    /// worst legal TCP segmentation.
    struct OneByte<'a>(&'a [u8]);

    impl Read for OneByte<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    /// A reader that injects `Interrupted` before every real byte — the
    /// EINTR storm a signal-heavy host produces.
    struct Interrupting<'a> {
        inner: &'a [u8],
        interrupt_next: bool,
    }

    impl Read for Interrupting<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            self.interrupt_next = true;
            self.inner.read(buf)
        }
    }

    /// A writer that accepts at most one byte per `write` call — forces
    /// `write_all` to loop — and records everything it got.
    struct ShortWriter(Vec<u8>);

    impl Write for ShortWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frames_roundtrip() {
        let _g = fp_lock();
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn truncated_frames_are_not_messages() {
        let _g = fp_lock();
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        // Cut mid-payload and mid-length-prefix.
        let mut r = &buf[..7];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
        let mut r = &buf[..2];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let _g = fp_lock();
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(b"junk");
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(_))));
        let big = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut Vec::new(), &big).is_err());
    }

    #[test]
    fn requests_parse() {
        let f = Request::run_frame(
            Json::obj(vec![("lambda", Json::from(1.0))]),
            Some(500),
            true,
        );
        match Request::parse(&f).unwrap() {
            Request::Run {
                config,
                deadline_ms,
                no_cache,
            } => {
                assert!(config.get("lambda").is_some());
                assert_eq!(deadline_ms, Some(500));
                assert!(no_cache);
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert!(matches!(
            Request::parse(br#"{"op": "ping"}"#).unwrap(),
            Request::Ping
        ));
        assert!(matches!(
            Request::parse(br#"{"op": "stats"}"#).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            Request::parse(br#"{"op": "metrics"}"#).unwrap(),
            Request::Metrics
        ));
    }

    #[test]
    fn bad_requests_are_one_line_errors() {
        let msg = |b: &[u8]| Request::parse(b).unwrap_err().to_string();
        assert!(msg(b"\xff\xfe").contains("UTF-8"));
        assert!(msg(b"{").contains("JSON"));
        assert!(msg(b"{}").contains("\"op\""));
        assert!(msg(br#"{"op": "run"}"#).contains("config"));
    }

    #[test]
    fn unknown_ops_are_structurally_distinct() {
        // Protocol-version skew (a newer client op) is not a malformed
        // request: the server answers `unknown_op`, not `config`.
        match Request::parse(br#"{"op": "dance"}"#).unwrap_err() {
            ParseError::UnknownOp(op) => assert_eq!(op, "dance"),
            other => panic!("expected UnknownOp, got {other:?}"),
        }
        assert!(matches!(
            Request::parse(b"{}").unwrap_err(),
            ParseError::Invalid(_)
        ));
    }

    // ---- adversarial I/O: worst-case segmentation, EINTR, torn frames ----

    #[test]
    fn one_byte_at_a_time_frames_roundtrip() {
        let _g = fp_lock();
        let mut buf = Vec::new();
        write_frame(&mut buf, b"dripped through a straw").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = OneByte(&buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"dripped through a straw");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn interrupted_reads_are_retried_not_fatal() {
        let _g = fp_lock();
        let mut buf = Vec::new();
        write_frame(&mut buf, b"survives EINTR").unwrap();
        let mut r = Interrupting {
            inner: &buf,
            interrupt_next: true,
        };
        assert_eq!(read_frame(&mut r).unwrap(), b"survives EINTR");
    }

    #[test]
    fn short_writes_still_produce_a_complete_frame() {
        let _g = fp_lock();
        let mut w = ShortWriter(Vec::new());
        write_frame(&mut w, b"one byte per syscall").unwrap();
        let mut r = &w.0[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"one byte per syscall");
    }

    #[test]
    fn every_truncation_point_is_closed_or_truncated_never_a_message() {
        let _g = fp_lock();
        // Exhaustive: cut a valid two-frame stream at every byte offset.
        // Each prefix must yield only complete frames then a clean
        // Closed/Truncated — never a fabricated message, panic, or hang.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first frame").unwrap();
        write_frame(&mut buf, b"second").unwrap();
        for cut in 0..=buf.len() {
            let mut r = &buf[..cut];
            let mut frames = Vec::new();
            loop {
                match read_frame(&mut r) {
                    Ok(f) => frames.push(f),
                    Err(FrameError::Closed) => {
                        // Clean end: only on a frame boundary.
                        assert!(
                            cut == 0 || cut == 15 || cut == buf.len(),
                            "Closed at non-boundary cut {cut}"
                        );
                        break;
                    }
                    Err(FrameError::Truncated) => break,
                    Err(e) => panic!("cut {cut}: unexpected {e}"),
                }
            }
            for f in &frames {
                assert!(
                    f == b"first frame" || f == b"second",
                    "cut {cut} fabricated a frame: {f:?}"
                );
            }
        }
    }

    #[test]
    fn injected_sock_read_eof_classifies_as_closed() {
        let _g = fp_lock();
        dcn_core::failpoint::configure("serve.sock_read", "eof");
        let mut buf = Vec::new();
        write_frame(&mut buf, b"never seen").unwrap();
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
        dcn_core::failpoint::disarm("serve.sock_read");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"never seen");
    }

    #[test]
    fn injected_torn_write_is_truncated_on_the_read_side() {
        let _g = fp_lock();
        dcn_core::failpoint::configure("serve.sock_write", "partial(3)");
        let mut buf = Vec::new();
        assert!(write_frame(&mut buf, b"a frame that tears").is_err());
        dcn_core::failpoint::disarm("serve.sock_write");
        // The wire holds a length prefix and 3 payload bytes: the reader
        // must classify, never deliver.
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
    }
}
