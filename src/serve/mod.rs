//! `dcnserve`: a crash-tolerant, long-running experiment service.
//!
//! This module tree is the system *around* runs — PR 5 made individual
//! runs crash-safe (checkpoints, supervision); this layer keeps serving
//! correct results through worker crashes, hung jobs, corrupt cache
//! entries, slow clients, and overload:
//!
//! | module | contents |
//! |--------|----------|
//! | [`protocol`] | length-prefixed JSON frames, request/response shapes |
//! | [`cache`] | checksummed content-addressed artifact cache with quarantine |
//! | [`admission`] | bounded-queue admission control (shed, never stall) |
//! | [`server`] | accept loop, coalescing, worker supervision, drain |
//!
//! The binary lives in `src/bin/dcnserve.rs`; job execution is shared
//! with `dcnrun` through [`crate::jobs`].

pub mod admission;
pub mod cache;
pub mod protocol;
pub mod server;
