//! The self-healing content-addressed artifact cache behind `dcnserve`.
//!
//! Results are keyed by what they *are*, not when they were computed: a
//! [`CacheKey`] combines the topology fingerprint (FNV-1a over the full
//! structure), the simulator-config fingerprint, the fault-plan digest —
//! the same provenance fields run manifests record — and an FNV-1a digest
//! of the canonicalized request config (covering workload, seed, λ,
//! window: everything the other three don't). Two requests with the same
//! key would simulate the identical experiment, so one result serves
//! both.
//!
//! Entries are **checksummed on every read** and written atomically via
//! [`dcn_core::write_atomic`]. The on-disk format is
//!
//! ```text
//! magic "DCNCACHE1" | payload len u64 LE | payload | FNV-1a of all prior bytes
//! ```
//!
//! A truncated, bit-flipped, or otherwise damaged entry is *quarantined*
//! — moved into `quarantine/` for post-mortem, never deleted silently,
//! never served — and the lookup reports a miss so the daemon
//! transparently recomputes. Corruption is an availability event, not a
//! correctness one.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dcn_core::failpoint;

/// Quarantined entries kept for post-mortem before oldest-first pruning
/// kicks in. Corruption evidence is valuable but finite: a bit-rotting
/// disk must not be able to grow `quarantine/` without bound.
pub const QUARANTINE_MAX: usize = 32;

const MAGIC: &[u8; 9] = b"DCNCACHE1";
/// On-disk entry format version (the digit in [`MAGIC`]); reported by the
/// daemon's `stats` op so operators can tell what a state dir holds.
pub const FORMAT_VERSION: u32 = 1;
/// magic + payload length.
const HEADER_LEN: usize = 9 + 8;

/// FNV-1a over a byte string — the workspace's standard content hash
/// (topology fingerprints and checkpoint checksums use the same one).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The identity of one experiment result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Topology::fingerprint`](dcn_topology::Topology::fingerprint).
    pub topo: u64,
    /// [`config_fingerprint`](dcn_sim::config_fingerprint) of the `SimConfig`.
    pub sim_cfg: u64,
    /// [`FaultPlan::digest`](dcn_sim::FaultPlan::digest), 0 when faultless.
    pub faults: u64,
    /// FNV-1a of the canonicalized request config JSON.
    pub request: u64,
}

impl CacheKey {
    /// The entry's file stem: 16 hex digits of the combined hash.
    pub fn hex(&self) -> String {
        let mut buf = [0u8; 32];
        buf[..8].copy_from_slice(&self.topo.to_le_bytes());
        buf[8..16].copy_from_slice(&self.sim_cfg.to_le_bytes());
        buf[16..24].copy_from_slice(&self.faults.to_le_bytes());
        buf[24..].copy_from_slice(&self.request.to_le_bytes());
        format!("{:016x}", fnv1a(&buf))
    }
}

/// Outcome of a cache read.
#[derive(Debug, PartialEq, Eq)]
pub enum Lookup {
    /// A verified entry: these bytes are exactly what was stored.
    Hit(Vec<u8>),
    /// No entry for this key.
    Miss,
    /// An entry existed but failed verification; it has been moved to
    /// quarantine and the caller must recompute.
    Quarantined(String),
}

/// Read-side counters, exported through the daemon's `stats` op.
#[derive(Debug, Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub stores: AtomicU64,
    pub quarantined: AtomicU64,
    /// Entries removed by the `max_bytes` LRU bound.
    pub evicted: AtomicU64,
    /// Quarantined files pruned by the [`QUARANTINE_MAX`] count cap.
    pub quarantine_pruned: AtomicU64,
}

/// A directory of checksummed result artifacts.
pub struct ArtifactCache {
    dir: PathBuf,
    /// Total on-disk entry bytes the cache may hold; `None` = unbounded.
    max_bytes: Option<u64>,
    /// LRU bookkeeping: entry file name → last-touch stamp from `clock`.
    /// In-memory only — after a daemon restart, untouched entries rank by
    /// file mtime until read or stored again.
    recency: Mutex<HashMap<String, u64>>,
    clock: AtomicU64,
    pub stats: CacheStats,
}

impl ArtifactCache {
    /// Opens (creating if needed) the cache directory and its
    /// `quarantine/` sibling, with no size bound.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ArtifactCache> {
        Self::open_bounded(dir, None)
    }

    /// [`ArtifactCache::open`] with an LRU size bound: after every store,
    /// least-recently-used entries are evicted until total entry bytes
    /// fit in `max_bytes` (the just-stored entry is always kept, even if
    /// it alone exceeds the bound — serving it beats thrashing).
    pub fn open_bounded(
        dir: impl Into<PathBuf>,
        max_bytes: Option<u64>,
    ) -> io::Result<ArtifactCache> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("quarantine"))?;
        Ok(ArtifactCache {
            dir,
            max_bytes,
            recency: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(1),
            stats: CacheStats::default(),
        })
    }

    /// Records a touch of `path` for LRU ranking.
    fn touch(&self, path: &Path) {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            return;
        };
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.recency.lock().unwrap_or_else(|e| e.into_inner());
        map.insert(name.to_string(), stamp);
    }

    /// Path of the entry for `key`.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.res", key.hex()))
    }

    /// Where a corrupt entry for `key` ends up.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Verifies and decodes one entry image.
    fn decode(data: &[u8]) -> Result<Vec<u8>, String> {
        if data.len() < HEADER_LEN + 8 {
            return Err("entry truncated: shorter than header".into());
        }
        if &data[..9] != MAGIC {
            return Err("bad magic".into());
        }
        let len = u64::from_le_bytes(data[9..17].try_into().unwrap()) as usize;
        let want_total = HEADER_LEN + len + 8;
        if data.len() != want_total {
            return Err(format!(
                "entry length mismatch: header says {want_total} bytes, file has {}",
                data.len()
            ));
        }
        let body = &data[..data.len() - 8];
        let want = u64::from_le_bytes(data[data.len() - 8..].try_into().unwrap());
        if fnv1a(body) != want {
            return Err("checksum mismatch".into());
        }
        Ok(data[HEADER_LEN..HEADER_LEN + len].to_vec())
    }

    /// Looks `key` up, verifying the checksum before trusting a byte. A
    /// damaged entry is renamed into `quarantine/` (a unique name, so
    /// repeated corruption never overwrites evidence) and reported as
    /// [`Lookup::Quarantined`].
    pub fn load(&self, key: &CacheKey) -> Lookup {
        let path = self.entry_path(key);
        let data = match failpoint::fail_io("cache.read").and_then(|()| std::fs::read(&path)) {
            Ok(d) => d,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return Lookup::Miss;
            }
            Err(e) => {
                // Unreadable is as good as corrupt: fail toward recompute.
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return Lookup::Quarantined(format!("read {}: {e}", path.display()));
            }
        };
        match Self::decode(&data) {
            Ok(bytes) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.touch(&path);
                Lookup::Hit(bytes)
            }
            Err(why) => {
                let n = self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                let dest = self
                    .quarantine_dir()
                    .join(format!("{}.{}.res", key.hex(), n));
                let moved = failpoint::fail_io("cache.quarantine")
                    .and_then(|()| std::fs::rename(&path, &dest));
                let note = match moved {
                    Ok(()) => format!("{why}; quarantined to {}", dest.display()),
                    Err(e) => {
                        // Cannot move it aside: remove so it is never
                        // re-read as truth.
                        let _ = std::fs::remove_file(&path);
                        format!("{why}; quarantine rename failed ({e}), entry removed")
                    }
                };
                self.prune_quarantine();
                Lookup::Quarantined(note)
            }
        }
    }

    /// Stores `payload` under `key`, atomically (temporary + fsync +
    /// rename + parent fsync), so a crash mid-store leaves either the old
    /// entry or the new one — never a torn file. When a `max_bytes` bound
    /// is set, least-recently-used entries are evicted afterwards until
    /// the cache fits.
    pub fn store(&self, key: &CacheKey, payload: &[u8]) -> io::Result<()> {
        let mut image = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
        image.extend_from_slice(MAGIC);
        image.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        image.extend_from_slice(payload);
        let sum = fnv1a(&image);
        image.extend_from_slice(&sum.to_le_bytes());
        let path = self.entry_path(key);
        failpoint::fail_io("cache.store")?;
        dcn_core::write_atomic(&path, &image)?;
        self.stats.stores.fetch_add(1, Ordering::Relaxed);
        self.touch(&path);
        if self.max_bytes.is_some() {
            self.evict_to_bound(&path);
        }
        Ok(())
    }

    /// Evicts least-recently-used entries until total entry bytes fit in
    /// the bound, never touching `keep` (the entry just stored). Eviction
    /// is a plain unlink: entries are immutable once renamed into place,
    /// so removal is atomic and a concurrent reader either got the whole
    /// file or sees a miss.
    fn evict_to_bound(&self, keep: &Path) {
        let Some(bound) = self.max_bytes else { return };
        // Rank: recency stamp if the entry was touched this process
        // lifetime, else 0 — cold restarts rank untouched entries oldest,
        // tie-broken by mtime so pre-restart entries still age out
        // oldest-first.
        let map = self.recency.lock().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<(u64, std::time::SystemTime, u64, PathBuf)> = Vec::new();
        let mut total = 0u64;
        for p in entry_paths(&self.dir) {
            let Ok(md) = std::fs::metadata(&p) else {
                continue;
            };
            total += md.len();
            let stamp = p
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| map.get(n).copied())
                .unwrap_or(0);
            let mtime = md.modified().unwrap_or(std::time::UNIX_EPOCH);
            entries.push((stamp, mtime, md.len(), p));
        }
        drop(map);
        if total <= bound {
            return;
        }
        entries.sort();
        for (_, _, len, path) in entries {
            if total <= bound {
                break;
            }
            if path == keep {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.stats.evicted.fetch_add(1, Ordering::Relaxed);
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    let mut map = self.recency.lock().unwrap_or_else(|e| e.into_inner());
                    map.remove(name);
                }
            }
        }
    }

    /// Caps `quarantine/` at [`QUARANTINE_MAX`] files, pruning
    /// oldest-first (mtime, then name). Called after every quarantine so
    /// a bit-rotting disk cannot grow the evidence directory forever.
    fn prune_quarantine(&self) {
        let Ok(rd) = std::fs::read_dir(self.quarantine_dir()) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf)> = rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .map(|p| {
                let mtime = std::fs::metadata(&p)
                    .and_then(|md| md.modified())
                    .unwrap_or(std::time::UNIX_EPOCH);
                (mtime, p)
            })
            .collect();
        if files.len() <= QUARANTINE_MAX {
            return;
        }
        files.sort();
        let excess = files.len() - QUARANTINE_MAX;
        for (_, p) in files.into_iter().take(excess) {
            if std::fs::remove_file(&p).is_ok() {
                self.stats.quarantine_pruned.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// `(entries, payload bytes)` currently on disk — a directory walk,
    /// so called at stats/metrics render time, never on the serve path.
    pub fn disk_usage(&self) -> (u64, u64) {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for p in entry_paths(&self.dir) {
            if let Ok(md) = std::fs::metadata(&p) {
                entries += 1;
                bytes += md.len();
            }
        }
        (entries, bytes)
    }

    /// Number of quarantined files on disk (test/debug visibility).
    pub fn quarantined_on_disk(&self) -> usize {
        std::fs::read_dir(self.quarantine_dir())
            .map(|it| it.count())
            .unwrap_or(0)
    }
}

/// `Path`-taking convenience used by tests and the CI gate.
pub fn entry_paths(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|it| {
            it.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "res"))
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failpoint state is process-global: tests that arm `cache.*` sites
    /// must not interleave with tests that call `store`/`load`, so every
    /// test in this module serializes on this lock.
    static FP_LOCK: Mutex<()> = Mutex::new(());

    fn fp_lock() -> std::sync::MutexGuard<'static, ()> {
        FP_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn key(n: u64) -> CacheKey {
        CacheKey {
            topo: n,
            sim_cfg: n ^ 1,
            faults: 0,
            request: n.wrapping_mul(7),
        }
    }

    fn fresh(name: &str) -> ArtifactCache {
        let dir =
            std::env::temp_dir().join(format!("dcnserve_cache_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::open(dir).unwrap()
    }

    #[test]
    fn store_then_load_roundtrips() {
        let _g = fp_lock();
        let c = fresh("roundtrip");
        let k = key(1);
        assert_eq!(c.load(&k), Lookup::Miss);
        c.store(&k, b"{\"avg_fct_ms\": 1.5}\n").unwrap();
        assert_eq!(c.load(&k), Lookup::Hit(b"{\"avg_fct_ms\": 1.5}\n".to_vec()));
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let _g = fp_lock();
        let c = fresh("keys");
        c.store(&key(1), b"one").unwrap();
        c.store(&key(2), b"two").unwrap();
        assert_eq!(c.load(&key(1)), Lookup::Hit(b"one".to_vec()));
        assert_eq!(c.load(&key(2)), Lookup::Hit(b"two".to_vec()));
        // Any single component changing changes the key.
        let base = key(1);
        for k in [
            CacheKey { topo: 99, ..base },
            CacheKey {
                sim_cfg: 99,
                ..base
            },
            CacheKey { faults: 99, ..base },
            CacheKey {
                request: 99,
                ..base
            },
        ] {
            assert_ne!(k.hex(), base.hex());
        }
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn bit_flip_quarantines_and_recovers() {
        let _g = fp_lock();
        let c = fresh("bitflip");
        let k = key(3);
        c.store(&k, b"the truth").unwrap();
        let path = c.entry_path(&k);
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        std::fs::write(&path, &data).unwrap();

        match c.load(&k) {
            Lookup::Quarantined(why) => assert!(why.contains("quarantined"), "{why}"),
            other => panic!("corrupt entry served: {other:?}"),
        }
        assert!(!path.exists(), "corrupt entry must leave the serving path");
        assert_eq!(c.quarantined_on_disk(), 1);
        // Self-healing: the recomputed result stores and serves again.
        c.store(&k, b"the truth").unwrap();
        assert_eq!(c.load(&k), Lookup::Hit(b"the truth".to_vec()));
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn truncation_and_bad_magic_quarantine() {
        let _g = fp_lock();
        let c = fresh("trunc");
        let k = key(4);
        c.store(&k, b"0123456789").unwrap();
        let path = c.entry_path(&k);
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        assert!(matches!(c.load(&k), Lookup::Quarantined(_)));

        c.store(&k, b"0123456789").unwrap();
        let mut data = std::fs::read(c.entry_path(&k)).unwrap();
        data[0] = b'X';
        std::fs::write(c.entry_path(&k), &data).unwrap();
        assert!(matches!(c.load(&k), Lookup::Quarantined(_)));
        assert_eq!(c.quarantined_on_disk(), 2, "evidence never overwritten");
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn empty_and_header_only_files_quarantine() {
        let _g = fp_lock();
        let c = fresh("tiny");
        let k = key(5);
        std::fs::write(c.entry_path(&k), b"").unwrap();
        assert!(matches!(c.load(&k), Lookup::Quarantined(_)));
        std::fs::write(c.entry_path(&k), MAGIC).unwrap();
        assert!(matches!(c.load(&k), Lookup::Quarantined(_)));
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    fn fresh_bounded(name: &str, max_bytes: u64) -> ArtifactCache {
        let dir =
            std::env::temp_dir().join(format!("dcnserve_cache_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::open_bounded(dir, Some(max_bytes)).unwrap()
    }

    #[test]
    fn lru_bound_evicts_least_recently_used() {
        let _g = fp_lock();
        // Each entry: 9 magic + 8 len + 8 payload + 8 checksum = 33 bytes.
        // Bound of 70 holds two entries, not three.
        let c = fresh_bounded("lru", 70);
        c.store(&key(1), b"aaaaaaaa").unwrap();
        c.store(&key(2), b"bbbbbbbb").unwrap();
        // Touch entry 1 so entry 2 becomes the LRU victim.
        assert!(matches!(c.load(&key(1)), Lookup::Hit(_)));
        c.store(&key(3), b"cccccccc").unwrap();
        assert_eq!(c.stats.evicted.load(Ordering::Relaxed), 1);
        assert!(
            matches!(c.load(&key(1)), Lookup::Hit(_)),
            "recently used survives"
        );
        assert_eq!(c.load(&key(2)), Lookup::Miss, "LRU entry evicted");
        assert!(
            matches!(c.load(&key(3)), Lookup::Hit(_)),
            "just-stored survives"
        );
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn lru_bound_never_evicts_the_entry_just_stored() {
        let _g = fp_lock();
        let c = fresh_bounded("lru_keep", 10); // smaller than any one entry
        c.store(&key(1), b"payload that exceeds the whole bound")
            .unwrap();
        assert!(matches!(c.load(&key(1)), Lookup::Hit(_)));
        // Storing a second oversize entry evicts the first, keeps itself.
        c.store(&key(2), b"another oversized payload").unwrap();
        assert_eq!(c.load(&key(1)), Lookup::Miss);
        assert!(matches!(c.load(&key(2)), Lookup::Hit(_)));
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn quarantine_directory_is_bounded() {
        let _g = fp_lock();
        let c = fresh("qbound");
        let k = key(6);
        for _ in 0..(QUARANTINE_MAX + 5) {
            c.store(&k, b"good bytes").unwrap();
            let path = c.entry_path(&k);
            let mut data = std::fs::read(&path).unwrap();
            let mid = data.len() / 2;
            data[mid] ^= 0xff;
            std::fs::write(&path, &data).unwrap();
            assert!(matches!(c.load(&k), Lookup::Quarantined(_)));
        }
        assert!(
            c.quarantined_on_disk() <= QUARANTINE_MAX,
            "quarantine grew past the cap: {}",
            c.quarantined_on_disk()
        );
        assert!(c.stats.quarantine_pruned.load(Ordering::Relaxed) >= 5);
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn injected_store_failure_leaves_cache_servable() {
        let _g = fp_lock();
        let c = fresh("fp_store");
        let k = key(7);
        c.store(&k, b"original").unwrap();
        failpoint::configure("cache.store", "enospc");
        let err = c.store(&k, b"replacement").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        failpoint::disarm("cache.store");
        // The failed store never touched the existing entry.
        assert_eq!(c.load(&k), Lookup::Hit(b"original".to_vec()));
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn injected_read_failure_reports_quarantined_not_panic() {
        let _g = fp_lock();
        let c = fresh("fp_read");
        let k = key(8);
        c.store(&k, b"bytes").unwrap();
        failpoint::configure("cache.read", "err");
        match c.load(&k) {
            Lookup::Quarantined(why) => assert!(why.contains("injected"), "{why}"),
            other => panic!("expected quarantined-style miss, got {other:?}"),
        }
        failpoint::disarm("cache.read");
        // The entry itself is intact once the fault clears.
        assert_eq!(c.load(&k), Lookup::Hit(b"bytes".to_vec()));
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn injected_quarantine_rename_failure_still_heals() {
        let _g = fp_lock();
        let c = fresh("fp_quar");
        let k = key(9);
        c.store(&k, b"truth").unwrap();
        let path = c.entry_path(&k);
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x20;
        std::fs::write(&path, &data).unwrap();
        failpoint::configure("cache.quarantine", "err");
        match c.load(&k) {
            Lookup::Quarantined(why) => assert!(why.contains("entry removed"), "{why}"),
            other => panic!("corrupt entry served: {other:?}"),
        }
        failpoint::disarm("cache.quarantine");
        assert!(
            !path.exists(),
            "corrupt entry must leave the serving path even unquarantined"
        );
        c.store(&k, b"truth").unwrap();
        assert_eq!(c.load(&k), Lookup::Hit(b"truth".to_vec()));
        let _ = std::fs::remove_dir_all(&c.dir);
    }
}
