//! Admission control for `dcnserve`: a fixed worker pool fronted by a
//! bounded wait queue.
//!
//! The overload policy is *shed, never stall*: when all worker slots are
//! busy a request may wait in the queue, but once the queue is full new
//! requests are rejected immediately with an explicit `overloaded`
//! response. A queued request waits no longer than its own deadline —
//! there is no path on which a client blocks indefinitely, so a traffic
//! spike degrades into fast rejections instead of a pile of hung
//! connections (which is how daemons wedge).
//!
//! Implementation is a hand-rolled counting semaphore (`Mutex` +
//! `Condvar`, hermetic workspace) whose permits release on drop, so a
//! panicking connection thread can never leak a worker slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How an admission attempt ended.
#[derive(Debug)]
pub enum Admit {
    /// A worker slot is held until the [`Permit`] drops.
    Granted(Permit),
    /// Worker pool busy *and* queue full: shed the request now.
    Overloaded,
    /// Queued, but the request's deadline passed before a slot freed.
    DeadlineExceeded,
}

#[derive(Debug, Default)]
struct Counts {
    running: usize,
    queued: usize,
}

/// The gate itself. Clone the [`Arc`] freely; all connection threads
/// share one.
#[derive(Debug)]
pub struct Admission {
    counts: Mutex<Counts>,
    freed: Condvar,
    max_workers: usize,
    max_queue: usize,
    /// Total requests shed with `Overloaded` (stats visibility).
    pub shed: AtomicU64,
}

impl Admission {
    pub fn new(max_workers: usize, max_queue: usize) -> Arc<Admission> {
        Arc::new(Admission {
            counts: Mutex::new(Counts::default()),
            freed: Condvar::new(),
            max_workers: max_workers.max(1),
            max_queue,
            shed: AtomicU64::new(0),
        })
    }

    /// Tries to take a worker slot, waiting in the bounded queue until
    /// `deadline` if the pool is busy.
    pub fn acquire(self: &Arc<Self>, deadline: Instant) -> Admit {
        let mut counts = self.counts.lock().unwrap();
        if counts.running < self.max_workers {
            counts.running += 1;
            return Admit::Granted(Permit {
                gate: Arc::clone(self),
            });
        }
        if counts.queued >= self.max_queue {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Admit::Overloaded;
        }
        counts.queued += 1;
        loop {
            let now = Instant::now();
            if counts.running < self.max_workers {
                counts.queued -= 1;
                counts.running += 1;
                return Admit::Granted(Permit {
                    gate: Arc::clone(self),
                });
            }
            if now >= deadline {
                counts.queued -= 1;
                return Admit::DeadlineExceeded;
            }
            let (c, _timed_out) = self
                .freed
                .wait_timeout(counts, deadline.duration_since(now))
                .unwrap();
            counts = c;
        }
    }

    /// Snapshot of (running, queued) — stats visibility.
    pub fn occupancy(&self) -> (usize, usize) {
        let c = self.counts.lock().unwrap();
        (c.running, c.queued)
    }
}

/// A held worker slot; releasing is infallible and automatic.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<Admission>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut counts = self.gate.counts.lock().unwrap();
        counts.running -= 1;
        drop(counts);
        self.gate.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn soon(ms: u64) -> Instant {
        Instant::now() + Duration::from_millis(ms)
    }

    #[test]
    fn grants_up_to_capacity_then_sheds() {
        let gate = Admission::new(2, 0);
        let a = gate.acquire(soon(10));
        let b = gate.acquire(soon(10));
        assert!(matches!(a, Admit::Granted(_)));
        assert!(matches!(b, Admit::Granted(_)));
        // Pool full, queue of 0: immediate shed, no waiting.
        let t0 = Instant::now();
        assert!(matches!(gate.acquire(soon(5_000)), Admit::Overloaded));
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "shed must not stall"
        );
        assert_eq!(gate.shed.load(Ordering::Relaxed), 1);
        drop(a);
        assert!(matches!(gate.acquire(soon(10)), Admit::Granted(_)));
    }

    #[test]
    fn queued_request_wakes_when_slot_frees() {
        let gate = Admission::new(1, 1);
        let held = gate.acquire(soon(10));
        assert!(matches!(held, Admit::Granted(_)));
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.acquire(soon(5_000)));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(gate.occupancy(), (1, 1));
        drop(held);
        assert!(matches!(waiter.join().unwrap(), Admit::Granted(_)));
    }

    #[test]
    fn queued_request_times_out_at_deadline() {
        let gate = Admission::new(1, 4);
        let _held = gate.acquire(soon(10));
        let t0 = Instant::now();
        assert!(matches!(gate.acquire(soon(100)), Admit::DeadlineExceeded));
        assert!(t0.elapsed() >= Duration::from_millis(100));
        assert_eq!(gate.occupancy(), (1, 0), "timed-out waiter left the queue");
    }

    #[test]
    fn permit_drop_is_panic_safe() {
        let gate = Admission::new(1, 0);
        let g2 = Arc::clone(&gate);
        let _ = std::thread::spawn(move || {
            let _p = g2.acquire(soon(10));
            panic!("connection thread dies");
        })
        .join();
        // The slot must have been released by the unwinding drop.
        assert!(matches!(gate.acquire(soon(10)), Admit::Granted(_)));
    }
}
