#!/usr/bin/env bash
# Hermetic CI for the workspace: formatting, lints as errors, full tests.
# No network access required — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> golden trace regression"
cargo test --release -q --test trace_regression

echo "==> traced dcnsim run + JSONL schema check"
trace_out="$(mktemp -d)/trace_tiny.jsonl"
cargo run --release --bin dcnsim -- examples/configs/trace_tiny.json \
  --trace "$trace_out" > /dev/null
test -s "$trace_out"
# Every line is a flat JSON object led by integer time and event tag.
if grep -qvE '^\{"t": [0-9]+, "ev": "[a-z_]+"' "$trace_out"; then
  echo "malformed trace line:"; grep -vE '^\{"t": [0-9]+, "ev": "[a-z_]+"' "$trace_out" | head -3
  exit 1
fi
grep -q '"ev": "enqueue"' "$trace_out"
grep -q '"ev": "fault"' "$trace_out"
rm -rf "$(dirname "$trace_out")"

echo "==> telemetry smoke: same-seed runs, schema, manifest, zero drift"
obs_dir="$(mktemp -d)"
for run in a b; do
  cargo run --release --bin dcnsim -- examples/configs/trace_tiny.json \
    --telemetry "$obs_dir/ts_$run.jsonl" --manifest "$obs_dir/man_$run.json" \
    > /dev/null
done
test -s "$obs_dir/ts_a.jsonl"
test -s "$obs_dir/man_a.json"
# Same seed ⇒ byte-identical telemetry time series.
cmp "$obs_dir/ts_a.jsonl" "$obs_dir/ts_b.jsonl"
# Every telemetry line is a sample on the cadence grid, integer-only.
if grep -qvE '^\{"t": [0-9]+, "ev": "sample", ' "$obs_dir/ts_a.jsonl"; then
  echo "malformed telemetry line:"
  grep -vE '^\{"t": [0-9]+, "ev": "sample", ' "$obs_dir/ts_a.jsonl" | head -3
  exit 1
fi
if grep -q '\.' "$obs_dir/ts_a.jsonl"; then
  echo "float leaked into telemetry JSONL:"
  grep '\.' "$obs_dir/ts_a.jsonl" | head -3
  exit 1
fi
# The manifest carries the schema tag, fingerprint, and conservation block.
for key in '"schema"' '"fingerprint"' '"conservation"' '"telemetry"'; do
  grep -q "$key" "$obs_dir/man_a.json"
done
# Two same-seed manifests must agree on every simulated field.
cargo run --release --bin dcnstat -- diff "$obs_dir/man_a.json" "$obs_dir/man_b.json"
# Analysis subcommands run over the artifacts they just produced.
cargo run --release --bin dcnstat -- queues "$obs_dir/ts_a.jsonl" > "$obs_dir/queues.tsv"
test -s "$obs_dir/queues.tsv"
cargo run --release --bin dcnstat -- util "$obs_dir/ts_a.jsonl" > "$obs_dir/util.tsv"
test -s "$obs_dir/util.tsv"
rm -rf "$obs_dir"

echo "==> dcnsim error handling (clean failure, no panic)"
set +e
err_out="$(cargo run --release --bin dcnsim -- /nonexistent_config.json 2>&1 >/dev/null)"
err_rc=$?
set -e
test "$err_rc" -ne 0
echo "$err_out" | grep -q '^dcnsim: error:'
if echo "$err_out" | grep -q 'panicked'; then
  echo "dcnsim panicked instead of failing cleanly"; exit 1
fi

echo "==> tracing overhead gate (NopTracer must stay free)"
cargo run --release -p dcn-bench --bin trace_overhead -- --check > /dev/null

echo "==> cargo build --examples"
cargo build --release --workspace --examples

echo "==> examples/quickstart"
cargo run --release --example quickstart

echo "CI OK"
