#!/usr/bin/env bash
# Hermetic CI for the workspace: formatting, lints as errors, full tests.
# No network access required — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo build --examples"
cargo build --release --workspace --examples

echo "==> examples/quickstart"
cargo run --release --example quickstart

echo "CI OK"
