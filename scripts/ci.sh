#!/usr/bin/env bash
# Hermetic CI for the workspace: formatting, lints as errors, full tests.
# No network access required — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> golden trace regression"
cargo test --release -q --test trace_regression

echo "==> traced dcnsim run + JSONL schema check"
trace_out="$(mktemp -d)/trace_tiny.jsonl"
cargo run --release --bin dcnsim -- examples/configs/trace_tiny.json \
  --trace "$trace_out" > /dev/null
test -s "$trace_out"
# Every line is a flat JSON object led by integer time and event tag.
if grep -qvE '^\{"t": [0-9]+, "ev": "[a-z_]+"' "$trace_out"; then
  echo "malformed trace line:"; grep -vE '^\{"t": [0-9]+, "ev": "[a-z_]+"' "$trace_out" | head -3
  exit 1
fi
grep -q '"ev": "enqueue"' "$trace_out"
grep -q '"ev": "fault"' "$trace_out"
rm -rf "$(dirname "$trace_out")"

echo "==> telemetry smoke: same-seed runs, schema, manifest, zero drift"
obs_dir="$(mktemp -d)"
for run in a b; do
  cargo run --release --bin dcnsim -- examples/configs/trace_tiny.json \
    --telemetry "$obs_dir/ts_$run.jsonl" --manifest "$obs_dir/man_$run.json" \
    > /dev/null
done
test -s "$obs_dir/ts_a.jsonl"
test -s "$obs_dir/man_a.json"
# Same seed ⇒ byte-identical telemetry time series.
cmp "$obs_dir/ts_a.jsonl" "$obs_dir/ts_b.jsonl"
# Every telemetry line is a sample on the cadence grid, integer-only.
if grep -qvE '^\{"t": [0-9]+, "ev": "sample", ' "$obs_dir/ts_a.jsonl"; then
  echo "malformed telemetry line:"
  grep -vE '^\{"t": [0-9]+, "ev": "sample", ' "$obs_dir/ts_a.jsonl" | head -3
  exit 1
fi
if grep -q '\.' "$obs_dir/ts_a.jsonl"; then
  echo "float leaked into telemetry JSONL:"
  grep '\.' "$obs_dir/ts_a.jsonl" | head -3
  exit 1
fi
# The manifest carries the schema tag, fingerprint, and conservation block.
for key in '"schema"' '"fingerprint"' '"conservation"' '"telemetry"'; do
  grep -q "$key" "$obs_dir/man_a.json"
done
# Two same-seed manifests must agree on every simulated field.
cargo run --release --bin dcnstat -- diff "$obs_dir/man_a.json" "$obs_dir/man_b.json"
# Analysis subcommands run over the artifacts they just produced.
cargo run --release --bin dcnstat -- queues "$obs_dir/ts_a.jsonl" > "$obs_dir/queues.tsv"
test -s "$obs_dir/queues.tsv"
cargo run --release --bin dcnstat -- util "$obs_dir/ts_a.jsonl" > "$obs_dir/util.tsv"
test -s "$obs_dir/util.tsv"
rm -rf "$obs_dir"

echo "==> parallel engine gate (threads 1/2/4: all artifacts byte-identical)"
par_dir="$(mktemp -d)"
for n in 1 2 4; do
  cargo run --release --bin dcnsim -- examples/configs/trace_tiny.json \
    --threads "$n" --json \
    --trace "$par_dir/trace_$n.jsonl" --telemetry "$par_dir/ts_$n.jsonl" \
    --manifest "$par_dir/man_$n.json" > "$par_dir/report_$n.json"
done
# The sharded schedule is thread-count-invariant: every artifact — metrics
# report, event trace, telemetry series — must match byte-for-byte, and
# the manifests must agree on every simulated field (the deterministic
# engine counter block included; only WALL_CLOCK_FIELDS leaves may vary).
for n in 2 4; do
  cmp "$par_dir/report_1.json" "$par_dir/report_$n.json"
  cmp "$par_dir/trace_1.jsonl" "$par_dir/trace_$n.jsonl"
  cmp "$par_dir/ts_1.jsonl" "$par_dir/ts_$n.jsonl"
  cargo run --release --bin dcnstat -- diff "$par_dir/man_1.json" "$par_dir/man_$n.json"
done
# Per-shard balance table renders from the 2-thread run's manifest.
cargo run --release --bin dcnstat -- shards "$par_dir/man_2.json" > "$par_dir/shards.tsv"
grep -q '^epochs ' "$par_dir/shards.tsv"
test "$(grep -cE '^[0-9]+\s' "$par_dir/shards.tsv")" -eq 8
rm -rf "$par_dir"

echo "==> parallel determinism property sweep (random topo/transport/chaos)"
cargo test --release -q --test parallel_determinism

echo "==> dcnsim error handling (clean failure, no panic)"
set +e
err_out="$(cargo run --release --bin dcnsim -- /nonexistent_config.json 2>&1 >/dev/null)"
err_rc=$?
set -e
test "$err_rc" -ne 0
echo "$err_out" | grep -q '^dcnsim: error:'
if echo "$err_out" | grep -q 'panicked'; then
  echo "dcnsim panicked instead of failing cleanly"; exit 1
fi

echo "==> checkpoint equivalence gate (resume must be byte-exact)"
cargo test --release -q --test checkpoint_resume

echo "==> checkpoint corruption gate (damage is final, never restored)"
cargo test --release -q --test checkpoint_corruption

echo "==> crash-consistency harness (every failpoint site has a recovery story)"
# Already ran in debug as part of the workspace tests; the release re-run
# proves the recovery invariants are profile-independent.
cargo test --release -q --test crash_consistency

echo "==> dcnrun crash/hang supervision gates"
run_dir="$(mktemp -d)"
cat > "$run_dir/job.json" <<'EOF'
{
  "topology": { "kind": "fat_tree", "k": 4 },
  "routing": { "kind": "ecmp" },
  "workload": { "pattern": { "kind": "all_to_all" } },
  "lambda": 800.0,
  "window_ms": [0, 8],
  "seed": 5,
  "faults": { "kind": "random_link_outages", "count": 2, "down_ms": 2, "up_ms": 5, "seed": 3 }
}
EOF
dcnrun() { cargo run --release --quiet --bin dcnrun -- "$@"; }
# Uninterrupted supervised run.
dcnrun run "$run_dir/job.json" --out-dir "$run_dir/straight" --checkpoint-every-ms 0
# Worker SIGKILLs itself after the 2nd checkpoint; the retry resumes from
# it and the final result must be byte-identical.
dcnrun run "$run_dir/job.json" --out-dir "$run_dir/crashed" \
  --checkpoint-every-ms 0 --die-after-checkpoints 2
cmp "$run_dir/straight/job.result.json" "$run_dir/crashed/job.result.json"
# Hung worker with no retry budget: the watchdog must kill it, the exit
# code must say timeout (3), and the report must salvage the checkpoint.
set +e
dcnrun run "$run_dir/job.json" --out-dir "$run_dir/hung" \
  --checkpoint-every-ms 0 --stall-after-checkpoints 1 --timeout-s 2 --retries 0
hung_rc=$?
set -e
test "$hung_rc" -eq 3
grep -q '"status": "timeout"' "$run_dir/hung/job.report.json"
grep -q '"checkpoint":' "$run_dir/hung/job.report.json"
# Invalid configs are classified (exit 1), never retried.
echo '{"lambda_typo": 1}' > "$run_dir/bad.json"
set +e
dcnrun run "$run_dir/bad.json" --out-dir "$run_dir/bad" 2> /dev/null
bad_rc=$?
set -e
test "$bad_rc" -eq 1
rm -rf "$run_dir"

echo "==> dcnrun batch gates (abort-by-default vs --keep-going summary)"
batch_dir="$(mktemp -d)"
cat > "$batch_dir/ok1.json" <<'EOF'
{
  "topology": { "kind": "fat_tree", "k": 4 },
  "routing": { "kind": "ecmp" },
  "workload": { "pattern": { "kind": "all_to_all" } },
  "lambda": 300.0,
  "window_ms": [0, 2],
  "seed": 5
}
EOF
echo '{"lambda_typo": 1}' > "$batch_dir/bad.json"
sed 's/"seed": 5/"seed": 6/' "$batch_dir/ok1.json" > "$batch_dir/ok2.json"
# Default: the batch aborts at the first failure; the job after the bad
# one is recorded as skipped, and the exit code is the worst seen.
set +e
dcnrun batch "$batch_dir/ok1.json" "$batch_dir/bad.json" "$batch_dir/ok2.json" \
  --out-dir "$batch_dir/abort" 2> /dev/null
abort_rc=$?
set -e
test "$abort_rc" -ne 0
grep -q '"keep_going": false' "$batch_dir/abort/batch.summary.json"
grep -q '"status": "skipped"' "$batch_dir/abort/batch.summary.json"
test ! -e "$batch_dir/abort/ok2.result.json"
# --keep-going: every job runs, the summary counts the failure, and the
# exit code is still nonzero because one job failed. The supervision
# metrics file must tell the same story in Prometheus text.
set +e
dcnrun batch "$batch_dir/ok1.json" "$batch_dir/bad.json" "$batch_dir/ok2.json" \
  --out-dir "$batch_dir/keep" --keep-going --jobs 2 \
  --metrics "$batch_dir/keep.prom" 2> /dev/null
keep_rc=$?
set -e
test "$keep_rc" -ne 0
grep -q '"keep_going": true' "$batch_dir/keep/batch.summary.json"
grep -q '"ok": 2' "$batch_dir/keep/batch.summary.json"
grep -q '"failed": 1' "$batch_dir/keep/batch.summary.json"
test -s "$batch_dir/keep/ok2.result.json"
grep -q '^dcnrun_jobs_ok_total 2' "$batch_dir/keep.prom"
grep -q '^dcnrun_jobs_failed_total 1' "$batch_dir/keep.prom"
grep -q '^dcnrun_job_wall_ms_count 3' "$batch_dir/keep.prom"
rm -rf "$batch_dir"

echo "==> dcnserve gates (soak, cache equivalence, corruption heal, drain)"
cargo build --release --quiet --bin dcnserve
cargo test --release -q --test serve_soak
serve_dir="$(mktemp -d)"
cat > "$serve_dir/job.json" <<'EOF'
{
  "topology": { "kind": "fat_tree", "k": 4 },
  "routing": { "kind": "ecmp" },
  "workload": { "pattern": { "kind": "all_to_all" } },
  "lambda": 300.0,
  "window_ms": [0, 2],
  "seed": 7
}
EOF
# Daemon with chaos injection: every job's first worker attempt SIGKILLs
# itself after one checkpoint, so even the CI path exercises resume.
./target/release/dcnserve serve --tcp 127.0.0.1:0 \
  --addr-file "$serve_dir/addr" --state-dir "$serve_dir/state" \
  --checkpoint-every-ms 0 --inject-worker-crash --backoff-ms 50 \
  2> "$serve_dir/daemon.log" &
serve_pid=$!
trap 'kill -9 "$serve_pid" 2> /dev/null || true' EXIT
for _ in $(seq 1 100); do test -s "$serve_dir/addr" && break; sleep 0.1; done
serve_addr="$(head -n 1 "$serve_dir/addr")"
dcnserve() { ./target/release/dcnserve "$@"; }
# Cold (computed through a crash + resume) vs warm (served from cache)
# must be byte-identical.
dcnserve request "$serve_dir/job.json" --tcp "$serve_addr" > "$serve_dir/cold.json" 2> /dev/null
dcnserve request "$serve_dir/job.json" --tcp "$serve_addr" > "$serve_dir/warm.json" 2> /dev/null
test -s "$serve_dir/cold.json"
cmp "$serve_dir/cold.json" "$serve_dir/warm.json"
# Corrupt the cache entry on disk: the daemon must quarantine it and
# recompute the same bytes, never serve the rot.
truncate -s -2 "$serve_dir/state/cache/"*.res
dcnserve request "$serve_dir/job.json" --tcp "$serve_addr" > "$serve_dir/healed.json" 2> /dev/null
cmp "$serve_dir/cold.json" "$serve_dir/healed.json"
ls "$serve_dir/state/cache/quarantine/" | grep -q '.res'
dcnserve ping --tcp "$serve_addr" > /dev/null
# Live observability: dcnstat top renders one refresh against the daemon,
# and the Prometheus exposition agrees with the requests we just made.
cargo run --release --quiet --bin dcnstat -- top --tcp "$serve_addr" --count 1 \
  | grep -q '^requests '
dcnserve metrics --tcp "$serve_addr" > "$serve_dir/metrics.prom"
grep -q '^# TYPE dcnserve_requests_total counter' "$serve_dir/metrics.prom"
grep -q '^dcnserve_worker_relaunches_total [1-9]' "$serve_dir/metrics.prom"
# Stats reconciliation: every request the daemon read lands in exactly one
# outcome bucket. We sent 3 runs (cold, warm, healed), 1 ping, 1 top poll,
# 1 metrics scrape, and the stats op below — so requests minus the four
# non-run ops must equal the summed run outcomes.
stats_json="$(dcnserve stats --tcp "$serve_addr")"
sget() { echo "$stats_json" | sed -n 's/.*"'"$1"'": \([0-9]*\).*/\1/p' | head -n 1; }
outcomes=$(( $(sget run_ok) + $(sget served_cached) + $(sget coalesced) \
  + $(sget overloaded) + $(sget deadline_exceeded) + $(sget errors_config) \
  + $(sget errors_unknown_op) + $(sget errors_crash) + $(sget errors_ckpt_corrupt) \
  + $(sget errors_internal) + $(sget draining_refused) + $(sget protocol_errors) ))
if [ "$(sget requests)" -ne "$(( outcomes + 4 ))" ]; then
  echo "dcnserve stats ledger does not balance: $stats_json"; exit 1
fi
test "$(sget run_ok)" -eq 2          # cold + healed both computed
test "$(sget served_cached)" -eq 1   # warm came from the cache
test "$(sget cache_entries)" -ge 1
# SIGTERM must drain cleanly: exit 0, taxonomy's "ok".
kill -TERM "$serve_pid"
set +e
wait "$serve_pid"
drain_rc=$?
set -e
trap - EXIT
test "$drain_rc" -eq 0
rm -rf "$serve_dir"

echo "==> failpoint-armed dcnserve soak (ENOSPC checkpoints + LRU cache bound, relcheck)"
# The daemon runs under relcheck (release + debug assertions) with every
# worker checkpoint save failing ENOSPC and the cache bounded to a single
# entry: every request must still answer byte-identical results — the
# service degrades (counted), it never refuses or corrupts.
cargo build --profile relcheck --quiet --bin dcnserve
cargo build --release --quiet --bin dcnrun
fp_dir="$(mktemp -d)"
cat > "$fp_dir/a.json" <<'EOF'
{
  "topology": { "kind": "fat_tree", "k": 4 },
  "routing": { "kind": "ecmp" },
  "workload": { "pattern": { "kind": "all_to_all" } },
  "lambda": 1000.0,
  "window_ms": [0, 2],
  "seed": 7
}
EOF
sed 's/"seed": 7/"seed": 8/' "$fp_dir/a.json" > "$fp_dir/b.json"
# Unarmed ground truth for config A, computed by dcnrun.
cargo run --release --quiet --bin dcnrun -- run "$fp_dir/a.json" \
  --out-dir "$fp_dir/truth" --checkpoint-every-ms 0
truth_size="$(stat -c%s "$fp_dir/truth/a.result.json")"
DCN_FAILPOINTS='ckpt.save.write=enospc' ./target/relcheck/dcnserve serve \
  --tcp 127.0.0.1:0 --addr-file "$fp_dir/addr" --state-dir "$fp_dir/state" \
  --checkpoint-every-ms 0 --cache-max-bytes "$(( truth_size + 120 ))" \
  2> "$fp_dir/daemon.log" &
fp_pid=$!
trap 'kill -9 "$fp_pid" 2> /dev/null || true' EXIT
for _ in $(seq 1 100); do test -s "$fp_dir/addr" && break; sleep 0.1; done
fp_addr="$(head -n 1 "$fp_dir/addr")"
# Cold A (worker degrades, result cached), warm A (cache hit), cold B
# (degrades again; storing B evicts A past the one-entry bound).
./target/relcheck/dcnserve request "$fp_dir/a.json" --tcp "$fp_addr" \
  > "$fp_dir/a_cold.json" 2> /dev/null
./target/relcheck/dcnserve request "$fp_dir/a.json" --tcp "$fp_addr" \
  > "$fp_dir/a_warm.json" 2> /dev/null
./target/relcheck/dcnserve request "$fp_dir/b.json" --tcp "$fp_addr" \
  > "$fp_dir/b_cold.json" 2> /dev/null
cmp "$fp_dir/truth/a.result.json" "$fp_dir/a_cold.json"   # degraded ≠ different
cmp "$fp_dir/a_cold.json" "$fp_dir/a_warm.json"           # cached ≠ different
test -s "$fp_dir/b_cold.json"
fp_stats="$(./target/relcheck/dcnserve stats --tcp "$fp_addr")"
fpget() { echo "$fp_stats" | sed -n 's/.*"'"$1"'": \([0-9]*\).*/\1/p' | head -n 1; }
test "$(fpget degraded)" -eq 2        # both cold runs lost checkpointing
test "$(fpget served_cached)" -eq 1   # the warm A repeat
test "$(fpget cache_evicted)" -ge 1   # storing B pushed A out
test "$(fpget cache_entries)" -eq 1   # the bound holds exactly one entry
kill -TERM "$fp_pid"
set +e
wait "$fp_pid"
fp_rc=$?
set -e
trap - EXIT
test "$fp_rc" -eq 0                   # degraded daemons still drain cleanly
rm -rf "$fp_dir"

echo "==> chaos soak (20 seeded fault plans x 3 transports, zero violations)"
cargo run --release --quiet --bin dcnrun -- chaos --plans 20 --seed 1

echo "==> chaos soak under debug assertions (arena liveness, calendar invariants)"
# The relcheck profile is release + debug-assertions: the packet arena's
# use-after-free/double-free checks and the calendar queue's ordering
# asserts all fire at near-release speed while faults churn ids.
cargo run --profile relcheck --quiet --bin dcnrun -- chaos --plans 5 --seed 2

echo "==> tracing overhead gate (NopTracer and disarmed failpoints must stay free)"
cargo run --release -p dcn-bench --bin trace_overhead -- --check > /dev/null

echo "==> engine perf gate (BENCH_sim.json: simulated fields exact, rate floor, shard scaling thread-invariant)"
# Re-baseline deliberate engine changes with:
#   cargo run --release -p dcn-bench --bin bench -- perf --bless
# and commit the updated BENCH_sim.json next to the code that moved it.
cargo run --release -p dcn-bench --bin bench -- perf --check > /dev/null

echo "==> cargo build --examples"
cargo build --release --workspace --examples

echo "==> examples/quickstart"
cargo run --release --example quickstart

echo "CI OK"
