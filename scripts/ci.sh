#!/usr/bin/env bash
# Hermetic CI for the workspace: formatting, lints as errors, full tests.
# No network access required — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> golden trace regression"
cargo test --release -q --test trace_regression

echo "==> traced dcnsim run + JSONL schema check"
trace_out="$(mktemp -d)/trace_tiny.jsonl"
cargo run --release --bin dcnsim -- examples/configs/trace_tiny.json \
  --trace "$trace_out" > /dev/null
test -s "$trace_out"
# Every line is a flat JSON object led by integer time and event tag.
if grep -qvE '^\{"t": [0-9]+, "ev": "[a-z_]+"' "$trace_out"; then
  echo "malformed trace line:"; grep -vE '^\{"t": [0-9]+, "ev": "[a-z_]+"' "$trace_out" | head -3
  exit 1
fi
grep -q '"ev": "enqueue"' "$trace_out"
grep -q '"ev": "fault"' "$trace_out"
rm -rf "$(dirname "$trace_out")"

echo "==> tracing overhead gate (NopTracer must stay free)"
cargo run --release -p dcn-bench --bin trace_overhead -- --check > /dev/null

echo "==> cargo build --examples"
cargo build --release --workspace --examples

echo "==> examples/quickstart"
cargo run --release --example quickstart

echo "CI OK"
