#!/usr/bin/env bash
# Hermetic CI for the workspace: formatting, lints as errors, full tests.
# No network access required — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "CI OK"
