//! Property-style tests over the topology generators: structural
//! invariants checked across a seeded sweep of parameterizations
//! (dependency-free stand-in for the old proptest harness).

use dcn_rng::Rng;
use dcn_topology::fattree::FatTree;
use dcn_topology::jellyfish::Jellyfish;
use dcn_topology::longhop::Longhop;
use dcn_topology::metrics::path_stats;
use dcn_topology::xpander::Xpander;

/// Fat-trees: size formulas, port budgets, connectivity.
#[test]
fn fat_tree_structure() {
    for k in (4u32..=16).step_by(2) {
        let ft = FatTree::full(k);
        let t = ft.build();
        assert_eq!(t.num_nodes(), (5 * k * k / 4) as usize);
        assert_eq!(t.num_servers(), (k * k * k / 4) as usize);
        assert!(t.is_connected());
        for n in 0..t.num_nodes() as u32 {
            assert!(t.degree(n) + t.servers_at(n) as usize <= k as usize);
        }
        // Switch-level diameter of a multi-pod fat-tree is exactly 4.
        assert_eq!(path_stats(&t).diameter, 4);
    }
}

/// Trimmed fat-trees stay connected and within the cost budget.
#[test]
fn fat_tree_cost_fraction() {
    let mut rng = Rng::seed_from_u64(0xFA7);
    for _ in 0..32 {
        let k = 2 * rng.gen_range(3u32..9);
        let frac = rng.gen_range(0.5f64..1.0);
        // The cheapest valid trim keeps one agg per pod and one core.
        let cheapest = (k * k / 2 + k + 1) as f64;
        let full = FatTree::full(k).num_switches() as f64;
        if frac < cheapest / full {
            continue;
        }
        let ft = FatTree::at_cost_fraction(k, frac);
        let t = ft.build();
        assert!(t.is_connected());
        assert!(ft.num_switches() as f64 <= full * frac + 0.5);
    }
}

/// Jellyfish: simple, connected, near-regular.
#[test]
fn jellyfish_structure() {
    let mut rng = Rng::seed_from_u64(0x1E11);
    let mut cases = 0;
    while cases < 32 {
        let n = rng.gen_range(12u32..60);
        let d = rng.gen_range(3u32..7);
        let seed = rng.gen_range(0u64..1000);
        if n <= d + 1 || !(n * d).is_multiple_of(2) {
            continue;
        }
        cases += 1;
        let t = Jellyfish::new(n, d, 2, seed).build();
        assert!(t.is_connected());
        let mut deficient = 0;
        for a in 0..n {
            assert!(t.degree(a) <= d as usize);
            if t.degree(a) < d as usize {
                deficient += 1;
            }
            for b in (a + 1)..n {
                assert!(t.multiplicity(a, b) <= 1, "parallel edge {a}-{b}");
            }
        }
        assert!(deficient <= 1);
    }
}

/// Xpander lifts: d-regular, connected, one matching per meta-pair.
#[test]
fn xpander_structure() {
    let mut rng = Rng::seed_from_u64(0x9A);
    for _ in 0..32 {
        let d = rng.gen_range(3u32..8);
        let lift = rng.gen_range(2u32..8);
        let seed = rng.gen_range(0u64..1000);
        let t = Xpander::new(d, lift, 2, seed).build();
        assert_eq!(t.num_nodes() as u32, (d + 1) * lift);
        assert!(t.is_connected());
        for n in 0..t.num_nodes() as u32 {
            assert_eq!(t.degree(n), d as usize);
            let g = t.group(n).unwrap();
            for &(v, _) in t.neighbors(n) {
                assert_ne!(t.group(v).unwrap(), g, "intra-meta-node edge");
            }
        }
    }
}

/// Cayley graphs on F2^m: vertex-transitive degree, connectivity when
/// the generators span the space.
#[test]
fn longhop_structure() {
    for m in 3u32..8 {
        let lh = Longhop::folded_hypercube(m, 1);
        let t = lh.build();
        assert!(t.is_connected());
        for n in 0..t.num_nodes() as u32 {
            assert_eq!(t.degree(n), (m + 1) as usize);
        }
        // Folded hypercube diameter = ceil(m/2).
        assert_eq!(path_stats(&t).diameter, m.div_ceil(2));
    }
}

/// Path stats basics: diameter bounds average, histogram sums to all
/// ordered pairs.
#[test]
fn path_stats_consistent() {
    let mut rng = Rng::seed_from_u64(0x57A75);
    for _ in 0..32 {
        let d = rng.gen_range(3u32..6);
        let lift = rng.gen_range(2u32..6);
        let seed = rng.gen_range(0u64..100);
        let t = Xpander::new(d, lift, 1, seed).build();
        let ps = path_stats(&t);
        assert!(ps.avg_path_length <= ps.diameter as f64);
        assert!(ps.avg_path_length >= 1.0);
        let n = t.num_nodes() as u64;
        assert_eq!(ps.histogram.iter().sum::<u64>(), n * (n - 1));
    }
}

/// Random link failures: deterministic per seed, never disconnect, and
/// the survivor loses at most the requested fraction.
#[test]
fn random_failures_never_disconnect() {
    let mut rng = Rng::seed_from_u64(0xDEAD);
    for _ in 0..16 {
        let d = rng.gen_range(3u32..6);
        let lift = rng.gen_range(2u32..6);
        let frac = rng.gen_range(0.05f64..0.4);
        let seed = rng.gen_range(0u64..1000);
        let t = Xpander::new(d, lift, 1, seed).build();
        let f = t.with_random_failures(frac, seed);
        assert!(
            f.is_connected(),
            "failures disconnected {} at {frac}",
            t.name()
        );
        let want_removed = (t.num_links() as f64 * frac).round() as usize;
        assert!(t.num_links() - f.num_links() <= want_removed);
        let again = t.with_random_failures(frac, seed);
        let e1: Vec<_> = f.links().iter().map(|l| (l.a, l.b)).collect();
        let e2: Vec<_> = again.links().iter().map(|l| (l.a, l.b)).collect();
        assert_eq!(e1, e2, "same seed must cut the same links");
    }
}
