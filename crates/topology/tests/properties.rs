//! Property-based tests over the topology generators: structural
//! invariants that must hold for every valid parameterization.

use dcn_topology::fattree::FatTree;
use dcn_topology::jellyfish::Jellyfish;
use dcn_topology::longhop::Longhop;
use dcn_topology::metrics::path_stats;
use dcn_topology::xpander::Xpander;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fat-trees: size formulas, port budgets, connectivity.
    #[test]
    fn fat_tree_structure(k in (2u32..9).prop_map(|h| h * 2)) {
        let ft = FatTree::full(k);
        let t = ft.build();
        prop_assert_eq!(t.num_nodes(), (5 * k * k / 4) as usize);
        prop_assert_eq!(t.num_servers(), (k * k * k / 4) as usize);
        prop_assert!(t.is_connected());
        for n in 0..t.num_nodes() as u32 {
            prop_assert!(t.degree(n) + t.servers_at(n) as usize <= k as usize);
        }
        // Switch-level diameter of a multi-pod fat-tree is exactly 4.
        prop_assert_eq!(path_stats(&t).diameter, 4);
    }

    /// Trimmed fat-trees stay connected and within the cost budget.
    #[test]
    fn fat_tree_cost_fraction(k in (3u32..9).prop_map(|h| h * 2), frac in 0.5f64..1.0) {
        // The cheapest valid trim keeps one agg per pod and one core.
        let cheapest = (k * k / 2 + k + 1) as f64;
        let full = FatTree::full(k).num_switches() as f64;
        prop_assume!(frac >= cheapest / full);
        let ft = FatTree::at_cost_fraction(k, frac);
        let t = ft.build();
        prop_assert!(t.is_connected());
        let full = FatTree::full(k).num_switches() as f64;
        prop_assert!(ft.num_switches() as f64 <= full * frac + 0.5);
    }

    /// Jellyfish: simple, connected, near-regular.
    #[test]
    fn jellyfish_structure(
        n in 12u32..60,
        d in 3u32..7,
        seed in 0u64..1000,
    ) {
        prop_assume!(n > d + 1 && (n * d) % 2 == 0);
        let t = Jellyfish::new(n, d, 2, seed).build();
        prop_assert!(t.is_connected());
        let mut deficient = 0;
        for a in 0..n {
            prop_assert!(t.degree(a) <= d as usize);
            if t.degree(a) < d as usize {
                deficient += 1;
            }
            for b in (a + 1)..n {
                prop_assert!(t.multiplicity(a, b) <= 1, "parallel edge {}-{}", a, b);
            }
        }
        prop_assert!(deficient <= 1);
    }

    /// Xpander lifts: d-regular, connected, one matching per meta-pair.
    #[test]
    fn xpander_structure(d in 3u32..8, lift in 2u32..8, seed in 0u64..1000) {
        let t = Xpander::new(d, lift, 2, seed).build();
        prop_assert_eq!(t.num_nodes() as u32, (d + 1) * lift);
        prop_assert!(t.is_connected());
        for n in 0..t.num_nodes() as u32 {
            prop_assert_eq!(t.degree(n), d as usize);
            let g = t.group(n).unwrap();
            for &(v, _) in t.neighbors(n) {
                prop_assert_ne!(t.group(v).unwrap(), g, "intra-meta-node edge");
            }
        }
    }

    /// Cayley graphs on F2^m: vertex-transitive degree, connectivity when
    /// the generators span the space.
    #[test]
    fn longhop_structure(m in 3u32..8) {
        let lh = Longhop::folded_hypercube(m, 1);
        let t = lh.build();
        prop_assert!(t.is_connected());
        for n in 0..t.num_nodes() as u32 {
            prop_assert_eq!(t.degree(n), (m + 1) as usize);
        }
        // Folded hypercube diameter = ceil(m/2).
        prop_assert_eq!(path_stats(&t).diameter, m.div_ceil(2));
    }

    /// Path stats basics: diameter bounds average, histogram sums to all
    /// ordered pairs.
    #[test]
    fn path_stats_consistent(d in 3u32..6, lift in 2u32..6, seed in 0u64..100) {
        let t = Xpander::new(d, lift, 1, seed).build();
        let ps = path_stats(&t);
        prop_assert!(ps.avg_path_length <= ps.diameter as f64);
        prop_assert!(ps.avg_path_length >= 1.0);
        let n = t.num_nodes() as u64;
        prop_assert_eq!(ps.histogram.iter().sum::<u64>(), n * (n - 1));
    }
}
