//! Compact undirected multigraph used by every other crate.
//!
//! Nodes are switches (servers are modeled as per-switch attachment counts,
//! matching the paper's rack-granularity traffic matrices). Parallel edges
//! are allowed — oversubscribed fat-trees and small expanders use them.

use std::collections::VecDeque;

/// Index of a switch in a [`Topology`].
pub type NodeId = u32;

/// Index of an undirected link in a [`Topology`].
pub type LinkId = u32;

/// Role a switch plays in the network, used by routing and workloads to
/// decide where servers live and by fat-tree construction audits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Top-of-rack switch: has servers attached.
    Tor,
    /// Fat-tree aggregation-layer switch.
    Aggregation,
    /// Fat-tree core-layer switch.
    Core,
}

/// An undirected link between two switches with a capacity in line-rate
/// units (1.0 = one standard link, e.g. 10 Gbps in the paper's experiments).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    pub a: NodeId,
    pub b: NodeId,
    pub capacity: f64,
}

impl Link {
    /// The endpoint that is not `from`. Panics if `from` is neither endpoint.
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else {
            assert_eq!(from, self.b, "node {from} is not an endpoint");
            self.a
        }
    }
}

/// A static switch-level network topology.
///
/// Construction is append-only: add nodes, then links. Adjacency is kept as
/// `(neighbor, link)` pairs so parallel links stay distinguishable.
#[derive(Clone, Debug)]
pub struct Topology {
    name: String,
    kinds: Vec<NodeKind>,
    servers: Vec<u32>,
    links: Vec<Link>,
    adj: Vec<Vec<(NodeId, LinkId)>>,
    /// Optional structural grouping (Xpander meta-nodes, fat-tree pods).
    /// `groups[node]` is `u32::MAX` when the node is ungrouped.
    groups: Vec<u32>,
}

impl Topology {
    /// Creates an empty topology with a human-readable name.
    pub fn new(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            kinds: Vec::new(),
            servers: Vec::new(),
            links: Vec::new(),
            adj: Vec::new(),
            groups: Vec::new(),
        }
    }

    /// Adds a switch with `servers` attached servers; returns its id.
    pub fn add_node(&mut self, kind: NodeKind, servers: u32) -> NodeId {
        let id = self.kinds.len() as NodeId;
        self.kinds.push(kind);
        self.servers.push(servers);
        self.adj.push(Vec::new());
        self.groups.push(u32::MAX);
        id
    }

    /// Adds an undirected unit-capacity link.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> LinkId {
        self.add_link_cap(a, b, 1.0)
    }

    /// Adds an undirected link with an explicit capacity.
    pub fn add_link_cap(&mut self, a: NodeId, b: NodeId, capacity: f64) -> LinkId {
        assert!(a != b, "self-loops are not allowed (node {a})");
        assert!((a as usize) < self.adj.len() && (b as usize) < self.adj.len());
        assert!(capacity > 0.0, "links must have positive capacity");
        let id = self.links.len() as LinkId;
        self.links.push(Link { a, b, capacity });
        self.adj[a as usize].push((b, id));
        self.adj[b as usize].push((a, id));
        id
    }

    /// Assigns a structural group (pod / meta-node) to a node.
    pub fn set_group(&mut self, node: NodeId, group: u32) {
        self.groups[node as usize] = group;
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of switches.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of undirected links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Total number of servers across all switches.
    pub fn num_servers(&self) -> usize {
        self.servers.iter().map(|&s| s as usize).sum()
    }

    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node as usize]
    }

    /// Servers attached to `node`.
    pub fn servers_at(&self, node: NodeId) -> u32 {
        self.servers[node as usize]
    }

    /// Overrides the number of servers at a switch.
    pub fn set_servers(&mut self, node: NodeId, servers: u32) {
        self.servers[node as usize] = servers;
    }

    pub fn group(&self, node: NodeId) -> Option<u32> {
        match self.groups[node as usize] {
            u32::MAX => None,
            g => Some(g),
        }
    }

    pub fn link(&self, id: LinkId) -> Link {
        self.links[id as usize]
    }

    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbors of `node` as `(neighbor, link)` pairs; parallel links appear
    /// once per link.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[node as usize]
    }

    /// Network degree (number of switch-to-switch link endpoints) of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node as usize].len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// All switches that have at least one server (the traffic endpoints).
    pub fn tors_with_servers(&self) -> Vec<NodeId> {
        (0..self.num_nodes() as NodeId)
            .filter(|&n| self.servers[n as usize] > 0)
            .collect()
    }

    /// Sum of all link capacities (each undirected link counted once).
    pub fn total_capacity(&self) -> f64 {
        self.links.iter().map(|l| l.capacity).sum()
    }

    /// Order-sensitive FNV-1a fingerprint over the full structure — name,
    /// node kinds, per-node server counts, groups, and links (endpoints +
    /// capacity bits). Run manifests record it so two result files can be
    /// checked for having simulated the same fabric.
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h = (*h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        mix(&mut h, self.name.as_bytes());
        mix(&mut h, &(self.kinds.len() as u64).to_le_bytes());
        for (i, k) in self.kinds.iter().enumerate() {
            let tag: u64 = match k {
                NodeKind::Tor => 1,
                NodeKind::Aggregation => 2,
                NodeKind::Core => 3,
            };
            mix(&mut h, &tag.to_le_bytes());
            mix(&mut h, &(self.servers[i] as u64).to_le_bytes());
            mix(&mut h, &(self.groups[i] as u64).to_le_bytes());
        }
        mix(&mut h, &(self.links.len() as u64).to_le_bytes());
        for l in &self.links {
            mix(&mut h, &(l.a as u64).to_le_bytes());
            mix(&mut h, &(l.b as u64).to_le_bytes());
            mix(&mut h, &l.capacity.to_bits().to_le_bytes());
        }
        h
    }

    /// Unweighted BFS hop distances from `src` (`u32::MAX` = unreachable).
    pub fn bfs_distances(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_nodes()];
        dist[src as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let du = dist[u as usize];
            for &(v, _) in &self.adj[u as usize] {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// All-pairs shortest hop distances, O(V·E). Suitable for the ≤1000-node
    /// topologies in the paper's experiments.
    pub fn apsp(&self) -> Vec<Vec<u32>> {
        (0..self.num_nodes() as NodeId)
            .map(|s| self.bfs_distances(s))
            .collect()
    }

    /// True iff every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.num_nodes() == 0 {
            return true;
        }
        let d = self.bfs_distances(0);
        d.iter().all(|&x| x != u32::MAX)
    }

    /// Returns `true` if `a` and `b` share at least one link.
    pub fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.adj[a as usize].iter().any(|&(v, _)| v == b)
    }

    /// Number of parallel links between `a` and `b`.
    pub fn multiplicity(&self, a: NodeId, b: NodeId) -> usize {
        self.adj[a as usize]
            .iter()
            .filter(|&&(v, _)| v == b)
            .count()
    }

    /// Returns a copy of this topology with the given links removed
    /// (failure injection). Link ids are re-assigned densely; node ids and
    /// server placement are preserved. Returns `Err` (naming a cut pair)
    /// if the survivor is disconnected — callers model partitions
    /// explicitly if they want them, via [`Topology::without_links_largest_component`].
    pub fn without_links(&self, failed: &[LinkId]) -> Result<Topology, DisconnectedError> {
        let t = self.strip_links(failed);
        if let Some(unreachable) = t.bfs_distances(0).iter().position(|&d| d == u32::MAX) {
            return Err(DisconnectedError {
                removed: failed.len(),
                example_cut: (0, unreachable as NodeId),
            });
        }
        Ok(t)
    }

    /// Like [`Topology::without_links`], but tolerates partitions: nodes
    /// outside the largest surviving component keep their ids but lose all
    /// links and servers, so routing and traffic treat them as dead.
    pub fn without_links_largest_component(&self, failed: &[LinkId]) -> Topology {
        let t = self.strip_links(failed);
        // Label components; keep the one with the most servers (ties: most
        // nodes, then lowest root id — deterministic).
        let mut comp = vec![u32::MAX; t.num_nodes()];
        let mut best: Option<(u64, usize, u32)> = None;
        for root in 0..t.num_nodes() as NodeId {
            if comp[root as usize] != u32::MAX {
                continue;
            }
            let mut servers = 0u64;
            let mut size = 0usize;
            let mut q = VecDeque::from([root]);
            comp[root as usize] = root;
            while let Some(u) = q.pop_front() {
                servers += t.servers_at(u) as u64;
                size += 1;
                for &(v, _) in t.neighbors(u) {
                    if comp[v as usize] == u32::MAX {
                        comp[v as usize] = root;
                        q.push_back(v);
                    }
                }
            }
            let key = (servers, size, u32::MAX - root);
            if best.is_none_or(|b| key > b) {
                best = Some(key);
            }
        }
        let keep = best.map_or(0, |(_, _, inv)| u32::MAX - inv);
        let mut out = Topology::new(t.name.clone());
        for n in 0..t.num_nodes() as NodeId {
            let alive = comp[n as usize] == keep;
            out.add_node(t.kind(n), if alive { t.servers_at(n) } else { 0 });
            if let Some(g) = t.group(n) {
                out.set_group(n, g);
            }
        }
        for l in &t.links {
            if comp[l.a as usize] == keep {
                out.add_link_cap(l.a, l.b, l.capacity);
            }
        }
        out
    }

    fn strip_links(&self, failed: &[LinkId]) -> Topology {
        let failed: std::collections::HashSet<LinkId> = failed.iter().copied().collect();
        let mut t = Topology::new(format!("{} (-{} links)", self.name, failed.len()));
        for n in 0..self.num_nodes() as NodeId {
            t.add_node(self.kind(n), self.servers_at(n));
            if let Some(g) = self.group(n) {
                t.set_group(n, g);
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if !failed.contains(&(i as LinkId)) {
                t.add_link_cap(l.a, l.b, l.capacity);
            }
        }
        t
    }

    /// Fails a random `fraction` of links, deterministically per seed and
    /// without ever panicking: candidate links are visited in a seeded
    /// random order and a removal that would disconnect the network is
    /// skipped (resampled), so bridges survive. If the graph has fewer
    /// than `k` removable links the result simply loses fewer links.
    pub fn with_random_failures(&self, fraction: f64, seed: u64) -> Topology {
        use dcn_rng::{Rng, SliceRandom};
        assert!((0.0..1.0).contains(&fraction));
        let k = (self.num_links() as f64 * fraction).round() as usize;
        if k == 0 {
            return self.clone();
        }
        let mut rng = Rng::seed_from_u64(seed);
        let mut order: Vec<LinkId> = (0..self.num_links() as LinkId).collect();
        order.shuffle(&mut rng);
        let mut removed: Vec<LinkId> = Vec::with_capacity(k);
        let removed_set = &mut vec![false; self.num_links()];
        for &cand in &order {
            if removed.len() == k {
                break;
            }
            removed_set[cand as usize] = true;
            if self.connected_without(removed_set) {
                removed.push(cand);
            } else {
                removed_set[cand as usize] = false; // a bridge — resample
            }
        }
        self.without_links(&removed)
            .expect("greedy sampling kept the survivor connected")
    }

    /// Connectivity check with a link mask, allocation-light (used by the
    /// failure sampler's inner loop).
    fn connected_without(&self, removed: &[bool]) -> bool {
        if self.num_nodes() == 0 {
            return true;
        }
        let mut seen = vec![false; self.num_nodes()];
        let mut q = VecDeque::from([0 as NodeId]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = q.pop_front() {
            for &(v, l) in &self.adj[u as usize] {
                if !removed[l as usize] && !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    q.push_back(v);
                }
            }
        }
        count == self.num_nodes()
    }

    /// Serializes to the JSON shape `dcnsim`'s `{"kind": "file"}` topology
    /// config loads: name, kinds, servers, links, groups.
    pub fn to_json(&self) -> dcn_json::Json {
        use dcn_json::Json;
        let kind_str = |k: NodeKind| match k {
            NodeKind::Tor => "Tor",
            NodeKind::Aggregation => "Aggregation",
            NodeKind::Core => "Core",
        };
        Json::obj(vec![
            ("name", Json::from(self.name.clone())),
            (
                "kinds",
                Json::Arr(
                    self.kinds
                        .iter()
                        .map(|&k| Json::from(kind_str(k)))
                        .collect(),
                ),
            ),
            (
                "servers",
                Json::Arr(self.servers.iter().map(|&s| Json::from(s)).collect()),
            ),
            (
                "links",
                Json::Arr(
                    self.links
                        .iter()
                        .map(|l| {
                            Json::obj(vec![
                                ("a", Json::from(l.a)),
                                ("b", Json::from(l.b)),
                                ("capacity", Json::from(l.capacity)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "groups",
                Json::Arr(
                    self.groups
                        .iter()
                        .map(|&g| {
                            if g == u32::MAX {
                                dcn_json::Json::Null
                            } else {
                                Json::from(g)
                            }
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`Topology::to_json`]. The `groups` field is optional.
    pub fn from_json(v: &dcn_json::Json) -> Result<Topology, String> {
        let name = v.get("name").and_then(|n| n.as_str()).unwrap_or("loaded");
        let mut t = Topology::new(name);
        let kinds = v
            .get("kinds")
            .and_then(|k| k.as_array())
            .ok_or("missing 'kinds'")?;
        let servers = v
            .get("servers")
            .and_then(|s| s.as_array())
            .ok_or("missing 'servers'")?;
        if kinds.len() != servers.len() {
            return Err(format!(
                "kinds ({}) vs servers ({}) mismatch",
                kinds.len(),
                servers.len()
            ));
        }
        for (k, s) in kinds.iter().zip(servers) {
            let kind = match k.as_str() {
                Some("Tor") => NodeKind::Tor,
                Some("Aggregation") => NodeKind::Aggregation,
                Some("Core") => NodeKind::Core,
                other => return Err(format!("bad node kind {other:?}")),
            };
            let n = s.as_u64().ok_or("bad server count")? as u32;
            t.add_node(kind, n);
        }
        let links = v
            .get("links")
            .and_then(|l| l.as_array())
            .ok_or("missing 'links'")?;
        for l in links {
            let a = l
                .get("a")
                .and_then(|x| x.as_u64())
                .ok_or("link missing 'a'")? as NodeId;
            let b = l
                .get("b")
                .and_then(|x| x.as_u64())
                .ok_or("link missing 'b'")? as NodeId;
            let cap = l.get("capacity").and_then(|x| x.as_f64()).unwrap_or(1.0);
            if a as usize >= t.num_nodes() || b as usize >= t.num_nodes() {
                return Err(format!("link {a}-{b} references unknown node"));
            }
            t.add_link_cap(a, b, cap);
        }
        if let Some(groups) = v.get("groups").and_then(|g| g.as_array()) {
            for (n, g) in groups.iter().enumerate() {
                if let Some(g) = g.as_u64() {
                    t.set_group(n as NodeId, g as u32);
                }
            }
        }
        Ok(t)
    }
}

/// Removing a link set disconnected the topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DisconnectedError {
    /// How many links the caller removed.
    pub removed: usize,
    /// One (src, dst) pair with no surviving path.
    pub example_cut: (NodeId, NodeId),
}

impl std::fmt::Display for DisconnectedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "removing {} links disconnected the topology (no path {} -> {})",
            self.removed, self.example_cut.0, self.example_cut.1
        )
    }
}

impl std::error::Error for DisconnectedError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut t = Topology::new("triangle");
        let a = t.add_node(NodeKind::Tor, 2);
        let b = t.add_node(NodeKind::Tor, 2);
        let c = t.add_node(NodeKind::Tor, 2);
        t.add_link(a, b);
        t.add_link(b, c);
        t.add_link(c, a);
        t
    }

    #[test]
    fn basic_counts() {
        let t = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.num_servers(), 6);
        assert_eq!(t.degree(0), 2);
        assert!((t.total_capacity() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn link_other_endpoint() {
        let t = triangle();
        let l = t.link(0);
        assert_eq!(l.other(l.a), l.b);
        assert_eq!(l.other(l.b), l.a);
    }

    #[test]
    #[should_panic]
    fn link_other_panics_on_foreign_node() {
        let t = triangle();
        t.link(0).other(2); // link 0 joins nodes 0 and 1
    }

    #[test]
    fn bfs_on_path() {
        let mut t = Topology::new("path");
        let n: Vec<_> = (0..5).map(|_| t.add_node(NodeKind::Tor, 1)).collect();
        for w in n.windows(2) {
            t.add_link(w[0], w[1]);
        }
        let d = t.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert!(t.is_connected());
    }

    #[test]
    fn disconnected_detected() {
        let mut t = Topology::new("two islands");
        let a = t.add_node(NodeKind::Tor, 1);
        let b = t.add_node(NodeKind::Tor, 1);
        t.add_node(NodeKind::Tor, 1);
        t.add_link(a, b);
        assert!(!t.is_connected());
        assert_eq!(t.bfs_distances(0)[2], u32::MAX);
    }

    #[test]
    fn parallel_links_counted() {
        let mut t = Topology::new("multi");
        let a = t.add_node(NodeKind::Tor, 1);
        let b = t.add_node(NodeKind::Tor, 1);
        t.add_link(a, b);
        t.add_link(a, b);
        assert_eq!(t.multiplicity(a, b), 2);
        assert_eq!(t.degree(a), 2);
        assert_eq!(t.num_links(), 2);
    }

    #[test]
    fn groups_default_none() {
        let mut t = triangle();
        assert_eq!(t.group(0), None);
        t.set_group(0, 7);
        assert_eq!(t.group(0), Some(7));
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut t = Topology::new("loop");
        let a = t.add_node(NodeKind::Tor, 1);
        t.add_link(a, a);
    }

    #[test]
    fn without_links_preserves_nodes() {
        let mut t = triangle();
        t.set_group(1, 3);
        let survivor = t.without_links(&[0]).unwrap();
        assert_eq!(survivor.num_nodes(), 3);
        assert_eq!(survivor.num_links(), 2);
        assert_eq!(survivor.num_servers(), 6);
        assert_eq!(survivor.group(1), Some(3));
        assert!(!survivor.are_adjacent(0, 1));
    }

    #[test]
    fn without_links_reports_disconnection() {
        let mut t = Topology::new("path2");
        let a = t.add_node(NodeKind::Tor, 1);
        let b = t.add_node(NodeKind::Tor, 1);
        t.add_link(a, b);
        let err = t.without_links(&[0]).unwrap_err();
        assert_eq!(err.removed, 1);
        assert_eq!(err.example_cut, (0, 1));
        assert!(err.to_string().contains("disconnected"));
    }

    #[test]
    fn largest_component_keeps_heavier_side() {
        // 0-1-2 (3 servers) and 3-4 (2 servers), then cut nothing vs cut all.
        let mut t = Topology::new("split");
        for _ in 0..5 {
            t.add_node(NodeKind::Tor, 1);
        }
        t.add_link(0, 1);
        t.add_link(1, 2);
        t.add_link(3, 4);
        let kept = t.without_links_largest_component(&[]);
        assert_eq!(kept.num_nodes(), 5);
        assert_eq!(kept.num_servers(), 3); // 3-4 side zeroed out
        assert_eq!(kept.num_links(), 2); // 3-4 link dropped
        assert_eq!(kept.servers_at(3), 0);
    }

    #[test]
    fn random_failures_deterministic_and_sized() {
        // A dense graph tolerates 20% failures.
        let mut t = Topology::new("k6");
        for _ in 0..6 {
            t.add_node(NodeKind::Tor, 1);
        }
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                t.add_link(a, b);
            }
        }
        let f1 = t.with_random_failures(0.2, 5);
        let f2 = t.with_random_failures(0.2, 5);
        assert_eq!(f1.num_links(), 12); // 15 - round(3)
        let e1: Vec<_> = f1.links().iter().map(|l| (l.a, l.b)).collect();
        let e2: Vec<_> = f2.links().iter().map(|l| (l.a, l.b)).collect();
        assert_eq!(e1, e2);
        assert!(f1.is_connected());
    }

    #[test]
    fn zero_failures_is_identity() {
        let t = triangle();
        let f = t.with_random_failures(0.0, 1);
        assert_eq!(f.num_links(), 3);
    }

    #[test]
    fn json_round_trip() {
        let mut t = triangle();
        t.set_group(0, 4);
        let j = t.to_json();
        let back = Topology::from_json(&dcn_json::Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.num_nodes(), t.num_nodes());
        assert_eq!(back.num_links(), t.num_links());
        assert_eq!(back.num_servers(), t.num_servers());
        assert_eq!(back.group(0), Some(4));
        assert_eq!(back.group(1), None);
        let e1: Vec<_> = t.links().iter().map(|l| (l.a, l.b)).collect();
        let e2: Vec<_> = back.links().iter().map(|l| (l.a, l.b)).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn from_json_rejects_bad_links() {
        let j = dcn_json::Json::parse(
            r#"{"name":"x","kinds":["Tor","Tor"],"servers":[1,1],"links":[{"a":0,"b":9}]}"#,
        )
        .unwrap();
        assert!(Topology::from_json(&j).is_err());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // symmetric index pair reads best
    fn apsp_symmetric() {
        let t = triangle();
        let d = t.apsp();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(d[i][j], d[j][i]);
            }
        }
    }
}
