//! Dragonfly (Kim, Dally, Scott, Abts — ISCA 2008): the hierarchical
//! direct topology whose HPC deployment the paper cites (§4.2) as
//! evidence that non-Clos static networks are operationally viable.
//!
//! A balanced dragonfly has groups of `a` routers; each router carries
//! `p` servers, `a−1` local links (the group is a clique), and `h` global
//! links. With `g = a·h + 1` groups, every pair of groups is joined by
//! exactly one global link.

use crate::graph::{NodeId, NodeKind, Topology};

/// Balanced dragonfly configuration.
#[derive(Clone, Copy, Debug)]
pub struct Dragonfly {
    /// Routers per group.
    pub a: u32,
    /// Global links per router.
    pub h: u32,
    /// Servers per router.
    pub p: u32,
}

impl Dragonfly {
    /// The canonical balanced sizing a = 2h, p = h.
    pub fn balanced(h: u32) -> Self {
        assert!(h >= 1);
        Dragonfly { a: 2 * h, h, p: h }
    }

    /// Number of groups: a·h + 1.
    pub fn num_groups(&self) -> u32 {
        self.a * self.h + 1
    }

    pub fn num_switches(&self) -> usize {
        (self.num_groups() * self.a) as usize
    }

    pub fn num_servers(&self) -> usize {
        self.num_switches() * self.p as usize
    }

    /// Builds the topology; router `r` of group `g` is node `g·a + r`,
    /// and `group(node)` is the dragonfly group.
    pub fn build(&self) -> Topology {
        let (a, h, p) = (self.a, self.h, self.p);
        assert!(a >= 2, "need at least two routers per group");
        let g = self.num_groups();
        let mut t = Topology::new(format!("dragonfly(a={a}, h={h}, p={p}; {g} groups)"));
        for gi in 0..g {
            for _ in 0..a {
                let n = t.add_node(NodeKind::Tor, p);
                t.set_group(n, gi);
            }
        }
        let node = |gi: u32, r: u32| -> NodeId { gi * a + r };
        // Local links: each group is a clique.
        for gi in 0..g {
            for r1 in 0..a {
                for r2 in (r1 + 1)..a {
                    t.add_link(node(gi, r1), node(gi, r2));
                }
            }
        }
        // Global links: one per group pair. Group gi's k-th global port
        // (k ∈ 0..a·h) leads to group (gi + k + 1) mod g; the matching
        // port on the far side is the complementary index, so each pair
        // is wired exactly once (consecutive allocation).
        for gi in 0..g {
            for k in 0..a * h {
                let gj = (gi + k + 1) % g;
                if gi < gj {
                    let r_i = k / h;
                    // Far side: gj reaches gi via offset g − 2 − k.
                    let k_j = g - 2 - k;
                    let r_j = k_j / h;
                    t.add_link(node(gi, r_i), node(gj, r_j));
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::path_stats;

    #[test]
    fn balanced_h2_shape() {
        // a=4, h=2, p=2: 9 groups × 4 routers = 36 switches, 72 servers.
        let df = Dragonfly::balanced(2);
        assert_eq!(df.num_groups(), 9);
        assert_eq!(df.num_switches(), 36);
        assert_eq!(df.num_servers(), 72);
        let t = df.build();
        assert_eq!(t.num_nodes(), 36);
        assert!(t.is_connected());
        // Every router: (a−1) local + h global links.
        for n in 0..36u32 {
            assert_eq!(t.degree(n), 3 + 2, "router {n}");
        }
    }

    #[test]
    fn one_global_link_per_group_pair() {
        let t = Dragonfly::balanced(2).build();
        let g = 9u32;
        let mut count = std::collections::HashMap::new();
        for l in t.links() {
            let (ga, gb) = (t.group(l.a).unwrap(), t.group(l.b).unwrap());
            if ga != gb {
                *count.entry((ga.min(gb), ga.max(gb))).or_insert(0) += 1;
            }
        }
        assert_eq!(count.len() as u32, g * (g - 1) / 2);
        assert!(count.values().all(|&c| c == 1));
    }

    #[test]
    fn diameter_is_three() {
        // local → global → local worst case.
        let t = Dragonfly::balanced(2).build();
        assert!(path_stats(&t).diameter <= 3);
    }

    #[test]
    fn global_ports_balanced_across_routers() {
        let t = Dragonfly::balanced(3).build(); // a=6, h=3
        for n in 0..t.num_nodes() as u32 {
            let g = t.group(n).unwrap();
            let global = t
                .neighbors(n)
                .iter()
                .filter(|&&(v, _)| t.group(v).unwrap() != g)
                .count();
            assert_eq!(global, 3, "router {n} has {global} global links");
        }
    }

    #[test]
    fn minimum_config() {
        let t = Dragonfly { a: 2, h: 1, p: 1 }.build();
        assert_eq!(t.num_nodes(), 6); // 3 groups of 2
        assert!(t.is_connected());
    }
}
