//! Topology export (Graphviz DOT) and structural cut estimates.

use crate::graph::{NodeId, NodeKind, Topology};
use std::fmt::Write;

/// Renders the topology as Graphviz DOT. Switches are colored by role,
/// grouped into clusters by their structural group (pods / meta-nodes),
/// and labeled with their server counts.
pub fn to_dot(t: &Topology) -> String {
    let mut out = String::new();
    writeln!(out, "graph \"{}\" {{", t.name().replace('"', "'")).unwrap();
    writeln!(
        out,
        "  layout=neato; overlap=false; node [shape=box, style=filled];"
    )
    .unwrap();

    // Group nodes into clusters when groups exist.
    let mut groups: std::collections::BTreeMap<u32, Vec<NodeId>> = Default::default();
    let mut ungrouped = Vec::new();
    for n in 0..t.num_nodes() as NodeId {
        match t.group(n) {
            Some(g) => groups.entry(g).or_default().push(n),
            None => ungrouped.push(n),
        }
    }
    let node_line = |n: NodeId| {
        let color = match t.kind(n) {
            NodeKind::Tor => "lightblue",
            NodeKind::Aggregation => "lightgreen",
            NodeKind::Core => "lightsalmon",
        };
        let servers = t.servers_at(n);
        let label = if servers > 0 {
            format!("{n}\\n{servers} srv")
        } else {
            format!("{n}")
        };
        format!("  n{n} [label=\"{label}\", fillcolor={color}];")
    };
    for (g, nodes) in &groups {
        writeln!(out, "  subgraph cluster_{g} {{ label=\"group {g}\";").unwrap();
        for &n in nodes {
            writeln!(out, "  {}", node_line(n)).unwrap();
        }
        writeln!(out, "  }}").unwrap();
    }
    for &n in &ungrouped {
        writeln!(out, "{}", node_line(n)).unwrap();
    }
    for l in t.links() {
        if (l.capacity - 1.0).abs() < 1e-12 {
            writeln!(out, "  n{} -- n{};", l.a, l.b).unwrap();
        } else {
            writeln!(out, "  n{} -- n{} [label=\"{}\"];", l.a, l.b, l.capacity).unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Estimated bisection bandwidth: the minimum, over `samples` random
/// balanced bipartitions, of the capacity crossing the cut. An upper
/// bound on the true bisection (exact bisection is NP-hard); the paper's
/// footnote 1 cautions that bisection can be a log factor away from
/// throughput — this estimator exists to let users check that themselves.
pub fn bisection_estimate(t: &Topology, samples: u32, seed: u64) -> f64 {
    use dcn_rng::SliceRandom;
    let n = t.num_nodes();
    assert!(n >= 2);
    let mut best = f64::INFINITY;
    let mut rng = dcn_rng::Rng::seed_from_u64(seed);
    let mut ids: Vec<NodeId> = (0..n as NodeId).collect();
    for _ in 0..samples.max(1) {
        ids.shuffle(&mut rng);
        let left: std::collections::HashSet<NodeId> = ids[..n / 2].iter().copied().collect();
        let cut: f64 = t
            .links()
            .iter()
            .filter(|l| left.contains(&l.a) != left.contains(&l.b))
            .map(|l| l.capacity)
            .sum();
        best = best.min(cut);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTree;
    use crate::xpander::Xpander;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let t = FatTree::full(4).build();
        let dot = to_dot(&t);
        assert!(dot.starts_with("graph"));
        for n in 0..t.num_nodes() {
            assert!(dot.contains(&format!("n{n} ")), "missing node {n}");
        }
        assert_eq!(dot.matches(" -- ").count(), t.num_links());
        // Pods appear as clusters.
        assert!(dot.contains("cluster_0"));
        // Edge switches show their servers.
        assert!(dot.contains("2 srv"));
    }

    #[test]
    fn dot_marks_nonunit_capacity() {
        let mut t = crate::graph::Topology::new("cap");
        let a = t.add_node(NodeKind::Tor, 0);
        let b = t.add_node(NodeKind::Tor, 0);
        t.add_link_cap(a, b, 4.0);
        assert!(to_dot(&t).contains("label=\"4\""));
    }

    #[test]
    fn bisection_full_fat_tree() {
        // k=4 fat-tree's true bisection is 8 links (core level); sampled
        // cuts upper-bound it and must be ≥ it.
        let t = FatTree::full(4).build();
        let est = bisection_estimate(&t, 200, 1);
        assert!(est >= 8.0 - 1e-9, "estimate {est} below true bisection");
        assert!(est <= t.total_capacity());
    }

    #[test]
    fn expander_bisection_scales_with_degree() {
        let small = bisection_estimate(&Xpander::new(4, 8, 1, 1).build(), 100, 2);
        let large = bisection_estimate(&Xpander::new(8, 8, 1, 1).build(), 100, 2);
        assert!(
            large > small,
            "degree-8 expander should cut wider than degree-4"
        );
    }

    #[test]
    fn bisection_deterministic() {
        let t = Xpander::new(5, 6, 1, 3).build();
        assert_eq!(bisection_estimate(&t, 50, 7), bisection_estimate(&t, 50, 7));
    }
}
