//! Topology-level metrics: path statistics, degree audits, and the cabling
//! / floor-plan accounting behind the paper's Fig 3 and Table 1.

use crate::graph::{NodeId, Topology};
use std::collections::BTreeMap;

/// Summary of a topology's shortest-path structure.
#[derive(Clone, Debug, PartialEq)]
pub struct PathStats {
    pub diameter: u32,
    pub avg_path_length: f64,
    /// `histogram[d]` = number of ordered node pairs at hop distance d.
    pub histogram: Vec<u64>,
}

/// Computes diameter / average path length over all ordered switch pairs.
/// Panics on disconnected topologies.
pub fn path_stats(t: &Topology) -> PathStats {
    let n = t.num_nodes();
    assert!(n >= 2, "path stats need at least two nodes");
    let mut histogram: Vec<u64> = Vec::new();
    let mut sum = 0u64;
    for s in 0..n as NodeId {
        for (v, &d) in t.bfs_distances(s).iter().enumerate() {
            if v as NodeId == s {
                continue;
            }
            assert!(d != u32::MAX, "topology disconnected at node {v}");
            if histogram.len() <= d as usize {
                histogram.resize(d as usize + 1, 0);
            }
            histogram[d as usize] += 1;
            sum += d as u64;
        }
    }
    PathStats {
        diameter: histogram.len() as u32 - 1,
        avg_path_length: sum as f64 / (n as f64 * (n as f64 - 1.0)),
        histogram,
    }
}

/// Distribution of network degrees: `map[degree] = switch count`.
pub fn degree_histogram(t: &Topology) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    for n in 0..t.num_nodes() as NodeId {
        *map.entry(t.degree(n)).or_insert(0) += 1;
    }
    map
}

/// Cable-bundling statistics for group-structured topologies (Xpander
/// meta-nodes, fat-tree pods). Cables between the same pair of groups can
/// share a bundle, the property Fig 3 exploits ("reduce fiber cost by
/// nearly 40%", per Jupiter Rising).
#[derive(Clone, Debug)]
pub struct CableStats {
    /// Total switch-to-switch cables.
    pub total_cables: usize,
    /// Cables whose endpoints are in the same group (intra-rack-row wiring).
    pub intra_group: usize,
    /// Number of distinct group pairs connected by at least one cable.
    pub bundles: usize,
    /// Cables per bundle, keyed by (group a, group b), a < b.
    pub bundle_sizes: BTreeMap<(u32, u32), usize>,
}

pub fn cable_stats(t: &Topology) -> CableStats {
    let mut bundle_sizes: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    let mut intra = 0usize;
    for l in t.links() {
        let (Some(ga), Some(gb)) = (t.group(l.a), t.group(l.b)) else {
            continue;
        };
        if ga == gb {
            intra += 1;
        } else {
            let key = (ga.min(gb), ga.max(gb));
            *bundle_sizes.entry(key).or_insert(0) += 1;
        }
    }
    CableStats {
        total_cables: t.num_links(),
        intra_group: intra,
        bundles: bundle_sizes.len(),
        bundle_sizes,
    }
}

/// Floor-plan accounting for Fig 3's Xpander: racks needed per meta-node
/// given switches + their servers, at `rack_units` per rack (48 in the
/// paper, "after accounting for cooling and power" leaves ~40 usable).
#[derive(Clone, Debug)]
pub struct FloorPlan {
    pub pods: usize,
    pub meta_nodes_per_pod: usize,
    pub switches_per_meta_node: usize,
    pub servers_per_meta_node: usize,
    pub racks_per_meta_node: usize,
}

/// Lays out an Xpander with `meta_nodes` meta-nodes into `pods` pods.
/// Each switch occupies 1U and each server 1U; `usable_units` is the usable
/// space per rack.
pub fn xpander_floor_plan(
    t: &Topology,
    meta_nodes: usize,
    pods: usize,
    usable_units: usize,
) -> FloorPlan {
    assert!(
        meta_nodes.is_multiple_of(pods),
        "{meta_nodes} meta-nodes not divisible into {pods} pods"
    );
    let switches = t.num_nodes() / meta_nodes;
    let servers = t.num_servers() / meta_nodes;
    let units = switches + servers;
    FloorPlan {
        pods,
        meta_nodes_per_pod: meta_nodes / pods,
        switches_per_meta_node: switches,
        servers_per_meta_node: servers,
        racks_per_meta_node: units.div_ceil(usable_units),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTree;
    use crate::xpander::Xpander;

    #[test]
    fn path_stats_fat_tree() {
        let t = FatTree::full(4).build();
        let ps = path_stats(&t);
        assert_eq!(ps.diameter, 4);
        assert!(ps.avg_path_length > 1.0 && ps.avg_path_length < 4.0);
        let total: u64 = ps.histogram.iter().sum();
        assert_eq!(total, (20 * 19) as u64);
    }

    #[test]
    fn xpander_shorter_paths_than_fat_tree() {
        // The core efficiency argument: expanders have shorter paths per
        // unit of equipment.
        let ft = FatTree::full(8).build(); // 80 switches
        let xp = Xpander::for_switches(7, 80, 4, 3).build();
        let pf = path_stats(&ft);
        let px = path_stats(&xp);
        assert!(
            px.avg_path_length < pf.avg_path_length,
            "xpander {} vs fat-tree {}",
            px.avg_path_length,
            pf.avg_path_length
        );
    }

    #[test]
    fn degree_histogram_fat_tree() {
        let t = FatTree::full(4).build();
        let h = degree_histogram(&t);
        // edge: 2 links (+2 servers), agg: 4, core: 4.
        assert_eq!(h[&2], 8);
        assert_eq!(h[&4], 12);
    }

    #[test]
    fn xpander_bundles_match_meta_pairs() {
        let x = Xpander::new(5, 8, 2, 1);
        let t = x.build();
        let cs = cable_stats(&t);
        assert_eq!(cs.bundles, 6 * 5 / 2); // all meta-node pairs
        assert_eq!(cs.intra_group, 0);
        for (&_, &sz) in &cs.bundle_sizes {
            assert_eq!(sz, 8); // one matching of size `lift` per pair
        }
    }

    #[test]
    fn fig3_floor_plan() {
        // 486 switches, 3402 servers, 18 meta-nodes, 6 pods: each meta-node
        // holds 27 switches + 189 servers = 216U ⇒ 6 racks at 40 usable U
        // (the paper says 7 racks of 48U with cooling/power overhead; we
        // expose usable_units so both accountings are reproducible).
        let t = Xpander::paper_fig3(0).build();
        let fp = xpander_floor_plan(&t, 18, 6, 34);
        assert_eq!(fp.meta_nodes_per_pod, 3);
        assert_eq!(fp.switches_per_meta_node, 27);
        assert_eq!(fp.servers_per_meta_node, 189);
        assert_eq!(fp.racks_per_meta_node, 7);
    }
}
