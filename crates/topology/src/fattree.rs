//! k-ary fat-tree construction (Al-Fares et al., SIGCOMM 2008) with the
//! oversubscription variants used in the paper's §2.1 and §6.
//!
//! A full-bandwidth fat-tree with parameter `k` (even) has `k` pods, each
//! with `k/2` edge (ToR) and `k/2` aggregation switches, plus `(k/2)^2` core
//! switches; each edge switch hosts `k/2` servers. Total: `5k^2/4` switches
//! and `k^3/4` servers, all switches with `k` ports.

use crate::graph::{NodeId, NodeKind, Topology};

/// Builder for full and oversubscribed fat-trees.
#[derive(Clone, Copy, Debug)]
pub struct FatTree {
    /// Port count `k` of every switch; must be even and ≥ 4.
    pub k: u32,
    /// Core switches kept per aggregation group (≤ k/2). `k/2` = full
    /// bandwidth; fewer oversubscribes the agg→core stage (Fig 1 removes
    /// one root switch this way).
    pub core_per_group: u32,
    /// Servers attached to each edge switch (default `k/2`). More than
    /// `k/2` oversubscribes at the ToR.
    pub servers_per_edge: u32,
    /// Aggregation switches kept per pod (≤ k/2). Trimming this (together
    /// with the core) is how the paper's "77% fat-tree" reaches a target
    /// cost: each edge switch then uses only this many of its uplinks.
    pub aggs_per_pod: u32,
}

impl FatTree {
    /// Full-bandwidth fat-tree with parameter `k`.
    pub fn full(k: u32) -> Self {
        assert!(
            k >= 4 && k.is_multiple_of(2),
            "fat-tree requires even k >= 4, got {k}"
        );
        FatTree {
            k,
            core_per_group: k / 2,
            servers_per_edge: k / 2,
            aggs_per_pod: k / 2,
        }
    }

    /// Fat-tree oversubscribed at the core: each aggregation group keeps
    /// only `core_per_group` of its `k/2` core switches.
    pub fn oversubscribed_core(k: u32, core_per_group: u32) -> Self {
        let mut ft = Self::full(k);
        assert!(core_per_group >= 1 && core_per_group <= k / 2);
        ft.core_per_group = core_per_group;
        ft
    }

    /// Fat-tree oversubscribed at the ToR: `servers_per_edge` servers share
    /// the edge switch's `k/2` uplinks.
    pub fn oversubscribed_tor(k: u32, servers_per_edge: u32) -> Self {
        let mut ft = Self::full(k);
        assert!(servers_per_edge >= 1);
        ft.servers_per_edge = servers_per_edge;
        ft
    }

    /// Oversubscribed fat-tree hitting (approximately) `fraction` of the
    /// full fat-tree's switch cost by trimming aggregation and core
    /// layers — the construction behind Fig 11's "77%-fat-tree". Panics if
    /// the target is below the cheapest valid configuration.
    pub fn at_cost_fraction(k: u32, fraction: f64) -> Self {
        let full = Self::full(k);
        let target = full.num_switches() as f64 * fraction;
        let mut best: Option<(f64, FatTree)> = None;
        for a in 1..=k / 2 {
            for c in 1..=k / 2 {
                let mut ft = Self::full(k);
                ft.aggs_per_pod = a;
                ft.core_per_group = c;
                let err = (ft.num_switches() as f64 - target).abs();
                // Never exceed the budget; pick the closest under it.
                if ft.num_switches() as f64 <= target + 0.5
                    && best.as_ref().is_none_or(|(e, _)| err < *e)
                {
                    best = Some((err, ft));
                }
            }
        }
        best.expect("no fat-tree configuration under the cost target")
            .1
    }

    /// Number of switches this configuration instantiates.
    pub fn num_switches(&self) -> usize {
        let k = self.k as usize;
        k * (k / 2) // edge
            + k * self.aggs_per_pod as usize
            + self.aggs_per_pod as usize * self.core_per_group as usize
    }

    /// Number of servers this configuration supports.
    pub fn num_servers(&self) -> usize {
        let k = self.k as usize;
        k * (k / 2) * self.servers_per_edge as usize
    }

    /// Fraction of full core capacity retained (the `x` of Observation 1
    /// when oversubscribing at the core).
    pub fn core_capacity_fraction(&self) -> f64 {
        self.core_per_group as f64 / (self.k as f64 / 2.0)
    }

    /// Builds the topology. Node layout: for each pod `p`, its `k/2` edge
    /// switches then its `aggs_per_pod` aggregation switches; core switches
    /// last. Edge and aggregation switches carry `group = pod index`.
    pub fn build(&self) -> Topology {
        let k = self.k;
        let h = k / 2; // half of the ports
        let mut t = Topology::new(format!(
            "fat-tree(k={k}, aggs/pod={}, core/group={}, servers/edge={})",
            self.aggs_per_pod, self.core_per_group, self.servers_per_edge
        ));

        let mut edges: Vec<Vec<NodeId>> = Vec::with_capacity(k as usize);
        let mut aggs: Vec<Vec<NodeId>> = Vec::with_capacity(k as usize);
        for pod in 0..k {
            let e: Vec<NodeId> = (0..h)
                .map(|_| {
                    let n = t.add_node(NodeKind::Tor, self.servers_per_edge);
                    t.set_group(n, pod);
                    n
                })
                .collect();
            let a: Vec<NodeId> = (0..self.aggs_per_pod)
                .map(|_| {
                    let n = t.add_node(NodeKind::Aggregation, 0);
                    t.set_group(n, pod);
                    n
                })
                .collect();
            for &ei in &e {
                for &ai in &a {
                    t.add_link(ei, ai);
                }
            }
            edges.push(e);
            aggs.push(a);
        }

        // Core group g serves aggregation switch g of every pod.
        for g in 0..self.aggs_per_pod {
            for _ in 0..self.core_per_group {
                let c = t.add_node(NodeKind::Core, 0);
                for pod_aggs in aggs.iter().take(k as usize) {
                    t.add_link(c, pod_aggs[g as usize]);
                }
            }
        }
        t
    }
}

/// Edge-switch ids of a *full* fat-tree built by [`FatTree::build`],
/// grouped by pod. For trimmed variants use [`FatTree::edge_switches`].
pub fn edge_switches_by_pod(k: u32) -> Vec<Vec<NodeId>> {
    FatTree::full(k).edge_switches()
}

impl FatTree {
    /// Edge-switch ids grouped by pod, matching [`FatTree::build`]'s layout.
    pub fn edge_switches(&self) -> Vec<Vec<NodeId>> {
        let h = self.k / 2;
        let per_pod = h + self.aggs_per_pod;
        (0..self.k)
            .map(|pod| {
                let base = pod * per_pod;
                (0..h).map(|i| base + i).collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    #[test]
    fn full_k4_shape() {
        let ft = FatTree::full(4);
        let t = ft.build();
        assert_eq!(t.num_nodes(), 20); // 8 edge + 8 agg + 4 core
        assert_eq!(t.num_servers(), 16);
        assert_eq!(ft.num_switches(), 20);
        assert_eq!(ft.num_servers(), 16);
        // Every switch uses exactly k ports (links + servers).
        for n in 0..t.num_nodes() as u32 {
            let ports = t.degree(n) + t.servers_at(n) as usize;
            assert_eq!(ports, 4, "switch {n} has {ports} ports used");
        }
        assert!(t.is_connected());
    }

    #[test]
    fn full_k8_counts() {
        let t = FatTree::full(8).build();
        assert_eq!(t.num_nodes(), 80);
        assert_eq!(t.num_servers(), 128);
        assert_eq!(t.num_links(), 8 * 4 * 4 + 16 * 8); // edge-agg + core-agg
    }

    #[test]
    fn paper_k16_baseline() {
        // §6.4: "k=16, 1024 servers, 320 switches, each with 16 10 Gbps ports"
        let ft = FatTree::full(16);
        assert_eq!(ft.num_switches(), 320);
        assert_eq!(ft.num_servers(), 1024);
    }

    #[test]
    fn diameter_is_six_hops_server_to_server() {
        // Switch-level diameter of a fat-tree is 4 (edge-agg-core-agg-edge).
        let t = FatTree::full(4).build();
        let apsp = t.apsp();
        let diam = apsp.iter().flatten().max().copied().unwrap();
        assert_eq!(diam, 4);
    }

    #[test]
    fn oversubscribed_core_removes_roots() {
        // Fig 1: k=4 fat-tree with one root removed retains >75% capacity.
        let ft = FatTree::oversubscribed_core(4, 1);
        let t = ft.build();
        assert_eq!(t.num_nodes(), 18);
        let full = FatTree::full(4).build();
        // Counting server links as the paper does, >75% of capacity remains
        // (switch-switch capacity alone is exactly 75%).
        let frac = (t.total_capacity() + t.num_servers() as f64)
            / (full.total_capacity() + full.num_servers() as f64);
        assert!(frac > 0.75, "capacity fraction {frac}");
        assert_eq!(ft.core_capacity_fraction(), 0.5);
    }

    #[test]
    fn oversubscribed_tor_adds_servers() {
        let ft = FatTree::oversubscribed_tor(4, 4);
        let t = ft.build();
        assert_eq!(t.num_servers(), 32);
        assert_eq!(ft.core_capacity_fraction(), 1.0);
    }

    #[test]
    fn edge_switch_lookup_matches_build() {
        let t = FatTree::full(6).build();
        for (pod, edges) in edge_switches_by_pod(6).into_iter().enumerate() {
            for e in edges {
                assert_eq!(t.kind(e), NodeKind::Tor);
                assert_eq!(t.group(e), Some(pod as u32));
            }
        }
    }

    #[test]
    fn cost_fraction_fat_tree() {
        // Fig 11's 77%-fat-tree at k=16: 6 aggs/pod + 4 cores/group
        // reaches 248 of 320 switches (77.5%).
        let ft = FatTree::at_cost_fraction(16, 0.78);
        assert!(ft.num_switches() <= 250);
        assert!(ft.num_switches() >= 240, "{}", ft.num_switches());
        let t = ft.build();
        assert_eq!(t.num_nodes(), ft.num_switches());
        assert_eq!(t.num_servers(), 1024); // servers untouched
        assert!(t.is_connected());
        // No switch exceeds its port budget.
        for n in 0..t.num_nodes() as u32 {
            assert!(t.degree(n) + t.servers_at(n) as usize <= 16);
        }
    }

    #[test]
    fn trimmed_edge_switch_lookup() {
        let ft = FatTree::at_cost_fraction(8, 0.8);
        let t = ft.build();
        for (pod, edges) in ft.edge_switches().into_iter().enumerate() {
            assert_eq!(edges.len(), 4);
            for e in edges {
                assert_eq!(t.kind(e), NodeKind::Tor);
                assert_eq!(t.group(e), Some(pod as u32));
            }
        }
    }

    #[test]
    fn core_connects_every_pod() {
        let t = FatTree::full(6).build();
        for n in 0..t.num_nodes() as u32 {
            if t.kind(n) == NodeKind::Core {
                let mut pods: Vec<_> = t
                    .neighbors(n)
                    .iter()
                    .map(|&(v, _)| t.group(v).unwrap())
                    .collect();
                pods.sort_unstable();
                assert_eq!(pods, (0..6).collect::<Vec<_>>());
            }
        }
    }
}
