//! Longhop: Cayley graphs over F₂^m derived from error-correcting codes
//! (Tomic, ANCS 2013). A hypercube's m "short hop" generators are augmented
//! with "long hop" generators that slash the diameter.
//!
//! The paper's Fig 5b instance has 512 ToRs with 10 network ports and 8
//! servers each: F₂⁹ with the 9 unit vectors plus one long hop. With a
//! single long hop the optimal choice is the all-ones vector (the folded
//! hypercube); for more ports we pick long hops greedily to minimize the
//! average shortest path, mirroring Tomic's code-derived optimal sets.

use crate::graph::{NodeKind, Topology};
use std::collections::VecDeque;

/// A Cayley-graph topology on F₂^m with an explicit generator set.
#[derive(Clone, Debug)]
pub struct Longhop {
    /// Dimension: the network has 2^m switches.
    pub m: u32,
    /// Generator set (nonzero bitmasks). x ~ x⊕g for every g.
    pub generators: Vec<u32>,
    pub servers_per_switch: u32,
}

impl Longhop {
    /// Plain m-dimensional hypercube.
    pub fn hypercube(m: u32, servers_per_switch: u32) -> Self {
        Longhop {
            m,
            generators: (0..m).map(|i| 1 << i).collect(),
            servers_per_switch,
        }
    }

    /// Folded hypercube: hypercube plus the all-ones long hop.
    pub fn folded_hypercube(m: u32, servers_per_switch: u32) -> Self {
        let mut g = Self::hypercube(m, servers_per_switch);
        g.generators.push((1u32 << m) - 1);
        g
    }

    /// Longhop network with `degree ≥ m` generators: the m unit vectors
    /// plus greedily chosen long hops minimizing average shortest path.
    pub fn greedy(m: u32, degree: u32, servers_per_switch: u32) -> Self {
        assert!(degree >= m, "degree {degree} below hypercube dimension {m}");
        let mut gens: Vec<u32> = (0..m).map(|i| 1 << i).collect();
        let all = 1u32 << m;
        while (gens.len() as u32) < degree {
            let mut best: Option<(f64, u32)> = None;
            for cand in 1..all {
                if gens.contains(&cand) {
                    continue;
                }
                let mut trial = gens.clone();
                trial.push(cand);
                let apl = cayley_avg_path(m, &trial);
                if best.is_none_or(|(b, _)| apl < b) {
                    best = Some((apl, cand));
                }
            }
            gens.push(best.expect("no candidate generator").1);
        }
        Longhop {
            m,
            generators: gens,
            servers_per_switch,
        }
    }

    /// The paper's Fig 5b instance: 512 ToRs, 10 network ports, 8 servers.
    pub fn paper_fig5b() -> Self {
        Self::folded_hypercube(9, 8)
    }

    pub fn num_switches(&self) -> usize {
        1usize << self.m
    }

    pub fn build(&self) -> Topology {
        let n = 1u32 << self.m;
        for &g in &self.generators {
            assert!(
                g != 0 && g < n,
                "generator {g:#x} out of range for m={}",
                self.m
            );
        }
        let mut t = Topology::new(format!(
            "longhop(m={}, d={}, s={})",
            self.m,
            self.generators.len(),
            self.servers_per_switch
        ));
        for _ in 0..n {
            t.add_node(NodeKind::Tor, self.servers_per_switch);
        }
        for x in 0..n {
            for &g in &self.generators {
                let y = x ^ g;
                if x < y {
                    t.add_link(x, y);
                }
            }
        }
        t
    }
}

/// Average shortest-path length of the Cayley graph on F₂^m with the given
/// generators, using vertex transitivity: one BFS from 0 suffices.
pub fn cayley_avg_path(m: u32, generators: &[u32]) -> f64 {
    let n = 1usize << m;
    let mut dist = vec![u32::MAX; n];
    dist[0] = 0;
    let mut q = VecDeque::new();
    q.push_back(0u32);
    while let Some(x) = q.pop_front() {
        let dx = dist[x as usize];
        for &g in generators {
            let y = (x ^ g) as usize;
            if dist[y] == u32::MAX {
                dist[y] = dx + 1;
                q.push_back(y as u32);
            }
        }
    }
    let sum: u64 = dist.iter().map(|&d| d as u64).sum();
    sum as f64 / (n as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_shape() {
        let t = Longhop::hypercube(4, 2).build();
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(t.num_links(), 32); // 16 * 4 / 2
        for n in 0..16u32 {
            assert_eq!(t.degree(n), 4);
        }
        let diam = t.apsp().iter().flatten().max().copied().unwrap();
        assert_eq!(diam, 4);
    }

    #[test]
    fn folded_hypercube_halves_diameter() {
        let t = Longhop::folded_hypercube(4, 1).build();
        let diam = t.apsp().iter().flatten().max().copied().unwrap();
        assert_eq!(diam, 2); // ceil(4/2)
    }

    #[test]
    fn paper_fig5b_config() {
        let lh = Longhop::paper_fig5b();
        assert_eq!(lh.num_switches(), 512);
        assert_eq!(lh.generators.len(), 10);
        let t = lh.build();
        assert_eq!(t.num_servers(), 512 * 8);
        for n in 0..512u32 {
            assert_eq!(t.degree(n), 10);
        }
        let diam = t.apsp().iter().flatten().max().copied().unwrap();
        assert_eq!(diam, 5); // folded 9-cube: ceil(9/2)
    }

    #[test]
    fn greedy_beats_hypercube() {
        let hyper = cayley_avg_path(5, &Longhop::hypercube(5, 1).generators);
        let greedy = Longhop::greedy(5, 7, 1);
        let better = cayley_avg_path(5, &greedy.generators);
        assert!(
            better < hyper,
            "greedy {better} not below hypercube {hyper}"
        );
        assert_eq!(greedy.generators.len(), 7);
    }

    #[test]
    fn greedy_first_pick_is_all_ones() {
        // With one extra generator the folded hypercube is optimal, and
        // greedy should find it.
        let g = Longhop::greedy(4, 5, 1);
        assert!(g.generators.contains(&0b1111));
    }

    #[test]
    fn vertex_transitive_bfs_matches_full_apsp() {
        let lh = Longhop::folded_hypercube(5, 1);
        let t = lh.build();
        let apsp = t.apsp();
        let n = t.num_nodes();
        let total: u64 = apsp.iter().flatten().map(|&d| d as u64).sum();
        let apl = total as f64 / (n as f64 * (n as f64 - 1.0));
        let fast = cayley_avg_path(5, &lh.generators);
        assert!((apl - fast).abs() < 1e-9);
    }
}
