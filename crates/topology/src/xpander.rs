//! Xpander: deterministic-feeling expander data centers built from random
//! k-lifts of the complete graph K_{d+1} (Valadarsky et al., CoNEXT 2016).
//!
//! A k-lift replaces each vertex of K_{d+1} with a *meta-node* of `k`
//! switches and each edge with a perfect matching between the two
//! meta-nodes. The result is d-regular with `(d+1)·k` switches, and with
//! high probability a near-Ramanujan expander; the builder samples a few
//! matchings per seed and keeps the lift with the best spectral gap.

use crate::graph::{NodeId, NodeKind, Topology};
use dcn_rng::{Rng, SliceRandom};

/// Configuration of an Xpander network.
#[derive(Clone, Copy, Debug)]
pub struct Xpander {
    /// Network degree `d` of every switch (K_{d+1} base graph).
    pub net_degree: u32,
    /// Lift order `k`: switches per meta-node.
    pub lift: u32,
    /// Servers attached to each switch.
    pub servers_per_switch: u32,
    /// Seed; the builder derives candidate seeds from it.
    pub seed: u64,
    /// Candidate lifts sampled; the one with smallest second adjacency
    /// eigenvalue wins. 1 disables the spectral search.
    pub candidates: u32,
}

impl Xpander {
    pub fn new(net_degree: u32, lift: u32, servers_per_switch: u32, seed: u64) -> Self {
        assert!(net_degree >= 2 && lift >= 1);
        Xpander {
            net_degree,
            lift,
            servers_per_switch,
            seed,
            candidates: 4,
        }
    }

    /// Chooses the lift order so the network has exactly `switches`
    /// switches; `switches` must be a multiple of `net_degree + 1`.
    pub fn for_switches(
        net_degree: u32,
        switches: u32,
        servers_per_switch: u32,
        seed: u64,
    ) -> Self {
        let meta = net_degree + 1;
        assert!(
            switches.is_multiple_of(meta),
            "switch count {switches} not a multiple of d+1 = {meta}"
        );
        Self::new(net_degree, switches / meta, servers_per_switch, seed)
    }

    /// The §6.4 configuration: 216 switches × 16 ports (11 network + 5
    /// server), 1080 servers — an Xpander at 33% lower cost than the
    /// k=16 full-bandwidth fat-tree.
    pub fn paper_sec6(seed: u64) -> Self {
        Self::for_switches(11, 216, 5, seed)
    }

    /// The Fig 3 configuration: 486 switches × 24 ports (17 network + 7
    /// server), 3402 servers, 18 meta-nodes in 6 pods of 3.
    pub fn paper_fig3(seed: u64) -> Self {
        Self::for_switches(17, 486, 7, seed)
    }

    /// The Fig 15 configuration: 322 switches × 24 ports (13 network + 11
    /// server), 3542 servers — 45% of the k=24 fat-tree's cost.
    pub fn paper_fig15(seed: u64) -> Self {
        Self::for_switches(13, 322, 11, seed)
    }

    /// The ProjecToR-comparison configuration of §6.6: 128 ToRs with 16
    /// static network ports and 8 servers each.
    pub fn paper_projector(seed: u64) -> Self {
        // 128 is not a multiple of d+1 = 17; the paper's own Xpander tool
        // pads by using heterogeneous lifts. We use d=15 (16 meta-nodes ×
        // lift 8 = 128 switches) with one extra port left unused, which
        // only *disadvantages* the Xpander — conservative for the claim.
        Self::for_switches(15, 128, 8, seed)
    }

    pub fn num_switches(&self) -> usize {
        ((self.net_degree + 1) * self.lift) as usize
    }

    pub fn num_servers(&self) -> usize {
        self.num_switches() * self.servers_per_switch as usize
    }

    /// Builds the best-of-`candidates` lift. Node `m·lift + i` is copy `i`
    /// of meta-node `m`; `group(node)` is the meta-node index.
    pub fn build(&self) -> Topology {
        let mut best: Option<(f64, Topology)> = None;
        for c in 0..self.candidates.max(1) as u64 {
            let t = self.build_once(self.seed.wrapping_add(c * 0xA24B_AED4));
            if !t.is_connected() {
                continue;
            }
            let lam2 = second_eigenvalue(&t);
            if best.as_ref().is_none_or(|(b, _)| lam2 < *b) {
                best = Some((lam2, t));
            }
        }
        best.expect("no connected lift found").1
    }

    fn build_once(&self, seed: u64) -> Topology {
        let d = self.net_degree;
        let k = self.lift;
        let meta = d + 1;
        let mut rng = Rng::seed_from_u64(seed);
        let mut t = Topology::new(format!(
            "xpander(d={d}, lift={k}, s={}, seed={})",
            self.servers_per_switch, self.seed
        ));
        for m in 0..meta {
            for _ in 0..k {
                let n = t.add_node(NodeKind::Tor, self.servers_per_switch);
                t.set_group(n, m);
            }
        }
        let node = |m: u32, i: u32| -> NodeId { m * k + i };
        for u in 0..meta {
            for v in (u + 1)..meta {
                if k == 1 {
                    t.add_link(node(u, 0), node(v, 0));
                    continue;
                }
                let mut perm: Vec<u32> = (0..k).collect();
                perm.shuffle(&mut rng);
                for i in 0..k {
                    t.add_link(node(u, i), node(v, perm[i as usize]));
                }
            }
        }
        t
    }
}

/// Second-largest adjacency eigenvalue of a connected d-regular graph via
/// power iteration deflated against the all-ones top eigenvector. For the
/// Ramanujan property this should be ≤ 2·sqrt(d−1) (plus slack).
pub fn second_eigenvalue(t: &Topology) -> f64 {
    let n = t.num_nodes();
    if n < 2 {
        return 0.0;
    }
    // Deterministic pseudo-random start vector, orthogonal to all-ones.
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11;
            (h % 10_000) as f64 / 10_000.0 - 0.5
        })
        .collect();
    orthogonalize(&mut x);
    normalize(&mut x);
    let mut lam = 0.0;
    for _ in 0..200 {
        let mut y = vec![0.0f64; n];
        for l in t.links() {
            y[l.a as usize] += x[l.b as usize];
            y[l.b as usize] += x[l.a as usize];
        }
        orthogonalize(&mut y);
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-14 {
            return 0.0;
        }
        for v in &mut y {
            *v /= norm;
        }
        lam = norm;
        x = y;
    }
    lam
}

fn orthogonalize(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

fn normalize(x: &mut [f64]) {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_and_connected() {
        let x = Xpander::new(6, 10, 4, 42);
        let t = x.build();
        assert_eq!(t.num_nodes(), 70);
        assert!(t.is_connected());
        for n in 0..70u32 {
            assert_eq!(t.degree(n), 6);
        }
    }

    #[test]
    fn meta_node_structure() {
        let x = Xpander::new(5, 8, 2, 1);
        let t = x.build();
        // Every switch has exactly one neighbor in every *other* meta-node
        // and none in its own.
        for n in 0..t.num_nodes() as u32 {
            let g = t.group(n).unwrap();
            let mut seen = [0u32; 6];
            for &(v, _) in t.neighbors(n) {
                seen[t.group(v).unwrap() as usize] += 1;
            }
            assert_eq!(seen[g as usize], 0);
            for (m, &c) in seen.iter().enumerate() {
                if m as u32 != g {
                    assert_eq!(c, 1, "node {n} has {c} links to meta {m}");
                }
            }
        }
    }

    #[test]
    fn near_ramanujan() {
        let t = Xpander::new(8, 16, 4, 7).build();
        let lam2 = second_eigenvalue(&t);
        let ramanujan = 2.0 * (8.0f64 - 1.0).sqrt();
        assert!(
            lam2 <= ramanujan * 1.15,
            "lambda2 {lam2} vs Ramanujan bound {ramanujan}"
        );
    }

    #[test]
    fn paper_configs_have_documented_sizes() {
        assert_eq!(Xpander::paper_sec6(0).num_switches(), 216);
        assert_eq!(Xpander::paper_sec6(0).num_servers(), 1080);
        assert_eq!(Xpander::paper_fig3(0).num_switches(), 486);
        assert_eq!(Xpander::paper_fig3(0).num_servers(), 3402);
        assert_eq!(Xpander::paper_fig15(0).num_switches(), 322);
        assert_eq!(Xpander::paper_projector(0).num_switches(), 128);
        assert_eq!(Xpander::paper_projector(0).num_servers(), 1024);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Xpander::new(4, 6, 1, 5).build();
        let b = Xpander::new(4, 6, 1, 5).build();
        let ea: Vec<_> = a.links().iter().map(|l| (l.a, l.b)).collect();
        let eb: Vec<_> = b.links().iter().map(|l| (l.a, l.b)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn complete_graph_base_case_lift_one() {
        let t = Xpander::new(4, 1, 1, 0).build();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_links(), 10); // K_5
    }

    #[test]
    fn second_eigenvalue_of_complete_graph() {
        // K_n has adjacency spectrum {n-1, -1, ..., -1}; deflated power
        // iteration returns |−1| = 1.
        let t = Xpander::new(5, 1, 1, 0).build();
        let lam2 = second_eigenvalue(&t);
        assert!((lam2 - 1.0).abs() < 1e-6, "lambda2 {lam2}");
    }
}
