//! The Fig 4 toy example of §4.1: 54 switches with 12 ports and 6 servers
//! each, where only 9 racks are active. The 45 inactive switches are wired
//! as a k=6 fat-tree (used as 6-port devices) whose 54 exposed ports fan
//! out to the 9 active racks, giving every active server full bandwidth —
//! something the *restricted* dynamic model cannot do.

use crate::fattree::FatTree;
use crate::graph::{NodeId, NodeKind, Topology};

/// Builder for the Fig 4 topology.
#[derive(Clone, Copy, Debug)]
pub struct ToyFig4;

/// Result of [`ToyFig4::build`]: the topology plus the ids of the 9 active
/// top-of-rack switches.
pub struct ToyNetwork {
    pub topology: Topology,
    pub active_tors: Vec<NodeId>,
}

impl ToyFig4 {
    /// Builds the 54-switch network. The first 45 node ids are the
    /// k=6 fat-tree (see [`FatTree::build`]'s layout); the last 9 are the
    /// active ToRs, each with 6 servers and 6 links into distinct fat-tree
    /// edge switches.
    pub fn build() -> ToyNetwork {
        // k=6 fat-tree: 18 edge + 18 agg + 9 core = 45 switches. Its edge
        // switches each have 3 "server" ports, here re-purposed as uplink
        // sockets for the active racks (3 × 18 = 54 sockets).
        let mut t = FatTree::full(6).build();
        t.set_name("toy-fig4(54x12-port, 9 active racks)");
        let mut sockets: Vec<NodeId> = Vec::with_capacity(54);
        for n in 0..t.num_nodes() as NodeId {
            if t.kind(n) == NodeKind::Tor {
                t.set_servers(n, 0); // fat-tree switches host no servers here
                for _ in 0..3 {
                    sockets.push(n);
                }
            }
        }
        assert_eq!(sockets.len(), 54);

        let mut active = Vec::with_capacity(9);
        for r in 0..9 {
            let tor = t.add_node(NodeKind::Tor, 6);
            t.set_group(tor, 100 + r); // distinct group marks active racks
            active.push(tor);
        }
        // Round-robin the 54 sockets over the 9 racks: 6 sockets per rack,
        // spread across edge switches.
        for (i, &sock) in sockets.iter().enumerate() {
            t.add_link(active[i % 9], sock);
        }
        ToyNetwork {
            topology: t,
            active_tors: active,
        }
    }

    /// The best *static* topology over only the 9 active racks using their
    /// 6 inter-rack ports directly (what the restricted dynamic model
    /// degenerates to for all-to-all traffic): a 6-regular graph on 9
    /// nodes. We use the circulant C9(1,2,4) which is vertex-transitive.
    pub fn direct_only() -> ToyNetwork {
        let mut t = Topology::new("toy-fig4-direct(9 racks, 6 ports)");
        let tors: Vec<NodeId> = (0..9).map(|_| t.add_node(NodeKind::Tor, 6)).collect();
        for i in 0..9u32 {
            for &off in &[1u32, 2, 4] {
                let j = (i + off) % 9;
                t.add_link(tors[i as usize], tors[j as usize]);
            }
        }
        ToyNetwork {
            topology: t,
            active_tors: tors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape() {
        let net = ToyFig4::build();
        let t = &net.topology;
        assert_eq!(t.num_nodes(), 54);
        assert_eq!(net.active_tors.len(), 9);
        assert_eq!(t.num_servers(), 54);
        // Active racks: 6 servers + 6 uplinks = 12 ports.
        for &a in &net.active_tors {
            assert_eq!(t.degree(a), 6);
            assert_eq!(t.servers_at(a), 6);
        }
        assert!(t.is_connected());
    }

    #[test]
    fn fig4_no_port_exceeds_twelve() {
        let net = ToyFig4::build();
        for n in 0..net.topology.num_nodes() as u32 {
            let used = net.topology.degree(n) + net.topology.servers_at(n) as usize;
            assert!(used <= 12, "switch {n} uses {used} ports");
        }
    }

    #[test]
    fn fig4_active_racks_attach_to_distinct_edges() {
        let net = ToyFig4::build();
        for &a in &net.active_tors {
            let mut edges: Vec<_> = net.topology.neighbors(a).iter().map(|&(v, _)| v).collect();
            edges.sort_unstable();
            edges.dedup();
            assert_eq!(edges.len(), 6, "rack {a} links concentrated");
        }
    }

    #[test]
    fn direct_only_is_6_regular() {
        let net = ToyFig4::direct_only();
        for n in 0..9u32 {
            assert_eq!(net.topology.degree(n), 6);
        }
        assert!(net.topology.is_connected());
    }
}
