//! # dcn-topology
//!
//! Data center network topologies for the reproduction of *"Beyond
//! fat-trees without antennae, mirrors, and disco-balls"* (SIGCOMM 2017).
//!
//! Provides the static topologies the paper evaluates —
//! [`fattree::FatTree`] (full and oversubscribed), [`xpander::Xpander`],
//! [`jellyfish::Jellyfish`], [`slimfly::SlimFly`], [`longhop::Longhop`] —
//! plus the §4.1 toy example ([`toy::ToyFig4`]) and the metrics used for
//! the paper's cabling and floor-plan arguments ([`metrics`]).
//!
//! All generators are deterministic given a seed.
//!
//! ```
//! use dcn_topology::{fattree::FatTree, xpander::Xpander, metrics::path_stats};
//!
//! let ft = FatTree::full(8).build();
//! let xp = Xpander::for_switches(7, 80, 4, 1).build();
//! assert!(path_stats(&xp).avg_path_length < path_stats(&ft).avg_path_length);
//! ```

pub mod dragonfly;
pub mod export;
pub mod fattree;
pub mod graph;
pub mod jellyfish;
pub mod longhop;
pub mod metrics;
pub mod slimfly;
pub mod toy;
pub mod xpander;

pub use graph::{Link, LinkId, NodeId, NodeKind, Topology};
