//! Jellyfish: a random regular graph of top-of-rack switches
//! (Singla et al., NSDI 2012), built with the paper's incremental
//! construction plus the rewiring step that absorbs leftover free ports.

use crate::graph::{NodeId, NodeKind, Topology};
use dcn_rng::{Rng, SliceRandom};

/// Configuration of a Jellyfish network.
#[derive(Clone, Copy, Debug)]
pub struct Jellyfish {
    /// Number of ToR switches.
    pub switches: u32,
    /// Network ports per switch (target degree of the random regular graph).
    pub net_degree: u32,
    /// Servers attached to each switch.
    pub servers_per_switch: u32,
    /// RNG seed; same seed ⇒ identical topology.
    pub seed: u64,
}

impl Jellyfish {
    pub fn new(switches: u32, net_degree: u32, servers_per_switch: u32, seed: u64) -> Self {
        assert!(
            switches as u64 > net_degree as u64,
            "need more switches than degree"
        );
        assert!(
            (switches as u64 * net_degree as u64).is_multiple_of(2),
            "switches * degree must be even"
        );
        Jellyfish {
            switches,
            net_degree,
            servers_per_switch,
            seed,
        }
    }

    /// Builds the random regular graph. Guaranteed simple (no parallel
    /// links, no self loops) and, for the parameter ranges used in the
    /// paper (degree ≥ 3), connected with overwhelming probability; the
    /// builder retries with a derived seed in the rare failure case.
    pub fn build(&self) -> Topology {
        for attempt in 0..64u64 {
            if let Some(t) = self.try_build(self.seed.wrapping_add(attempt * 0x9E37_79B9)) {
                if t.is_connected() {
                    return t;
                }
            }
        }
        panic!("jellyfish construction failed for {self:?}");
    }

    fn try_build(&self, seed: u64) -> Option<Topology> {
        let n = self.switches;
        let d = self.net_degree;
        let mut rng = Rng::seed_from_u64(seed);
        let mut t = Topology::new(format!(
            "jellyfish(n={n}, d={d}, s={}, seed={})",
            self.servers_per_switch, self.seed
        ));
        for _ in 0..n {
            t.add_node(NodeKind::Tor, self.servers_per_switch);
        }

        let mut free: Vec<u32> = vec![d; n as usize];
        // Candidate pool of nodes with free ports.
        let mut pool: Vec<NodeId> = (0..n).collect();

        // Phase 1: randomly join free-port pairs until no progress.
        let mut stall = 0usize;
        while pool.len() > 1 && stall < 200 {
            let i = rng.gen_range(0..pool.len());
            let mut j = rng.gen_range(0..pool.len() - 1);
            if j >= i {
                j += 1;
            }
            let (u, v) = (pool[i], pool[j]);
            if !t.are_adjacent(u, v) {
                t.add_link(u, v);
                for x in [u, v] {
                    free[x as usize] -= 1;
                }
                pool.retain(|&x| free[x as usize] > 0);
                stall = 0;
            } else {
                stall += 1;
            }
        }

        // Phase 2: Jellyfish rewiring — a node with ≥2 free ports steals a
        // random existing edge (u,v), connecting itself to both endpoints.
        let mut guard = 0usize;
        loop {
            pool = (0..n).filter(|&x| free[x as usize] > 0).collect();
            let two_free: Vec<NodeId> = pool
                .iter()
                .copied()
                .filter(|&x| free[x as usize] >= 2)
                .collect();
            if two_free.is_empty() {
                break;
            }
            guard += 1;
            if guard > 100_000 {
                return None;
            }
            let &w = two_free.choose(&mut rng).unwrap();
            // Rebuild is easier than in-place deletion: collect edges, drop
            // one not incident to w, reconstruct.
            let mut edges: Vec<(NodeId, NodeId)> = t.links().iter().map(|l| (l.a, l.b)).collect();
            let candidates: Vec<usize> = edges
                .iter()
                .enumerate()
                .filter(|(_, &(a, b))| {
                    a != w && b != w && !t.are_adjacent(w, a) && !t.are_adjacent(w, b)
                })
                .map(|(i, _)| i)
                .collect();
            let &idx = candidates.choose(&mut rng)?;
            let (a, b) = edges.remove(idx);
            edges.push((w, a));
            edges.push((w, b));
            free[w as usize] -= 2;

            let mut nt = Topology::new(t.name().to_string());
            for _ in 0..n {
                nt.add_node(NodeKind::Tor, self.servers_per_switch);
            }
            for (x, y) in edges {
                nt.add_link(x, y);
            }
            t = nt;
        }

        // At most one node may keep a single dangling free port (odd cases
        // are excluded by the evenness assertion; a single leftover can
        // remain when phase 1 ends with two adjacent nodes).
        if free.iter().filter(|&&f| f > 0).count() > 1 {
            return None;
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_and_connected() {
        let t = Jellyfish::new(50, 5, 4, 7).build();
        assert_eq!(t.num_nodes(), 50);
        assert!(t.is_connected());
        let mut deficient = 0;
        for n in 0..50u32 {
            assert!(t.degree(n) <= 5);
            if t.degree(n) < 5 {
                deficient += 1;
            }
            assert!(t.multiplicity(n, (n + 1) % 50) <= 1);
        }
        assert!(deficient <= 1, "{deficient} switches below target degree");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Jellyfish::new(40, 4, 2, 99).build();
        let b = Jellyfish::new(40, 4, 2, 99).build();
        let ea: Vec<_> = a.links().iter().map(|l| (l.a, l.b)).collect();
        let eb: Vec<_> = b.links().iter().map(|l| (l.a, l.b)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Jellyfish::new(40, 4, 2, 1).build();
        let b = Jellyfish::new(40, 4, 2, 2).build();
        let ea: Vec<_> = a.links().iter().map(|l| (l.a, l.b)).collect();
        let eb: Vec<_> = b.links().iter().map(|l| (l.a, l.b)).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn simple_graph_no_parallel_edges() {
        let t = Jellyfish::new(30, 6, 3, 3).build();
        for a in 0..30u32 {
            for b in (a + 1)..30u32 {
                assert!(t.multiplicity(a, b) <= 1);
            }
        }
    }

    #[test]
    fn low_diameter_like_an_expander() {
        // 100 nodes at degree 8: expander diameter should be tiny.
        let t = Jellyfish::new(100, 8, 4, 11).build();
        let diam = t.apsp().iter().flatten().max().copied().unwrap();
        assert!(diam <= 4, "diameter {diam} too large for an expander");
    }
}
