//! Slim Fly: the MMS (McKay–Miller–Širáň) diameter-2 topology
//! (Besta & Hoefler, SC 2014), built over the prime field GF(q).
//!
//! For a prime `q ≡ 1 (mod 4)` the network has `2q²` switches of network
//! degree `(3q−1)/2`. The paper's Fig 5a uses `q = 17`: 578 ToRs with 25
//! network ports and 24 servers each.

use crate::graph::{NodeId, NodeKind, Topology};

/// Slim Fly configuration over GF(q), q prime with q ≡ 1 (mod 4).
#[derive(Clone, Copy, Debug)]
pub struct SlimFly {
    pub q: u32,
    pub servers_per_switch: u32,
}

impl SlimFly {
    pub fn new(q: u32, servers_per_switch: u32) -> Self {
        assert!(is_prime(q), "q = {q} must be prime");
        assert!(
            q % 4 == 1,
            "this construction requires q ≡ 1 (mod 4), got {q}"
        );
        SlimFly {
            q,
            servers_per_switch,
        }
    }

    /// The paper's Fig 5a instance: q=17 ⇒ 578 ToRs, 25 network ports,
    /// 24 servers per ToR.
    pub fn paper_fig5a() -> Self {
        Self::new(17, 24)
    }

    pub fn num_switches(&self) -> usize {
        2 * (self.q as usize) * (self.q as usize)
    }

    /// Network degree of every switch: (3q−1)/2.
    pub fn net_degree(&self) -> usize {
        (3 * self.q as usize - 1) / 2
    }

    /// Builds the MMS graph. Vertices are (subgraph, x, y): subgraph 0
    /// holds "routers" (0,x,y), subgraph 1 holds (1,m,c). Node id layout:
    /// subgraph·q² + x·q + y. `group(node)` is `x` (resp. `q + m`),
    /// i.e. the natural column grouping used for cabling.
    pub fn build(&self) -> Topology {
        let q = self.q;
        let qi = q as u64;
        let xi = primitive_root(q) as u64;

        // Generator sets: X = even powers of ξ (quadratic residues),
        // X' = odd powers. Both are symmetric since −1 is a QR for q≡1 mod 4.
        let mut x_set = vec![false; q as usize];
        let mut xp_set = vec![false; q as usize];
        let mut p = 1u64;
        for i in 0..(qi - 1) {
            if i % 2 == 0 {
                x_set[p as usize] = true;
            } else {
                xp_set[p as usize] = true;
            }
            p = p * xi % qi;
        }

        let mut t = Topology::new(format!("slimfly(q={q}, s={})", self.servers_per_switch));
        let id = |s: u32, a: u32, b: u32| -> NodeId { s * q * q + a * q + b };
        for s in 0..2 {
            for a in 0..q {
                for b in 0..q {
                    let n = t.add_node(NodeKind::Tor, self.servers_per_switch);
                    t.set_group(n, s * q + a);
                    debug_assert_eq!(n, id(s, a, b));
                }
            }
        }

        // Intra-column edges.
        for a in 0..q {
            for y in 0..q {
                for yp in (y + 1)..q {
                    let diff = ((yp + q) - y) % q;
                    if x_set[diff as usize] {
                        t.add_link(id(0, a, y), id(0, a, yp));
                    }
                    if xp_set[diff as usize] {
                        t.add_link(id(1, a, y), id(1, a, yp));
                    }
                }
            }
        }
        // Cross edges: (0,x,y) ~ (1,m,c) iff y = m·x + c (mod q).
        for x in 0..q as u64 {
            for m in 0..q as u64 {
                for c in 0..q as u64 {
                    let y = (m * x + c) % qi;
                    t.add_link(id(0, x as u32, y as u32), id(1, m as u32, c as u32));
                }
            }
        }
        t
    }
}

fn is_prime(n: u32) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2u32;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Smallest primitive root modulo a prime `q`.
fn primitive_root(q: u32) -> u32 {
    let phi = (q - 1) as u64;
    let mut factors = Vec::new();
    let mut m = phi;
    let mut d = 2u64;
    while d * d <= m {
        if m.is_multiple_of(d) {
            factors.push(d);
            while m.is_multiple_of(d) {
                m /= d;
            }
        }
        d += 1;
    }
    if m > 1 {
        factors.push(m);
    }
    'outer: for g in 2..q as u64 {
        for &f in &factors {
            if pow_mod(g, phi / f, q as u64) == 1 {
                continue 'outer;
            }
        }
        return g as u32;
    }
    unreachable!("no primitive root found for prime {q}");
}

fn pow_mod(mut b: u64, mut e: u64, m: u64) -> u64 {
    let mut r = 1u64;
    b %= m;
    while e > 0 {
        if e & 1 == 1 {
            r = r * b % m;
        }
        b = b * b % m;
        e >>= 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q5_shape() {
        let sf = SlimFly::new(5, 4);
        let t = sf.build();
        assert_eq!(t.num_nodes(), 50);
        assert_eq!(sf.net_degree(), 7);
        for n in 0..50u32 {
            assert_eq!(t.degree(n), 7, "node {n}");
        }
        assert!(t.is_connected());
    }

    #[test]
    fn q5_diameter_two() {
        let t = SlimFly::new(5, 1).build();
        let diam = t.apsp().iter().flatten().max().copied().unwrap();
        assert_eq!(diam, 2);
    }

    #[test]
    fn q13_regular_diameter_two() {
        let sf = SlimFly::new(13, 12);
        let t = sf.build();
        assert_eq!(t.num_nodes(), 338);
        for n in 0..t.num_nodes() as u32 {
            assert_eq!(t.degree(n), 19);
        }
        let diam = t.apsp().iter().flatten().max().copied().unwrap();
        assert_eq!(diam, 2);
    }

    #[test]
    fn paper_config_q17() {
        let sf = SlimFly::paper_fig5a();
        assert_eq!(sf.num_switches(), 578);
        assert_eq!(sf.net_degree(), 25);
        let t = sf.build();
        assert_eq!(t.num_nodes(), 578);
        assert_eq!(t.num_servers(), 578 * 24);
        for n in 0..578u32 {
            assert_eq!(t.degree(n), 25);
        }
    }

    #[test]
    fn primitive_roots() {
        assert_eq!(primitive_root(5), 2);
        assert_eq!(primitive_root(13), 2);
        assert_eq!(primitive_root(17), 3);
    }

    #[test]
    #[should_panic]
    fn rejects_q_not_1_mod_4() {
        SlimFly::new(7, 1);
    }
}
