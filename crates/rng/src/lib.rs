//! # dcn-rng
//!
//! A tiny, dependency-free, deterministic RNG for the workspace:
//! xoshiro256** seeded through SplitMix64. Every experiment in this
//! repository derives all randomness from a user-supplied `u64` seed, so
//! the generator only needs to be fast, well-mixed, and stable across
//! platforms and releases — it is never used for security.
//!
//! The API mirrors the subset of `rand` the workspace used before going
//! hermetic: [`Rng::seed_from_u64`], [`Rng::gen_range`] over half-open
//! integer and float ranges, and the [`SliceRandom`] extension trait with
//! `shuffle` / `choose`.
//!
//! ```
//! use dcn_rng::{Rng, SliceRandom};
//!
//! let mut rng = Rng::seed_from_u64(7);
//! let die = rng.gen_range(1..7u32);
//! assert!((1..7).contains(&die));
//! let mut v = vec![1, 2, 3, 4];
//! v.shuffle(&mut rng);
//! assert_eq!(Rng::seed_from_u64(7).next_u64(), Rng::seed_from_u64(7).next_u64());
//! ```

use std::ops::Range;

/// SplitMix64 step — used to expand a 64-bit seed into the xoshiro state
/// and available on its own for cheap stateless sub-seed derivation.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Deterministically builds the full 256-bit state from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let s = [
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
        ];
        Rng { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a non-empty half-open range.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// The raw 256-bit generator state, for checkpointing. Restoring it
    /// with [`Rng::from_state`] resumes the exact stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`Rng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }
}

/// Unbiased uniform integer in `[0, span)` via Lemire's multiply-shift
/// rejection method.
fn uniform_u64(rng: &mut Rng, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Types [`Rng::gen_range`] can sample uniformly over a half-open range.
pub trait SampleUniform: Copy {
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range on empty range {lo}..{hi}");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range on empty range {lo}..{hi}");
        let v = lo + rng.next_f64() * (hi - lo);
        // Floating rounding may land exactly on `hi`; clamp back inside.
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
}

/// Slice helpers matching the shapes of `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut Rng);

    /// Uniformly chosen element, or `None` if empty.
    fn choose(&self, rng: &mut Rng) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut Rng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose(&self, rng: &mut Rng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_is_pinned() {
        // Regression pin: workloads and topologies derive from this exact
        // stream; silently changing it would silently change experiments.
        let mut r = Rng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 11091344671253066420);
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0..1u64);
            assert_eq!(w, 0);
            let z = r.gen_range(5..6usize);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = Rng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let u = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut r = Rng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut Rng::seed_from_u64(6));
        b.shuffle(&mut Rng::seed_from_u64(6));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty_some_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut r).unwrap()));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(8);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01, "{hits}");
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = Rng::seed_from_u64(11);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_subseed_derivation() {
        let mut s = 99u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
    }
}
