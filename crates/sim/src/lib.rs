//! # dcn-sim
//!
//! A packet-level discrete-event data center network simulator — the Rust
//! replacement for the netbench framework used by *"Beyond fat-trees
//! without antennae, mirrors, and disco-balls"* (SIGCOMM 2017, §6).
//!
//! The simulator is layered (see `DESIGN.md` for the full contract):
//!
//! - [`engine`] — calendar event queue, clock, and dispatch loop
//!   ([`Simulator`]), with in-flight packets in a [`PacketArena`] slab;
//! - [`host`] — per-flow state behind the pluggable [`Transport`] trait
//!   ([`Dctcp`] by default; [`NewReno`] and [`PFabric`] ship too);
//! - [`switch`] — per-port queues behind the [`QueueDiscipline`] trait
//!   ([`TailDropEcn`] by default, [`PFabricQueue`] for strict priority);
//! - [`fault`] — deterministic link/switch failure schedules;
//! - [`trace`] — the observability layer: structured event tracing
//!   ([`Tracer`]; [`NopTracer`]/[`CountingTracer`]/[`JsonlTracer`]),
//!   per-channel counters, and the packet-conservation checker.
//!
//! Model: output-queued switches with tail-drop queues and DCTCP-style ECN
//! marking, full-duplex links with serialization + propagation delay,
//! per-flow DCTCP senders, and flowlet-granularity path selection through
//! any [`dcn_routing::PathSelector`] (ECMP / VLB / HYB).
//!
//! The default constructor reads the transport and queue discipline from
//! [`SimConfig`]; [`Simulator::with_transport`] and
//! [`Simulator::with_parts`] accept custom trait objects:
//!
//! ```
//! use dcn_sim::{Simulator, SimConfig, compute_metrics, SEC};
//! use dcn_routing::RoutingSuite;
//! use dcn_topology::fattree::FatTree;
//! use dcn_workloads::{tm::AllToAll, fsize::FixedSize, generate_flows};
//!
//! let t = FatTree::full(4).build();
//! let pattern = AllToAll::new(&t, t.tors_with_servers());
//! let flows = generate_flows(&pattern, &FixedSize(10_000), 500.0, 0.01, 7);
//!
//! // DCTCP over tail-drop+ECN switches (the paper's setup) ...
//! let suite = RoutingSuite::new(&t);
//! let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
//! sim.inject(&flows);
//! let m = compute_metrics(&sim.run(SEC), 0, SEC);
//! assert_eq!(m.completed, m.flows);
//!
//! // ... or any transport/queue-discipline pair, e.g. pFabric:
//! let suite = RoutingSuite::new(&t);
//! let mut sim = Simulator::new(
//!     &t,
//!     Box::new(suite.ecmp()),
//!     SimConfig::default().with_pfabric(),
//! );
//! assert_eq!(sim.transport_name(), "pfabric");
//! sim.inject(&flows);
//! let m = compute_metrics(&sim.run(SEC), 0, SEC);
//! assert_eq!(m.completed, m.flows);
//! ```

pub mod calendar;
pub mod channel;
pub mod checkpoint;
pub mod counters;
pub mod engine;
pub mod fault;
pub mod host;
pub mod mailbox;
pub mod net;
pub mod shard;
pub mod slab;
pub mod stats;
pub mod switch;
pub mod telemetry;
pub mod trace;
pub mod types;

pub use checkpoint::{config_fingerprint, install_io_hook, Checkpoint, CheckpointMeta};
pub use counters::{EngineCounters, ShardCounters, WallClockCounters, WALL_CLOCK_COUNTER_FIELDS};
pub use engine::Simulator;
pub use fault::{FaultEvent, FaultKind, FaultPlan, RemappedSelector};
pub use host::{AckActions, Dctcp, Flow, NewReno, PFabric, Transport};
pub use shard::NUM_SHARDS;
pub use slab::{PacketArena, PktId};
pub use stats::{
    compute_metrics, compute_metrics_with_dists, percentile, ChannelCounters, DropCounters,
    FctDistributions, FlowRecord, Metrics, StreamingHistogram, TraceCounters, SHORT_FLOW_BYTES,
};
pub use switch::{DisciplineFactory, EnqueueOutcome, PFabricQueue, QueueDiscipline, TailDropEcn};
pub use telemetry::{Sample, Telemetry, TelemetrySnapshot, DEFAULT_SAMPLE_EVERY_NS};
pub use trace::{
    check_conservation, Conservation, CountingTracer, JsonlTracer, NopTracer, SharedBuf,
    TraceEvent, Tracer, TracerSnapshot,
};
pub use types::{Ns, Packet, QueueDiscKind, SimConfig, TransportKind, MS, SEC, US};
