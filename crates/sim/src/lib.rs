//! # dcn-sim
//!
//! A packet-level discrete-event data center network simulator — the Rust
//! replacement for the netbench framework used by *"Beyond fat-trees
//! without antennae, mirrors, and disco-balls"* (SIGCOMM 2017, §6).
//!
//! Model: output-queued switches with tail-drop queues and DCTCP-style ECN
//! marking, full-duplex links with serialization + propagation delay,
//! per-flow DCTCP senders, and flowlet-granularity path selection through
//! any [`dcn_routing::PathSelector`] (ECMP / VLB / HYB).
//!
//! ```
//! use dcn_sim::{Simulator, SimConfig, compute_metrics, SEC};
//! use dcn_routing::RoutingSuite;
//! use dcn_topology::fattree::FatTree;
//! use dcn_workloads::{tm::AllToAll, fsize::FixedSize, generate_flows};
//!
//! let t = FatTree::full(4).build();
//! let suite = RoutingSuite::new(&t);
//! let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
//! let pattern = AllToAll::new(&t, t.tors_with_servers());
//! sim.inject(&generate_flows(&pattern, &FixedSize(10_000), 500.0, 0.01, 7));
//! let records = sim.run(SEC);
//! let m = compute_metrics(&records, 0, SEC);
//! assert_eq!(m.completed, m.flows);
//! ```

pub mod channel;
pub mod fault;
pub mod net;
pub mod stats;
pub mod types;

pub use fault::{FaultEvent, FaultKind, FaultPlan, RemappedSelector};
pub use net::Simulator;
pub use stats::{compute_metrics, percentile, FlowRecord, Metrics, SHORT_FLOW_BYTES};
pub use types::{Ns, Packet, SimConfig, Transport, MS, SEC, US};
