//! Versioned, fingerprinted snapshots of complete simulator state.
//!
//! [`Simulator::checkpoint`] captures everything the run depends on — the
//! per-shard event queues, per-flow transport state (sender and receiver
//! halves), switch queues, fault-controller state, the control-plane
//! schedule, observability cursors, and the intrinsic counters — into a
//! self-validating byte image. [`Simulator::restore`] rebuilds a simulator
//! from it that continues the run **byte-identically**: flow records,
//! JSONL traces, and telemetry streams from a checkpoint/restore cycle are
//! exactly those of the uninterrupted run, for every transport and with
//! fault plans active. The `dcnrun` supervisor leans on this to resume
//! crashed or killed jobs from their last good checkpoint.
//!
//! Checkpoints are taken between epochs, when every cross-shard mailbox
//! and per-shard barrier buffer is drained — so the only queue state is
//! the eight shard calendars themselves. The shard partition is a pure
//! function of the topology fingerprint and the worker count is not part
//! of the image (nor of the config fingerprint): a snapshot taken under
//! `threads = N` restores and continues byte-identically under any
//! `threads = M`.
//!
//! Wire format (all integers little-endian):
//!
//! ```text
//! magic "DCNCKPT1" | version u32 | topo fingerprint u64 | cfg fingerprint u64
//! | now u64 | events_processed u64 | payload ... | FNV-1a of all prior bytes
//! ```
//!
//! The topology fingerprint is [`Topology::fingerprint`]; the config
//! fingerprint hashes every behavior-relevant [`SimConfig`] field (floats
//! via `to_bits`). Restore refuses images whose fingerprints do not match
//! the topology and config it is given, and any truncation or bit flip
//! fails the trailing checksum in [`Checkpoint::from_bytes`] before any
//! state is trusted.
//!
//! Not checkpointable (checkpoint returns `Err`, nothing is written):
//! oracle routing (its selector is deliberately not rebuilt on restore),
//! tracers and telemetry over arbitrary in-memory sinks, and custom queue
//! disciplines that do not implement
//! [`QueueDiscipline::snapshot_queue`](crate::switch::QueueDiscipline).

use crate::calendar::{CalEntry, CalendarQueue};
use crate::engine::{CtrlEntry, CtrlEv, Ev, Simulator};
use crate::fault::{survivor_topology_from, FaultEvent, FaultKind, RemappedSelector};
use crate::host::{Flow, FlowRx};
use crate::shard::NUM_SHARDS;
use crate::slab::PacketArena;
use crate::stats::{ChannelCounters, DropCounters, TraceCounters};
use crate::telemetry::{Telemetry, TelemetrySnapshot};
use crate::trace::{CountingTracer, JsonlTracer, NopTracer, TracerSnapshot};
use crate::types::{Ns, Packet, SimConfig};
use dcn_routing::PathSelector;
use dcn_topology::Topology;
use std::cell::UnsafeCell;
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"DCNCKPT1";
/// v3: v2 (per-shard calendars, split sender/receiver flow halves, the
/// counter-based gray-loss state, the control-plane schedule) plus the
/// deterministic engine counter set — per-shard event totals, cross-shard
/// mailbox counts, calendar spill/fallback counters, arena high-water,
/// ring size — and the epoch/merge-tie scalars. The wall-clock counter
/// set is deliberately not serialized (it is not simulated state).
pub const VERSION: u32 = 3;
/// magic + version + topo fp + cfg fp + now + events_processed.
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fingerprint of every behavior-relevant [`SimConfig`] field, so a
/// checkpoint can only be restored under the exact configuration that
/// produced it. `threads` is deliberately excluded: the event schedule is
/// invariant to the worker count, so the same image restores under any.
pub fn config_fingerprint(cfg: &SimConfig) -> u64 {
    let mut e = Enc::new();
    e.f64(cfg.link_gbps);
    e.f64(cfg.server_link_gbps);
    e.u64(cfg.prop_delay_ns);
    e.u32(cfg.queue_pkts);
    e.u32(cfg.ecn_k_pkts);
    e.u64(cfg.flowlet_gap_ns);
    e.u32(cfg.mtu);
    e.u32(cfg.mss);
    e.u32(cfg.ack_bytes);
    e.u32(cfg.init_cwnd_pkts);
    e.u64(cfg.min_rto_ns);
    e.f64(cfg.dctcp_g);
    e.u32(cfg.host_queue_pkts);
    e.str(cfg.transport.name());
    e.str(cfg.queue_disc.name());
    e.u32(cfg.pfabric_cwnd_pkts);
    e.u64(cfg.reconverge_delay_ns);
    e.u64(cfg.max_events);
    fnv1a(&e.buf)
}

// ---- binary encoding helpers ----

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    fn vec_u64(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }

    fn vec_u32(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u32(x);
        }
    }

    fn vec_bool(&mut self, v: &[bool]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.bool(x);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err("checkpoint truncated".into());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("checkpoint corrupt: bad bool byte {b}")),
        }
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length prefix, sanity-capped so corrupt lengths fail instead of
    /// attempting enormous allocations.
    fn len(&mut self) -> Result<usize, String> {
        let n = self.u64()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err("checkpoint corrupt: length exceeds remaining bytes".into());
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.len()?;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| "checkpoint corrupt: invalid utf-8 string".into())
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    fn vec_u64(&mut self) -> Result<Vec<u64>, String> {
        let n = self.len()?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn vec_u32(&mut self) -> Result<Vec<u32>, String> {
        let n = self.len()?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn vec_bool(&mut self) -> Result<Vec<bool>, String> {
        let n = self.len()?;
        (0..n).map(|_| self.bool()).collect()
    }
}

// ---- component encoders ----

fn enc_packet(e: &mut Enc, p: &Packet) {
    e.u32(p.flow);
    e.u32(p.seq);
    e.u32(p.bytes);
    e.bool(p.ecn_ce);
    e.bool(p.is_ack);
    e.bool(p.ack_ecn);
    e.u64(p.ts);
    e.u16(p.hop);
    e.u32(p.prio);
    e.vec_u32(&p.path);
}

fn dec_packet(d: &mut Dec) -> Result<Packet, String> {
    Ok(Packet {
        flow: d.u32()?,
        seq: d.u32()?,
        bytes: d.u32()?,
        ecn_ce: d.bool()?,
        is_ack: d.bool()?,
        ack_ecn: d.bool()?,
        ts: d.u64()?,
        hop: d.u16()?,
        prio: d.u32()?,
        path: Arc::new(d.vec_u32()?),
    })
}

fn enc_ev(e: &mut Enc, ev: &Ev, pkts: &PacketArena) {
    match ev {
        Ev::FlowStart(f) => {
            e.u8(0);
            e.u32(*f);
        }
        Ev::TxFree(ch) => {
            e.u8(1);
            e.u32(*ch);
        }
        // In-flight packets are serialized by value — the wire format
        // carries packets, not arena ids, so images are independent of the
        // arena's slot layout.
        Ev::Deliver(id) => {
            e.u8(2);
            enc_packet(e, pkts.get(*id));
        }
        Ev::Rto(f, epoch) => {
            e.u8(3);
            e.u32(*f);
            e.u32(*epoch);
        }
    }
}

fn dec_ev(d: &mut Dec, pkts: &mut PacketArena) -> Result<Ev, String> {
    Ok(match d.u8()? {
        0 => Ev::FlowStart(d.u32()?),
        1 => Ev::TxFree(d.u32()?),
        2 => Ev::Deliver(pkts.alloc(dec_packet(d)?)),
        3 => Ev::Rto(d.u32()?, d.u32()?),
        t => return Err(format!("checkpoint corrupt: unknown event tag {t}")),
    })
}

fn enc_ctrl(e: &mut Enc, c: &CtrlEntry) {
    e.u64(c.t);
    e.u64(c.seq);
    match c.ev {
        CtrlEv::Fault(i) => {
            e.u8(0);
            e.u32(i);
        }
        CtrlEv::Reconverge(epoch) => {
            e.u8(1);
            e.u64(epoch);
        }
    }
}

fn dec_ctrl(d: &mut Dec) -> Result<CtrlEntry, String> {
    let t = d.u64()?;
    let seq = d.u64()?;
    let ev = match d.u8()? {
        0 => CtrlEv::Fault(d.u32()?),
        1 => CtrlEv::Reconverge(d.u64()?),
        tag => return Err(format!("checkpoint corrupt: unknown control tag {tag}")),
    };
    Ok(CtrlEntry { t, seq, ev })
}

/// Sender half only; the receiver half is a separate [`FlowRx`] record.
fn enc_flow(e: &mut Enc, f: &Flow) {
    e.u32(f.src_server);
    e.u32(f.dst_server);
    e.u32(f.src_tor);
    e.u32(f.dst_tor);
    e.u64(f.size_bytes);
    e.u64(f.start_ns);
    e.u32(f.total_pkts);
    e.u32(f.next_seq);
    e.u32(f.acked);
    e.f64(f.cwnd);
    e.f64(f.ssthresh);
    e.f64(f.alpha);
    e.u32(f.ecn_acked);
    e.u64(f.ecn_total);
    e.u32(f.window_acked);
    e.u32(f.window_end);
    e.bool(f.cwnd_cut_this_window);
    e.u32(f.dupacks);
    e.bool(f.in_recovery);
    e.u32(f.recover);
    e.f64(f.srtt);
    e.u32(f.rto_backoff);
    e.u32(f.rto_epoch);
    e.u64(f.last_send_ns);
    e.u64(f.flowlet_count);
    match &f.cur_path {
        Some(p) => {
            e.bool(true);
            e.vec_u32(p);
        }
        None => e.bool(false),
    }
    e.bool(f.in_window);
    e.bool(f.failed);
    e.opt_u64(f.fault_hit_ns);
    e.opt_u64(f.recovery_ns);
    e.u64(f.path_salt);
}

fn dec_flow(d: &mut Dec) -> Result<Flow, String> {
    Ok(Flow {
        src_server: d.u32()?,
        dst_server: d.u32()?,
        src_tor: d.u32()?,
        dst_tor: d.u32()?,
        size_bytes: d.u64()?,
        start_ns: d.u64()?,
        total_pkts: d.u32()?,
        next_seq: d.u32()?,
        acked: d.u32()?,
        cwnd: d.f64()?,
        ssthresh: d.f64()?,
        alpha: d.f64()?,
        ecn_acked: d.u32()?,
        ecn_total: d.u64()?,
        window_acked: d.u32()?,
        window_end: d.u32()?,
        cwnd_cut_this_window: d.bool()?,
        dupacks: d.u32()?,
        in_recovery: d.bool()?,
        recover: d.u32()?,
        srtt: d.f64()?,
        rto_backoff: d.u32()?,
        rto_epoch: d.u32()?,
        last_send_ns: d.u64()?,
        flowlet_count: d.u64()?,
        cur_path: if d.bool()? {
            Some(Arc::new(d.vec_u32()?))
        } else {
            None
        },
        in_window: d.bool()?,
        failed: d.bool()?,
        fault_hit_ns: d.opt_u64()?,
        recovery_ns: d.opt_u64()?,
        path_salt: d.u64()?,
    })
}

fn enc_rx(e: &mut Enc, r: &FlowRx) {
    e.u32(r.total_pkts);
    e.u32(r.dst_server);
    e.u64(r.start_ns);
    e.bool(r.in_window);
    e.vec_u64(&r.rcv_bitmap);
    e.u32(r.rcv_cum);
    // rev_cache is a pure content-derived cache: restored as None and
    // repopulated on the next data packet, with identical contents.
    e.opt_u64(r.finished_ns);
    e.bool(r.failed);
}

fn dec_rx(d: &mut Dec) -> Result<FlowRx, String> {
    Ok(FlowRx {
        total_pkts: d.u32()?,
        dst_server: d.u32()?,
        start_ns: d.u64()?,
        in_window: d.bool()?,
        rcv_bitmap: d.vec_u64()?,
        rcv_cum: d.u32()?,
        rev_cache: None,
        finished_ns: d.opt_u64()?,
        failed: d.bool()?,
    })
}

fn enc_fault_kind(e: &mut Enc, k: &FaultKind) {
    match *k {
        FaultKind::LinkDown(l) => {
            e.u8(0);
            e.u32(l);
        }
        FaultKind::LinkUp(l) => {
            e.u8(1);
            e.u32(l);
        }
        FaultKind::SwitchDown(n) => {
            e.u8(2);
            e.u32(n);
        }
        FaultKind::SwitchUp(n) => {
            e.u8(3);
            e.u32(n);
        }
        FaultKind::LinkGray(l, p) => {
            e.u8(4);
            e.u32(l);
            e.f64(p);
        }
        FaultKind::LinkClear(l) => {
            e.u8(5);
            e.u32(l);
        }
    }
}

fn dec_fault_kind(d: &mut Dec) -> Result<FaultKind, String> {
    Ok(match d.u8()? {
        0 => FaultKind::LinkDown(d.u32()?),
        1 => FaultKind::LinkUp(d.u32()?),
        2 => FaultKind::SwitchDown(d.u32()?),
        3 => FaultKind::SwitchUp(d.u32()?),
        4 => FaultKind::LinkGray(d.u32()?, d.f64()?),
        5 => FaultKind::LinkClear(d.u32()?),
        t => return Err(format!("checkpoint corrupt: unknown fault tag {t}")),
    })
}

fn enc_counters(e: &mut Enc, c: &TraceCounters) {
    e.u64(c.sent_data);
    e.u64(c.sent_acks);
    e.u64(c.delivered_data);
    e.u64(c.delivered_acks);
    e.u64(c.drops.congestion);
    e.u64(c.drops.eviction);
    e.u64(c.drops.fault);
    e.u64(c.drops.noroute);
    e.u64(c.marks);
    e.u64(c.rtos);
    e.u64(c.flowlet_switches);
    e.u64(c.path_reselects);
    e.u64(c.fault_transitions);
    e.u64(c.flows_started);
    e.u64(c.flows_finished);
    e.u64(c.flows_failed);
    e.u64(c.per_channel.len() as u64);
    for ch in &c.per_channel {
        e.u64(ch.enqueues);
        e.u64(ch.dequeues);
        e.u32(ch.hwm_pkts);
        e.u64(ch.hwm_bytes);
        e.u64(ch.marks);
        e.u64(ch.drops_congestion);
        e.u64(ch.drops_eviction);
        e.u64(ch.drops_fault);
    }
}

fn dec_counters(d: &mut Dec) -> Result<TraceCounters, String> {
    let mut c = TraceCounters {
        sent_data: d.u64()?,
        sent_acks: d.u64()?,
        delivered_data: d.u64()?,
        delivered_acks: d.u64()?,
        drops: DropCounters {
            congestion: d.u64()?,
            eviction: d.u64()?,
            fault: d.u64()?,
            noroute: d.u64()?,
        },
        marks: d.u64()?,
        rtos: d.u64()?,
        flowlet_switches: d.u64()?,
        path_reselects: d.u64()?,
        fault_transitions: d.u64()?,
        flows_started: d.u64()?,
        flows_finished: d.u64()?,
        flows_failed: d.u64()?,
        per_channel: Vec::new(),
    };
    let n = d.len()?;
    c.per_channel.reserve(n);
    for _ in 0..n {
        c.per_channel.push(ChannelCounters {
            enqueues: d.u64()?,
            dequeues: d.u64()?,
            hwm_pkts: d.u32()?,
            hwm_bytes: d.u64()?,
            marks: d.u64()?,
            drops_congestion: d.u64()?,
            drops_eviction: d.u64()?,
            drops_fault: d.u64()?,
        });
    }
    Ok(c)
}

// ---- the checkpoint image ----

/// Header fields of a checkpoint, cheap to inspect without a restore —
/// `dcnrun` uses this for salvage reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    pub version: u32,
    pub topo_fingerprint: u64,
    pub cfg_fingerprint: u64,
    /// Simulated time at which the snapshot was taken.
    pub now: Ns,
    pub events_processed: u64,
}

/// A validated checkpoint image (see the module docs for the format).
#[derive(Clone)]
pub struct Checkpoint {
    data: Vec<u8>,
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("bytes", &self.data.len())
            .field("meta", &self.meta())
            .finish()
    }
}

impl Checkpoint {
    /// Validates and adopts a serialized image: magic, version, and the
    /// trailing whole-image checksum must all hold.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, String> {
        if data.len() < HEADER_LEN + 8 {
            return Err("checkpoint truncated: shorter than header".into());
        }
        if &data[..8] != MAGIC {
            return Err("not a checkpoint: bad magic".into());
        }
        let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (expected {VERSION})"
            ));
        }
        let body = &data[..data.len() - 8];
        let want = u64::from_le_bytes(data[data.len() - 8..].try_into().unwrap());
        if fnv1a(body) != want {
            return Err("checkpoint corrupt: checksum mismatch".into());
        }
        Ok(Checkpoint { data })
    }

    /// The serialized image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Header fields, without decoding the payload.
    pub fn meta(&self) -> CheckpointMeta {
        let u = |at: usize| u64::from_le_bytes(self.data[at..at + 8].try_into().unwrap());
        CheckpointMeta {
            version: u32::from_le_bytes(self.data[8..12].try_into().unwrap()),
            topo_fingerprint: u(12),
            cfg_fingerprint: u(20),
            now: u(28),
            events_processed: u(36),
        }
    }

    /// Writes the image crash-safely: to `<path>.tmp`, fsynced, then
    /// renamed into place and the parent directory fsynced, so `path`
    /// only ever holds a complete image and a completed save survives
    /// power loss.
    ///
    /// Each step consults the installed I/O hook (see
    /// [`install_io_hook`]) under the sites `ckpt.save.write`,
    /// `ckpt.save.fsync`, and `ckpt.save.rename`, so the
    /// crash-consistency harness can fail or kill the process at every
    /// boundary and assert that resume is byte-identical.
    pub fn save(&self, path: &str) -> std::io::Result<()> {
        use std::io::Write;
        let tmp = format!("{path}.tmp");
        io_hook("ckpt.save.write")?;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&self.data)?;
        io_hook("ckpt.save.fsync")?;
        f.sync_all()?;
        io_hook("ckpt.save.rename")?;
        std::fs::rename(&tmp, path)?;
        // Durably record the rename in the directory entries, like
        // fsio::write_atomic does; without this a power loss can forget
        // the rename even though the image bytes themselves are durable.
        #[cfg(unix)]
        {
            let parent = match std::path::Path::new(path).parent() {
                Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
                _ => std::path::PathBuf::from("."),
            };
            std::fs::File::open(parent)?.sync_all()?;
        }
        Ok(())
    }

    /// Reads and validates an image from disk. Consults the installed
    /// I/O hook under the site `ckpt.load`.
    pub fn load(path: &str) -> Result<Self, String> {
        io_hook("ckpt.load").map_err(|e| format!("cannot read checkpoint {path}: {e}"))?;
        let data =
            std::fs::read(path).map_err(|e| format!("cannot read checkpoint {path}: {e}"))?;
        Self::from_bytes(data)
    }
}

/// Installable I/O fault hook for checkpoint persistence.
///
/// `dcn-sim` sits below `dcn-core` in the crate graph, so it cannot call
/// `dcn_core::failpoint` directly; instead the binaries install the
/// failpoint checker here once at startup (`jobs::worker_main` does).
/// Uninstalled, every site check is a single relaxed `OnceLock` read that
/// finds nothing — effectively free.
static IO_HOOK: std::sync::OnceLock<fn(&'static str) -> std::io::Result<()>> =
    std::sync::OnceLock::new();

/// Installs `hook` as the checkpoint I/O fault checker. The first
/// installation wins; later calls (e.g. in-process test harnesses
/// spinning up several workers) are no-ops, which is fine because every
/// caller installs the same function.
pub fn install_io_hook(hook: fn(&'static str) -> std::io::Result<()>) {
    let _ = IO_HOOK.set(hook);
}

fn io_hook(site: &'static str) -> std::io::Result<()> {
    match IO_HOOK.get() {
        Some(hook) => hook(site),
        None => Ok(()),
    }
}

impl Simulator {
    /// Snapshots the complete simulator state (see the module docs).
    ///
    /// Must be called between epochs (any time outside [`Simulator::run`]
    /// and `run_until` is): the cross-shard mailboxes and per-shard
    /// barrier buffers are empty then, so the shard calendars are the
    /// whole event state. Takes `&mut self` because file-backed
    /// observability sinks are flushed first, so their on-disk temporaries
    /// cover the cursors the snapshot records. Fails — without side
    /// effects on the run — when some installed component cannot be
    /// checkpointed.
    pub fn checkpoint(&mut self) -> Result<Checkpoint, String> {
        if self.sh.oracle.is_some() {
            return Err("oracle routing cannot be checkpointed".into());
        }
        let tracer_snap = self
            .tracer
            .snapshot()
            .ok_or("installed tracer does not support checkpointing")?;
        let telemetry_snap = match &self.telemetry {
            Some(tel) => Some(
                tel.snapshot()
                    .ok_or("installed telemetry sink does not support checkpointing")?,
            ),
            None => None,
        };
        self.tracer.flush_output();
        if let Some(tel) = self.telemetry.as_mut() {
            tel.flush()
                .map_err(|e| format!("telemetry flush failed: {e}"))?;
        }

        let mut e = Enc::new();
        e.buf.extend_from_slice(MAGIC);
        e.u32(VERSION);
        e.u64(self.topo.fingerprint());
        e.u64(config_fingerprint(&self.sh.cfg));
        e.u64(self.now);
        e.u64(self.events_processed);

        // Scalars.
        e.u64(self.window.0);
        e.u64(self.window.1);
        e.u64(self.window_remaining as u64);
        e.u64(self.pkts_sent);
        e.u64(self.pkts_delivered);
        e.u64(self.telemetry_next);
        e.u64(self.sh.plan_seed);
        e.u64(self.ctrl_seq);
        e.u64(self.epochs);
        e.u64(self.merge_ties);

        // Shard calendars, one section per shard in shard order, each in
        // arbitrary internal order: pop order is determined by the
        // (t, seq) element set alone, so restore is free to re-file
        // entries into differently sized calendars. The shard partition
        // is derived from the topology fingerprint, so each section
        // restores into the same shard that produced it.
        for s in 0..NUM_SHARDS {
            // Sound: `&mut self` is exclusive, no epoch is in flight.
            let st = unsafe { &*self.shards[s].0.get() };
            e.u64(st.queue.seq);
            e.u64(st.queue.peak as u64);
            // Deterministic per-shard counters, and the organic ring size
            // so the restored calendar spills exactly like the original
            // would have.
            e.u64(st.events_total);
            for d in 0..NUM_SHARDS {
                e.u64(st.xshard_sent[d]);
            }
            e.u64(st.queue.ladder_spills);
            e.u64(st.queue.scatter_fallbacks);
            e.u64(st.pkts.high_water() as u64);
            e.u64(st.queue.num_slots() as u64);
            e.u64(st.queue.len() as u64);
            for item in st.queue.iter() {
                e.u64(item.t);
                e.u64(item.seq);
                enc_ev(&mut e, &item.ev, &st.pkts);
            }
        }

        // Flows: all sender halves, then all receiver halves.
        e.u64(self.sh.flows.len() as u64);
        for id in 0..self.sh.flows.len() as u32 {
            enc_flow(&mut e, self.flow_ref(id));
        }
        for id in 0..self.sh.flows.len() as u32 {
            enc_rx(&mut e, self.rx_ref(id));
        }

        // Channels. Queued packets live in the arena of the shard owning
        // the channel's source node — snapshot against that arena.
        let chs = &self.sh.fabric.channels;
        e.u64(chs.len() as u64);
        for i in 0..chs.len() {
            let ch = i as u32;
            e.bool(chs.busy(ch));
            e.u64(chs.drops(ch));
            e.u64(chs.marks(ch));
            e.bool(chs.up(ch));
            e.f64(chs.loss_prob(ch));
            e.u64(chs.fault_drops(ch));
            e.u64(chs.evictions(ch));
            e.u64(chs.gray_ctr(ch));
            let owner = self.sh.shard_of_node(chs.src_node[i]);
            let pool = unsafe { &(*self.shards[owner].0.get()).pkts };
            let q = chs.snapshot_queue(ch, pool).ok_or_else(|| {
                "a channel's queue discipline does not support checkpointing".to_string()
            })?;
            e.u64(q.len() as u64);
            for p in &q {
                enc_packet(&mut e, p);
            }
        }

        // Fault controller (pure counters and masks — the gray-loss draw
        // state lives in the per-channel counters above).
        e.u64(self.faults.events.len() as u64);
        for ev in &self.faults.events {
            e.u64(ev.at_ns);
            enc_fault_kind(&mut e, &ev.kind);
        }
        e.u64(self.faults.pending as u64);
        e.u64(self.faults.epoch);
        e.vec_bool(&self.faults.down_links);
        e.vec_bool(&self.faults.down_sw);
        e.u64(self.faults.noroute_drops);

        // Remaining control-plane schedule (fault firings and
        // reconvergence completions not yet executed).
        e.u64((self.ctrl.len() - self.ctrl_pos) as u64);
        for c in &self.ctrl[self.ctrl_pos..] {
            enc_ctrl(&mut e, c);
        }

        // Goodput timeline and the routing view.
        e.vec_u64(&self.goodput_bins);
        match &self.routing_down {
            Some((dl, ds)) => {
                e.bool(true);
                e.vec_bool(dl);
                e.vec_bool(ds);
            }
            None => e.bool(false),
        }

        // Observability cursors.
        match &tracer_snap {
            TracerSnapshot::Nop => e.u8(0),
            TracerSnapshot::Counting {
                counters,
                last_t,
                time_regressions,
            } => {
                e.u8(1);
                enc_counters(&mut e, counters);
                e.u64(*last_t);
                e.u64(*time_regressions);
            }
            TracerSnapshot::JsonlFile { path, bytes, lines } => {
                e.u8(2);
                e.str(path);
                e.u64(*bytes);
                e.u64(*lines);
            }
        }
        match &telemetry_snap {
            Some(snap) => {
                e.bool(true);
                e.u64(snap.every_ns);
                e.str(&snap.path);
                e.u64(snap.samples);
                e.u64(snap.bytes);
                e.vec_u64(&snap.tx_bytes);
                e.u64(snap.tx_total);
            }
            None => e.bool(false),
        }

        let sum = fnv1a(&e.buf);
        e.u64(sum);
        Ok(Checkpoint { data: e.buf })
    }

    /// Rebuilds a simulator from a checkpoint taken on the same topology
    /// (`topo`), configuration (`cfg`), and routing scheme. `selector`
    /// must be the same *kind* of selector the original run used, built on
    /// the full topology — if faults had reconverged by checkpoint time,
    /// restore rebuilds it on the identical survivor view.
    ///
    /// The restored simulator continues byte-identically: driving it to
    /// the end produces the same flow records, trace lines, and telemetry
    /// samples the uninterrupted run would have — at any `cfg.threads`,
    /// including one differing from the snapshotting run's.
    pub fn restore(
        topo: &Topology,
        selector: Box<dyn PathSelector>,
        cfg: SimConfig,
        ckpt: &Checkpoint,
    ) -> Result<Simulator, String> {
        let meta = ckpt.meta();
        if meta.topo_fingerprint != topo.fingerprint() {
            return Err(format!(
                "checkpoint topology fingerprint {:016x} does not match the given topology ({:016x})",
                meta.topo_fingerprint,
                topo.fingerprint()
            ));
        }
        if meta.cfg_fingerprint != config_fingerprint(&cfg) {
            return Err(format!(
                "checkpoint config fingerprint {:016x} does not match the given config ({:016x})",
                meta.cfg_fingerprint,
                config_fingerprint(&cfg)
            ));
        }

        let payload = &ckpt.data[HEADER_LEN..ckpt.data.len() - 8];
        let mut d = Dec::new(payload);

        let window = (d.u64()?, d.u64()?);
        let window_remaining = d.u64()? as usize;
        let pkts_sent = d.u64()?;
        let pkts_delivered = d.u64()?;
        let telemetry_next = d.u64()?;
        let plan_seed = d.u64()?;
        let ctrl_seq = d.u64()?;
        let epochs = d.u64()?;
        let merge_ties = d.u64()?;

        // Per-shard calendars; Deliver packets decode into the owning
        // shard's fresh arena.
        struct ShardQueue {
            seq: u64,
            peak: usize,
            events_total: u64,
            xshard_sent: [u64; NUM_SHARDS],
            ladder_spills: u64,
            scatter_fallbacks: u64,
            arena_hwm: usize,
            num_slots: usize,
            items: Vec<CalEntry>,
            pkts: PacketArena,
        }
        let mut shard_queues = Vec::with_capacity(NUM_SHARDS);
        for _ in 0..NUM_SHARDS {
            let seq = d.u64()?;
            let peak = d.u64()? as usize;
            let events_total = d.u64()?;
            let mut xshard_sent = [0u64; NUM_SHARDS];
            for x in xshard_sent.iter_mut() {
                *x = d.u64()?;
            }
            let ladder_spills = d.u64()?;
            let scatter_fallbacks = d.u64()?;
            let arena_hwm = d.u64()? as usize;
            let num_slots = d.u64()? as usize;
            if num_slots != 0 && !num_slots.is_power_of_two() {
                return Err("checkpoint corrupt: calendar ring size not a power of two".into());
            }
            let n_items = d.len()?;
            let mut pkts = PacketArena::new();
            let mut items = Vec::with_capacity(n_items);
            for _ in 0..n_items {
                let t = d.u64()?;
                let seq = d.u64()?;
                let ev = dec_ev(&mut d, &mut pkts)?;
                items.push(CalEntry { t, seq, ev });
            }
            shard_queues.push(ShardQueue {
                seq,
                peak,
                events_total,
                xshard_sent,
                ladder_spills,
                scatter_fallbacks,
                arena_hwm,
                num_slots,
                items,
                pkts,
            });
        }

        let n_flows = d.len()?;
        let mut flows = Vec::with_capacity(n_flows);
        for _ in 0..n_flows {
            flows.push(dec_flow(&mut d)?);
        }
        let mut rxs = Vec::with_capacity(n_flows);
        for _ in 0..n_flows {
            rxs.push(dec_rx(&mut d)?);
        }

        struct ChanState {
            busy: bool,
            drops: u64,
            marks: u64,
            up: bool,
            loss_prob: f64,
            fault_drops: u64,
            evictions: u64,
            gray_ctr: u64,
            queue: Vec<Packet>,
        }
        let n_channels = d.len()?;
        let mut chans = Vec::with_capacity(n_channels);
        for _ in 0..n_channels {
            let busy = d.bool()?;
            let drops = d.u64()?;
            let marks = d.u64()?;
            let up = d.bool()?;
            let loss_prob = d.f64()?;
            let fault_drops = d.u64()?;
            let evictions = d.u64()?;
            let gray_ctr = d.u64()?;
            let n_q = d.len()?;
            let mut queue = Vec::with_capacity(n_q);
            for _ in 0..n_q {
                queue.push(dec_packet(&mut d)?);
            }
            chans.push(ChanState {
                busy,
                drops,
                marks,
                up,
                loss_prob,
                fault_drops,
                evictions,
                gray_ctr,
                queue,
            });
        }

        let n_fev = d.len()?;
        let mut fault_events = Vec::with_capacity(n_fev);
        for _ in 0..n_fev {
            let at_ns = d.u64()?;
            let kind = dec_fault_kind(&mut d)?;
            fault_events.push(FaultEvent { at_ns, kind });
        }
        let pending = d.u64()? as usize;
        let epoch = d.u64()?;
        let down_links = d.vec_bool()?;
        let down_sw = d.vec_bool()?;
        let noroute_drops = d.u64()?;

        let n_ctrl = d.len()?;
        let mut ctrl = Vec::with_capacity(n_ctrl);
        for _ in 0..n_ctrl {
            ctrl.push(dec_ctrl(&mut d)?);
        }

        let goodput_bins = d.vec_u64()?;
        let routing_down = if d.bool()? {
            Some((d.vec_bool()?, d.vec_bool()?))
        } else {
            None
        };

        let tracer_snap = match d.u8()? {
            0 => TracerSnapshot::Nop,
            1 => {
                let counters = dec_counters(&mut d)?;
                let last_t = d.u64()?;
                let time_regressions = d.u64()?;
                TracerSnapshot::Counting {
                    counters,
                    last_t,
                    time_regressions,
                }
            }
            2 => {
                let path = d.str()?;
                let bytes = d.u64()?;
                let lines = d.u64()?;
                TracerSnapshot::JsonlFile { path, bytes, lines }
            }
            t => return Err(format!("checkpoint corrupt: unknown tracer tag {t}")),
        };
        let telemetry_snap = if d.bool()? {
            Some(TelemetrySnapshot {
                every_ns: d.u64()?,
                path: d.str()?,
                samples: d.u64()?,
                bytes: d.u64()?,
                tx_bytes: d.vec_u64()?,
                tx_total: d.u64()?,
            })
        } else {
            None
        };
        if d.pos != payload.len() {
            return Err("checkpoint corrupt: trailing payload bytes".into());
        }

        // Reconstruct. The selector must see the same survivor view the
        // original's last reconvergence built.
        let selector: Box<dyn PathSelector> = match &routing_down {
            Some((dl, ds)) => {
                let (survivor, map) = survivor_topology_from(topo, dl, ds);
                Box::new(RemappedSelector::new(selector.rebuild(&survivor), map))
            }
            None => selector,
        };
        let mut sim = Simulator::new(topo, selector, cfg);
        sim.now = meta.now;
        sim.events_processed = meta.events_processed;
        sim.window = window;
        sim.window_remaining = window_remaining;
        sim.pkts_sent = pkts_sent;
        sim.pkts_delivered = pkts_delivered;
        sim.telemetry_next = telemetry_next;
        sim.routing_down = routing_down;
        sim.goodput_bins = goodput_bins;
        sim.sh.plan_seed = plan_seed;
        sim.sh.flows = flows.into_iter().map(UnsafeCell::new).collect();
        sim.sh.rx = rxs.into_iter().map(UnsafeCell::new).collect();
        sim.ctrl = ctrl;
        sim.ctrl_pos = 0;
        sim.ctrl_seq = ctrl_seq;
        sim.epochs = epochs;
        sim.merge_ties = merge_ties;

        // Each calendar is rebuilt from its serialized element set; pop
        // order depends only on (t, seq), so the rings are free to be
        // sized to the checkpointed population rather than the original's
        // default (a snapshot of a huge event set restores into
        // proportionally larger rings instead of degrading).
        for (s, q) in shard_queues.into_iter().enumerate() {
            let st = sim.shards[s].0.get_mut();
            st.pkts = q.pkts;
            st.pkts.set_high_water(q.arena_hwm);
            st.queue = CalendarQueue::from_items(q.seq, q.peak, q.items, meta.now, q.num_slots);
            st.queue.ladder_spills = q.ladder_spills;
            st.queue.scatter_fallbacks = q.scatter_fallbacks;
            st.events_total = q.events_total;
            st.xshard_sent = q.xshard_sent;
        }

        if sim.sh.fabric.channels.len() != chans.len() {
            return Err("checkpoint corrupt: channel count mismatch".into());
        }
        // Queued packets reinstate into the owning shard's arena, the one
        // their ids will be resolved against when the queue drains.
        let owners: Vec<usize> = {
            let chs = &sim.sh.fabric.channels;
            (0..chs.len())
                .map(|i| sim.sh.node_shard[chs.src_node[i] as usize] as usize)
                .collect()
        };
        let Simulator { sh, shards, .. } = &mut sim;
        for (i, st) in chans.into_iter().enumerate() {
            let dch = sh.fabric.channels.dyn_mut(i as u32);
            dch.busy = st.busy;
            dch.drops = st.drops;
            dch.marks = st.marks;
            dch.up = st.up;
            dch.loss_prob = st.loss_prob;
            dch.fault_drops = st.fault_drops;
            dch.evictions = st.evictions;
            dch.gray_ctr = st.gray_ctr;
            sh.fabric.channels.restore_queue(
                i as u32,
                st.queue,
                &mut shards[owners[i]].0.get_mut().pkts,
            );
        }

        if sim.faults.down_links.len() != down_links.len()
            || sim.faults.down_sw.len() != down_sw.len()
        {
            return Err("checkpoint corrupt: fault state size mismatch".into());
        }
        sim.faults.events = fault_events;
        sim.faults.pending = pending;
        sim.faults.epoch = epoch;
        sim.faults.down_links = down_links;
        sim.faults.down_sw = down_sw;
        sim.faults.noroute_drops = noroute_drops;

        match tracer_snap {
            TracerSnapshot::Nop => sim.set_tracer(Box::new(NopTracer)),
            TracerSnapshot::Counting {
                counters,
                last_t,
                time_regressions,
            } => sim.set_tracer(Box::new(CountingTracer {
                counters,
                last_t,
                time_regressions,
            })),
            TracerSnapshot::JsonlFile { path, bytes, lines } => {
                let t = JsonlTracer::resume(&path, bytes, lines)
                    .map_err(|e| format!("cannot resume trace file {path}: {e}"))?;
                sim.set_tracer(Box::new(t));
            }
        }
        if let Some(snap) = &telemetry_snap {
            let tel = Telemetry::resume_file(snap)
                .map_err(|e| format!("cannot resume telemetry file {}: {e}", snap.path))?;
            // Assign directly: set_telemetry would re-arm the deadline to
            // the first cadence boundary instead of the checkpointed one.
            sim.telemetry = Some(Box::new(tel));
            sim.telemetry_next = telemetry_next;
            sim.sh.tel_on = true;
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::types::{MS, SEC};
    use dcn_routing::RoutingSuite;
    use dcn_topology::fattree::FatTree;
    use dcn_workloads::tm::Endpoint;
    use dcn_workloads::FlowEvent;

    fn flow(start_s: f64, src: (u32, u32), dst: (u32, u32), bytes: u64) -> FlowEvent {
        FlowEvent {
            start_s,
            src: Endpoint {
                rack: src.0,
                server: src.1,
            },
            dst: Endpoint {
                rack: dst.0,
                server: dst.1,
            },
            bytes,
        }
    }

    fn faulty_sim(t: &Topology) -> Simulator {
        let suite = RoutingSuite::new(t);
        let mut sim = Simulator::new(t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[
            flow(0.0, (0, 0), (12, 0), 8_000_000),
            flow(0.0005, (4, 1), (8, 1), 300_000),
            flow(0.001, (8, 0), (0, 1), 50_000),
        ]);
        let l = t.neighbors(0)[0].1;
        sim.set_fault_plan(&FaultPlan::new().with_seed(11).link_down(MS, l).link_gray(
            2 * MS,
            t.neighbors(12)[0].1,
            0.01,
        ));
        sim
    }

    #[test]
    fn roundtrip_preserves_flow_records() {
        let t = FatTree::full(4).build();
        let mut straight = faulty_sim(&t);
        let want = straight.run(10 * SEC);

        let mut sim = faulty_sim(&t);
        assert!(!sim.run_until(3 * MS), "run should pause mid-flight");
        let ckpt = sim.checkpoint().expect("checkpoint");
        let suite = RoutingSuite::new(&t);
        let mut resumed =
            Simulator::restore(&t, Box::new(suite.ecmp()), SimConfig::default(), &ckpt)
                .expect("restore");
        let got = resumed.run(10 * SEC);
        assert_eq!(got, want, "restored run diverged");
        assert_eq!(resumed.events_processed(), straight.events_processed());
        assert_eq!(straight.total_drops(), resumed.total_drops());
        assert_eq!(
            straight.goodput_timeline_ms(),
            resumed.goodput_timeline_ms()
        );
    }

    #[test]
    fn restore_at_different_thread_count_is_byte_identical() {
        // A snapshot taken under one worker count must resume under
        // another to the exact same end state: the shard partition (and
        // so the schedule) is independent of `threads`.
        let t = FatTree::full(4).build();
        let mut straight = faulty_sim(&t);
        let want = straight.run(10 * SEC);

        let mut sim = faulty_sim(&t);
        sim.run_until(3 * MS);
        let ckpt = sim.checkpoint().expect("checkpoint");
        for threads in [2u32, 4] {
            let suite = RoutingSuite::new(&t);
            let cfg = SimConfig::default().with_threads(threads);
            let mut resumed =
                Simulator::restore(&t, Box::new(suite.ecmp()), cfg, &ckpt).expect("restore");
            let got = resumed.run(10 * SEC);
            assert_eq!(got, want, "restore under threads={threads} diverged");
            assert_eq!(resumed.events_processed(), straight.events_processed());
        }
    }

    #[test]
    fn serialized_roundtrip_and_meta() {
        let t = FatTree::full(4).build();
        let mut sim = faulty_sim(&t);
        sim.run_until(2 * MS);
        let ckpt = sim.checkpoint().unwrap();
        let meta = ckpt.meta();
        assert_eq!(meta.version, 3);
        assert_eq!(meta.topo_fingerprint, t.fingerprint());
        assert_eq!(
            meta.cfg_fingerprint,
            config_fingerprint(&SimConfig::default())
        );
        assert_eq!(meta.now, 2 * MS);
        assert!(meta.events_processed > 0);
        let reparsed = Checkpoint::from_bytes(ckpt.as_bytes().to_vec()).unwrap();
        assert_eq!(reparsed.meta(), meta);
    }

    #[test]
    fn config_fingerprint_ignores_thread_count() {
        assert_eq!(
            config_fingerprint(&SimConfig::default()),
            config_fingerprint(&SimConfig::default().with_threads(4)),
            "threads must not affect the config fingerprint — a checkpoint \
             restores at any worker count"
        );
    }

    #[test]
    fn corruption_is_detected() {
        let t = FatTree::full(4).build();
        let mut sim = faulty_sim(&t);
        sim.run_until(2 * MS);
        let ckpt = sim.checkpoint().unwrap();
        let mut bytes = ckpt.as_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = Checkpoint::from_bytes(bytes).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        let err = Checkpoint::from_bytes(b"DCNCKPT1".to_vec()).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        let err = Checkpoint::from_bytes(vec![0u8; 64]).unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn restore_rejects_wrong_topology_and_config() {
        let t = FatTree::full(4).build();
        let mut sim = faulty_sim(&t);
        sim.run_until(2 * MS);
        let ckpt = sim.checkpoint().unwrap();

        let other = FatTree::full(6).build();
        let suite = RoutingSuite::new(&other);
        let err = Simulator::restore(&other, Box::new(suite.ecmp()), SimConfig::default(), &ckpt)
            .err()
            .expect("restore on wrong topology must fail");
        assert!(err.contains("topology fingerprint"), "{err}");

        let suite = RoutingSuite::new(&t);
        let other_cfg = SimConfig {
            queue_pkts: 7,
            ..Default::default()
        };
        let err = Simulator::restore(&t, Box::new(suite.ecmp()), other_cfg, &ckpt)
            .err()
            .expect("restore under wrong config must fail");
        assert!(err.contains("config fingerprint"), "{err}");
    }

    #[test]
    fn oracle_routing_refuses_checkpoint() {
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.enable_oracle_routing(&t, 4);
        sim.inject(&[flow(0.0, (0, 0), (12, 0), 100_000)]);
        sim.run_until(0);
        let err = sim.checkpoint().unwrap_err();
        assert!(err.contains("oracle"), "{err}");
    }

    #[test]
    fn restore_resizes_calendar_for_large_heaps() {
        // A checkpoint whose event population dwarfs the default calendar
        // sizing must restore into proportionally larger per-shard rings
        // (not degrade into overloaded 1024-slot ones) and still continue
        // byte-identically.
        let t = FatTree::full(4).build();
        let racks = t.tors_with_servers();
        let mk = || {
            let suite = RoutingSuite::new(&t);
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
            // ~80k flows spread over 8 simulated seconds: at t=0 every
            // populated shard's calendar holds thousands of FlowStarts,
            // far beyond MIN_SLOTS.
            let flows: Vec<FlowEvent> = (0..80_000usize)
                .map(|i| {
                    let src_rack = racks[i % racks.len()];
                    let dst_rack = racks[(i + 5) % racks.len()];
                    flow(
                        (i as f64) * 1e-4,
                        (src_rack, (i % 2) as u32),
                        (dst_rack, ((i / 2) % 2) as u32),
                        2_000,
                    )
                })
                .collect();
            sim.inject(&flows);
            sim
        };
        let mut straight = mk();
        let mut sim = mk();
        assert!(!sim.run_until(0), "population should still be pending");
        let ckpt = sim.checkpoint().expect("checkpoint");
        let suite = RoutingSuite::new(&t);
        let mut resumed =
            Simulator::restore(&t, Box::new(suite.ecmp()), SimConfig::default(), &ckpt)
                .expect("restore");
        let mut max_slots = 0;
        for s in 0..NUM_SHARDS {
            max_slots = max_slots.max(resumed.shards[s].0.get_mut().queue.num_slots());
        }
        assert!(
            max_slots > 1024,
            "calendars must resize to the restored population, got a max of {max_slots} slots"
        );
        straight.run_until(5 * MS);
        resumed.run_until(5 * MS);
        assert_eq!(straight.events_processed(), resumed.events_processed());
        assert_eq!(straight.records(), resumed.records());
    }

    #[test]
    fn save_and_load_are_atomic_roundtrips() {
        let t = FatTree::full(4).build();
        let mut sim = faulty_sim(&t);
        sim.run_until(MS);
        let ckpt = sim.checkpoint().unwrap();
        let dir = std::env::temp_dir().join("dcn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.ckpt");
        let path = path.to_str().unwrap();
        ckpt.save(path).unwrap();
        let loaded = Checkpoint::load(path).unwrap();
        assert_eq!(loaded.as_bytes(), ckpt.as_bytes());
        assert!(Checkpoint::load("/nonexistent/x.ckpt").is_err());
        std::fs::remove_file(path).unwrap();
    }
}
