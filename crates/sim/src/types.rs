//! Core simulator types: time, packets, configuration.

use std::sync::Arc;

/// Simulation time in integer nanoseconds.
pub type Ns = u64;

pub const MS: Ns = 1_000_000;
pub const US: Ns = 1_000;
pub const SEC: Ns = 1_000_000_000;

/// A packet in flight. Data packets carry `seq` = packet index within the
/// flow; ACKs carry `seq` = cumulative packets received in order.
#[derive(Clone, Debug)]
pub struct Packet {
    pub flow: u32,
    pub seq: u32,
    /// Wire size in bytes (headers included).
    pub bytes: u32,
    /// Congestion Experienced: set by switches when queues exceed the ECN
    /// threshold (DCTCP marking).
    pub ecn_ce: bool,
    pub is_ack: bool,
    /// ECN echo carried back by ACKs.
    pub ack_ecn: bool,
    /// Send timestamp of the data packet this (or its ACK) measures.
    pub ts: Ns,
    /// Index of the next channel to traverse in `path`.
    pub hop: u16,
    /// Scheduling priority for priority-aware queue disciplines; lower is
    /// more urgent. pFabric stamps the flow's remaining size in packets;
    /// FIFO disciplines ignore it. ACKs are always priority 0.
    pub prio: u32,
    /// Directed channel ids from source server to destination server.
    pub path: Arc<Vec<u32>>,
}

/// Congestion-control flavor — the built-in [`crate::host::Transport`]
/// implementations selectable from a [`SimConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// DCTCP (the paper's setting): ECN-proportional window scaling.
    Dctcp,
    /// Loss-based NewReno baseline: ECN marks are ignored; the window
    /// reacts only to duplicate ACKs and timeouts.
    NewReno,
    /// pFabric-style minimal transport: a fixed near-BDP window, no
    /// AIMD/ECN reaction, loss recovery only. Pair it with
    /// [`QueueDiscKind::PFabric`] so the fabric schedules by remaining
    /// flow size.
    PFabric,
}

impl TransportKind {
    /// Parses a config-file name (`dctcp` / `newreno` / `pfabric`).
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s {
            "dctcp" => Some(TransportKind::Dctcp),
            "newreno" => Some(TransportKind::NewReno),
            "pfabric" => Some(TransportKind::PFabric),
            _ => None,
        }
    }

    /// The config-file name ([`TransportKind::parse`]'s inverse).
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Dctcp => "dctcp",
            TransportKind::NewReno => "newreno",
            TransportKind::PFabric => "pfabric",
        }
    }
}

/// Queue-discipline flavor — the built-in
/// [`crate::switch::QueueDiscipline`] implementations selectable from a
/// [`SimConfig`]. Every directed channel (switch port and host NIC queue)
/// gets its own instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueDiscKind {
    /// FIFO with tail drop and DCTCP-style ECN marking on enqueue — the
    /// paper's switch model.
    TailDropEcn,
    /// pFabric strict priority: dequeue the smallest-remaining-size packet
    /// first; when full, drop from the tail of the lowest-priority flow.
    /// No ECN marking.
    PFabric,
}

impl QueueDiscKind {
    /// Parses a config-file name (`tail_drop_ecn` / `pfabric`).
    pub fn parse(s: &str) -> Option<QueueDiscKind> {
        match s {
            "tail_drop_ecn" => Some(QueueDiscKind::TailDropEcn),
            "pfabric" => Some(QueueDiscKind::PFabric),
            _ => None,
        }
    }

    /// The config-file name ([`QueueDiscKind::parse`]'s inverse).
    pub fn name(&self) -> &'static str {
        match self {
            QueueDiscKind::TailDropEcn => "tail_drop_ecn",
            QueueDiscKind::PFabric => "pfabric",
        }
    }
}

/// Simulator configuration. Defaults reproduce the paper's §6.4 setup:
/// 10 Gbps links, DCTCP with ECN threshold 20 full-sized packets,
/// 50 µs flowlet gap.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Switch-to-switch link rate in Gbps.
    pub link_gbps: f64,
    /// Server-to-ToR link rate in Gbps. §6.6's "server-level bottlenecks
    /// ignored" mode sets this very high (e.g. 1000.0).
    pub server_link_gbps: f64,
    /// Per-link propagation delay.
    pub prop_delay_ns: Ns,
    /// Switch egress queue capacity in full-sized packets.
    pub queue_pkts: u32,
    /// DCTCP ECN marking threshold in full-sized packets.
    pub ecn_k_pkts: u32,
    /// Flowlet inactivity gap (Vanini et al.; the paper uses 50 µs).
    pub flowlet_gap_ns: Ns,
    /// Maximum transmission unit (wire bytes per data packet).
    pub mtu: u32,
    /// Payload bytes per data packet.
    pub mss: u32,
    /// ACK wire size.
    pub ack_bytes: u32,
    /// Initial congestion window in packets.
    pub init_cwnd_pkts: u32,
    /// Minimum retransmission timeout.
    pub min_rto_ns: Ns,
    /// DCTCP gain g for the fraction-of-marked-bytes EWMA.
    pub dctcp_g: f64,
    /// Host egress queue capacity in packets (the NIC/stack queue; it
    /// ECN-marks at the same threshold as switch ports so DCTCP
    /// self-paces instead of overflowing it).
    pub host_queue_pkts: u32,
    /// Congestion control; the paper evaluates DCTCP.
    pub transport: TransportKind,
    /// Per-port queue discipline; the paper's switches are tail-drop FIFOs
    /// with ECN marking.
    pub queue_disc: QueueDiscKind,
    /// Fixed congestion window for the pFabric transport, in packets
    /// (pFabric hosts send at a near-BDP window and never adapt it).
    pub pfabric_cwnd_pkts: u32,
    /// Control-plane reconvergence delay: time between a hard fault
    /// (link/switch down or up) and the routing tables being rebuilt on
    /// the survivor topology. Until it elapses selectors keep handing out
    /// dead paths and only end-host retransmission makes progress.
    pub reconverge_delay_ns: Ns,
    /// Watchdog: panic if a run processes more than this many events
    /// (0 disables). Guards against fault scenarios that would otherwise
    /// spin forever instead of failing loudly.
    pub max_events: u64,
    /// Worker threads executing the engine's fixed shard set (clamped to
    /// `1..=NUM_SHARDS`). The shard decomposition — and therefore every
    /// simulated byte — is identical at every setting; `threads` only
    /// chooses how many OS threads drain the shards each epoch.
    pub threads: u32,
    /// Collect the wall-clock counter set (per-shard drain time, barrier
    /// wait, mailbox flush — see [`crate::counters`]). Off by default so
    /// the epoch loop does no clock reads. Deliberately excluded from the
    /// checkpoint config fingerprint: like `threads`, it cannot affect
    /// simulated output.
    pub wall_counters: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_gbps: 10.0,
            server_link_gbps: 10.0,
            prop_delay_ns: 100,
            queue_pkts: 100,
            ecn_k_pkts: 20,
            flowlet_gap_ns: 50 * US,
            mtu: 1500,
            mss: 1460,
            ack_bytes: 40,
            init_cwnd_pkts: 10,
            min_rto_ns: MS,
            dctcp_g: 1.0 / 16.0,
            host_queue_pkts: 256,
            transport: TransportKind::Dctcp,
            queue_disc: QueueDiscKind::TailDropEcn,
            pfabric_cwnd_pkts: 18,
            reconverge_delay_ns: MS,
            max_events: 0,
            threads: 1,
            wall_counters: false,
        }
    }
}

impl SimConfig {
    /// §6.6 ProjecToR-style evaluation: "unconstrained capacity for
    /// server-switch links".
    pub fn unconstrained_servers(mut self) -> Self {
        self.server_link_gbps = 1000.0;
        self
    }

    /// Loss-based NewReno baseline instead of DCTCP.
    pub fn with_newreno(mut self) -> Self {
        self.transport = TransportKind::NewReno;
        self
    }

    /// The pFabric pair: minimal fixed-window transport plus
    /// strict-priority remaining-size queues at every port.
    pub fn with_pfabric(mut self) -> Self {
        self.transport = TransportKind::PFabric;
        self.queue_disc = QueueDiscKind::PFabric;
        self
    }

    /// Selects how many worker threads drain the shard set each epoch.
    /// Simulated results are byte-identical at every setting.
    pub fn with_threads(mut self, n: u32) -> Self {
        self.threads = n;
        self
    }

    /// Turns on the wall-clock counter set (drain/barrier/flush timing).
    /// Simulated results are unaffected.
    pub fn with_wall_counters(mut self) -> Self {
        self.wall_counters = true;
        self
    }

    /// Serialization time of `bytes` at `gbps`.
    pub fn ser_ns(bytes: u32, gbps: f64) -> Ns {
        ((bytes as f64 * 8.0) / gbps).ceil() as Ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_10g() {
        // 1500 B at 10 Gbps = 1.2 µs.
        assert_eq!(SimConfig::ser_ns(1500, 10.0), 1200);
        assert_eq!(SimConfig::ser_ns(40, 10.0), 32);
    }

    #[test]
    fn default_matches_paper_constants() {
        let c = SimConfig::default();
        assert_eq!(c.ecn_k_pkts, 20);
        assert_eq!(c.flowlet_gap_ns, 50_000);
        assert_eq!(c.link_gbps, 10.0);
    }

    #[test]
    fn unconstrained_servers_mode() {
        let c = SimConfig::default().unconstrained_servers();
        assert_eq!(c.server_link_gbps, 1000.0);
        assert_eq!(c.link_gbps, 10.0);
    }

    #[test]
    fn pfabric_mode_sets_transport_and_queue() {
        let c = SimConfig::default().with_pfabric();
        assert_eq!(c.transport, TransportKind::PFabric);
        assert_eq!(c.queue_disc, QueueDiscKind::PFabric);
        // The default pair stays the paper's DCTCP + tail-drop/ECN.
        let d = SimConfig::default();
        assert_eq!(d.transport, TransportKind::Dctcp);
        assert_eq!(d.queue_disc, QueueDiscKind::TailDropEcn);
    }

    #[test]
    fn kind_name_parsing() {
        assert_eq!(TransportKind::parse("dctcp"), Some(TransportKind::Dctcp));
        assert_eq!(
            TransportKind::parse("pfabric"),
            Some(TransportKind::PFabric)
        );
        assert_eq!(TransportKind::parse("cubic"), None);
        assert_eq!(
            QueueDiscKind::parse("tail_drop_ecn"),
            Some(QueueDiscKind::TailDropEcn)
        );
        assert_eq!(
            QueueDiscKind::parse("pfabric"),
            Some(QueueDiscKind::PFabric)
        );
        assert_eq!(QueueDiscKind::parse("red"), None);
    }
}
