//! Fault injection: deterministic, seeded schedules of link and switch
//! failures (and recoveries) consumed by the [`crate::Simulator`] event
//! loop.
//!
//! Two failure flavors are modeled:
//!
//! - **Hard failures** ([`FaultKind::LinkDown`] / [`FaultKind::SwitchDown`]):
//!   the channel stops delivering. In-flight and queued packets are lost
//!   (counted as *fault drops*, separate from congestion tail drops) and
//!   new offers are discarded. The control plane notices and rebuilds the
//!   routing tables after a configurable reconvergence delay; until then
//!   selectors keep emitting dead paths and only end-host retransmission
//!   (RTO + flowlet re-pinning) keeps flows alive.
//! - **Gray failures** ([`FaultKind::LinkGray`]): the link stays up but
//!   drops each packet with probability `p`. These are *not* visible to
//!   the control plane (no reconvergence) — exactly the silent-packet-loss
//!   pathology operators fear.
//!
//! Plans are plain data: build one with the chainable constructors or the
//! seeded [`FaultPlan::random_link_outages`] helper, hand it to
//! [`crate::Simulator::set_fault_plan`], and the same plan + same seed
//! reproduces the identical simulation.

use crate::switch::Fabric;
use crate::types::Ns;
use dcn_rng::Rng;
use dcn_routing::PathSelector;
use dcn_topology::{LinkId, NodeId, Topology};

/// What happens at a fault event's fire time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Hard-fail an undirected link (both directed channels).
    LinkDown(LinkId),
    /// Restore a hard-failed link.
    LinkUp(LinkId),
    /// Hard-fail a switch: every incident link channel plus the host
    /// channels of the servers in its rack.
    SwitchDown(NodeId),
    /// Restore a hard-failed switch.
    SwitchUp(NodeId),
    /// Gray failure: the link keeps forwarding but drops each packet with
    /// the given probability. Invisible to the control plane.
    LinkGray(LinkId, f64),
    /// Clear a gray failure.
    LinkClear(LinkId),
}

impl FaultKind {
    /// The `"kind"` tag used by fault-transition trace events.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkDown(_) => "link_down",
            FaultKind::LinkUp(_) => "link_up",
            FaultKind::SwitchDown(_) => "switch_down",
            FaultKind::SwitchUp(_) => "switch_up",
            FaultKind::LinkGray(..) => "link_gray",
            FaultKind::LinkClear(_) => "link_clear",
        }
    }

    /// The link or switch the fault targets.
    pub fn target(&self) -> u32 {
        match *self {
            FaultKind::LinkDown(l)
            | FaultKind::LinkUp(l)
            | FaultKind::LinkGray(l, _)
            | FaultKind::LinkClear(l) => l,
            FaultKind::SwitchDown(n) | FaultKind::SwitchUp(n) => n,
        }
    }

    /// Gray-loss probability in parts per million (0 for hard faults),
    /// the integer form trace events carry so renderings stay byte-stable.
    pub fn loss_ppm(&self) -> u32 {
        match *self {
            FaultKind::LinkGray(_, p) => (p * 1e6).round() as u32,
            _ => 0,
        }
    }
}

/// A timed fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    pub at_ns: Ns,
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the simulator's per-packet gray-loss draws. Two runs with
    /// the same plan (same seed) make identical drop decisions.
    pub seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the gray-loss RNG seed (chainable).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn link_down(mut self, at_ns: Ns, link: LinkId) -> Self {
        self.events.push(FaultEvent {
            at_ns,
            kind: FaultKind::LinkDown(link),
        });
        self
    }

    pub fn link_up(mut self, at_ns: Ns, link: LinkId) -> Self {
        self.events.push(FaultEvent {
            at_ns,
            kind: FaultKind::LinkUp(link),
        });
        self
    }

    pub fn switch_down(mut self, at_ns: Ns, node: NodeId) -> Self {
        self.events.push(FaultEvent {
            at_ns,
            kind: FaultKind::SwitchDown(node),
        });
        self
    }

    pub fn switch_up(mut self, at_ns: Ns, node: NodeId) -> Self {
        self.events.push(FaultEvent {
            at_ns,
            kind: FaultKind::SwitchUp(node),
        });
        self
    }

    /// Marks a link gray: forwards but drops each packet with probability
    /// `loss_prob` until [`FaultPlan::link_clear`].
    pub fn link_gray(mut self, at_ns: Ns, link: LinkId, loss_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_prob),
            "loss probability {loss_prob} out of range"
        );
        self.events.push(FaultEvent {
            at_ns,
            kind: FaultKind::LinkGray(link, loss_prob),
        });
        self
    }

    pub fn link_clear(mut self, at_ns: Ns, link: LinkId) -> Self {
        self.events.push(FaultEvent {
            at_ns,
            kind: FaultKind::LinkClear(link),
        });
        self
    }

    /// Seeded random outage: `count` distinct links go down at `down_ns`
    /// and come back at `up_ns` (pass `up_ns = None` for permanent
    /// failures). Link choice is uniform without replacement — the plan
    /// may disconnect the network; the simulator fails the affected flows
    /// rather than hanging.
    pub fn random_link_outages(
        topo: &Topology,
        count: usize,
        down_ns: Ns,
        up_ns: Option<Ns>,
        seed: u64,
    ) -> Self {
        use dcn_rng::{Rng, SliceRandom};
        let mut rng = Rng::seed_from_u64(seed);
        let mut ids: Vec<LinkId> = (0..topo.num_links() as LinkId).collect();
        ids.shuffle(&mut rng);
        ids.truncate(count.min(topo.num_links()));
        let mut plan = FaultPlan::new().with_seed(seed);
        for &l in &ids {
            plan = plan.link_down(down_ns, l);
            if let Some(up) = up_ns {
                assert!(up > down_ns, "recovery must come after the outage");
                plan = plan.link_up(up, l);
            }
        }
        plan
    }

    /// The scheduled events, in insertion order (the simulator's event
    /// heap orders them by time).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Order-sensitive FNV-1a digest over the seed and every scheduled
    /// event — the fault-plan provenance field in run manifests. Two plans
    /// with the same digest schedule the identical failure sequence.
    pub fn digest(&self) -> u64 {
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h = (*h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        mix(&mut h, &self.seed.to_le_bytes());
        for e in &self.events {
            mix(&mut h, &e.at_ns.to_le_bytes());
            mix(&mut h, e.kind.label().as_bytes());
            mix(&mut h, &(e.kind.target() as u64).to_le_bytes());
            mix(&mut h, &(e.kind.loss_ppm() as u64).to_le_bytes());
        }
        h
    }

    /// Checks the schedule against a simulation horizon and for coherent
    /// down/up (and gray/clear) sequencing, returning a one-line error
    /// instead of panicking — the CLI-facing counterpart to
    /// [`FaultPlan::validate`]. Events are examined in fire order (time,
    /// then insertion order — exactly how the simulator's event heap
    /// breaks ties). Rejected: events past `horizon_ns`, restoring a link
    /// or switch that is not down, downing one that is already down, and
    /// clearing a link that is not gray. Re-graying an already-gray link
    /// is allowed (it changes the loss level).
    pub fn validate_schedule(&self, topo: &Topology, horizon_ns: Ns) -> Result<(), String> {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| (self.events[i].at_ns, i));
        let mut link_down = vec![false; topo.num_links()];
        let mut link_gray = vec![false; topo.num_links()];
        let mut sw_down = vec![false; topo.num_nodes()];
        for i in order {
            let e = &self.events[i];
            let (label, target) = (e.kind.label(), e.kind.target());
            if e.at_ns > horizon_ns {
                return Err(format!(
                    "fault {label} on {target} at {} ns is past the simulation horizon ({horizon_ns} ns)",
                    e.at_ns
                ));
            }
            let bad_link = |l: LinkId| (l as usize) >= topo.num_links();
            let bad_node = |n: NodeId| (n as usize) >= topo.num_nodes();
            match e.kind {
                FaultKind::LinkDown(l) if bad_link(l) => {
                    return Err(format!("fault references unknown link {l}"));
                }
                FaultKind::LinkUp(l) | FaultKind::LinkGray(l, _) | FaultKind::LinkClear(l)
                    if bad_link(l) =>
                {
                    return Err(format!("fault references unknown link {l}"));
                }
                FaultKind::SwitchDown(n) | FaultKind::SwitchUp(n) if bad_node(n) => {
                    return Err(format!("fault references unknown switch {n}"));
                }
                FaultKind::LinkDown(l) => {
                    if link_down[l as usize] {
                        return Err(format!(
                            "link {l} downed at {} ns while already down (inverted or duplicate schedule)",
                            e.at_ns
                        ));
                    }
                    link_down[l as usize] = true;
                }
                FaultKind::LinkUp(l) => {
                    if !link_down[l as usize] {
                        return Err(format!(
                            "link {l} restored at {} ns but was never down (inverted schedule)",
                            e.at_ns
                        ));
                    }
                    link_down[l as usize] = false;
                }
                FaultKind::SwitchDown(n) => {
                    if sw_down[n as usize] {
                        return Err(format!(
                            "switch {n} downed at {} ns while already down (inverted or duplicate schedule)",
                            e.at_ns
                        ));
                    }
                    sw_down[n as usize] = true;
                }
                FaultKind::SwitchUp(n) => {
                    if !sw_down[n as usize] {
                        return Err(format!(
                            "switch {n} restored at {} ns but was never down (inverted schedule)",
                            e.at_ns
                        ));
                    }
                    sw_down[n as usize] = false;
                }
                FaultKind::LinkGray(l, _) => link_gray[l as usize] = true,
                FaultKind::LinkClear(l) => {
                    if !link_gray[l as usize] {
                        return Err(format!(
                            "link {l} gray-cleared at {} ns but was never gray (inverted schedule)",
                            e.at_ns
                        ));
                    }
                    link_gray[l as usize] = false;
                }
            }
        }
        Ok(())
    }

    /// Seeded adversarial fault plan for chaos fuzzing: random link
    /// down/up cycles (some permanent), gray periods, and switch outages,
    /// all inside `[0, horizon_ns]`. Each link or switch is targeted at
    /// most once, so the generated schedule always passes
    /// [`FaultPlan::validate_schedule`]. Same `(topo, horizon, seed)` ⇒
    /// identical plan.
    pub fn chaos(topo: &Topology, horizon_ns: Ns, seed: u64) -> Self {
        use dcn_rng::SliceRandom;
        let mut rng = Rng::seed_from_u64(seed ^ 0xC4A0_5CAF_F01D_BEEF);
        let horizon = horizon_ns.max(2);
        let mut links: Vec<LinkId> = (0..topo.num_links() as LinkId).collect();
        links.shuffle(&mut rng);
        let mut plan = FaultPlan::new().with_seed(seed);
        // 1..=4 hard link outages; roughly a third are permanent.
        let hard = rng.gen_range(1..5usize).min(links.len());
        for _ in 0..hard {
            let l = links.pop().unwrap();
            let down = rng.gen_range(0..horizon - 1);
            plan = plan.link_down(down, l);
            if !rng.gen_bool(0.33) {
                plan = plan.link_up(rng.gen_range(down + 1..horizon + 1), l);
            }
        }
        // 0..=2 gray periods on links not already used for hard faults.
        let gray = rng.gen_range(0..3usize).min(links.len());
        for _ in 0..gray {
            let l = links.pop().unwrap();
            let at = rng.gen_range(0..horizon - 1);
            plan = plan.link_gray(at, l, rng.gen_range(0.001..0.2));
            if rng.gen_bool(0.7) {
                plan = plan.link_clear(rng.gen_range(at + 1..horizon + 1), l);
            }
        }
        // 0..=1 switch outage.
        if topo.num_nodes() > 0 && rng.gen_bool(0.5) {
            let n = rng.gen_range(0..topo.num_nodes() as NodeId);
            let down = rng.gen_range(0..horizon - 1);
            plan = plan.switch_down(down, n);
            if !rng.gen_bool(0.33) {
                plan = plan.switch_up(rng.gen_range(down + 1..horizon + 1), n);
            }
        }
        plan
    }

    /// Panics if any event references a link or node outside `topo` —
    /// called by the simulator before scheduling.
    pub fn validate(&self, topo: &Topology) {
        for e in &self.events {
            match e.kind {
                FaultKind::LinkDown(l)
                | FaultKind::LinkUp(l)
                | FaultKind::LinkGray(l, _)
                | FaultKind::LinkClear(l) => {
                    assert!(
                        (l as usize) < topo.num_links(),
                        "fault references unknown link {l}"
                    )
                }
                FaultKind::SwitchDown(n) | FaultKind::SwitchUp(n) => {
                    assert!(
                        (n as usize) < topo.num_nodes(),
                        "fault references unknown switch {n}"
                    )
                }
            }
        }
    }
}

/// The fault layer's runtime state: which links/switches are currently
/// down, the not-yet-fired schedule, and the reconvergence epoch counter.
/// The engine owns one and routes every fault event through it; the
/// controller in turn degrades the [`Fabric`] — the engine never flips
/// channel state itself. Gray losses carry no RNG state here: each draw
/// is a stateless hash of (plan seed, channel, per-channel counter) —
/// see [`gray_drop`] — so shards can draw independently and still agree
/// byte-for-byte at every thread count.
pub(crate) struct FaultController {
    pub(crate) events: Vec<FaultEvent>,
    /// Scheduled fault events not yet fired; when zero, the current
    /// connectivity is final and disconnected flows can be failed.
    pub(crate) pending: usize,
    /// Bumped per hard fault so that of several queued control-plane
    /// rebuilds only the newest takes effect.
    pub(crate) epoch: u64,
    pub(crate) down_links: Vec<bool>,
    pub(crate) down_sw: Vec<bool>,
    /// Packets dropped at the source because the selector had no route.
    pub(crate) noroute_drops: u64,
}

impl FaultController {
    pub(crate) fn new(num_links: usize, num_nodes: usize) -> Self {
        FaultController {
            events: Vec::new(),
            pending: 0,
            epoch: 0,
            down_links: vec![false; num_links],
            down_sw: vec![false; num_nodes],
            noroute_drops: 0,
        }
    }

    /// Adopts a plan's events. Returns `(fire_time, event_index)` pairs
    /// for the engine to put on its control schedule — scheduling stays
    /// the engine's job.
    pub(crate) fn install(&mut self, plan: &FaultPlan) -> Vec<(Ns, u32)> {
        let mut schedule = Vec::with_capacity(plan.events().len());
        for e in plan.events() {
            let idx = self.events.len() as u32;
            self.events.push(*e);
            self.pending += 1;
            schedule.push((e.at_ns, idx));
        }
        schedule
    }

    /// The kind of scheduled event `idx`, for trace reporting.
    pub(crate) fn kind(&self, idx: u32) -> FaultKind {
        self.events[idx as usize].kind
    }

    /// Fires scheduled event `idx` against the fabric. Returns `true` when
    /// the fault is control-plane visible (hard link/switch change) and the
    /// engine must schedule a reconvergence; gray events return `false`.
    /// Coordinator-only: `up`/`loss_prob` are barrier fields.
    pub(crate) fn fire(&mut self, idx: u32, fabric: &Fabric) -> bool {
        self.pending -= 1;
        match self.events[idx as usize].kind {
            FaultKind::LinkDown(l) => self.set_link(l, true, fabric),
            FaultKind::LinkUp(l) => self.set_link(l, false, fabric),
            FaultKind::SwitchDown(n) => self.set_switch(n, true, fabric),
            FaultKind::SwitchUp(n) => self.set_switch(n, false, fabric),
            // Gray failures are invisible to the control plane: no
            // reconvergence, just per-packet losses in both directions.
            FaultKind::LinkGray(l, p) => {
                fabric.channels.set_loss_prob(2 * l, p);
                fabric.channels.set_loss_prob(2 * l + 1, p);
                return false;
            }
            FaultKind::LinkClear(l) => {
                fabric.channels.set_loss_prob(2 * l, 0.0);
                fabric.channels.set_loss_prob(2 * l + 1, 0.0);
                return false;
            }
        }
        true
    }

    fn set_link(&mut self, l: LinkId, down: bool, fabric: &Fabric) {
        self.down_links[l as usize] = down;
        fabric.apply_fault_state(&self.down_links, &self.down_sw);
    }

    fn set_switch(&mut self, n: NodeId, down: bool, fabric: &Fabric) {
        self.down_sw[n as usize] = down;
        fabric.apply_fault_state(&self.down_links, &self.down_sw);
    }

    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Claims the next reconvergence epoch (stale rebuilds compare against
    /// [`FaultController::epoch`] and bail).
    pub(crate) fn next_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    pub(crate) fn switch_is_down(&self, n: NodeId) -> bool {
        self.down_sw[n as usize]
    }

    /// The view the control plane reconverges on: same node ids, only the
    /// surviving links. Also returns the survivor→original link id map.
    pub(crate) fn survivor_topology(&self, full: &Topology) -> (Topology, Vec<LinkId>) {
        survivor_topology_from(full, &self.down_links, &self.down_sw)
    }

    /// Clones the current down-link / down-switch vectors (the routing
    /// view a checkpoint persists).
    pub(crate) fn down_state(&self) -> (Vec<bool>, Vec<bool>) {
        (self.down_links.clone(), self.down_sw.clone())
    }
}

/// One per-packet gray-loss draw: a stateless splitmix64 hash of the
/// fault-plan seed, the channel id, and the channel's draw counter,
/// mapped to `[0, 1)` with 53 bits. Counter-based (instead of a shared
/// sequential RNG) so the draw a packet sees depends only on how many
/// packets were offered to *its* channel before it — invariant under the
/// parallel engine's shard interleaving and thread count.
pub(crate) fn gray_drop(seed: u64, ch: u32, draw: u64, loss_prob: f64) -> bool {
    let x = crate::shard::mix64(
        seed ^ (ch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ draw.wrapping_mul(0xD129_0B2C_76A8_36C1),
    );
    ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < loss_prob
}

/// Survivor view for explicit down vectors — the restore path rebuilds a
/// checkpointed routing state through this without a live controller.
pub(crate) fn survivor_topology_from(
    full: &Topology,
    down_links: &[bool],
    down_sw: &[bool],
) -> (Topology, Vec<LinkId>) {
    let mut t = Topology::new(format!("{}-survivor", full.name()));
    for n in full.nodes() {
        t.add_node(full.kind(n), full.servers_at(n));
    }
    let mut map = Vec::new();
    for (l, link) in full.links().iter().enumerate() {
        let up = !down_links[l] && !down_sw[link.a as usize] && !down_sw[link.b as usize];
        if up {
            t.add_link_cap(link.a, link.b, link.capacity);
            map.push(l as LinkId);
        }
    }
    (t, map)
}

/// Connected-component label per node (BFS sweep).
pub(crate) fn component_labels(t: &Topology) -> Vec<u32> {
    let n = t.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as NodeId {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in t.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// A selector rebuilt against a survivor topology, translating its link
/// ids back to the original topology's numbering so the simulator's
/// link→channel mapping keeps working. Produced by the simulator's
/// reconvergence step.
pub struct RemappedSelector {
    inner: Box<dyn PathSelector>,
    /// `to_original[survivor link id] = original link id`.
    to_original: Vec<LinkId>,
}

impl RemappedSelector {
    pub fn new(inner: Box<dyn PathSelector>, to_original: Vec<LinkId>) -> Self {
        RemappedSelector { inner, to_original }
    }

    fn map(&self, links: Vec<LinkId>) -> Vec<LinkId> {
        links
            .into_iter()
            .map(|l| self.to_original[l as usize])
            .collect()
    }
}

impl PathSelector for RemappedSelector {
    fn select(&self, src: NodeId, dst: NodeId, key: u64, bytes_sent: u64) -> Vec<LinkId> {
        self.map(self.inner.select(src, dst, key, bytes_sent))
    }

    fn select_with_feedback(
        &self,
        src: NodeId,
        dst: NodeId,
        key: u64,
        bytes_sent: u64,
        ecn_marks: u64,
    ) -> Vec<LinkId> {
        self.map(
            self.inner
                .select_with_feedback(src, dst, key, bytes_sent, ecn_marks),
        )
    }

    fn rebuild(&self, topo: &Topology) -> Box<dyn PathSelector> {
        // Rebuilding against a new topology discards the old mapping; the
        // caller wraps the result in a fresh RemappedSelector for it.
        self.inner.rebuild(topo)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::xpander::Xpander;

    #[test]
    fn builder_collects_events_in_order() {
        let p = FaultPlan::new()
            .with_seed(9)
            .link_down(100, 3)
            .link_gray(200, 4, 0.1)
            .link_up(300, 3)
            .link_clear(400, 4)
            .switch_down(500, 1)
            .switch_up(600, 1);
        assert_eq!(p.seed, 9);
        assert_eq!(p.events().len(), 6);
        assert_eq!(p.events()[0].kind, FaultKind::LinkDown(3));
        assert_eq!(
            p.events()[2],
            FaultEvent {
                at_ns: 300,
                kind: FaultKind::LinkUp(3)
            }
        );
    }

    #[test]
    fn random_outages_deterministic_and_paired() {
        let t = Xpander::new(5, 6, 2, 1).build();
        let a = FaultPlan::random_link_outages(&t, 4, 1000, Some(5000), 7);
        let b = FaultPlan::random_link_outages(&t, 4, 1000, Some(5000), 7);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 8); // 4 downs + 4 ups
        let downs: Vec<_> = a
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::LinkDown(l) => Some(l),
                _ => None,
            })
            .collect();
        let ups: Vec<_> = a
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::LinkUp(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(downs, ups, "every down has a matching up");
        let distinct: std::collections::HashSet<_> = downs.iter().collect();
        assert_eq!(
            distinct.len(),
            downs.len(),
            "links chosen without replacement"
        );
    }

    #[test]
    fn random_outages_count_capped_by_links() {
        let t = Xpander::new(3, 2, 1, 1).build();
        let p = FaultPlan::random_link_outages(&t, 10_000, 0, None, 1);
        assert_eq!(p.events().len(), t.num_links());
    }

    #[test]
    fn kind_trace_labels() {
        assert_eq!(FaultKind::LinkDown(3).label(), "link_down");
        assert_eq!(FaultKind::LinkDown(3).target(), 3);
        assert_eq!(FaultKind::SwitchUp(7).label(), "switch_up");
        assert_eq!(FaultKind::SwitchUp(7).target(), 7);
        assert_eq!(FaultKind::LinkGray(1, 0.02).loss_ppm(), 20_000);
        assert_eq!(FaultKind::LinkClear(1).loss_ppm(), 0);
    }

    #[test]
    #[should_panic]
    fn validate_rejects_unknown_link() {
        let t = Xpander::new(3, 2, 1, 1).build();
        FaultPlan::new().link_down(0, 9999).validate(&t);
    }

    #[test]
    #[should_panic]
    fn gray_rejects_bad_probability() {
        let _ = FaultPlan::new().link_gray(0, 0, 1.5);
    }

    #[test]
    fn schedule_validation_accepts_coherent_plans() {
        let t = Xpander::new(5, 6, 2, 1).build();
        let p = FaultPlan::new()
            .link_down(100, 0)
            .link_up(200, 0)
            .link_gray(50, 1, 0.1)
            .link_gray(60, 1, 0.2) // re-gray: loss-level change, allowed
            .link_clear(300, 1)
            .switch_down(150, 2)
            .switch_up(400, 2);
        assert!(p.validate_schedule(&t, 1000).is_ok());
    }

    #[test]
    fn schedule_validation_rejects_past_horizon() {
        let t = Xpander::new(5, 6, 2, 1).build();
        let p = FaultPlan::new().link_down(5000, 0);
        let err = p.validate_schedule(&t, 1000).unwrap_err();
        assert!(err.contains("past the simulation horizon"), "{err}");
    }

    #[test]
    fn schedule_validation_rejects_inverted_link_cycle() {
        let t = Xpander::new(5, 6, 2, 1).build();
        // Up before down — an inverted schedule.
        let p = FaultPlan::new().link_up(100, 0).link_down(200, 0);
        let err = p.validate_schedule(&t, 1000).unwrap_err();
        assert!(err.contains("never down"), "{err}");
        // Double down on the same link.
        let p = FaultPlan::new().link_down(100, 0).link_down(200, 0);
        let err = p.validate_schedule(&t, 1000).unwrap_err();
        assert!(err.contains("already down"), "{err}");
        // Clear without gray.
        let p = FaultPlan::new().link_clear(100, 0);
        let err = p.validate_schedule(&t, 1000).unwrap_err();
        assert!(err.contains("never gray"), "{err}");
        // Switch restored before failing.
        let p = FaultPlan::new().switch_up(100, 0);
        assert!(p.validate_schedule(&t, 1000).is_err());
    }

    #[test]
    fn schedule_validation_orders_by_time_not_insertion() {
        let t = Xpander::new(5, 6, 2, 1).build();
        // Inserted up-first but timed down-first: valid in fire order.
        let p = FaultPlan::new().link_up(200, 0).link_down(100, 0);
        assert!(p.validate_schedule(&t, 1000).is_ok());
    }

    #[test]
    fn schedule_validation_rejects_unknown_targets() {
        let t = Xpander::new(3, 2, 1, 1).build();
        assert!(FaultPlan::new()
            .link_down(0, 9999)
            .validate_schedule(&t, 1000)
            .is_err());
        assert!(FaultPlan::new()
            .switch_down(0, 9999)
            .validate_schedule(&t, 1000)
            .is_err());
    }

    #[test]
    fn chaos_plans_deterministic_and_always_valid() {
        let t = Xpander::new(5, 8, 2, 3).build();
        for seed in 0..50 {
            let a = FaultPlan::chaos(&t, 1_000_000, seed);
            let b = FaultPlan::chaos(&t, 1_000_000, seed);
            assert_eq!(a.events(), b.events(), "seed {seed} not deterministic");
            assert!(!a.is_empty(), "seed {seed} generated an empty plan");
            a.validate_schedule(&t, 1_000_000)
                .unwrap_or_else(|e| panic!("seed {seed} generated invalid plan: {e}"));
        }
        assert_ne!(
            FaultPlan::chaos(&t, 1_000_000, 1).events(),
            FaultPlan::chaos(&t, 1_000_000, 2).events(),
            "different seeds should differ"
        );
    }
}
