//! Flow-completion statistics, following §6.4: "average FCT for all flows,
//! 99th percentile FCT for short flows (<100 KB), and average throughput
//! for the rest", over flows started within a measurement window — plus
//! the per-channel and by-cause counters the observability layer
//! ([`crate::trace`]) folds trace events into.

use crate::trace::TraceEvent;
use crate::types::Ns;

/// Boundary between "short" and "long" flows (paper: 100 KB).
pub const SHORT_FLOW_BYTES: u64 = 100_000;

/// Outcome of a single flow. `PartialEq`/`Eq` support exact
/// record-for-record comparison in determinism regression tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowRecord {
    pub start_ns: Ns,
    pub size_bytes: u64,
    /// `None` if the flow had not completed when the simulation ended.
    pub fct_ns: Option<Ns>,
    /// The flow was terminated by the simulator: its endpoints were
    /// permanently disconnected by faults, or the run ended first.
    /// Mutually exclusive with a `Some` fct.
    pub failed: bool,
    /// For flows that lost packets to an injected fault and then made
    /// progress again: time from the first fault-induced loss to the
    /// first new cumulative ACK afterwards (end-host recovery latency).
    pub recovery_ns: Option<Ns>,
}

impl FlowRecord {
    /// A pre-fault-era record: completed or simply unfinished.
    pub fn basic(start_ns: Ns, size_bytes: u64, fct_ns: Option<Ns>) -> Self {
        FlowRecord {
            start_ns,
            size_bytes,
            fct_ns,
            failed: false,
            recovery_ns: None,
        }
    }
}

/// Aggregated metrics over a measurement window.
#[derive(Clone, Copy, Debug, Default)]
pub struct Metrics {
    /// Name of the transport that produced these flows (e.g. `"dctcp"`),
    /// taken from `Simulator::transport_name()` via
    /// [`Metrics::with_transport`]; empty when not labeled.
    pub transport: &'static str,
    /// Flows that started inside the window.
    pub flows: usize,
    pub completed: usize,
    /// Average FCT over all completed window flows, in milliseconds.
    pub avg_fct_ms: f64,
    /// 99th-percentile FCT of completed short flows, in milliseconds.
    pub p99_short_fct_ms: f64,
    /// Average per-flow throughput of completed long flows, in Gbps.
    pub avg_long_tput_gbps: f64,
    pub short_flows: usize,
    pub long_flows: usize,
    /// Window flows the simulator terminated as failed (disconnected
    /// endpoints or unfinished at shutdown).
    pub failed: usize,
    /// Window flows that lost packets to a fault and then resumed.
    pub recovered_flows: usize,
    /// Mean end-host recovery latency over `recovered_flows`, in ms.
    pub avg_recovery_ms: f64,
}

impl Metrics {
    /// Labels the metrics with the transport that produced them
    /// (chainable): `compute_metrics(..).with_transport(sim.transport_name())`.
    pub fn with_transport(mut self, name: &'static str) -> Self {
        self.transport = name;
        self
    }
}

/// Computes the paper's three headline metrics over flows starting in
/// `[w_start, w_end)`. Unfinished flows are counted in `flows` but excluded
/// from the averages (callers should check `completed == flows` and extend
/// the run otherwise, as the paper's methodology requires all window flows
/// to finish).
pub fn compute_metrics(records: &[FlowRecord], w_start: Ns, w_end: Ns) -> Metrics {
    compute_metrics_with_dists(records, w_start, w_end).0
}

/// [`compute_metrics`] plus streaming FCT distributions, from the same
/// single pass. The [`Metrics`] half is bit-identical to what
/// [`compute_metrics`] returns; the [`FctDistributions`] half feeds run
/// manifests and `dcnstat` with full-percentile detail at fixed memory.
pub fn compute_metrics_with_dists(
    records: &[FlowRecord],
    w_start: Ns,
    w_end: Ns,
) -> (Metrics, FctDistributions) {
    let window: Vec<&FlowRecord> = records
        .iter()
        .filter(|r| r.start_ns >= w_start && r.start_ns < w_end)
        .collect();
    let mut m = Metrics {
        flows: window.len(),
        ..Default::default()
    };
    let mut d = FctDistributions::default();

    let mut fcts: Vec<f64> = Vec::new();
    let mut short_fcts: Vec<f64> = Vec::new();
    let mut long_tputs: Vec<f64> = Vec::new();
    let mut recovery_sum_ms = 0.0;
    for r in &window {
        let short = r.size_bytes < SHORT_FLOW_BYTES;
        if short {
            m.short_flows += 1;
        } else {
            m.long_flows += 1;
        }
        if r.failed {
            m.failed += 1;
        }
        if let Some(rec) = r.recovery_ns {
            m.recovered_flows += 1;
            recovery_sum_ms += rec as f64 / 1e6;
        }
        let Some(fct) = r.fct_ns else {
            continue;
        };
        m.completed += 1;
        d.all.record(fct);
        let fct_ms = fct as f64 / 1e6;
        fcts.push(fct_ms);
        if short {
            short_fcts.push(fct_ms);
            d.short.record(fct);
        } else {
            // bits / ns = Gbps.
            long_tputs.push(r.size_bytes as f64 * 8.0 / fct as f64);
            d.long.record(fct);
        }
    }
    if !fcts.is_empty() {
        m.avg_fct_ms = fcts.iter().sum::<f64>() / fcts.len() as f64;
    }
    m.p99_short_fct_ms = percentile(&short_fcts, 0.99);
    if !long_tputs.is_empty() {
        m.avg_long_tput_gbps = long_tputs.iter().sum::<f64>() / long_tputs.len() as f64;
    }
    if m.recovered_flows > 0 {
        m.avg_recovery_ms = recovery_sum_ms / m.recovered_flows as f64;
    }
    (m, d)
}

/// Streaming FCT distributions over one measurement window, in integer
/// nanoseconds: all completed flows, the short (<100 KB) subset, and the
/// long rest.
#[derive(Clone, Debug, Default)]
pub struct FctDistributions {
    pub all: StreamingHistogram,
    pub short: StreamingHistogram,
    pub long: StreamingHistogram,
}

/// Packet drops split by cause. `congestion` + `eviction` equals the
/// fabric's tail-drop count; `fault` + `noroute` equals its fault-drop
/// count, so the split refines (never disagrees with) the aggregate
/// counters reported through `SimCounters`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DropCounters {
    /// The offered packet was rejected by a full queue (tail drop).
    pub congestion: u64,
    /// A queued packet was evicted for a more urgent one (pFabric).
    pub eviction: u64,
    /// Lost on a dead or gray channel.
    pub fault: u64,
    /// Refused at the source because the selector had no route.
    pub noroute: u64,
}

impl DropCounters {
    /// All drops regardless of cause.
    pub fn total(&self) -> u64 {
        self.congestion + self.eviction + self.fault + self.noroute
    }
}

/// Per-channel occupancy and loss accounting, folded from trace events.
/// Indexed by the fabric's channel numbering.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelCounters {
    /// Packets that joined this channel's queue (excludes packets that
    /// started serializing immediately on an idle channel).
    pub enqueues: u64,
    /// Packets that began serializing.
    pub dequeues: u64,
    /// Occupancy high-water mark in packets, sampled after each enqueue.
    pub hwm_pkts: u32,
    /// Occupancy high-water mark in bytes.
    pub hwm_bytes: u64,
    /// ECN CE marks applied here.
    pub marks: u64,
    /// Tail drops of offered packets.
    pub drops_congestion: u64,
    /// Evictions of queued packets.
    pub drops_eviction: u64,
    /// Losses to dead or gray channel state.
    pub drops_fault: u64,
}

/// Whole-run counters maintained by
/// [`CountingTracer`](crate::trace::CountingTracer): global packet
/// accounting (the conservation identity's terms), drops by cause, and
/// per-channel detail.
#[derive(Clone, Debug, Default)]
pub struct TraceCounters {
    /// Data packets created at senders.
    pub sent_data: u64,
    /// ACK packets created at receivers.
    pub sent_acks: u64,
    /// Data packets that reached the destination host.
    pub delivered_data: u64,
    /// ACKs that reached the sender.
    pub delivered_acks: u64,
    pub drops: DropCounters,
    /// ECN marks across all channels.
    pub marks: u64,
    pub rtos: u64,
    pub flowlet_switches: u64,
    pub path_reselects: u64,
    pub fault_transitions: u64,
    pub flows_started: u64,
    pub flows_finished: u64,
    pub flows_failed: u64,
    /// Per-channel counters, grown on demand (channels that never saw a
    /// traced event may be absent from the tail).
    pub per_channel: Vec<ChannelCounters>,
}

impl TraceCounters {
    fn channel(&mut self, ch: u32) -> &mut ChannelCounters {
        let i = ch as usize;
        if self.per_channel.len() <= i {
            self.per_channel.resize(i + 1, ChannelCounters::default());
        }
        &mut self.per_channel[i]
    }

    /// Folds one event into the counters.
    pub fn record(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::FlowStart { .. } => self.flows_started += 1,
            TraceEvent::FlowFinish { .. } => self.flows_finished += 1,
            TraceEvent::FlowFail { .. } => self.flows_failed += 1,
            TraceEvent::Send { is_ack, .. } => {
                if is_ack {
                    self.sent_acks += 1;
                } else {
                    self.sent_data += 1;
                }
            }
            TraceEvent::Enqueue {
                ch, qlen, qbytes, ..
            } => {
                let c = self.channel(ch);
                c.enqueues += 1;
                c.hwm_pkts = c.hwm_pkts.max(qlen);
                c.hwm_bytes = c.hwm_bytes.max(qbytes);
            }
            TraceEvent::Dequeue { ch, .. } => self.channel(ch).dequeues += 1,
            TraceEvent::Deliver { is_ack, .. } => {
                if is_ack {
                    self.delivered_acks += 1;
                } else {
                    self.delivered_data += 1;
                }
            }
            TraceEvent::EcnMark { ch, .. } => {
                self.marks += 1;
                self.channel(ch).marks += 1;
            }
            TraceEvent::DropCongestion { ch, .. } => {
                self.drops.congestion += 1;
                self.channel(ch).drops_congestion += 1;
            }
            TraceEvent::DropEviction { ch, .. } => {
                self.drops.eviction += 1;
                self.channel(ch).drops_eviction += 1;
            }
            TraceEvent::DropFault { ch, .. } => {
                self.drops.fault += 1;
                self.channel(ch).drops_fault += 1;
            }
            TraceEvent::DropNoRoute { .. } => self.drops.noroute += 1,
            TraceEvent::Ack { .. } => {}
            TraceEvent::Rto { .. } => self.rtos += 1,
            TraceEvent::PathReselect { .. } => self.path_reselects += 1,
            TraceEvent::FlowletSwitch { .. } => self.flowlet_switches += 1,
            TraceEvent::Fault { .. } => self.fault_transitions += 1,
            TraceEvent::Reconverge { .. } => {}
        }
    }
}

/// Nearest-rank percentile; 0.0 for an empty sample.
///
/// Works on an internal scratch copy with `select_nth_unstable_by` — O(n)
/// instead of a full sort, and callers keep their slice untouched.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
    let mut scratch = values.to_vec();
    let (_, nth, _) = scratch.select_nth_unstable_by(rank - 1, |a, b| a.partial_cmp(b).unwrap());
    *nth
}

/// Sub-bucket resolution of [`StreamingHistogram`]: each power-of-two range
/// is split into `2^SUB_BITS` linear sub-buckets, bounding the relative
/// quantile error at `2^-SUB_BITS` (≈1.6%).
const SUB_BITS: u32 = 6;
const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// HDR-style log-bucketed streaming histogram over `u64` values
/// (nanoseconds, bytes, ...): O(1) record, fixed memory, mergeable.
///
/// Values below `2^SUB_BITS` land in exact unit-width buckets; above that,
/// each power-of-two range is split into [`SUB_BUCKETS`] linear sub-buckets,
/// so reported quantiles are within a `1/64` relative error of the exact
/// nearest-rank answer while the whole `u64` range fits in < 4 K buckets.
#[derive(Clone, Debug, Default)]
pub struct StreamingHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl StreamingHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for `v`; monotone in `v`.
    fn bucket(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS here
        let shift = msb - SUB_BITS;
        // Buckets [0, SUB_BUCKETS) hold the exact small values; each
        // power-of-two range [2^msb, 2^(msb+1)) then contributes
        // SUB_BUCKETS buckets of width 2^(msb-SUB_BITS).
        (((shift + 1) as usize) << SUB_BITS) + ((v >> shift) as usize - SUB_BUCKETS)
    }

    /// Largest value mapping to bucket `i` (the bucket's inclusive high edge).
    fn bucket_high(i: usize) -> u64 {
        if i < SUB_BUCKETS {
            return i as u64;
        }
        let shift = (i >> SUB_BITS) as u32 - 1;
        let base = (i & (SUB_BUCKETS - 1)) as u64 + SUB_BUCKETS as u64;
        ((base + 1) << shift) - 1
    }

    pub fn record(&mut self, v: u64) {
        let b = Self::bucket(v);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.sum = self.sum.saturating_add(v);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
    }

    /// Folds `other` into `self`; equivalent to having recorded the union.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.sum = self.sum.saturating_add(other.sum);
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Minimum recorded value; 0 for an empty histogram.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Maximum recorded value; 0 for an empty histogram.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of the recorded values (exact, from the running sum); 0.0 when
    /// empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile estimate (bucket upper edge, clamped to the
    /// observed `[min, max]`); 0 for an empty histogram. Exact for values
    /// below `2^SUB_BITS`, within `1/2^SUB_BITS` relative error above.
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MS;

    fn rec(start_ms: u64, size: u64, fct_ms: Option<u64>) -> FlowRecord {
        FlowRecord::basic(start_ms * MS, size, fct_ms.map(|f| f * MS))
    }

    #[test]
    fn window_filtering() {
        let records = vec![
            rec(0, 50_000, Some(1)),   // before window
            rec(5, 50_000, Some(2)),   // inside
            rec(9, 200_000, Some(10)), // inside
            rec(10, 50_000, Some(1)),  // at end → excluded
        ];
        let m = compute_metrics(&records, 5 * MS, 10 * MS);
        assert_eq!(m.flows, 2);
        assert_eq!(m.completed, 2);
        assert_eq!(m.short_flows, 1);
        assert_eq!(m.long_flows, 1);
    }

    #[test]
    fn avg_fct_and_long_throughput() {
        let records = vec![
            rec(1, 10_000, Some(2)),    // short, 2 ms
            rec(1, 1_000_000, Some(4)), // long, 1 MB in 4 ms = 2 Gbps
        ];
        let m = compute_metrics(&records, 0, 10 * MS);
        assert!((m.avg_fct_ms - 3.0).abs() < 1e-9);
        assert!((m.avg_long_tput_gbps - 2.0).abs() < 1e-9);
    }

    #[test]
    fn p99_short_only_uses_short_flows() {
        let mut records: Vec<FlowRecord> = (0..100).map(|i| rec(1, 10_000, Some(i + 1))).collect();
        records.push(rec(1, 10_000_000, Some(10_000))); // long straggler
        let m = compute_metrics(&records, 0, 10 * MS);
        assert!(
            (m.p99_short_fct_ms - 99.0).abs() < 1e-9,
            "{}",
            m.p99_short_fct_ms
        );
    }

    #[test]
    fn unfinished_flows_tracked_not_averaged() {
        let records = vec![rec(1, 10_000, Some(2)), rec(2, 10_000, None)];
        let m = compute_metrics(&records, 0, 10 * MS);
        assert_eq!(m.flows, 2);
        assert_eq!(m.completed, 1);
        assert!((m.avg_fct_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn failed_and_recovered_accounting() {
        let mut failed = rec(1, 10_000, None);
        failed.failed = true;
        let mut recovered = rec(1, 10_000, Some(8));
        recovered.recovery_ns = Some(3 * MS);
        let mut recovered2 = rec(2, 200_000, Some(9));
        recovered2.recovery_ns = Some(MS);
        let records = vec![failed, recovered, recovered2, rec(3, 10_000, Some(1))];
        let m = compute_metrics(&records, 0, 10 * MS);
        assert_eq!(m.flows, 4);
        assert_eq!(m.completed, 3);
        assert_eq!(m.failed, 1);
        assert_eq!(m.recovered_flows, 2);
        assert!((m.avg_recovery_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn short_flow_p99_ignores_failed_and_unfinished() {
        // The p99-short path must rank only *completed* short flows: the
        // failed and unfinished ones below would otherwise drag the
        // percentile to a fictitious value.
        let mut records: Vec<FlowRecord> = (0..50).map(|i| rec(1, 10_000, Some(i + 1))).collect();
        let mut failed_short = rec(1, 10_000, None);
        failed_short.failed = true;
        let mut failed_long = rec(1, 500_000, None);
        failed_long.failed = true;
        records.push(failed_short);
        records.push(failed_long);
        records.push(rec(2, 10_000, None)); // unfinished, not failed
        records.push(rec(2, 2_000_000, Some(100))); // completed long
        let m = compute_metrics(&records, 0, 10 * MS);
        assert_eq!(m.flows, 54);
        assert_eq!(m.completed, 51);
        assert_eq!(m.failed, 2);
        assert_eq!(m.short_flows, 52, "short counts include non-completed");
        assert_eq!(m.long_flows, 2);
        // p99 over the 50 completed short FCTs 1..=50 ms → rank 50.
        assert!(
            (m.p99_short_fct_ms - 50.0).abs() < 1e-9,
            "{}",
            m.p99_short_fct_ms
        );
        // Exactly one completed long flow: 2 MB in 100 ms = 0.16 Gbps.
        assert!((m.avg_long_tput_gbps - 2_000_000.0 * 8.0 / 1e8).abs() < 1e-9);
    }

    #[test]
    fn metrics_transport_label() {
        let m = compute_metrics(&[rec(1, 10_000, Some(2))], 0, 10 * MS).with_transport("pfabric");
        assert_eq!(m.transport, "pfabric");
        assert_eq!(m.completed, 1);
        assert_eq!(Metrics::default().transport, "");
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[5.0], 0.99), 5.0);
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
    }

    #[test]
    fn percentile_extreme_ranks() {
        // p=0 clamps to the first rank rather than indexing out of range;
        // a single sample answers every percentile with itself.
        let v = vec![3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1e-9), 1.0);
        assert_eq!(percentile(&[7.5], 0.0), 7.5);
        assert_eq!(percentile(&[7.5], 1.0), 7.5);
    }

    #[test]
    fn percentile_leaves_input_untouched() {
        let v = vec![9.0, 1.0, 5.0];
        assert_eq!(percentile(&v, 0.5), 5.0);
        assert_eq!(v, vec![9.0, 1.0, 5.0]);
    }

    #[test]
    fn histogram_edge_cases() {
        // Mirrors percentile_edge_cases: empty and single-value histograms.
        let h = StreamingHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_percentile(0.99), 0);

        let mut h = StreamingHistogram::new();
        h.record(5);
        assert_eq!(h.count(), 1);
        assert_eq!((h.min(), h.max(), h.sum()), (5, 5, 5));
        assert_eq!(h.mean(), 5.0);
        for p in [0.0, 1e-9, 0.5, 0.99, 1.0] {
            assert_eq!(h.value_at_percentile(p), 5);
        }
    }

    #[test]
    fn histogram_small_values_are_exact() {
        // Values below 2^SUB_BITS get unit-width buckets, so every
        // percentile matches the exact nearest-rank answer.
        let mut h = StreamingHistogram::new();
        let vals = [1u64, 2, 3, 4];
        for v in vals {
            h.record(v);
        }
        assert_eq!(h.value_at_percentile(0.5), 2);
        assert_eq!(h.value_at_percentile(1.0), 4);
        assert_eq!(h.value_at_percentile(0.0), 1);
    }

    #[test]
    fn histogram_percentile_error_bound() {
        // Random samples spanning several orders of magnitude: every
        // reported quantile stays within the 1/2^SUB_BITS relative error
        // bound of the exact nearest-rank value.
        let mut rng = dcn_rng::Rng::seed_from_u64(42);
        let mut h = StreamingHistogram::new();
        let mut exact: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            let v = rng.next_u64() % 1_000_000_000;
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for p in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((p * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let want = exact[rank - 1];
            let got = h.value_at_percentile(p);
            // Bucket high edge: got >= want, and within 1/64 relative.
            assert!(got >= want, "p{p}: got {got} < exact {want}");
            let err = (got - want) as f64 / (want.max(1)) as f64;
            assert!(
                err <= 1.0 / 64.0,
                "p{p}: err {err} (got {got}, want {want})"
            );
        }
        assert_eq!(h.count(), exact.len() as u64);
        assert_eq!(h.min(), exact[0]);
        assert_eq!(h.max(), *exact.last().unwrap());
        assert_eq!(h.sum(), exact.iter().sum::<u64>());
    }

    #[test]
    fn histogram_merge_equals_union() {
        // merge(a, b) must be indistinguishable from recording a ∪ b.
        let mut rng = dcn_rng::Rng::seed_from_u64(7);
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        let mut union = StreamingHistogram::new();
        for i in 0..5_000 {
            let v = rng.next_u64() % 10_000_000;
            union.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), union.count());
        assert_eq!(a.sum(), union.sum());
        assert_eq!(a.min(), union.min());
        assert_eq!(a.max(), union.max());
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.value_at_percentile(p), union.value_at_percentile(p));
        }
        // Merging into an empty histogram adopts the other side verbatim.
        let mut empty = StreamingHistogram::new();
        empty.merge(&union);
        assert_eq!(empty.count(), union.count());
        assert_eq!(empty.min(), union.min());
        assert_eq!(empty.max(), union.max());
        // Merging an empty histogram is a no-op.
        let before = union.count();
        union.merge(&StreamingHistogram::new());
        assert_eq!(union.count(), before);
    }

    #[test]
    fn histogram_bucket_roundtrip() {
        // bucket() is monotone and bucket_high() is the true inclusive
        // upper edge: v always lands at or below its bucket's high edge,
        // and the next bucket's high edge is strictly larger.
        let mut vals: Vec<u64> = Vec::new();
        for exp in 0..64u32 {
            for off in [0u64, 1, 3] {
                vals.push((1u64 << exp).saturating_add(off << exp.saturating_sub(3)));
            }
        }
        vals.sort_unstable();
        vals.dedup();
        let mut last = 0usize;
        for v in vals {
            let b = StreamingHistogram::bucket(v);
            assert!(b >= last, "bucket not monotone at v={v}");
            last = b;
            assert!(StreamingHistogram::bucket_high(b) >= v);
            if b > 0 {
                assert!(StreamingHistogram::bucket_high(b - 1) < v);
            }
        }
    }

    #[test]
    fn metrics_with_dists_match_plain_metrics() {
        let records = vec![
            rec(1, 10_000, Some(2)),
            rec(2, 10_000, Some(4)),
            rec(3, 500_000, Some(20)),
            rec(4, 500_000, None),
        ];
        let plain = compute_metrics(&records, 0, 10 * MS);
        let (m, d) = compute_metrics_with_dists(&records, 0, 10 * MS);
        assert_eq!(plain.avg_fct_ms, m.avg_fct_ms);
        assert_eq!(plain.p99_short_fct_ms, m.p99_short_fct_ms);
        assert_eq!(plain.avg_long_tput_gbps, m.avg_long_tput_gbps);
        assert_eq!(d.all.count(), 3);
        assert_eq!(d.short.count(), 2);
        assert_eq!(d.long.count(), 1);
        assert_eq!(d.all.max(), 20 * MS);
        assert_eq!(d.short.min(), 2 * MS);
    }

    #[test]
    fn all_failed_flows_yield_zeroed_averages() {
        // Every window flow failed: counts are tracked but no average is
        // fabricated from an empty completed set.
        let records: Vec<FlowRecord> = (0..4)
            .map(|i| {
                let mut r = rec(1, if i % 2 == 0 { 10_000 } else { 500_000 }, None);
                r.failed = true;
                r
            })
            .collect();
        let m = compute_metrics(&records, 0, 10 * MS);
        assert_eq!(m.flows, 4);
        assert_eq!(m.completed, 0);
        assert_eq!(m.failed, 4);
        assert_eq!(m.avg_fct_ms, 0.0);
        assert_eq!(m.p99_short_fct_ms, 0.0);
        assert_eq!(m.avg_long_tput_gbps, 0.0);
        assert_eq!(m.avg_recovery_ms, 0.0);
    }

    #[test]
    fn drop_counters_total_sums_causes() {
        let d = DropCounters {
            congestion: 5,
            eviction: 2,
            fault: 3,
            noroute: 1,
        };
        assert_eq!(d.total(), 11);
        assert_eq!(DropCounters::default().total(), 0);
    }

    #[test]
    fn trace_counters_fold_by_cause_and_channel() {
        let mut c = TraceCounters::default();
        for _ in 0..3 {
            c.record(&TraceEvent::DropCongestion {
                ch: 2,
                flow: 0,
                seq: 0,
                is_ack: false,
            });
        }
        c.record(&TraceEvent::DropEviction {
            ch: 2,
            flow: 1,
            seq: 4,
        });
        c.record(&TraceEvent::DropFault {
            ch: 5,
            flow: 1,
            seq: 4,
            is_ack: true,
        });
        c.record(&TraceEvent::DropNoRoute { flow: 9 });
        assert_eq!(c.drops.congestion, 3);
        assert_eq!(c.drops.eviction, 1);
        assert_eq!(c.drops.fault, 1);
        assert_eq!(c.drops.noroute, 1);
        assert_eq!(c.drops.total(), 6);
        assert_eq!(c.per_channel[2].drops_congestion, 3);
        assert_eq!(c.per_channel[2].drops_eviction, 1);
        assert_eq!(c.per_channel[5].drops_fault, 1);
        // Channels between the touched ones exist but are zeroed.
        assert_eq!(c.per_channel[3], ChannelCounters::default());
    }

    #[test]
    fn high_water_mark_is_monotone() {
        let mut c = TraceCounters::default();
        for (qlen, qbytes) in [(1u32, 1500u64), (4, 6000), (2, 3000)] {
            c.record(&TraceEvent::Enqueue {
                ch: 0,
                flow: 0,
                seq: 0,
                is_ack: false,
                qlen,
                qbytes,
            });
        }
        assert_eq!(c.per_channel[0].hwm_pkts, 4);
        assert_eq!(c.per_channel[0].hwm_bytes, 6000);
        assert_eq!(c.per_channel[0].enqueues, 3);
    }
}
