//! The calendar/ladder event queue behind the engine's hot loop.
//!
//! [`CalendarQueue`] replaces the engine's former single global
//! `BinaryHeap` with a ring of fixed-width time buckets plus an overflow
//! ladder:
//!
//! - **ring** — `num_slots` buckets of `2^WIDTH_BITS` ns (1024 ns ≈ the
//!   serialization time of an MTU packet at 10 Gbps, the link-latency
//!   horizon most events land in). A bucket is an unsorted `Vec`; pushing
//!   a near-future event is an O(1) append plus one bit in an occupancy
//!   bitset.
//! - **current bucket** — when the cursor reaches an occupied bucket its
//!   events are scattered into `2^SUB_BITS` *sub-buckets* (32 ns each).
//!   Each sub-bucket is sorted once when the sub-cursor reaches it
//!   (descending, so popping is `Vec::pop` off the back) and drained in
//!   exact `(t, seq)` order. Sub-bucketing matters because nearly half of
//!   all events are scheduled *into* the bucket being drained (an ACK's
//!   serialization time is ~50 ns): with sub-buckets those pushes are O(1)
//!   appends to a later sub-bucket instead of binary-heap churn. Only
//!   pushes into the *active* (already-sorted) sub-bucket — i.e. less than
//!   32 ns ahead, which essentially never happens — take a side heap, and
//!   each pop takes the smaller of the two fronts.
//! - **overflow ladder** — events beyond the ring horizon (RTO timers at
//!   ≥1 ms, far-future flow starts, fault events) sit in a conventional
//!   binary heap and migrate into ring buckets as the cursor advances.
//!
//! # Why determinism survives
//!
//! Pop order is **exactly** the `(t, seq)`-lexicographic order a global
//! `BinaryHeap` produces. Buckets partition events by `t >> WIDTH_BITS`,
//! so strictly increasing bucket index implies strictly increasing `t`;
//! within the current bucket a min-heap on `(t, seq)` serves ties in
//! insertion (`seq`) order, which is the tiebreak the old heap used. The
//! ladder only ever holds events *beyond* the ring horizon, and every
//! cursor advance first migrates newly-in-horizon ladder events into
//! their buckets, so nothing can be popped late. `seq` assignment itself
//! is untouched — one increment per push, in push order — so traces and
//! flow records stay byte-identical.
//!
//! # Ladder spill and migration invariants
//!
//! With `nb = num_slots` buckets and the cursor at absolute bucket
//! `cur_abs`:
//!
//! - the current bucket holds events with `abs == cur_abs`,
//! - ring slot `abs % nb` holds events with `abs ∈ (cur_abs, cur_abs + nb]`
//!   (each such `abs` maps to a distinct slot),
//! - the ladder holds events with `abs > cur_abs + nb`.
//!
//! An advance moves `cur_abs` to the next occupied slot (a cyclic bitset
//! scan) or, when the ring is empty, jumps straight to the ladder's
//! earliest bucket; it then drains every ladder event with
//! `abs <= cur_abs + nb` into the ring. Slots skipped by the advance are
//! empty by construction, so migrated events can never collide with
//! stale ones.
//!
//! The ring doubles (up to [`MAX_SLOTS`]) whenever the ladder outgrows
//! `4 × num_slots`, amortizing redistribution; [`CalendarQueue::from_items`]
//! sizes the ring from a restored checkpoint's event population up front
//! so a big snapshot never degrades into an all-ladder queue.

use crate::engine::Ev;
use crate::types::Ns;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bucket width exponent: buckets are `2^WIDTH_BITS` ns wide.
const WIDTH_BITS: u32 = 10;
/// Initial (and minimum) ring size: 1024 buckets ≈ 1.05 ms of horizon,
/// just under the 1 ms minimum RTO so timer events take the ladder.
const MIN_SLOTS: usize = 1 << 10;
/// Growth cap: 4096 buckets ≈ 4.2 ms of horizon — wide enough that
/// steady-state RTO timers (≈2 ms out) land in the ring, small enough
/// that the slot headers stay cache-resident (wider rings measured
/// slower: far pushes miss on a big header array).
const MAX_SLOTS: usize = 1 << 12;
/// Sub-bucket split of the active bucket: `2^SUB_BITS` sub-buckets of
/// `2^(WIDTH_BITS - SUB_BITS)` ns (32 × 32 ns).
const SUB_BITS: u32 = 5;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// log2 of the sub-bucket width in ns.
const SUB_SHIFT: u32 = WIDTH_BITS - SUB_BITS;
/// Sentinel for "no sub-bucket active" (freshly advanced bucket).
const NO_SUB: u32 = u32::MAX;

/// One scheduled event: fires at `t`, with `seq` breaking same-`t` ties
/// in schedule order.
#[derive(Clone, Copy)]
pub(crate) struct CalEntry {
    pub(crate) t: Ns,
    pub(crate) seq: u64,
    pub(crate) ev: Ev,
}

impl PartialEq for CalEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for CalEntry {}
impl PartialOrd for CalEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CalEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        Reverse((self.t, self.seq)).cmp(&Reverse((other.t, other.seq)))
    }
}

impl CalEntry {
    /// The pop-order key: earliest `t` first, lowest `seq` breaking ties.
    #[inline]
    fn key(&self) -> (Ns, u64) {
        (self.t, self.seq)
    }
}

/// The event queue: earliest timestamp first, insertion order (`seq`)
/// breaking ties, so identical schedules replay identically. See the
/// module docs for the bucket/ladder layout.
pub(crate) struct CalendarQueue {
    /// log2 of the bucket width in ns.
    shift: u32,
    /// `num_slots - 1` (num_slots is a power of two).
    mask: u64,
    /// Ring buckets, unsorted; slot `s` holds the single in-horizon
    /// absolute bucket with `abs % num_slots == s`.
    slots: Vec<Vec<CalEntry>>,
    /// One bit per slot: slot is non-empty.
    occupied: Vec<u64>,
    /// The activated sub-bucket, sorted descending by `(t, seq)` so the
    /// next event to pop sits at the back.
    cur: Vec<CalEntry>,
    /// Events scheduled into the *active* sub-bucket after it was sorted
    /// (< 32 ns ahead — vanishingly rare); kept in a tiny min-heap rather
    /// than memmoved into `cur`'s sorted order.
    incoming: BinaryHeap<CalEntry>,
    /// The current bucket's not-yet-activated sub-buckets (persistent
    /// buffers, unsorted).
    subs: Vec<Vec<CalEntry>>,
    /// One bit per sub-bucket: sub-bucket is non-empty.
    sub_occ: u32,
    /// Index of the active sub-bucket, or [`NO_SUB`].
    sub_cur: u32,
    /// Events in `subs` (excludes `cur`, `incoming`, ring, and ladder).
    bucket_len: usize,
    /// Scratch buffer for the counting scatter in
    /// [`CalendarQueue::sort_cur_descending`].
    scratch: Vec<CalEntry>,
    /// Absolute index (`t >> shift`) of the current bucket.
    cur_abs: u64,
    /// Events in ring slots (excludes `cur` and the ladder).
    ring_len: usize,
    /// The overflow ladder: events beyond the ring horizon.
    overflow: BinaryHeap<CalEntry>,
    /// Total pending events.
    len: usize,
    /// Monotone push counter; the tiebreak half of every event's key.
    pub(crate) seq: u64,
    /// High-water mark of [`CalendarQueue::len`] — a memory-footprint
    /// proxy that run manifests report.
    pub(crate) peak: usize,
    /// Ladder→ring migrations performed by cursor advances — a pure
    /// function of the push/pop sequence, so thread-count invariant
    /// (reported by the engine's deterministic counter set).
    pub(crate) ladder_spills: u64,
    /// Sub-bucket sorts that fell back from the counting scatter to a
    /// comparison sort (per-`t` seq monotonicity broken by a ladder
    /// migration); also thread-count invariant.
    pub(crate) scatter_fallbacks: u64,
}

impl CalendarQueue {
    pub(crate) fn new() -> Self {
        Self::with_slots(MIN_SLOTS, 0)
    }

    fn with_slots(num_slots: usize, now: Ns) -> Self {
        debug_assert!(num_slots.is_power_of_two() && num_slots >= 64);
        CalendarQueue {
            shift: WIDTH_BITS,
            mask: num_slots as u64 - 1,
            slots: (0..num_slots).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; num_slots / 64],
            cur: Vec::new(),
            incoming: BinaryHeap::new(),
            subs: (0..SUB_COUNT).map(|_| Vec::new()).collect(),
            sub_occ: 0,
            sub_cur: NO_SUB,
            bucket_len: 0,
            scratch: Vec::new(),
            cur_abs: now >> WIDTH_BITS,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            seq: 0,
            peak: 0,
            ladder_spills: 0,
            scatter_fallbacks: 0,
        }
    }

    /// Rebuilds a queue from a checkpoint's event population: `items`
    /// carry their original `seq`s (in arbitrary order), and the ring is
    /// sized to the population so restoring a large snapshot into the
    /// default ring cannot degrade into an all-ladder queue. `min_slots`
    /// floors the sizing (checkpoints record the organic ring size so a
    /// restore never lands on a smaller ring than the run had grown);
    /// pass 0 for population-derived sizing alone.
    pub(crate) fn from_items(
        seq: u64,
        peak: usize,
        items: Vec<CalEntry>,
        now: Ns,
        min_slots: usize,
    ) -> Self {
        let num_slots = (items.len() / 4)
            .next_power_of_two()
            .max(min_slots.next_power_of_two())
            .clamp(MIN_SLOTS, MAX_SLOTS);
        let mut q = Self::with_slots(num_slots, now);
        q.seq = seq;
        q.peak = peak;
        for e in items {
            q.len += 1;
            q.insert(e);
        }
        q
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Ring size (checkpoints record it so restores keep the organic
    /// sizing; sizing tests read it too).
    pub(crate) fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Every pending event, in arbitrary order (checkpoint serialization
    /// and in-flight accounting; pop order is derived from `(t, seq)`, not
    /// from this iteration).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &CalEntry> {
        self.cur
            .iter()
            .chain(self.incoming.iter())
            .chain(self.subs.iter().flatten())
            .chain(self.slots.iter().flatten())
            .chain(self.overflow.iter())
    }

    pub(crate) fn push(&mut self, t: Ns, ev: Ev) {
        self.seq += 1;
        let seq = self.seq;
        self.len += 1;
        self.peak = self.peak.max(self.len);
        self.insert(CalEntry { t, seq, ev });
    }

    fn insert(&mut self, e: CalEntry) {
        let abs = (e.t >> self.shift).max(self.cur_abs);
        if abs == self.cur_abs {
            self.file_current(e);
        } else {
            self.place(e, abs);
            if self.overflow.len() > self.slots.len() * 4 && self.slots.len() < MAX_SLOTS {
                self.grow();
            }
        }
    }

    /// Files an entry belonging to the current bucket: O(1) append to a
    /// later sub-bucket, or the side heap if it lands in the active one.
    fn file_current(&mut self, e: CalEntry) {
        let base = self.cur_abs << SUB_BITS;
        let mut abs_sub = (e.t >> SUB_SHIFT).max(base);
        if self.sub_cur != NO_SUB {
            abs_sub = abs_sub.max(base + self.sub_cur as u64);
        }
        let rel = (abs_sub - base) as usize;
        debug_assert!(rel < SUB_COUNT);
        if rel as u32 == self.sub_cur {
            self.incoming.push(e);
        } else {
            self.subs[rel].push(e);
            self.sub_occ |= 1 << rel;
            self.bucket_len += 1;
        }
    }

    /// Files an entry with `abs > cur_abs` into its ring slot or the
    /// ladder.
    fn place(&mut self, e: CalEntry, abs: u64) {
        if abs - self.cur_abs <= self.slots.len() as u64 {
            let s = (abs & self.mask) as usize;
            self.slots[s].push(e);
            self.occupied[s >> 6] |= 1 << (s & 63);
            self.ring_len += 1;
        } else {
            self.overflow.push(e);
        }
    }

    /// Doubles the ring and re-files every non-current event under the new
    /// horizon. `cur`, `cur_abs`, `seq`, and `len` are untouched, so pop
    /// order is unaffected.
    fn grow(&mut self) {
        let new_slots = (self.slots.len() * 2).min(MAX_SLOTS);
        if new_slots == self.slots.len() {
            return;
        }
        let mut all: Vec<CalEntry> = Vec::with_capacity(self.ring_len + self.overflow.len());
        for s in self.slots.iter_mut() {
            all.append(s);
        }
        all.extend(std::mem::take(&mut self.overflow).into_vec());
        self.slots = (0..new_slots).map(|_| Vec::new()).collect();
        self.occupied = vec![0u64; new_slots / 64];
        self.mask = new_slots as u64 - 1;
        self.ring_len = 0;
        for e in all {
            let abs = e.t >> self.shift;
            debug_assert!(abs > self.cur_abs);
            self.place(e, abs);
        }
    }

    pub(crate) fn pop(&mut self) -> Option<CalEntry> {
        if self.cur.is_empty() && self.incoming.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.refill();
        }
        self.len -= 1;
        // The next event is the smaller of the sorted sub-bucket's back
        // and the side heap's top. `<=` favors the sub-bucket, but keys
        // are unique (`seq` is a fresh counter per push) so either bias
        // is correct.
        let take_cur = match (self.cur.last(), self.incoming.peek()) {
            (Some(v), Some(h)) => v.key() <= h.key(),
            (Some(_), None) => true,
            _ => false,
        };
        let e = if take_cur {
            self.cur.pop()
        } else {
            self.incoming.pop()
        };
        debug_assert!(e.is_some());
        e
    }

    /// Timestamp of the next event to pop. `&mut` because reaching the
    /// next event may require activating its bucket.
    pub(crate) fn peek_t(&mut self) -> Option<Ns> {
        if self.cur.is_empty() && self.incoming.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.refill();
        }
        match (self.cur.last(), self.incoming.peek()) {
            (Some(v), Some(h)) => Some(v.t.min(h.t)),
            (Some(v), None) => Some(v.t),
            (None, Some(h)) => Some(h.t),
            (None, None) => None,
        }
    }

    /// Makes the next event poppable: advances to the next ring bucket if
    /// the current one is exhausted, then activates its next occupied
    /// sub-bucket. Guaranteed to leave `cur` non-empty (caller checked
    /// `len > 0`).
    fn refill(&mut self) {
        if self.bucket_len == 0 {
            self.advance();
        }
        debug_assert!(self.bucket_len > 0);
        // Activate the next occupied sub-bucket: swap its buffer with the
        // drained `cur` (so steady state allocates nothing) and sort it
        // once, descending, so pops walk backward off the end.
        let from = self.sub_cur.wrapping_add(1); // NO_SUB wraps to 0
                                                 // Occupied bits only exist above `sub_cur` (pushes at or below it
                                                 // take the side heap), so `bucket_len > 0` implies `from` is a
                                                 // valid shift.
        debug_assert!(from < SUB_COUNT as u32);
        let m = self.sub_occ & (!0u32 << from);
        debug_assert!(m != 0, "bucket_len > 0 but no occupied sub-bucket");
        let s = m.trailing_zeros();
        self.sub_occ &= !(1 << s);
        self.sub_cur = s;
        std::mem::swap(&mut self.subs[s as usize], &mut self.cur);
        self.bucket_len -= self.cur.len();
        self.sort_cur_descending();
        debug_assert!(!self.cur.is_empty());
    }

    /// Sorts the freshly activated sub-bucket descending by `(t, seq)`.
    ///
    /// The fast path is a comparison-free counting scatter: a sub-bucket
    /// spans only `2^SUB_SHIFT` distinct `t` values, and appends arrive in
    /// ascending `seq` order per `t` (direct pushes are globally
    /// `seq`-monotone, and bucket distribution preserves slot order, which
    /// is push order). Group by `t` descending, reverse each group, done —
    /// one move per entry. Ladder migrations can break per-`t` monotonicity
    /// (a timer pushed long ago has a small `seq`), so the counting pass
    /// verifies it and falls back to a comparison sort when violated.
    fn sort_cur_descending(&mut self) {
        const NVALS: usize = 1 << SUB_SHIFT;
        let low = (1u64 << SUB_SHIFT) - 1;
        let k = self.cur.len();
        if k < 12 {
            // Too small for the counting passes to pay off; only the low
            // SUB_SHIFT bits of `t` differ here, so (t, seq) collapses
            // into one u64: t's low bits above 59 bits of seq (a push
            // counter can't plausibly reach 2^59).
            debug_assert!(self.seq < 1 << 59);
            self.cur
                .sort_unstable_by_key(|e| Reverse(((e.t & low) << 59) | e.seq));
            return;
        }
        let mut counts = [0u32; NVALS];
        let mut last = [0u64; NVALS];
        let mut ordered = true;
        for e in &self.cur {
            let g = (e.t & low) as usize;
            counts[g] += 1;
            ordered &= e.seq >= last[g];
            last[g] = e.seq;
        }
        if !ordered {
            self.scatter_fallbacks += 1;
            debug_assert!(self.seq < 1 << 59);
            self.cur
                .sort_unstable_by_key(|e| Reverse(((e.t & low) << 59) | e.seq));
            return;
        }
        // Descending layout: largest `t` group first. `next[g]` starts one
        // past group `g`'s end; placing each (seq-ascending) arrival at
        // `--next[g]` reverses the group into seq-descending order.
        let mut next = [0u32; NVALS];
        let mut acc = 0u32;
        for g in (0..NVALS).rev() {
            acc += counts[g];
            next[g] = acc;
        }
        let dummy = self.cur[0];
        self.scratch.clear();
        self.scratch.resize(k, dummy);
        for e in self.cur.drain(..) {
            let g = (e.t & low) as usize;
            next[g] -= 1;
            self.scratch[next[g] as usize] = e;
        }
        std::mem::swap(&mut self.cur, &mut self.scratch);
    }

    /// Moves the cursor to the next non-empty bucket and scatters its
    /// events into sub-buckets. Guaranteed to leave `bucket_len > 0`
    /// (caller checked `len > 0`).
    fn advance(&mut self) {
        debug_assert!(self.cur.is_empty() && self.incoming.is_empty() && self.len > 0);
        debug_assert!(self.bucket_len == 0 && self.sub_occ == 0);
        self.sub_cur = NO_SUB;
        if self.ring_len == 0 {
            // Everything pending sits in the ladder: jump the cursor
            // straight to its earliest bucket. The migration below then
            // moves at least that event into the current bucket.
            let top = self.overflow.peek().expect("len > 0 with empty ring");
            self.cur_abs = top.t >> self.shift;
        } else {
            self.cur_abs += self.next_occupied_offset();
            let s = (self.cur_abs & self.mask) as usize;
            self.occupied[s >> 6] &= !(1 << (s & 63));
            // Drain the slot into sub-buckets, recycling its buffer so
            // steady state allocates nothing. Every entry here shares
            // `abs == cur_abs` (a slot is drained exactly when the cursor
            // reaches it, and `place` admits at most one ring-turn ahead),
            // and no sub-bucket is active yet, so the scatter is just the
            // sub-bucket bits of `t` — no clamping needed.
            let mut bucket = std::mem::take(&mut self.slots[s]);
            self.ring_len -= bucket.len();
            self.bucket_len += bucket.len();
            for e in bucket.drain(..) {
                debug_assert_eq!(e.t >> self.shift, self.cur_abs);
                let rel = (e.t >> SUB_SHIFT) as usize & (SUB_COUNT - 1);
                self.subs[rel].push(e);
                self.sub_occ |= 1 << rel;
            }
            self.slots[s] = bucket;
        }
        // Ladder spill: everything now within the ring horizon files into
        // its bucket (or a sub-bucket after a jump). Slots passed over by
        // the advance are empty, so no slot ever mixes two `abs` values.
        let horizon = self.cur_abs + self.slots.len() as u64;
        while let Some(top) = self.overflow.peek() {
            let abs = top.t >> self.shift;
            if abs > horizon {
                break;
            }
            let e = self.overflow.pop().expect("peeked ladder entry");
            self.ladder_spills += 1;
            if abs == self.cur_abs {
                self.file_current(e);
            } else {
                let s = (abs & self.mask) as usize;
                self.slots[s].push(e);
                self.occupied[s >> 6] |= 1 << (s & 63);
                self.ring_len += 1;
            }
        }
        debug_assert!(self.bucket_len > 0);
    }

    /// Cyclic distance from `cur_abs` to the next occupied slot, found by
    /// scanning the occupancy bitset a word at a time.
    fn next_occupied_offset(&self) -> u64 {
        let start = ((self.cur_abs + 1) & self.mask) as usize;
        // Tail of the word holding `start`.
        let first = self.occupied[start >> 6] & (!0u64 << (start & 63));
        if first != 0 {
            let s = (start & !63) + first.trailing_zeros() as usize;
            return self.slot_distance(s);
        }
        let words = self.occupied.len();
        for i in 1..=words {
            let w = ((start >> 6) + i) % words;
            if self.occupied[w] != 0 {
                let s = w * 64 + self.occupied[w].trailing_zeros() as usize;
                return self.slot_distance(s);
            }
        }
        unreachable!("ring_len > 0 but occupancy bitset is empty")
    }

    fn slot_distance(&self, slot: usize) -> u64 {
        let cur_slot = (self.cur_abs & self.mask) as usize;
        let nb = self.slots.len();
        let d = (slot + nb - cur_slot) % nb;
        // Distance 0 means the slot exactly one full ring ahead
        // (`abs == cur_abs + nb` maps to the cursor's own slot index).
        if d == 0 {
            nb as u64
        } else {
            d as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_rng::Rng;

    fn id_of(ev: &Ev) -> u32 {
        match ev {
            Ev::FlowStart(i) => *i,
            _ => panic!("test events are FlowStart-tagged"),
        }
    }

    /// Reference model: the exact `BinaryHeap` the engine used to run on.
    struct HeapModel {
        heap: BinaryHeap<CalEntry>,
        seq: u64,
    }

    impl HeapModel {
        fn new() -> Self {
            HeapModel {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }

        fn push(&mut self, t: Ns, ev: Ev) {
            self.seq += 1;
            let seq = self.seq;
            self.heap.push(CalEntry { t, seq, ev });
        }

        fn pop(&mut self) -> Option<(Ns, u64, u32)> {
            self.heap.pop().map(|e| (e.t, e.seq, id_of(&e.ev)))
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(500, Ev::FlowStart(0)); // current bucket
        q.push(500, Ev::FlowStart(1)); // same t: seq breaks the tie
        q.push(2_000_000, Ev::FlowStart(2)); // beyond the ring: ladder
        q.push(5_000, Ev::FlowStart(3)); // a later ring bucket
        q.push(100, Ev::FlowStart(4)); // current bucket, earlier t
        let got: Vec<(Ns, u32)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.t, id_of(&e.ev)))
            .collect();
        assert_eq!(
            got,
            vec![(100, 4), (500, 0), (500, 1), (5_000, 3), (2_000_000, 2)]
        );
        assert_eq!(q.len(), 0);
        assert_eq!(q.peak, 5);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.push(3_000_000, Ev::FlowStart(0));
        q.push(10, Ev::FlowStart(1));
        assert_eq!(q.peek_t(), Some(10));
        assert_eq!(q.pop().unwrap().t, 10);
        assert_eq!(q.peek_t(), Some(3_000_000));
        assert_eq!(q.pop().unwrap().t, 3_000_000);
        assert_eq!(q.peek_t(), None);
        assert!(q.pop().is_none());
    }

    /// Satellite: across randomized insert/pop interleavings — with heavy
    /// same-timestamp ties, in-bucket inserts, ring-horizon events, and
    /// far-future ladder events — the calendar pops the exact `(t, seq)`
    /// sequence the old `BinaryHeap` produced.
    #[test]
    fn matches_binary_heap_order_under_random_interleaving() {
        let mut rng = Rng::seed_from_u64(0xCA1E_7DA2);
        for round in 0..30 {
            let mut cal = CalendarQueue::new();
            let mut model = HeapModel::new();
            let mut now: Ns = 0;
            let mut next_id = 0u32;
            for _ in 0..2_000 {
                if rng.gen_range(0.0..1.0) < 0.6 {
                    // Mix of horizons: in-bucket, ring, ladder; 25% exact
                    // ties on `now` to stress the seq tiebreak.
                    let dt = match rng.gen_range(0u64..4) {
                        0 => 0,
                        1 => rng.gen_range(0u64..2_000),
                        2 => rng.gen_range(0u64..1_000_000),
                        _ => rng.gen_range(1_000_000u64..50_000_000),
                    };
                    cal.push(now + dt, Ev::FlowStart(next_id));
                    model.push(now + dt, Ev::FlowStart(next_id));
                    next_id += 1;
                } else {
                    let want = model.pop();
                    let got = cal.pop().map(|e| (e.t, e.seq, id_of(&e.ev)));
                    assert_eq!(got, want, "round {round}: pop diverged");
                    if let Some((t, _, _)) = want {
                        now = t; // future pushes respect the clock
                    }
                }
            }
            // Drain: the tails must agree too.
            loop {
                let want = model.pop();
                let got = cal.pop().map(|e| (e.t, e.seq, id_of(&e.ev)));
                assert_eq!(got, want, "round {round}: drain diverged");
                if want.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn ladder_spills_are_counted() {
        let mut q = CalendarQueue::new();
        // One near event and one far beyond the ring horizon: draining
        // past the first advances the cursor and migrates the second.
        q.push(100, Ev::FlowStart(0));
        q.push(20_000_000, Ev::FlowStart(1));
        assert_eq!(q.ladder_spills, 0);
        assert_eq!(q.pop().unwrap().t, 100);
        assert_eq!(q.pop().unwrap().t, 20_000_000);
        assert_eq!(q.ladder_spills, 1, "the far event must migrate once");
        assert_eq!(q.scatter_fallbacks, 0);
    }

    #[test]
    fn from_items_respects_min_slots_floor() {
        let q = CalendarQueue::from_items(0, 0, Vec::new(), 0, MAX_SLOTS);
        assert_eq!(q.num_slots(), MAX_SLOTS);
        let q = CalendarQueue::from_items(0, 0, Vec::new(), 0, 0);
        assert_eq!(q.num_slots(), MIN_SLOTS);
    }

    #[test]
    fn ladder_pressure_grows_the_ring() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.num_slots(), MIN_SLOTS);
        // Far-future events spread over ~50 ms swamp the default ladder.
        for i in 0..10_000u32 {
            q.push(2_000_000 + i as Ns * 5_000, Ev::FlowStart(i));
        }
        assert!(q.num_slots() > MIN_SLOTS, "ring should have grown");
        // Order is still exact after redistribution.
        let mut last = (0, 0);
        while let Some(e) = q.pop() {
            assert!((e.t, e.seq) > last);
            last = (e.t, e.seq);
        }
    }

    #[test]
    fn from_items_sizes_ring_to_population() {
        let mut model = HeapModel::new();
        let mut items = Vec::new();
        let mut seq = 0u64;
        for i in 0..40_000u32 {
            seq += 1;
            let t = 7_000_000 + (i as Ns * 37) % 90_000_000;
            items.push(CalEntry {
                t,
                seq,
                ev: Ev::FlowStart(i),
            });
            model.heap.push(CalEntry {
                t,
                seq,
                ev: Ev::FlowStart(i),
            });
        }
        model.seq = seq;
        let mut q = CalendarQueue::from_items(seq, 123, items, 5_000_000, 0);
        assert!(
            q.num_slots() == MAX_SLOTS,
            "40k events must size the ring up to the cap, got {}",
            q.num_slots()
        );
        assert_eq!(q.peak, 123);
        assert_eq!(q.len(), 40_000);
        loop {
            let want = model.pop();
            let got = q.pop().map(|e| (e.t, e.seq, id_of(&e.ev)));
            assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }
}
