//! Backwards-compatibility facade for the pre-layering module layout.
//!
//! The simulator used to live here as a single monolith; it is now split
//! into [`crate::engine`] (event loop), [`crate::host`] (flows +
//! transports), [`crate::switch`] (queue disciplines + fabric), and
//! [`crate::fault`] (failure injection). Import from those modules — or
//! the crate root — going forward.

pub use crate::engine::Simulator;
