//! The discrete-event engine: topology + routing + DCTCP flows.
//!
//! Servers are explicit endpoints attached to their ToR by a pair of host
//! channels; switches are source-routed (the path is chosen per flowlet at
//! the sender, which exactly reproduces per-hop ECMP hashing because the
//! selector hashes per hop — see `dcn-routing`).
//!
//! The transport is DCTCP (Alizadeh et al., SIGCOMM 2010) with the paper's
//! constants: ECN marking at 20 full packets, flowlet gap 50 µs. Loss
//! recovery is fast-retransmit on 3 duplicate ACKs plus a go-back-N RTO —
//! the recovery details matter little since ECN keeps queues from
//! overflowing at the evaluated loads.

use crate::channel::{Channel, Offer};
use crate::fault::{FaultEvent, FaultKind, FaultPlan, RemappedSelector};
use crate::stats::FlowRecord;
use crate::types::{Ns, Packet, SimConfig, MS};
use dcn_rng::Rng;
use dcn_routing::ecmp::hash3;
use dcn_routing::{KspSelector, PathSelector};
use dcn_topology::{Link, LinkId, NodeId, Topology};
use dcn_workloads::FlowEvent;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

const HEADER_BYTES: u32 = 40;

/// A shared source-route: the channel ids a flowlet's packets traverse.
type ChannelPath = Arc<Vec<u32>>;

#[derive(Debug)]
enum Ev {
    FlowStart(u32),
    TxFree(u32),
    Deliver(Box<Packet>),
    Rto(u32, u32),
    /// A scheduled fault fires (index into the installed plan's events).
    Fault(u32),
    /// The control plane finishes reconverging. Tagged with an epoch so
    /// that of several queued rebuilds only the newest takes effect.
    Reconverge(u64),
}

struct HeapItem {
    t: Ns,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        Reverse((self.t, self.seq)).cmp(&Reverse((other.t, other.seq)))
    }
}

/// Per-flow sender + receiver state.
struct Flow {
    src_server: u32,
    dst_server: u32,
    src_tor: NodeId,
    dst_tor: NodeId,
    size_bytes: u64,
    start_ns: Ns,
    total_pkts: u32,
    // --- sender ---
    next_seq: u32,
    acked: u32,
    cwnd: f64,
    ssthresh: f64,
    alpha: f64,
    ecn_acked: u32,
    /// Lifetime count of ECN-marked ACKs (feedback for adaptive routing).
    ecn_total: u64,
    window_acked: u32,
    window_end: u32,
    cwnd_cut_this_window: bool,
    dupacks: u32,
    /// NewReno-style recovery: while `acked < recover`, no further window
    /// reductions from duplicate ACKs; partial ACKs retransmit the next
    /// hole immediately.
    in_recovery: bool,
    recover: u32,
    srtt: f64,
    rto_backoff: u32,
    rto_epoch: u32,
    // --- flowlets ---
    last_send_ns: Ns,
    flowlet_count: u64,
    cur_path: Option<Arc<Vec<u32>>>,
    // --- receiver ---
    rcv_bitmap: Vec<u64>,
    rcv_cum: u32,
    /// Cache: forward path pointer → its reversed channels, so per-packet
    /// ACKs reuse one allocation per flowlet.
    rev_cache: Option<(ChannelPath, ChannelPath)>,
    finished_ns: Option<Ns>,
    in_window: bool,
    // --- faults ---
    /// Terminated by the simulator: endpoints permanently disconnected,
    /// or still unfinished when the run stopped.
    failed: bool,
    /// When this flow first lost a packet to an injected fault.
    fault_hit_ns: Option<Ns>,
    /// When it next made forward progress (new cumulative ACK) after that.
    recovery_ns: Option<Ns>,
    /// Folded into the flowlet hash; bumped on RTO so retransmissions
    /// explore different paths (sender-side reroute around failures).
    path_salt: u64,
}

impl Flow {
    fn rcv_mark(&mut self, seq: u32) {
        let (w, b) = ((seq / 64) as usize, seq % 64);
        self.rcv_bitmap[w] |= 1 << b;
        while self.rcv_cum < self.total_pkts {
            let (w, b) = ((self.rcv_cum / 64) as usize, self.rcv_cum % 64);
            if self.rcv_bitmap[w] & (1 << b) == 0 {
                break;
            }
            self.rcv_cum += 1;
        }
    }
}

/// The packet-level simulator.
pub struct Simulator {
    cfg: SimConfig,
    now: Ns,
    heap: BinaryHeap<HeapItem>,
    ev_seq: u64,
    channels: Vec<Channel>,
    links: Vec<Link>,
    flows: Vec<Flow>,
    selector: Box<dyn PathSelector>,
    num_switches: u32,
    host_ch_base: u32,
    /// ToR of each server, indexed by global server id.
    server_tor: Vec<NodeId>,
    /// First global server id of each rack (`u32::MAX` for rackless nodes).
    rack_base: Vec<u32>,
    window: (Ns, Ns),
    window_remaining: usize,
    events_processed: u64,
    /// Congestion-oracle routing (§7.1 exploration): when set, flowlet
    /// paths are chosen as the least-queued of the k shortest paths,
    /// scored against live queue occupancy — an upper bound on what
    /// adaptive routing could achieve with perfect information.
    oracle: Option<KspSelector>,
    // --- fault injection ---
    /// The full (pre-fault) topology, kept to derive survivor views.
    topo: Topology,
    down_links: Vec<bool>,
    down_sw: Vec<bool>,
    fault_events: Vec<FaultEvent>,
    /// Scheduled fault events not yet fired; when zero, the current
    /// connectivity is final and disconnected flows can be failed.
    pending_faults: usize,
    reconverge_epoch: u64,
    /// Seeded from the fault plan; drawn only for gray-link losses, so
    /// fault-free runs never touch it.
    rng: Rng,
    /// Packets dropped at the source because the selector had no route.
    fault_noroute_drops: u64,
    /// Bytes newly acknowledged per 1-ms bin (goodput timeline).
    goodput_bins: Vec<u64>,
}

impl Simulator {
    /// Builds a simulator over `topo` using `selector` for ToR-to-ToR
    /// paths. Server count and placement come from the topology's
    /// per-switch server counts.
    pub fn new(topo: &Topology, selector: Box<dyn PathSelector>, cfg: SimConfig) -> Self {
        let mtu = cfg.mtu as u64;
        let link_cap = cfg.queue_pkts as u64 * mtu;
        let ecn_at = cfg.ecn_k_pkts as u64 * mtu;
        let mut channels = Vec::with_capacity(topo.num_links() * 2);
        for l in topo.links() {
            let gbps = cfg.link_gbps * l.capacity;
            channels.push(Channel::new(l.b, gbps, cfg.prop_delay_ns, link_cap, ecn_at));
            channels.push(Channel::new(l.a, gbps, cfg.prop_delay_ns, link_cap, ecn_at));
        }
        let host_ch_base = channels.len() as u32;
        let num_switches = topo.num_nodes() as u32;
        let mut server_tor = Vec::new();
        let mut rack_base = vec![u32::MAX; topo.num_nodes()];
        let host_cap = cfg.host_queue_pkts as u64 * mtu;
        for rack in 0..topo.num_nodes() as NodeId {
            let s = topo.servers_at(rack);
            if s == 0 {
                continue;
            }
            rack_base[rack as usize] = server_tor.len() as u32;
            for _ in 0..s {
                let server_node = num_switches + server_tor.len() as u32;
                // Up: server → ToR. The NIC queue marks ECN like a switch
                // port so DCTCP self-paces instead of overflowing the host
                // queue (real stacks backpressure at the qdisc).
                channels.push(Channel::new(
                    rack,
                    cfg.server_link_gbps,
                    cfg.prop_delay_ns,
                    host_cap,
                    ecn_at,
                ));
                // Down: ToR → server (a real switch port: ECN + drops).
                channels.push(Channel::new(
                    server_node,
                    cfg.server_link_gbps,
                    cfg.prop_delay_ns,
                    link_cap,
                    ecn_at,
                ));
                server_tor.push(rack);
            }
        }
        Simulator {
            cfg,
            now: 0,
            heap: BinaryHeap::new(),
            ev_seq: 0,
            channels,
            links: topo.links().to_vec(),
            flows: Vec::new(),
            selector,
            num_switches,
            host_ch_base,
            server_tor,
            rack_base,
            window: (0, Ns::MAX),
            window_remaining: 0,
            events_processed: 0,
            oracle: None,
            topo: topo.clone(),
            down_links: vec![false; topo.num_links()],
            down_sw: vec![false; topo.num_nodes()],
            fault_events: Vec::new(),
            pending_faults: 0,
            reconverge_epoch: 0,
            rng: Rng::seed_from_u64(0),
            fault_noroute_drops: 0,
            goodput_bins: Vec::new(),
        }
    }

    /// Installs a fault plan: every event is scheduled on the event heap
    /// and the gray-loss RNG is reseeded from the plan, so the same plan
    /// (and seed) reproduces the identical run. Call before
    /// [`Simulator::run`].
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        plan.validate(&self.topo);
        self.rng = Rng::seed_from_u64(plan.seed);
        for e in plan.events() {
            let idx = self.fault_events.len() as u32;
            self.fault_events.push(*e);
            self.pending_faults += 1;
            self.schedule(e.at_ns, Ev::Fault(idx));
        }
    }

    /// Switches the simulator to oracle congestion-aware routing: each
    /// flowlet takes whichever of the `k` shortest ToR paths currently has
    /// the least queued bytes (ties broken by the flowlet hash). This uses
    /// global instantaneous queue state no real scheme could see — use it
    /// as the adaptive-routing upper bound the paper's §7.1 asks about.
    ///
    /// The oracle scores paths on the topology it was given and is *not*
    /// rebuilt on reconvergence — don't combine it with a fault plan.
    pub fn enable_oracle_routing(&mut self, topo: &Topology, k: usize) {
        self.oracle = Some(KspSelector::new(topo, k));
    }

    /// Number of servers in the simulated network.
    pub fn num_servers(&self) -> usize {
        self.server_tor.len()
    }

    /// Sets the measurement window `[start, end)`; flows starting inside
    /// it gate [`Simulator::run`]'s completion condition.
    pub fn set_window(&mut self, start: Ns, end: Ns) {
        self.window = (start, end);
    }

    /// Injects workload flows (times in seconds are converted to ns).
    /// Call after `set_window`.
    pub fn inject(&mut self, events: &[FlowEvent]) {
        for e in events {
            let start_ns = (e.start_s * 1e9) as Ns;
            let src = self.server_id(e.src.rack, e.src.server);
            let dst = self.server_id(e.dst.rack, e.dst.server);
            assert_ne!(src, dst, "flow with identical endpoints");
            let total_pkts = e.bytes.div_ceil(self.cfg.mss as u64).max(1) as u32;
            let in_window = start_ns >= self.window.0 && start_ns < self.window.1;
            if in_window {
                self.window_remaining += 1;
            }
            let id = self.flows.len() as u32;
            self.flows.push(Flow {
                src_server: src,
                dst_server: dst,
                src_tor: e.src.rack,
                dst_tor: e.dst.rack,
                size_bytes: e.bytes,
                start_ns,
                total_pkts,
                next_seq: 0,
                acked: 0,
                cwnd: (self.cfg.init_cwnd_pkts * self.cfg.mss) as f64,
                ssthresh: f64::INFINITY,
                alpha: 0.0,
                ecn_acked: 0,
                ecn_total: 0,
                window_acked: 0,
                window_end: 0,
                cwnd_cut_this_window: false,
                dupacks: 0,
                in_recovery: false,
                recover: 0,
                srtt: 0.0,
                rto_backoff: 1,
                rto_epoch: 0,
                last_send_ns: 0,
                flowlet_count: 0,
                cur_path: None,
                rcv_bitmap: Vec::new(),
                rcv_cum: 0,
                rev_cache: None,
                finished_ns: None,
                in_window,
                failed: false,
                fault_hit_ns: None,
                recovery_ns: None,
                path_salt: 0,
            });
            self.schedule(start_ns, Ev::FlowStart(id));
        }
    }

    fn server_id(&self, rack: NodeId, server: u32) -> u32 {
        let base = self.rack_base[rack as usize];
        assert!(base != u32::MAX, "rack {rack} has no servers");
        base + server
    }

    fn schedule(&mut self, t: Ns, ev: Ev) {
        debug_assert!(t >= self.now);
        self.ev_seq += 1;
        self.heap.push(HeapItem {
            t,
            seq: self.ev_seq,
            ev,
        });
    }

    /// Runs until every measurement-window flow completes (or the heap
    /// drains / `max_time` is hit). Returns per-flow records.
    pub fn run(&mut self, max_time: Ns) -> Vec<FlowRecord> {
        while let Some(item) = self.heap.pop() {
            if item.t > max_time {
                break;
            }
            self.now = item.t;
            self.events_processed += 1;
            match item.ev {
                Ev::FlowStart(f) => self.on_flow_start(f),
                Ev::TxFree(ch) => self.on_tx_free(ch),
                Ev::Deliver(p) => self.on_deliver(p),
                Ev::Rto(f, epoch) => self.on_rto(f, epoch),
                Ev::Fault(i) => self.on_fault(i),
                Ev::Reconverge(epoch) => self.on_reconverge(epoch),
            }
            if self.cfg.max_events != 0 && self.events_processed > self.cfg.max_events {
                panic!(
                    "event budget exceeded: {} events at t={} ns with {} window flows outstanding",
                    self.events_processed, self.now, self.window_remaining
                );
            }
            if self.window_remaining == 0 && !self.flows.is_empty() {
                break;
            }
        }
        // Anything still unfinished when the run stops counts as failed,
        // so completed + failed covers every injected flow.
        for fid in 0..self.flows.len() as u32 {
            self.fail_flow(fid);
        }
        self.records()
    }

    /// Per-flow outcomes.
    pub fn records(&self) -> Vec<FlowRecord> {
        self.flows
            .iter()
            .map(|f| FlowRecord {
                start_ns: f.start_ns,
                size_bytes: f.size_bytes,
                fct_ns: f.finished_ns.map(|t| t - f.start_ns),
                failed: f.failed,
                recovery_ns: match (f.fault_hit_ns, f.recovery_ns) {
                    (Some(hit), Some(rec)) => Some(rec - hit),
                    _ => None,
                },
            })
            .collect()
    }

    /// Total congestion tail drops across all channels.
    pub fn total_congestion_drops(&self) -> u64 {
        self.channels.iter().map(|c| c.drops).sum()
    }

    /// Packets lost to injected faults: dead or gray channels, plus
    /// packets that never left the host because no route existed.
    pub fn total_fault_drops(&self) -> u64 {
        self.channels.iter().map(|c| c.fault_drops).sum::<u64>() + self.fault_noroute_drops
    }

    /// All drops, congestion and fault; equals
    /// [`Simulator::total_congestion_drops`] in fault-free runs.
    pub fn total_drops(&self) -> u64 {
        self.total_congestion_drops() + self.total_fault_drops()
    }

    /// Bytes newly acknowledged per 1-ms bin since t=0 — the goodput
    /// timeline robustness plots are drawn from.
    pub fn goodput_timeline_ms(&self) -> &[u64] {
        &self.goodput_bins
    }

    /// Total ECN marks across all channels.
    pub fn total_marks(&self) -> u64 {
        self.channels.iter().map(|c| c.marks).sum()
    }

    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    // ---- event handlers ----

    fn on_flow_start(&mut self, fid: u32) {
        let f = &mut self.flows[fid as usize];
        if f.failed {
            return; // terminated before it began (disconnected endpoints)
        }
        f.rcv_bitmap = vec![0u64; (f.total_pkts as usize).div_ceil(64)];
        f.window_end = 1;
        self.arm_rto(fid);
        self.pump(fid);
    }

    fn on_tx_free(&mut self, ch_id: u32) {
        if let Some(pkt) = self.channels[ch_id as usize].tx_done() {
            self.start_tx(ch_id, pkt);
        }
    }

    fn start_tx(&mut self, ch_id: u32, pkt: Box<Packet>) {
        let ch = &self.channels[ch_id as usize];
        let ser = ch.ser_ns(pkt.bytes);
        let prop = ch.prop_ns;
        self.schedule(self.now + ser, Ev::TxFree(ch_id));
        self.schedule(self.now + ser + prop, Ev::Deliver(pkt));
    }

    fn send_on(&mut self, ch_id: u32, pkt: Box<Packet>) {
        let (up, loss) = {
            let ch = &self.channels[ch_id as usize];
            (ch.up, ch.loss_prob)
        };
        if !up || (loss > 0.0 && self.rng.gen_bool(loss)) {
            self.channels[ch_id as usize].fault_drops += 1;
            self.note_fault_hit(pkt.flow);
            return;
        }
        if let (Offer::StartTx, Some(p)) = self.channels[ch_id as usize].offer(pkt) {
            self.start_tx(ch_id, p)
        }
    }

    fn on_deliver(&mut self, mut pkt: Box<Packet>) {
        let ch = pkt.path[pkt.hop as usize];
        if !self.channels[ch as usize].up {
            // The wire died while this packet was in flight (or queued
            // behind the transmitter): it is lost.
            self.channels[ch as usize].fault_drops += 1;
            self.note_fault_hit(pkt.flow);
            return;
        }
        let node = self.channels[ch as usize].to_node;
        pkt.hop += 1;
        if node < self.num_switches {
            // Switch: source-routed forward onto the next channel.
            let next = pkt.path[pkt.hop as usize];
            self.send_on(next, pkt);
        } else if pkt.is_ack {
            self.on_ack(pkt);
        } else {
            self.on_data(pkt);
        }
    }

    // Packets arrive boxed from the event heap; unboxing at the dispatch
    // site would just move the struct for no benefit.
    #[allow(clippy::boxed_local)]
    fn on_data(&mut self, pkt: Box<Packet>) {
        let fid = pkt.flow;
        if self.flows[fid as usize].failed {
            return;
        }
        let f = &mut self.flows[fid as usize];
        debug_assert_eq!(self.num_switches + f.dst_server, {
            let last = *pkt.path.last().unwrap();
            self.channels[last as usize].to_node
        });
        if f.finished_ns.is_none() {
            f.rcv_mark(pkt.seq);
            if f.rcv_cum == f.total_pkts {
                f.finished_ns = Some(self.now);
                f.rcv_bitmap = Vec::new();
                if f.in_window {
                    self.window_remaining -= 1;
                }
            }
        }
        // Cumulative ACK retracing the data packet's route backwards.
        let f = &mut self.flows[fid as usize];
        let rev = match &f.rev_cache {
            Some((fwd, rev)) if Arc::ptr_eq(fwd, &pkt.path) => rev.clone(),
            _ => {
                let rev: ChannelPath = Arc::new(pkt.path.iter().rev().map(|c| c ^ 1).collect());
                f.rev_cache = Some((pkt.path.clone(), rev.clone()));
                rev
            }
        };
        let f = &self.flows[fid as usize];
        let ack = Box::new(Packet {
            flow: fid,
            seq: f.rcv_cum,
            bytes: self.cfg.ack_bytes,
            ecn_ce: false,
            is_ack: true,
            ack_ecn: pkt.ecn_ce,
            ts: pkt.ts,
            hop: 0,
            path: rev,
        });
        let first = ack.path[0];
        self.send_on(first, ack);
    }

    #[allow(clippy::boxed_local)]
    fn on_ack(&mut self, ack: Box<Packet>) {
        let fid = ack.flow;
        let mss = self.cfg.mss as f64;
        // NewReno ignores ECN echoes entirely.
        let ecn_echo = ack.ack_ecn && self.cfg.transport == crate::types::Transport::Dctcp;
        let f = &mut self.flows[fid as usize];
        if f.failed || f.acked >= f.total_pkts {
            return; // sender already done (or flow terminated)
        }
        let c = ack.seq;
        if c > f.acked {
            let newly = c - f.acked;
            // Goodput timeline: credit this ms bin with the new bytes.
            let mss64 = self.cfg.mss as u64;
            let before = (f.acked as u64 * mss64).min(f.size_bytes);
            let after = (c as u64 * mss64).min(f.size_bytes);
            let bin = (self.now / MS) as usize;
            if self.goodput_bins.len() <= bin {
                self.goodput_bins.resize(bin + 1, 0);
            }
            self.goodput_bins[bin] += after - before;
            if f.fault_hit_ns.is_some() && f.recovery_ns.is_none() {
                // First forward progress after a fault-induced loss.
                f.recovery_ns = Some(self.now);
            }
            f.acked = c;
            // An RTO may have rewound next_seq below what late ACKs cover.
            f.next_seq = f.next_seq.max(f.acked);
            f.dupacks = 0;
            let rtt = (self.now - ack.ts) as f64;
            f.srtt = if f.srtt == 0.0 {
                rtt
            } else {
                0.875 * f.srtt + 0.125 * rtt
            };
            f.rto_backoff = 1;
            f.window_acked += newly;
            if ack.ack_ecn {
                // Feedback for adaptive routing is tracked regardless of
                // the transport's reaction.
                f.ecn_total += newly as u64;
            }
            if ecn_echo {
                f.ecn_acked += newly;
            }
            if f.acked >= f.window_end {
                // DCTCP α update at window boundaries.
                if f.window_acked > 0 {
                    let frac = f.ecn_acked as f64 / f.window_acked as f64;
                    f.alpha = (1.0 - self.cfg.dctcp_g) * f.alpha + self.cfg.dctcp_g * frac;
                }
                f.ecn_acked = 0;
                f.window_acked = 0;
                f.window_end = f.next_seq.max(f.acked + 1);
                f.cwnd_cut_this_window = false;
            }
            let mut retransmitted = None;
            if f.in_recovery {
                if f.acked >= f.recover {
                    f.in_recovery = false;
                } else {
                    // Partial ACK: retransmit the next hole right away.
                    retransmitted = Some(f.acked);
                }
            }
            if !f.in_recovery {
                if ecn_echo && !f.cwnd_cut_this_window {
                    f.cwnd = (f.cwnd * (1.0 - f.alpha / 2.0)).max(mss);
                    f.ssthresh = f.cwnd;
                    f.cwnd_cut_this_window = true;
                } else if !ecn_echo {
                    if f.cwnd < f.ssthresh {
                        f.cwnd += mss * newly as f64; // slow start
                    } else {
                        f.cwnd += mss * mss / f.cwnd * newly as f64; // AI
                    }
                }
            }
            if f.acked < f.total_pkts {
                self.arm_rto(fid);
                if let Some(seq) = retransmitted {
                    self.send_data(fid, seq);
                }
                self.pump(fid);
            }
        } else {
            f.dupacks += 1;
            if f.dupacks >= 3 && !f.in_recovery {
                // Fast retransmit: one window reduction per loss event.
                f.in_recovery = true;
                f.recover = f.next_seq;
                f.ssthresh = (f.cwnd / 2.0).max(2.0 * mss);
                f.cwnd = f.ssthresh;
                f.dupacks = 0;
                let seq = f.acked;
                self.arm_rto(fid);
                self.send_data(fid, seq);
            }
        }
    }

    fn arm_rto(&mut self, fid: u32) {
        let f = &mut self.flows[fid as usize];
        f.rto_epoch = f.rto_epoch.wrapping_add(1);
        let rto = ((2.0 * f.srtt) as Ns).max(self.cfg.min_rto_ns) * f.rto_backoff as Ns;
        let epoch = f.rto_epoch;
        self.schedule(self.now + rto, Ev::Rto(fid, epoch));
    }

    fn on_rto(&mut self, fid: u32, epoch: u32) {
        let f = &mut self.flows[fid as usize];
        if f.rto_epoch != epoch || f.acked >= f.total_pkts || f.finished_ns.is_some() || f.failed {
            return;
        }
        // Go-back-N: rewind, shrink to one packet, force a fresh flowlet
        // (the old path may be the congested one).
        let mss = self.cfg.mss as f64;
        f.ssthresh = (f.cwnd / 2.0).max(2.0 * mss);
        f.cwnd = mss;
        f.next_seq = f.acked;
        f.in_recovery = false;
        f.rto_backoff = (f.rto_backoff * 2).min(64);
        f.cur_path = None;
        // Re-pin the flowlet hash: if the loss was a failed link the old
        // hash would keep landing on, the salt steers the retransmission
        // onto a different equal-cost choice without control-plane help.
        f.path_salt = f.path_salt.wrapping_add(1);
        self.arm_rto(fid);
        self.pump(fid);
    }

    // ---- fault machinery ----

    fn on_fault(&mut self, idx: u32) {
        self.pending_faults -= 1;
        match self.fault_events[idx as usize].kind {
            FaultKind::LinkDown(l) => self.set_link_state(l, true),
            FaultKind::LinkUp(l) => self.set_link_state(l, false),
            FaultKind::SwitchDown(n) => self.set_switch_state(n, true),
            FaultKind::SwitchUp(n) => self.set_switch_state(n, false),
            // Gray failures are invisible to the control plane: no
            // reconvergence, just per-packet losses in both directions.
            FaultKind::LinkGray(l, p) => {
                self.channels[2 * l as usize].loss_prob = p;
                self.channels[2 * l as usize + 1].loss_prob = p;
            }
            FaultKind::LinkClear(l) => {
                self.channels[2 * l as usize].loss_prob = 0.0;
                self.channels[2 * l as usize + 1].loss_prob = 0.0;
            }
        }
    }

    fn set_link_state(&mut self, l: LinkId, down: bool) {
        self.down_links[l as usize] = down;
        self.apply_channel_states();
        self.schedule_reconverge();
    }

    fn set_switch_state(&mut self, n: NodeId, down: bool) {
        self.down_sw[n as usize] = down;
        self.apply_channel_states();
        self.schedule_reconverge();
    }

    fn schedule_reconverge(&mut self) {
        self.reconverge_epoch += 1;
        let epoch = self.reconverge_epoch;
        self.schedule(
            self.now + self.cfg.reconverge_delay_ns,
            Ev::Reconverge(epoch),
        );
    }

    /// Recomputes every channel's up flag from the link and switch fault
    /// state. Downed channels keep serializing their queues — those
    /// packets drain onto the dead wire and are dropped at delivery.
    fn apply_channel_states(&mut self) {
        for (l, link) in self.links.iter().enumerate() {
            let up = !self.down_links[l]
                && !self.down_sw[link.a as usize]
                && !self.down_sw[link.b as usize];
            self.channels[2 * l].up = up;
            self.channels[2 * l + 1].up = up;
        }
        for s in 0..self.server_tor.len() {
            let up = !self.down_sw[self.server_tor[s] as usize];
            self.channels[self.host_ch_base as usize + 2 * s].up = up;
            self.channels[self.host_ch_base as usize + 2 * s + 1].up = up;
        }
    }

    /// The view the control plane reconverges on: same node ids, only the
    /// surviving links. Also returns the survivor→original link id map.
    fn survivor_topology(&self) -> (Topology, Vec<LinkId>) {
        let mut t = Topology::new(format!("{}-survivor", self.topo.name()));
        for n in self.topo.nodes() {
            t.add_node(self.topo.kind(n), self.topo.servers_at(n));
        }
        let mut map = Vec::new();
        for (l, link) in self.topo.links().iter().enumerate() {
            if self.channels[2 * l].up {
                t.add_link_cap(link.a, link.b, link.capacity);
                map.push(l as LinkId);
            }
        }
        (t, map)
    }

    fn on_reconverge(&mut self, epoch: u64) {
        if epoch != self.reconverge_epoch {
            return; // a newer fault superseded this rebuild
        }
        let (survivor, map) = self.survivor_topology();
        self.selector = Box::new(RemappedSelector::new(self.selector.rebuild(&survivor), map));
        // With no fault event still pending, connectivity is final: fail
        // flows whose endpoints are gone or in different components
        // instead of letting them back off until max_time.
        if self.pending_faults == 0 {
            let comp = component_labels(&survivor);
            for fid in 0..self.flows.len() as u32 {
                let f = &self.flows[fid as usize];
                let dead = self.down_sw[f.src_tor as usize]
                    || self.down_sw[f.dst_tor as usize]
                    || comp[f.src_tor as usize] != comp[f.dst_tor as usize];
                if dead {
                    self.fail_flow(fid);
                }
            }
        }
    }

    /// Terminates an unfinished flow as failed.
    fn fail_flow(&mut self, fid: u32) {
        let f = &mut self.flows[fid as usize];
        if f.finished_ns.is_some() || f.failed {
            return;
        }
        f.failed = true;
        f.rcv_bitmap = Vec::new();
        if f.in_window {
            self.window_remaining -= 1;
        }
    }

    /// Records the first fault-induced loss a flow suffers, anchoring the
    /// recovery-latency measurement.
    fn note_fault_hit(&mut self, fid: u32) {
        let f = &mut self.flows[fid as usize];
        if f.finished_ns.is_none() && !f.failed && f.fault_hit_ns.is_none() {
            f.fault_hit_ns = Some(self.now);
        }
    }

    fn pump(&mut self, fid: u32) {
        loop {
            let f = &self.flows[fid as usize];
            if f.next_seq >= f.total_pkts {
                break;
            }
            let inflight = (f.next_seq - f.acked) as f64 * self.cfg.mss as f64;
            if inflight + self.cfg.mss as f64 > f.cwnd + 0.5 {
                break;
            }
            let seq = f.next_seq;
            self.flows[fid as usize].next_seq += 1;
            self.send_data(fid, seq);
        }
    }

    fn send_data(&mut self, fid: u32, seq: u32) {
        let gap = self.cfg.flowlet_gap_ns;
        let f = &self.flows[fid as usize];
        let needs_new = f.cur_path.is_none() || self.now - f.last_send_ns > gap;
        if needs_new {
            // path_salt is 0 until the first RTO, keeping fault-free runs
            // byte-identical to the unsalted flowlet hash.
            let key = hash3(
                fid as u64 ^ f.path_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                f.flowlet_count,
                0xF10_1E7,
            );
            let bytes_sent = f.next_seq as u64 * self.cfg.mss as u64;
            let path = self.build_path(fid, key, bytes_sent);
            let f = &mut self.flows[fid as usize];
            f.flowlet_count += 1;
            match path {
                Some(p) => f.cur_path = Some(Arc::new(p)),
                None => {
                    // No route right now (selector rebuilt on a view where
                    // the pair is disconnected): drop at the source. The
                    // RTO rewinds and retries until a recovery restores
                    // the route or the flow is failed.
                    f.cur_path = None;
                    self.fault_noroute_drops += 1;
                    self.note_fault_hit(fid);
                    return;
                }
            }
        }
        let f = &mut self.flows[fid as usize];
        f.last_send_ns = self.now;
        let payload = if seq + 1 == f.total_pkts {
            (f.size_bytes - seq as u64 * self.cfg.mss as u64) as u32
        } else {
            self.cfg.mss
        };
        let pkt = Box::new(Packet {
            flow: fid,
            seq,
            bytes: payload + HEADER_BYTES,
            ecn_ce: false,
            is_ack: false,
            ack_ecn: false,
            ts: self.now,
            hop: 0,
            path: f.cur_path.clone().unwrap(),
        });
        let first = pkt.path[0];
        self.send_on(first, pkt);
    }

    /// Oracle scoring: queued bytes along each KSP candidate, walking the
    /// candidate's links into directed channels from `src`.
    fn least_queued(&self, ksp: &KspSelector, src: NodeId, dst: NodeId, key: u64) -> Vec<u32> {
        let candidates = ksp.candidate_paths(src, dst);
        let mut best: Option<(u64, u64, &Vec<u32>)> = None;
        for (i, links) in candidates.iter().enumerate() {
            let mut u = src;
            let mut queued = 0u64;
            for &l in links {
                let link = self.links[l as usize];
                let ch = if link.a == u { 2 * l } else { 2 * l + 1 };
                u = link.other(u);
                queued += self.channels[ch as usize].queue_bytes();
            }
            let tie = hash3(key, i as u64, 0x07AC1E);
            if best.is_none_or(|(q, t, _)| (queued, tie) < (q, t)) {
                best = Some((queued, tie, links));
            }
        }
        best.expect("ksp returns at least one path").2.clone()
    }

    /// Builds the channel path server→…→server for a flowlet, or `None`
    /// when the selector has no route for the pair (post-fault view).
    fn build_path(&self, fid: u32, key: u64, bytes_sent: u64) -> Option<Vec<u32>> {
        let f = &self.flows[fid as usize];
        let up = self.host_ch_base + 2 * f.src_server;
        let down = self.host_ch_base + 2 * f.dst_server + 1;
        let mut path = Vec::with_capacity(8);
        path.push(up);
        if f.src_tor != f.dst_tor {
            let links = match &self.oracle {
                Some(ksp) => self.least_queued(ksp, f.src_tor, f.dst_tor, key),
                None => self.selector.select_with_feedback(
                    f.src_tor,
                    f.dst_tor,
                    key,
                    bytes_sent,
                    f.ecn_total,
                ),
            };
            if links.is_empty() {
                return None;
            }
            let mut u = f.src_tor;
            for l in links {
                let link = self.links[l as usize];
                if link.a == u {
                    path.push(2 * l);
                    u = link.b;
                } else {
                    debug_assert_eq!(link.b, u);
                    path.push(2 * l + 1);
                    u = link.a;
                }
            }
            debug_assert_eq!(u, f.dst_tor);
        }
        path.push(down);
        Some(path)
    }
}

/// Connected-component label per node (BFS sweep).
fn component_labels(t: &Topology) -> Vec<u32> {
    let n = t.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as NodeId {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in t.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::compute_metrics;
    use crate::types::{MS, SEC, US};
    use dcn_routing::RoutingSuite;
    use dcn_topology::fattree::FatTree;
    use dcn_topology::xpander::Xpander;
    use dcn_workloads::tm::Endpoint;

    fn flow(start_s: f64, src: (u32, u32), dst: (u32, u32), bytes: u64) -> FlowEvent {
        FlowEvent {
            start_s,
            src: Endpoint {
                rack: src.0,
                server: src.1,
            },
            dst: Endpoint {
                rack: dst.0,
                server: dst.1,
            },
            bytes,
        }
    }

    fn fat_tree_sim() -> Simulator {
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default())
    }

    #[test]
    fn single_small_flow_completes_fast() {
        let mut sim = fat_tree_sim();
        // Rack 0 server 0 → rack 12 (other pod) server 1, 10 KB.
        sim.inject(&[flow(0.0, (0, 0), (12, 1), 10_000)]);
        let rec = sim.run(SEC);
        let fct = rec[0].fct_ns.expect("flow must finish");
        // 7 packets, cwnd 10 ⇒ one window: ~6 hops × (1.2 µs + 0.1 µs).
        assert!(fct > 5 * US && fct < 100 * US, "fct {fct} ns");
    }

    #[test]
    fn long_flow_achieves_near_line_rate() {
        let mut sim = fat_tree_sim();
        sim.inject(&[flow(0.0, (0, 0), (12, 0), 10_000_000)]);
        let rec = sim.run(10 * SEC);
        let fct = rec[0].fct_ns.unwrap() as f64;
        let gbps = 10_000_000.0 * 8.0 / fct;
        assert!(gbps > 8.0, "throughput {gbps} Gbps");
    }

    #[test]
    fn same_rack_flow_works() {
        let mut sim = fat_tree_sim();
        sim.inject(&[flow(0.0, (0, 0), (0, 1), 100_000)]);
        let rec = sim.run(SEC);
        assert!(rec[0].fct_ns.is_some());
    }

    #[test]
    fn two_flows_share_bottleneck_fairly() {
        // Two senders on different racks to the same destination server:
        // the server downlink is the bottleneck; DCTCP should split it.
        let mut sim = fat_tree_sim();
        sim.inject(&[
            flow(0.0, (0, 0), (12, 0), 5_000_000),
            flow(0.0, (4, 0), (12, 0), 5_000_000),
        ]);
        let rec = sim.run(30 * SEC);
        let f0 = rec[0].fct_ns.unwrap() as f64;
        let f1 = rec[1].fct_ns.unwrap() as f64;
        // Each gets ≈5 Gbps ⇒ ≈8 ms; allow generous slack.
        for f in [f0, f1] {
            let gbps = 5_000_000.0 * 8.0 / f;
            assert!(gbps > 3.0 && gbps < 7.5, "per-flow {gbps} Gbps");
        }
        assert!((f0 / f1 - 1.0).abs() < 0.5, "unfair split {f0} vs {f1}");
    }

    #[test]
    fn ecn_prevents_drops_at_moderate_fanin() {
        let mut sim = fat_tree_sim();
        sim.inject(&[
            flow(0.0, (0, 0), (12, 0), 2_000_000),
            flow(0.0, (4, 0), (12, 0), 2_000_000),
        ]);
        sim.run(30 * SEC);
        assert!(sim.total_marks() > 0, "DCTCP should be marking");
        assert_eq!(sim.total_drops(), 0, "ECN should prevent drops");
    }

    #[test]
    fn survives_heavy_incast_with_drops() {
        // 8-to-1 incast into one server at tiny queues: drops happen but
        // all flows still complete via retransmission.
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        let cfg = SimConfig {
            queue_pkts: 10,
            ecn_k_pkts: 4,
            ..Default::default()
        };
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
        let racks = [4u32, 5, 8, 9];
        let flows: Vec<FlowEvent> = (0..8)
            .map(|i| flow(0.0, (racks[i % 4], (i / 4) as u32), (0, 0), 500_000))
            .collect();
        sim.inject(&flows);
        let rec = sim.run(60 * SEC);
        assert!(sim.total_drops() > 0, "expected drops at queue=10");
        for r in &rec {
            assert!(r.fct_ns.is_some(), "flow lost to incast");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = fat_tree_sim();
            sim.inject(&[
                flow(0.0, (0, 0), (12, 0), 1_000_000),
                flow(0.0001, (4, 1), (8, 1), 300_000),
                flow(0.0002, (8, 0), (0, 1), 50_000),
            ]);
            sim.run(10 * SEC)
                .iter()
                .map(|r| r.fct_ns)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn vlb_and_hyb_complete_on_xpander() {
        let t = Xpander::new(5, 8, 2, 3).build();
        for mode in 0..3 {
            let suite = RoutingSuite::new(&t);
            let sel: Box<dyn PathSelector> = match mode {
                0 => Box::new(suite.ecmp()),
                1 => Box::new(suite.vlb()),
                _ => Box::new(suite.hyb(dcn_routing::PAPER_Q_BYTES)),
            };
            let mut sim = Simulator::new(&t, sel, SimConfig::default());
            sim.inject(&[
                flow(0.0, (0, 0), (1, 0), 2_000_000),
                flow(0.0, (2, 1), (7, 1), 50_000),
            ]);
            let rec = sim.run(10 * SEC);
            assert!(
                rec.iter().all(|r| r.fct_ns.is_some()),
                "mode {mode} incomplete"
            );
        }
    }

    #[test]
    fn newreno_fills_queues_where_dctcp_marks() {
        // Same fan-in: DCTCP keeps queues at K via marks; NewReno runs
        // them into tail drops instead.
        let t = FatTree::full(4).build();
        let mk = |cfg: SimConfig| {
            let suite = RoutingSuite::new(&t);
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
            sim.inject(&[
                flow(0.0, (0, 0), (12, 0), 4_000_000),
                flow(0.0, (4, 0), (12, 0), 4_000_000),
            ]);
            let rec = sim.run(60 * SEC);
            assert!(rec.iter().all(|r| r.fct_ns.is_some()));
            (sim.total_marks(), sim.total_drops())
        };
        let (dctcp_marks, dctcp_drops) = mk(SimConfig::default());
        let (_, reno_drops) = mk(SimConfig::default().with_newreno());
        assert!(dctcp_marks > 0);
        assert_eq!(dctcp_drops, 0, "DCTCP should avoid drops here");
        assert!(reno_drops > 0, "NewReno should be loss-driven");
    }

    #[test]
    fn oracle_routing_beats_ecmp_between_neighbors() {
        // The Fig 7b pathology: all traffic between two adjacent racks.
        // ECMP is stuck on the direct link; the oracle spreads flowlets
        // over the least-queued of the k shortest paths.
        let t = Xpander::new(5, 8, 3, 3).build();
        let l = t.link(0);
        let flows: Vec<FlowEvent> = (0..6)
            .map(|i| flow(0.0, (l.a, i % 3), (l.b, (i + 1) % 3), 3_000_000))
            .collect();
        let run = |oracle: bool| {
            let suite = RoutingSuite::new(&t);
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
            if oracle {
                sim.enable_oracle_routing(&t, 8);
            }
            sim.inject(&flows);
            let rec = sim.run(60 * SEC);
            rec.iter().map(|r| r.fct_ns.unwrap()).max().unwrap()
        };
        let ecmp = run(false);
        let oracle = run(true);
        assert!(
            (oracle as f64) < ecmp as f64 * 0.75,
            "oracle {oracle} not clearly better than ecmp {ecmp}"
        );
    }

    #[test]
    fn oracle_routing_deterministic() {
        let t = Xpander::new(4, 6, 2, 1).build();
        let run = || {
            let suite = RoutingSuite::new(&t);
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
            sim.enable_oracle_routing(&t, 4);
            sim.inject(&[
                flow(0.0, (0, 0), (9, 1), 800_000),
                flow(0.0001, (3, 1), (12, 0), 500_000),
            ]);
            sim.run(30 * SEC)
                .iter()
                .map(|r| r.fct_ns)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn window_gating_stops_run() {
        let mut sim = fat_tree_sim();
        sim.set_window(0, MS);
        sim.inject(&[
            flow(0.0, (0, 0), (12, 0), 10_000),
            // Outside the window; the run may stop before it finishes.
            flow(1.0, (4, 0), (8, 0), 10_000),
        ]);
        let rec = sim.run(10 * SEC);
        assert!(rec[0].fct_ns.is_some());
        let m = compute_metrics(&rec, 0, MS);
        assert_eq!(m.flows, 1);
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn flow_survives_link_down_then_up() {
        // Kill the only inter-rack link mid-flow, restore it later: the
        // flow must lose packets to the fault, stall, and still finish
        // after recovery.
        let t = {
            let mut t = dcn_topology::Topology::new("two-racks");
            let a = t.add_node(dcn_topology::NodeKind::Tor, 2);
            let b = t.add_node(dcn_topology::NodeKind::Tor, 2);
            t.add_link(a, b);
            t
        };
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow(0.0, (0, 0), (1, 0), 5_000_000)]);
        sim.set_fault_plan(&FaultPlan::new().link_down(MS, 0).link_up(20 * MS, 0));
        let rec = sim.run(60 * SEC);
        assert!(sim.total_fault_drops() > 0, "no packets hit the dead link");
        let fct = rec[0].fct_ns.expect("flow must finish after recovery");
        assert!(!rec[0].failed);
        // 5 MB at 10 Gbps is ~4 ms; the 19 ms outage dominates the FCT.
        assert!(
            fct > 19 * MS,
            "fct {fct} ns too fast to have seen the outage"
        );
        let recovery = rec[0].recovery_ns.expect("flow should have recovered");
        assert!(recovery > 0 && recovery < 40 * MS, "recovery {recovery} ns");
    }

    #[test]
    fn fault_drops_separate_from_congestion_drops() {
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow(0.0, (0, 0), (12, 0), 2_000_000)]);
        // Take down one of ToR 0's uplinks, which the flow may hash onto;
        // ECMP re-salts around it via RTO, no congestion drops expected.
        let l = t.neighbors(0)[0].1;
        sim.set_fault_plan(&FaultPlan::new().link_down(0, l).link_up(30 * MS, l));
        sim.run(60 * SEC);
        assert_eq!(sim.total_congestion_drops(), 0);
        assert_eq!(sim.total_drops(), sim.total_fault_drops());
    }

    #[test]
    fn gray_link_drops_but_flow_completes() {
        let t = {
            let mut t = dcn_topology::Topology::new("two-racks");
            let a = t.add_node(dcn_topology::NodeKind::Tor, 1);
            let b = t.add_node(dcn_topology::NodeKind::Tor, 1);
            t.add_link(a, b);
            t
        };
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow(0.0, (0, 0), (1, 0), 1_000_000)]);
        sim.set_fault_plan(&FaultPlan::new().with_seed(7).link_gray(0, 0, 0.02));
        let rec = sim.run(60 * SEC);
        assert!(
            sim.total_fault_drops() > 0,
            "2% loss should hit ~685 packets"
        );
        assert_eq!(sim.total_congestion_drops(), 0);
        assert!(rec[0].fct_ns.is_some(), "flow must survive gray loss");
    }

    #[test]
    fn permanent_disconnection_fails_flows() {
        // Two racks joined by one link; cutting it forever must fail the
        // inter-rack flow (after reconvergence) while the same-rack flow
        // completes — and the run must terminate, not hang.
        let t = {
            let mut t = dcn_topology::Topology::new("two-racks");
            let a = t.add_node(dcn_topology::NodeKind::Tor, 2);
            let b = t.add_node(dcn_topology::NodeKind::Tor, 2);
            t.add_link(a, b);
            t
        };
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[
            flow(0.0, (0, 0), (1, 0), 5_000_000),
            flow(0.0, (0, 0), (0, 1), 100_000),
        ]);
        sim.set_fault_plan(&FaultPlan::new().link_down(MS, 0));
        let rec = sim.run(60 * SEC);
        assert!(rec[0].failed, "disconnected flow must be failed");
        assert!(rec[0].fct_ns.is_none());
        assert!(rec[1].fct_ns.is_some(), "same-rack flow unaffected");
        let m = compute_metrics(&rec, 0, SEC);
        assert_eq!(m.flows, 2);
        assert_eq!(m.completed + m.failed, 2);
    }

    #[test]
    fn switch_down_and_up_behaves_like_links() {
        // Killing an aggregation switch in a k=4 fat-tree leaves 3 others;
        // flows reroute and complete. ToR 0's rack is NOT behind it.
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow(0.0, (0, 0), (12, 0), 2_000_000)]);
        // Node ids: ToRs come first (16), then aggs. Kill the first agg.
        let agg = (0..t.num_nodes() as u32)
            .find(|&n| t.kind(n) == dcn_topology::NodeKind::Aggregation)
            .unwrap();
        sim.set_fault_plan(
            &FaultPlan::new()
                .switch_down(MS, agg)
                .switch_up(10 * MS, agg),
        );
        let rec = sim.run(60 * SEC);
        assert!(rec[0].fct_ns.is_some(), "flow must survive an agg failure");
    }

    #[test]
    fn rto_backoff_doubles_then_resets_on_ack() {
        // Drive repeated RTOs by cutting the only link, then verify the
        // documented backoff law on the private flow state: doubling per
        // epoch, capped at 64, reset to 1 by the first new ACK.
        let t = {
            let mut t = dcn_topology::Topology::new("two-racks");
            let a = t.add_node(dcn_topology::NodeKind::Tor, 1);
            let b = t.add_node(dcn_topology::NodeKind::Tor, 1);
            t.add_link(a, b);
            t
        };
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow(0.0, (0, 0), (1, 0), 1_000_000)]);
        sim.set_fault_plan(&FaultPlan::new().link_down(0, 0).link_up(400 * MS, 0));
        // Long outage ⇒ many RTO epochs: 1,2,4,...,64,64,... Run up to
        // just before recovery and check the cap was reached.
        sim.run(399 * MS);
        assert_eq!(
            sim.flows[0].rto_backoff, 64,
            "backoff should saturate at 64"
        );
        assert!(
            sim.flows[0].path_salt > 0,
            "RTOs must re-salt the path hash"
        );
        // Fresh sim, same plan, run to completion: new ACKs reset backoff.
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow(0.0, (0, 0), (1, 0), 1_000_000)]);
        sim.set_fault_plan(&FaultPlan::new().link_down(0, 0).link_up(400 * MS, 0));
        let rec = sim.run(60 * SEC);
        assert!(rec[0].fct_ns.is_some());
        assert_eq!(sim.flows[0].rto_backoff, 1, "ACKs must reset the backoff");
    }

    #[test]
    fn goodput_timeline_accounts_all_bytes() {
        let mut sim = fat_tree_sim();
        sim.inject(&[flow(0.0, (0, 0), (12, 0), 3_000_000)]);
        sim.run(60 * SEC);
        let total: u64 = sim.goodput_timeline_ms().iter().sum();
        // The run stops when the receiver finishes, so up to one window of
        // final ACKs may never reach the sender's accounting.
        assert!(total <= 3_000_000, "timeline over-credits: {total}");
        assert!(total > 2_800_000, "timeline under-credits: {total}");
    }

    #[test]
    #[should_panic(expected = "event budget exceeded")]
    fn watchdog_trips_on_event_budget() {
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        let cfg = SimConfig {
            max_events: 50,
            ..Default::default()
        };
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
        sim.inject(&[flow(0.0, (0, 0), (12, 0), 10_000_000)]);
        sim.run(60 * SEC);
    }

    #[test]
    fn unconstrained_server_links_speed_up_fanin() {
        // With 1000 Gbps host links, two senders into one server are no
        // longer bottlenecked at the destination downlink.
        let t = FatTree::full(4).build();
        let mk = |cfg: SimConfig| {
            let suite = RoutingSuite::new(&t);
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
            sim.inject(&[
                flow(0.0, (0, 0), (12, 0), 3_000_000),
                flow(0.0, (4, 0), (12, 0), 3_000_000),
            ]);
            let rec = sim.run(30 * SEC);
            rec.iter().map(|r| r.fct_ns.unwrap()).max().unwrap()
        };
        let constrained = mk(SimConfig::default());
        let unconstrained = mk(SimConfig::default().unconstrained_servers());
        assert!(
            (unconstrained as f64) < constrained as f64 * 0.8,
            "unconstrained {unconstrained} vs constrained {constrained}"
        );
    }
}
