//! The host layer: per-flow sender/receiver state and pluggable
//! congestion control behind the [`Transport`] trait.
//!
//! A [`Flow`] holds everything an end host tracks — the send window, RTT
//! estimate, loss-recovery bookkeeping, the receive bitmap, and the
//! flowlet path cache. *Policy* — how the window reacts to ACKs, ECN
//! echoes, and timeouts — lives behind [`Transport`], one shared
//! (stateless) object per simulation operating on each flow's state:
//!
//! - [`Dctcp`] — the paper's transport: ECN-fraction-proportional window
//!   scaling (Alizadeh et al., SIGCOMM 2010) over NewReno loss recovery.
//! - [`NewReno`] — the loss-based baseline: identical recovery machinery,
//!   ECN echoes ignored.
//! - [`PFabric`] — pFabric's minimal transport: a fixed near-BDP window,
//!   no AIMD and no ECN reaction; the fabric's strict-priority queues
//!   (see [`crate::switch::PFabricQueue`]) do the scheduling.
//!
//! The engine drives the trait: it delivers ACK/timeout events, then
//! executes the returned [`AckActions`] (re-arm the RTO, retransmit a
//! hole, pump the window) so all event scheduling stays in one place.

use crate::types::{Ns, SimConfig, TransportKind};
use dcn_topology::NodeId;
use std::sync::Arc;

/// A shared source-route: the channel ids a flowlet's packets traverse.
pub(crate) type ChannelPath = Arc<Vec<u32>>;

/// Per-flow sender + receiver state. The congestion-control fields are
/// public so external [`Transport`] implementations can drive them; the
/// routing/receiver plumbing stays crate-private.
pub struct Flow {
    pub(crate) src_server: u32,
    pub(crate) dst_server: u32,
    pub(crate) src_tor: NodeId,
    pub(crate) dst_tor: NodeId,
    pub(crate) size_bytes: u64,
    pub(crate) start_ns: Ns,
    /// Total data packets this flow must deliver.
    pub total_pkts: u32,
    // --- sender ---
    /// Next sequence number to send (go-back-N rewinds it).
    pub next_seq: u32,
    /// Cumulatively acknowledged packets.
    pub acked: u32,
    /// Congestion window in bytes.
    pub cwnd: f64,
    pub ssthresh: f64,
    /// DCTCP's EWMA of the marked fraction.
    pub alpha: f64,
    /// ECN-echoed ACKed packets in the current window (DCTCP α input).
    pub ecn_acked: u32,
    /// Lifetime count of ECN-marked ACKs (feedback for adaptive routing).
    pub(crate) ecn_total: u64,
    /// Packets ACKed in the current window (DCTCP α denominator).
    pub window_acked: u32,
    /// Sequence ending the current cwnd-update window.
    pub window_end: u32,
    pub cwnd_cut_this_window: bool,
    pub dupacks: u32,
    /// NewReno-style recovery: while `acked < recover`, no further window
    /// reductions from duplicate ACKs; partial ACKs retransmit the next
    /// hole immediately.
    pub in_recovery: bool,
    pub recover: u32,
    /// Smoothed RTT estimate in nanoseconds (0 before the first sample).
    pub srtt: f64,
    /// RTO backoff multiplier: doubles per timeout (capped at 64), reset
    /// to 1 by the first new ACK.
    pub rto_backoff: u32,
    pub(crate) rto_epoch: u32,
    // --- flowlets ---
    pub(crate) last_send_ns: Ns,
    pub(crate) flowlet_count: u64,
    pub(crate) cur_path: Option<ChannelPath>,
    pub(crate) in_window: bool,
    // --- faults ---
    /// Terminated by the simulator: endpoints permanently disconnected,
    /// or still unfinished when the run stopped. Mirrored in
    /// [`FlowRx::failed`] so the receiver shard never reads sender state.
    pub(crate) failed: bool,
    /// When this flow first lost a packet to an injected fault.
    pub(crate) fault_hit_ns: Option<Ns>,
    /// When it next made forward progress (new cumulative ACK) after that.
    pub(crate) recovery_ns: Option<Ns>,
    /// Folded into the flowlet hash; bumped on RTO so retransmissions
    /// explore different paths (sender-side reroute around failures).
    pub(crate) path_salt: u64,
}

impl Flow {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        src_server: u32,
        dst_server: u32,
        src_tor: NodeId,
        dst_tor: NodeId,
        size_bytes: u64,
        start_ns: Ns,
        total_pkts: u32,
        init_cwnd: f64,
        in_window: bool,
    ) -> Self {
        Flow {
            src_server,
            dst_server,
            src_tor,
            dst_tor,
            size_bytes,
            start_ns,
            total_pkts,
            next_seq: 0,
            acked: 0,
            cwnd: init_cwnd,
            ssthresh: f64::INFINITY,
            alpha: 0.0,
            ecn_acked: 0,
            ecn_total: 0,
            window_acked: 0,
            window_end: 0,
            cwnd_cut_this_window: false,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            srtt: 0.0,
            rto_backoff: 1,
            rto_epoch: 0,
            last_send_ns: 0,
            flowlet_count: 0,
            cur_path: None,
            in_window,
            failed: false,
            fault_hit_ns: None,
            recovery_ns: None,
            path_salt: 0,
        }
    }

    /// Sender-side view of the packets not yet cumulatively acked — the
    /// remaining size pFabric stamps as its scheduling priority and the
    /// trace layer reports in flow summaries.
    pub fn remaining_pkts(&self) -> u32 {
        self.total_pkts - self.acked
    }

    /// Whether the flow is live at `now`: started, not finished, not
    /// terminated — the population the telemetry sampler counts. Takes
    /// the flow's receiver half because completion is receiver state.
    pub(crate) fn is_active(&self, rx: &FlowRx, now: Ns) -> bool {
        !self.failed && rx.finished_ns.is_none() && self.start_ns <= now
    }

    /// Sender-side bytes sent but not yet cumulatively acked (payload
    /// only, capped at the flow size for the short final packet).
    pub fn inflight_bytes(&self, mss: u32) -> u64 {
        let sent = (self.next_seq as u64 * mss as u64).min(self.size_bytes);
        let acked = (self.acked as u64 * mss as u64).min(self.size_bytes);
        sent - acked
    }
}

/// The receiver half of a flow, split from [`Flow`] so the destination
/// host's shard owns it exclusively: under the parallel engine the
/// sender's shard mutates the [`Flow`] while the receiver's shard mutates
/// the `FlowRx`, and neither reads the other's half mid-epoch. Fields
/// both sides need (`failed`, `in_window`, timing) are mirrored at
/// construction or written only at barriers.
pub(crate) struct FlowRx {
    pub(crate) total_pkts: u32,
    pub(crate) dst_server: u32,
    pub(crate) start_ns: Ns,
    pub(crate) in_window: bool,
    /// Allocated lazily on the first data packet.
    pub(crate) rcv_bitmap: Vec<u64>,
    pub(crate) rcv_cum: u32,
    /// Cache: forward path pointer → its reversed channels, so per-packet
    /// ACKs reuse one allocation per flowlet.
    pub(crate) rev_cache: Option<(ChannelPath, ChannelPath)>,
    pub(crate) finished_ns: Option<Ns>,
    /// Barrier-written mirror of [`Flow::failed`].
    pub(crate) failed: bool,
}

impl FlowRx {
    pub(crate) fn new(flow: &Flow) -> Self {
        FlowRx {
            total_pkts: flow.total_pkts,
            dst_server: flow.dst_server,
            start_ns: flow.start_ns,
            in_window: flow.in_window,
            rcv_bitmap: Vec::new(),
            rcv_cum: 0,
            rev_cache: None,
            finished_ns: None,
            failed: false,
        }
    }

    /// Record `seq` and advance the cumulative-ACK point.
    pub(crate) fn rcv_mark(&mut self, seq: u32) {
        let (w, b) = ((seq / 64) as usize, seq % 64);
        self.rcv_bitmap[w] |= 1 << b;
        while self.rcv_cum < self.total_pkts {
            let (w, b) = ((self.rcv_cum / 64) as usize, self.rcv_cum % 64);
            if self.rcv_bitmap[w] & (1 << b) == 0 {
                break;
            }
            self.rcv_cum += 1;
        }
    }
}

/// What the engine must do after a [`Transport`] processed an ACK: all
/// event scheduling stays with the engine, transports only decide.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AckActions {
    /// Re-arm the retransmission timer.
    pub rearm_rto: bool,
    /// Retransmit this sequence immediately (fast retransmit or a
    /// partial-ACK hole).
    pub retransmit: Option<u32>,
    /// Try to send more data (the window may have opened).
    pub pump: bool,
}

/// Congestion control for the packet simulator — the host-layer seam.
///
/// One transport instance is shared by every flow in a simulation; all
/// per-flow numbers live in [`Flow`]. Implementations must be
/// deterministic functions of their inputs. The engine calls
/// [`Transport::on_ack`] for every arriving ACK (new or duplicate),
/// [`Transport::on_timeout`] when the RTO fires (the engine itself then
/// rewinds `next_seq`, re-salts the path, and backs the timer off — that
/// go-back-N machinery is transport-independent), and
/// [`Transport::on_send`]/[`Transport::priority`] when emitting data.
pub trait Transport: Send + Sync {
    fn name(&self) -> &'static str;

    /// Initial congestion window in bytes for a new flow.
    fn initial_cwnd(&self, cfg: &SimConfig) -> f64 {
        (cfg.init_cwnd_pkts * cfg.mss) as f64
    }

    /// Processes an arriving ACK carrying cumulative sequence `c` and ECN
    /// echo `ack_ecn`; `rtt_ns` is the measured sample for this ACK.
    fn on_ack(
        &self,
        f: &mut Flow,
        c: u32,
        ack_ecn: bool,
        rtt_ns: Ns,
        cfg: &SimConfig,
    ) -> AckActions;

    /// The RTO fired: apply the transport's window reaction. Sequence
    /// rewinding and timer backoff are the engine's job.
    fn on_timeout(&self, f: &mut Flow, cfg: &SimConfig);

    /// A data packet with sequence `seq` is about to leave the host
    /// (pacing/priority hook; default no-op).
    fn on_send(&self, _f: &mut Flow, _seq: u32, _cfg: &SimConfig) {}

    /// Priority stamped onto outgoing data packets (lower = more urgent).
    /// Only priority-aware queue disciplines look at it.
    fn priority(&self, _f: &Flow, _cfg: &SimConfig) -> u32 {
        0
    }
}

/// Builds the built-in transport for a [`TransportKind`].
pub fn transport_for(kind: TransportKind) -> Box<dyn Transport> {
    match kind {
        TransportKind::Dctcp => Box::new(Dctcp),
        TransportKind::NewReno => Box::new(NewReno),
        TransportKind::PFabric => Box::new(PFabric),
    }
}

/// The shared NewReno ACK machinery both [`Dctcp`] and [`NewReno`] use;
/// `ecn_echo` feeds DCTCP's α/window reaction and is always `false` for
/// plain NewReno.
fn reno_ack(f: &mut Flow, c: u32, ecn_echo: bool, rtt_ns: Ns, cfg: &SimConfig) -> AckActions {
    let mss = cfg.mss as f64;
    let mut act = AckActions::default();
    if c > f.acked {
        let newly = c - f.acked;
        f.acked = c;
        // An RTO may have rewound next_seq below what late ACKs cover.
        f.next_seq = f.next_seq.max(f.acked);
        f.dupacks = 0;
        let rtt = rtt_ns as f64;
        f.srtt = if f.srtt == 0.0 {
            rtt
        } else {
            0.875 * f.srtt + 0.125 * rtt
        };
        f.rto_backoff = 1;
        f.window_acked += newly;
        if ecn_echo {
            f.ecn_acked += newly;
        }
        if f.acked >= f.window_end {
            // DCTCP α update at window boundaries (α stays 0 without
            // ECN echoes, so NewReno is unaffected).
            if f.window_acked > 0 {
                let frac = f.ecn_acked as f64 / f.window_acked as f64;
                f.alpha = (1.0 - cfg.dctcp_g) * f.alpha + cfg.dctcp_g * frac;
            }
            f.ecn_acked = 0;
            f.window_acked = 0;
            f.window_end = f.next_seq.max(f.acked + 1);
            f.cwnd_cut_this_window = false;
        }
        if f.in_recovery {
            if f.acked >= f.recover {
                f.in_recovery = false;
            } else {
                // Partial ACK: retransmit the next hole right away.
                act.retransmit = Some(f.acked);
            }
        }
        if !f.in_recovery {
            if ecn_echo && !f.cwnd_cut_this_window {
                f.cwnd = (f.cwnd * (1.0 - f.alpha / 2.0)).max(mss);
                f.ssthresh = f.cwnd;
                f.cwnd_cut_this_window = true;
            } else if !ecn_echo {
                if f.cwnd < f.ssthresh {
                    f.cwnd += mss * newly as f64; // slow start
                } else {
                    f.cwnd += mss * mss / f.cwnd * newly as f64; // AI
                }
            }
        }
        if f.acked < f.total_pkts {
            act.rearm_rto = true;
            act.pump = true;
        } else {
            act.retransmit = None;
        }
    } else {
        f.dupacks += 1;
        if f.dupacks >= 3 && !f.in_recovery {
            // Fast retransmit: one window reduction per loss event.
            f.in_recovery = true;
            f.recover = f.next_seq;
            f.ssthresh = (f.cwnd / 2.0).max(2.0 * mss);
            f.cwnd = f.ssthresh;
            f.dupacks = 0;
            act.rearm_rto = true;
            act.retransmit = Some(f.acked);
        }
    }
    act
}

/// Go-back-N window collapse shared by the loss-based transports.
fn reno_timeout(f: &mut Flow, cfg: &SimConfig) {
    let mss = cfg.mss as f64;
    f.ssthresh = (f.cwnd / 2.0).max(2.0 * mss);
    f.cwnd = mss;
}

/// DCTCP (the paper's setting): NewReno recovery plus
/// ECN-fraction-proportional window cuts, one per window.
pub struct Dctcp;

impl Transport for Dctcp {
    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn on_ack(
        &self,
        f: &mut Flow,
        c: u32,
        ack_ecn: bool,
        rtt_ns: Ns,
        cfg: &SimConfig,
    ) -> AckActions {
        reno_ack(f, c, ack_ecn, rtt_ns, cfg)
    }

    fn on_timeout(&self, f: &mut Flow, cfg: &SimConfig) {
        reno_timeout(f, cfg);
    }
}

/// Loss-based NewReno baseline: ECN echoes are ignored entirely.
pub struct NewReno;

impl Transport for NewReno {
    fn name(&self) -> &'static str {
        "newreno"
    }

    fn on_ack(
        &self,
        f: &mut Flow,
        c: u32,
        _ack_ecn: bool,
        rtt_ns: Ns,
        cfg: &SimConfig,
    ) -> AckActions {
        reno_ack(f, c, false, rtt_ns, cfg)
    }

    fn on_timeout(&self, f: &mut Flow, cfg: &SimConfig) {
        reno_timeout(f, cfg);
    }
}

/// pFabric-style minimal transport (Alizadeh et al., SIGCOMM 2013): a
/// fixed near-BDP window ([`SimConfig::pfabric_cwnd_pkts`]), no AIMD and
/// no ECN reaction — the fabric's remaining-size-priority queues do the
/// scheduling. Loss recovery keeps the fast-retransmit/RTO machinery (no
/// window reduction) so holes are repaired promptly.
pub struct PFabric;

impl Transport for PFabric {
    fn name(&self) -> &'static str {
        "pfabric"
    }

    fn initial_cwnd(&self, cfg: &SimConfig) -> f64 {
        (cfg.pfabric_cwnd_pkts * cfg.mss) as f64
    }

    fn on_ack(
        &self,
        f: &mut Flow,
        c: u32,
        _ack_ecn: bool,
        rtt_ns: Ns,
        _cfg: &SimConfig,
    ) -> AckActions {
        let mut act = AckActions::default();
        if c > f.acked {
            f.acked = c;
            f.next_seq = f.next_seq.max(f.acked);
            f.dupacks = 0;
            let rtt = rtt_ns as f64;
            f.srtt = if f.srtt == 0.0 {
                rtt
            } else {
                0.875 * f.srtt + 0.125 * rtt
            };
            f.rto_backoff = 1;
            if f.in_recovery {
                if f.acked >= f.recover {
                    f.in_recovery = false;
                } else {
                    act.retransmit = Some(f.acked);
                }
            }
            if f.acked < f.total_pkts {
                act.rearm_rto = true;
                act.pump = true;
            } else {
                act.retransmit = None;
            }
        } else {
            f.dupacks += 1;
            if f.dupacks >= 3 && !f.in_recovery {
                f.in_recovery = true;
                f.recover = f.next_seq;
                f.dupacks = 0;
                act.rearm_rto = true;
                act.retransmit = Some(f.acked);
            }
        }
        act
    }

    fn on_timeout(&self, _f: &mut Flow, _cfg: &SimConfig) {
        // The window never adapts; the engine's go-back-N rewind and
        // timer backoff are the whole reaction.
    }

    fn priority(&self, f: &Flow, _cfg: &SimConfig) -> u32 {
        // Remaining flow size in packets — pFabric's ideal priority.
        f.remaining_pkts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_flow(total: u32) -> Flow {
        let cfg = SimConfig::default();
        Flow::new(
            0,
            1,
            0,
            1,
            total as u64 * cfg.mss as u64,
            0,
            total,
            Dctcp.initial_cwnd(&cfg),
            true,
        )
    }

    #[test]
    fn new_ack_advances_and_grows_slow_start() {
        let cfg = SimConfig::default();
        let mut f = test_flow(100);
        f.next_seq = 10;
        f.window_end = 1;
        let cwnd0 = f.cwnd;
        let act = Dctcp.on_ack(&mut f, 4, false, 10_000, &cfg);
        assert_eq!(f.acked, 4);
        assert!(f.cwnd > cwnd0, "slow start must grow the window");
        assert_eq!(f.srtt, 10_000.0);
        assert_eq!(
            act,
            AckActions {
                rearm_rto: true,
                retransmit: None,
                pump: true
            }
        );
    }

    #[test]
    fn dctcp_cuts_once_per_window_proportionally() {
        let cfg = SimConfig::default();
        let mut f = test_flow(1000);
        f.next_seq = 20;
        f.window_end = 1;
        f.alpha = 1.0; // pretend everything was marked
        let cwnd0 = f.cwnd;
        Dctcp.on_ack(&mut f, 1, true, 10_000, &cfg);
        assert!(f.cwnd_cut_this_window);
        assert!((f.cwnd - cwnd0 / 2.0).abs() < 1e-9, "α=1 halves the window");
        let cwnd1 = f.cwnd;
        Dctcp.on_ack(&mut f, 2, true, 10_000, &cfg);
        assert_eq!(f.cwnd, cwnd1, "only one cut per window");
    }

    #[test]
    fn newreno_ignores_ecn_echo() {
        let cfg = SimConfig::default();
        let mut f = test_flow(1000);
        f.next_seq = 20;
        f.window_end = 1;
        f.alpha = 1.0;
        let cwnd0 = f.cwnd;
        NewReno.on_ack(&mut f, 1, true, 10_000, &cfg);
        assert!(f.cwnd > cwnd0, "NewReno must keep growing through marks");
        assert!(!f.cwnd_cut_this_window);
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit_once() {
        let cfg = SimConfig::default();
        let mut f = test_flow(100);
        f.acked = 5;
        f.next_seq = 20;
        f.cwnd = 20.0 * cfg.mss as f64;
        for _ in 0..2 {
            let act = Dctcp.on_ack(&mut f, 5, false, 10_000, &cfg);
            assert_eq!(act, AckActions::default());
        }
        let act = Dctcp.on_ack(&mut f, 5, false, 10_000, &cfg);
        assert_eq!(act.retransmit, Some(5));
        assert!(act.rearm_rto && !act.pump);
        assert!(f.in_recovery);
        assert_eq!(f.recover, 20);
        assert_eq!(f.cwnd, 10.0 * cfg.mss as f64, "halved on fast retransmit");
        // Further dupacks inside recovery change nothing.
        for _ in 0..5 {
            assert_eq!(
                Dctcp.on_ack(&mut f, 5, false, 10_000, &cfg),
                AckActions::default()
            );
        }
        assert_eq!(f.cwnd, 10.0 * cfg.mss as f64);
    }

    #[test]
    fn partial_ack_retransmits_next_hole() {
        let cfg = SimConfig::default();
        let mut f = test_flow(100);
        f.acked = 5;
        f.next_seq = 20;
        f.in_recovery = true;
        f.recover = 20;
        f.window_end = 50;
        let act = NewReno.on_ack(&mut f, 10, false, 10_000, &cfg);
        assert!(f.in_recovery, "partial ACK stays in recovery");
        assert_eq!(act.retransmit, Some(10));
        let act = NewReno.on_ack(&mut f, 20, false, 10_000, &cfg);
        assert!(!f.in_recovery, "full ACK exits recovery");
        assert_eq!(act.retransmit, None);
    }

    #[test]
    fn reno_timeout_collapses_window() {
        let cfg = SimConfig::default();
        let mut f = test_flow(100);
        f.cwnd = 30.0 * cfg.mss as f64;
        Dctcp.on_timeout(&mut f, &cfg);
        assert_eq!(f.cwnd, cfg.mss as f64);
        assert_eq!(f.ssthresh, 15.0 * cfg.mss as f64);
    }

    #[test]
    fn pfabric_window_is_fixed() {
        let cfg = SimConfig::default().with_pfabric();
        let mut f = test_flow(100);
        f.cwnd = PFabric.initial_cwnd(&cfg);
        let fixed = (cfg.pfabric_cwnd_pkts * cfg.mss) as f64;
        assert_eq!(f.cwnd, fixed);
        f.next_seq = 10;
        PFabric.on_ack(&mut f, 5, true, 10_000, &cfg);
        assert_eq!(f.cwnd, fixed, "ACKs must not grow the window");
        PFabric.on_timeout(&mut f, &cfg);
        assert_eq!(f.cwnd, fixed, "timeouts must not shrink the window");
    }

    #[test]
    fn pfabric_priority_is_remaining_size() {
        let cfg = SimConfig::default().with_pfabric();
        let mut f = test_flow(40);
        assert_eq!(PFabric.priority(&f, &cfg), 40);
        f.acked = 25;
        assert_eq!(f.remaining_pkts(), 15);
        assert_eq!(PFabric.priority(&f, &cfg), 15);
        assert_eq!(Dctcp.priority(&f, &cfg), 0, "FIFO transports don't rank");
    }

    #[test]
    fn transport_factory_names() {
        assert_eq!(transport_for(TransportKind::Dctcp).name(), "dctcp");
        assert_eq!(transport_for(TransportKind::NewReno).name(), "newreno");
        assert_eq!(transport_for(TransportKind::PFabric).name(), "pfabric");
    }
}
