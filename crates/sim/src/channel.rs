//! Directed channels: an output queue plus a serializing transmitter.
//!
//! Every undirected topology link is two channels; every server has an
//! up-channel (server→ToR) and a down-channel (ToR→server). Channels drop
//! from the tail when full and mark ECN (CE) on enqueue when the queue
//! already holds at least K packets' worth of bytes — DCTCP marking.

use crate::types::{Ns, Packet};
use std::collections::VecDeque;

/// One directed channel.
#[derive(Debug)]
pub struct Channel {
    /// Node (switch or server, in the simulator's global id space) that
    /// packets leaving this channel arrive at.
    pub to_node: u32,
    /// Bytes per nanosecond.
    pub rate_bpns: f64,
    pub prop_ns: Ns,
    queue: VecDeque<Box<Packet>>,
    queue_bytes: u64,
    cap_bytes: u64,
    ecn_threshold_bytes: u64,
    /// A packet is currently being serialized.
    pub busy: bool,
    /// Drop counter (congestion tail drops), for stats and tests.
    pub drops: u64,
    /// ECN marks applied.
    pub marks: u64,
    /// Fault state: a hard-failed channel delivers nothing. The simulator
    /// flips this (never the channel itself) and drops packets at the
    /// offer and delivery points, so queued packets drain onto the dead
    /// wire and are lost — "in-flight packets are lost on failure".
    pub up: bool,
    /// Gray-failure per-packet drop probability (0.0 = healthy). The
    /// simulator draws from its seeded RNG; the channel just holds state.
    pub loss_prob: f64,
    /// Packets lost to hard or gray faults on this channel.
    pub fault_drops: u64,
}

/// Result of offering a packet to a channel.
#[derive(Debug, PartialEq, Eq)]
pub enum Offer {
    /// Channel idle: caller must schedule TxFree(now + ser) and
    /// Deliver(now + ser + prop).
    StartTx,
    /// Queued behind the current transmission.
    Queued,
    /// Tail-dropped.
    Dropped,
}

impl Channel {
    pub fn new(to_node: u32, gbps: f64, prop_ns: Ns, cap_bytes: u64, ecn_bytes: u64) -> Self {
        Channel {
            to_node,
            rate_bpns: gbps / 8.0,
            prop_ns,
            queue: VecDeque::new(),
            queue_bytes: 0,
            cap_bytes,
            ecn_threshold_bytes: ecn_bytes,
            busy: false,
            drops: 0,
            marks: 0,
            up: true,
            loss_prob: 0.0,
            fault_drops: 0,
        }
    }

    /// Serialization time for `bytes` on this channel.
    pub fn ser_ns(&self, bytes: u32) -> Ns {
        (bytes as f64 / self.rate_bpns).ceil() as Ns
    }

    /// Offers a packet. On `StartTx` the packet is handed back to the
    /// caller (it owns the in-flight transmission); on `Queued` the channel
    /// keeps it; on `Dropped` it is gone.
    pub fn offer(&mut self, mut pkt: Box<Packet>) -> (Offer, Option<Box<Packet>>) {
        if !self.busy {
            self.busy = true;
            return (Offer::StartTx, Some(pkt));
        }
        if self.queue_bytes + pkt.bytes as u64 > self.cap_bytes {
            self.drops += 1;
            return (Offer::Dropped, None);
        }
        // DCTCP: mark on enqueue when the instantaneous queue exceeds K.
        if self.queue_bytes >= self.ecn_threshold_bytes && !pkt.is_ack {
            pkt.ecn_ce = true;
            self.marks += 1;
        }
        self.queue_bytes += pkt.bytes as u64;
        self.queue.push_back(pkt);
        (Offer::Queued, None)
    }

    /// Called when the in-flight transmission completes; returns the next
    /// packet to transmit, if any (caller schedules its TxFree/Deliver).
    pub fn tx_done(&mut self) -> Option<Box<Packet>> {
        debug_assert!(self.busy);
        match self.queue.pop_front() {
            Some(pkt) => {
                self.queue_bytes -= pkt.bytes as u64;
                Some(pkt)
            }
            None => {
                self.busy = false;
                None
            }
        }
    }

    pub fn queue_bytes(&self) -> u64 {
        self.queue_bytes
    }

    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pkt(bytes: u32) -> Box<Packet> {
        Box::new(Packet {
            flow: 0,
            seq: 0,
            bytes,
            ecn_ce: false,
            is_ack: false,
            ack_ecn: false,
            ts: 0,
            hop: 0,
            path: Arc::new(vec![]),
        })
    }

    fn chan() -> Channel {
        // 10 Gbps, 100ns prop, 10-packet queue, ECN at 3 packets.
        Channel::new(1, 10.0, 100, 10 * 1500, 3 * 1500)
    }

    #[test]
    fn idle_channel_starts_tx() {
        let mut c = chan();
        let (o, p) = c.offer(pkt(1500));
        assert_eq!(o, Offer::StartTx);
        assert!(p.is_some());
        assert!(c.busy);
    }

    #[test]
    fn busy_channel_queues_then_drains_fifo() {
        let mut c = chan();
        c.offer(pkt(1500));
        let mut q1 = pkt(100);
        q1.seq = 1;
        let mut q2 = pkt(100);
        q2.seq = 2;
        assert_eq!(c.offer(q1).0, Offer::Queued);
        assert_eq!(c.offer(q2).0, Offer::Queued);
        assert_eq!(c.queue_len(), 2);
        let n1 = c.tx_done().unwrap();
        assert_eq!(n1.seq, 1);
        let n2 = c.tx_done().unwrap();
        assert_eq!(n2.seq, 2);
        assert!(c.tx_done().is_none());
        assert!(!c.busy);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut c = chan();
        c.offer(pkt(1500)); // in flight
        for _ in 0..10 {
            assert_eq!(c.offer(pkt(1500)).0, Offer::Queued);
        }
        assert_eq!(c.offer(pkt(1500)).0, Offer::Dropped);
        assert_eq!(c.drops, 1);
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut c = chan();
        c.offer(pkt(1500)); // in flight, queue empty
        c.offer(pkt(1500)); // queue -> 1500
        c.offer(pkt(1500)); // queue -> 3000
        c.offer(pkt(1500)); // queue -> 4500 (enqueued at 3000 < 4500 thresh)
        assert_eq!(c.marks, 0);
        c.offer(pkt(1500)); // enqueued seeing 4500 >= 4500 → marked
        assert_eq!(c.marks, 1);
        // Drain: the marked packet is the last one.
        c.tx_done();
        c.tx_done();
        c.tx_done();
        let marked = c.tx_done().unwrap();
        assert!(marked.ecn_ce);
    }

    #[test]
    fn acks_never_marked() {
        let mut c = chan();
        c.offer(pkt(1500)); // in flight
        for _ in 0..3 {
            c.offer(pkt(1500)); // queue reaches exactly the 4500 B threshold
        }
        assert_eq!(c.marks, 0);
        let mut ack = pkt(40);
        ack.is_ack = true;
        c.offer(ack); // sees queue ≥ threshold but is an ACK
        assert_eq!(c.marks, 0);
        c.offer(pkt(1500)); // a data packet here *is* marked
        assert_eq!(c.marks, 1);
    }

    #[test]
    fn serialization_uses_channel_rate() {
        let c = Channel::new(0, 40.0, 0, 1, 1);
        assert_eq!(c.ser_ns(1500), 300); // 4x faster than 10G
    }
}
