//! Directed channels: pluggable output queues plus serializing
//! transmitters, stored struct-of-arrays.
//!
//! Every undirected topology link is two channels; every server has an
//! up-channel (server→ToR) and a down-channel (ToR→server). *How* packets
//! queue — tail-drop FIFO with ECN marking, pFabric strict priority, … —
//! is the owned [`QueueDiscipline`]'s decision (see [`crate::switch`]);
//! the channel layer itself only models the transmitter, the wire, and
//! the fault state.
//!
//! [`Channels`] keeps the immutable per-channel fields (endpoints, rates,
//! precomputed serialization times) in dense `Vec`s indexed by channel
//! id, and the mutable transmitter state in one [`ChanDyn`] record per
//! channel behind an `UnsafeCell`. The cells are what lets the parallel
//! engine share the whole table across shard workers by `&Channels`:
//!
//! - **Owner-exclusive fields** (`busy`, `qlen`, the drop/mark counters,
//!   `gray_ctr`, the queue discipline) are only ever touched by the
//!   worker that owns the channel's *source node* shard during an epoch,
//!   and by the coordinator between epochs.
//! - **Barrier fields** (`up`, `loss_prob`) are written only by the
//!   coordinator between epochs (fault firing) and read by any worker
//!   during epochs (the arrival-side dead-wire check).
//!
//! All cell access is field-granular — methods never materialize a
//! `&mut ChanDyn` — so a cross-shard `up` read and an owner-side `busy`
//! write touch disjoint bytes and the epoch-barrier Release/Acquire
//! pairs order everything else. The serialization-time cache for the two
//! wire sizes that dominate every run (full MTU data packets and ACKs)
//! removes the float divide from the common case, exactly as before.

use std::cell::UnsafeCell;

use crate::slab::{PacketArena, PktId};
use crate::switch::{EnqueueOutcome, QueueDiscipline};
use crate::types::{Ns, Packet};

/// Result of offering a packet to a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Offer {
    /// Channel idle: caller must schedule TxFree(now + ser) and
    /// Deliver(now + ser + prop).
    StartTx,
    /// Queued behind the current transmission.
    Queued,
    /// The offered packet was dropped by the queue discipline (and its
    /// arena slot freed).
    Dropped,
}

/// The mutable half of one channel. See the module docs for which fields
/// the owning shard touches and which the coordinator owns.
pub(crate) struct ChanDyn {
    /// A packet is currently being serialized.
    pub(crate) busy: bool,
    /// Fault state: a hard-failed channel delivers nothing. The simulator
    /// flips this at barriers (never the channel layer itself) and drops
    /// packets at the offer and delivery points, so queued packets drain
    /// onto the dead wire and are lost — "in-flight packets are lost on
    /// failure".
    pub(crate) up: bool,
    /// Gray-failure per-packet drop probability (0.0 = healthy), written
    /// at barriers.
    pub(crate) loss_prob: f64,
    /// Cached `disc.queue_len()`, so the per-event path can check for an
    /// empty queue without dereferencing the discipline's `Box<dyn>`.
    pub(crate) qlen: u32,
    /// Congestion drops (tail or priority-evicted), for stats and tests.
    pub(crate) drops: u64,
    /// ECN marks applied.
    pub(crate) marks: u64,
    /// Packets lost to hard or gray faults on the channel.
    pub(crate) fault_drops: u64,
    /// Queued packets evicted by the discipline to admit more urgent
    /// ones — a subset of `drops`, split out so drops can be reported by
    /// cause.
    pub(crate) evictions: u64,
    /// Gray-loss draw counter: each offered packet on a lossy channel
    /// bumps it, and the (seed, channel, counter) hash decides the drop —
    /// deterministic whatever order channels are drained across shards.
    pub(crate) gray_ctr: u64,
    /// The output queue feeding the transmitter.
    pub(crate) disc: Box<dyn QueueDiscipline>,
}

/// All directed channels of a fabric: dense static `Vec`s plus one
/// [`ChanDyn`] cell per channel.
pub struct Channels {
    /// Node (switch or server, in the simulator's global id space) that
    /// packets *leaving* the channel arrive at.
    pub(crate) to_node: Vec<u32>,
    /// Node whose egress the channel is — the shard that owns the
    /// channel's transmitter state.
    pub(crate) src_node: Vec<u32>,
    /// Bytes per nanosecond.
    pub(crate) rate_bpns: Vec<f64>,
    pub(crate) prop_ns: Vec<Ns>,
    /// Precomputed [`Channels::ser_ns`] for a full-MTU packet.
    ser_mtu_ns: Vec<Ns>,
    /// Precomputed [`Channels::ser_ns`] for an ACK.
    ser_ack_ns: Vec<Ns>,
    state: Vec<UnsafeCell<ChanDyn>>,
    mtu_bytes: u32,
    ack_bytes: u32,
}

// Safety: shared access follows the shard protocol in the module docs —
// owner-exclusive fields are only touched by one thread per epoch,
// barrier fields only between epochs, and the engine's EpochSync
// atomics provide the Release/Acquire ordering between the two phases.
unsafe impl Sync for Channels {}

impl Channels {
    /// An empty table; `mtu_bytes`/`ack_bytes` are the two wire sizes the
    /// serialization-time cache covers.
    pub(crate) fn new(mtu_bytes: u32, ack_bytes: u32) -> Self {
        Channels {
            to_node: Vec::new(),
            src_node: Vec::new(),
            rate_bpns: Vec::new(),
            prop_ns: Vec::new(),
            ser_mtu_ns: Vec::new(),
            ser_ack_ns: Vec::new(),
            state: Vec::new(),
            mtu_bytes,
            ack_bytes,
        }
    }

    /// Appends one channel and returns its id.
    pub(crate) fn push(
        &mut self,
        src_node: u32,
        to_node: u32,
        gbps: f64,
        prop_ns: Ns,
        disc: Box<dyn QueueDiscipline>,
    ) -> u32 {
        let id = self.to_node.len() as u32;
        let rate_bpns = gbps / 8.0;
        self.to_node.push(to_node);
        self.src_node.push(src_node);
        self.rate_bpns.push(rate_bpns);
        self.prop_ns.push(prop_ns);
        self.ser_mtu_ns
            .push((self.mtu_bytes as f64 / rate_bpns).ceil() as Ns);
        self.ser_ack_ns
            .push((self.ack_bytes as f64 / rate_bpns).ceil() as Ns);
        self.state.push(UnsafeCell::new(ChanDyn {
            busy: false,
            up: true,
            loss_prob: 0.0,
            qlen: 0,
            drops: 0,
            marks: 0,
            fault_drops: 0,
            evictions: 0,
            gray_ctr: 0,
            disc,
        }));
        id
    }

    pub(crate) fn len(&self) -> usize {
        self.to_node.len()
    }

    #[inline]
    fn d(&self, ch: u32) -> *mut ChanDyn {
        self.state[ch as usize].get()
    }

    /// Full mutable access to one channel's dynamic state — for
    /// single-threaded contexts that hold `&mut Channels` (setup,
    /// checkpoint restore, tests).
    pub(crate) fn dyn_mut(&mut self, ch: u32) -> &mut ChanDyn {
        self.state[ch as usize].get_mut()
    }

    // --- barrier fields: coordinator writes between epochs, anyone reads ---

    #[inline]
    pub(crate) fn up(&self, ch: u32) -> bool {
        unsafe { (*self.d(ch)).up }
    }

    /// Coordinator-only (fault firing at barriers).
    pub(crate) fn set_up(&self, ch: u32, up: bool) {
        unsafe { (*self.d(ch)).up = up }
    }

    #[inline]
    pub(crate) fn loss_prob(&self, ch: u32) -> f64 {
        unsafe { (*self.d(ch)).loss_prob }
    }

    /// Coordinator-only (fault firing at barriers).
    pub(crate) fn set_loss_prob(&self, ch: u32, p: f64) {
        unsafe { (*self.d(ch)).loss_prob = p }
    }

    // --- owner-exclusive fields: one thread per epoch per channel ---

    pub(crate) fn busy(&self, ch: u32) -> bool {
        unsafe { (*self.d(ch)).busy }
    }

    pub(crate) fn drops(&self, ch: u32) -> u64 {
        unsafe { (*self.d(ch)).drops }
    }

    pub(crate) fn marks(&self, ch: u32) -> u64 {
        unsafe { (*self.d(ch)).marks }
    }

    pub(crate) fn evictions(&self, ch: u32) -> u64 {
        unsafe { (*self.d(ch)).evictions }
    }

    pub(crate) fn fault_drops(&self, ch: u32) -> u64 {
        unsafe { (*self.d(ch)).fault_drops }
    }

    /// Owner-side fault-drop accounting (offer-point drops). Arrival-side
    /// drops on channels owned by other shards go through the engine's
    /// deferred `remote_fault_drops` lists instead.
    pub(crate) fn add_fault_drop(&self, ch: u32) {
        unsafe { (*self.d(ch)).fault_drops += 1 }
    }

    /// The gray-loss draw counter, read between epochs (checkpointing).
    pub(crate) fn gray_ctr(&self, ch: u32) -> u64 {
        unsafe { (*self.d(ch)).gray_ctr }
    }

    /// Bumps and returns the channel's gray-loss draw counter
    /// (owner-side, at the offer point).
    pub(crate) fn gray_bump(&self, ch: u32) -> u64 {
        unsafe {
            let p = self.d(ch);
            (*p).gray_ctr += 1;
            (*p).gray_ctr
        }
    }

    /// Serialization time for `bytes` on channel `ch`. MTU-sized packets
    /// and ACKs hit the precomputed cache; odd sizes (a flow's final
    /// packet) fall back to the same float expression the cache was
    /// filled from, so timing is bit-identical either way.
    #[inline]
    pub(crate) fn ser_ns(&self, ch: u32, bytes: u32) -> Ns {
        if bytes == self.mtu_bytes {
            self.ser_mtu_ns[ch as usize]
        } else if bytes == self.ack_bytes {
            self.ser_ack_ns[ch as usize]
        } else {
            (bytes as f64 / self.rate_bpns[ch as usize]).ceil() as Ns
        }
    }

    /// The conservative-parallel lookahead contribution of the slowest
    /// part of this table: the minimum over channels of serialization
    /// time for `min_wire_bytes` plus propagation delay. Any packet a
    /// shard emits at time `t` arrives somewhere else no earlier than
    /// `t + lookahead`, which is what lets an epoch safely run to
    /// `min_t + lookahead`.
    pub(crate) fn min_latency_ns(&self, min_wire_bytes: u32) -> Ns {
        (0..self.len())
            .map(|i| {
                let ser = (min_wire_bytes as f64 / self.rate_bpns[i]).ceil() as Ns;
                ser.max(1) + self.prop_ns[i]
            })
            .min()
            .unwrap_or(1)
            .max(1)
    }

    /// Offers packet `id` to channel `ch`. On [`Offer::StartTx`] the
    /// caller owns the in-flight transmission (the id stays live); on
    /// [`Offer::Queued`] the discipline holds it (possibly evicting less
    /// urgent packets — those count into `drops` and are freed); on
    /// [`Offer::Dropped`] the id has been freed. The returned
    /// [`EnqueueOutcome`] carries the mark flag and eviction victims for
    /// the observability layer. Owner-exclusive.
    pub(crate) fn offer(
        &self,
        ch: u32,
        id: PktId,
        pool: &mut PacketArena,
    ) -> (Offer, EnqueueOutcome) {
        let d = self.d(ch);
        unsafe {
            if !(*d).busy {
                (*d).busy = true;
                let out = EnqueueOutcome {
                    accepted: true,
                    ..Default::default()
                };
                return (Offer::StartTx, out);
            }
            let out = (*d).disc.enqueue(id, pool);
            (*d).qlen = (*d).qlen + out.accepted as u32 - out.evicted.len() as u32;
            (*d).drops += out.dropped as u64;
            (*d).evictions += out.evicted.len() as u64;
            if out.marked {
                (*d).marks += 1;
            }
            if out.accepted {
                (Offer::Queued, out)
            } else {
                pool.free(id);
                (Offer::Dropped, out)
            }
        }
    }

    /// Called when channel `ch`'s in-flight transmission completes;
    /// returns the next packet to transmit, if any (caller schedules its
    /// TxFree/Deliver). Owner-exclusive.
    pub(crate) fn tx_done(&self, ch: u32) -> Option<PktId> {
        let d = self.d(ch);
        unsafe {
            debug_assert!((*d).busy);
            if (*d).qlen == 0 {
                (*d).busy = false;
                return None;
            }
            (*d).qlen -= 1;
            let id = (*d).disc.dequeue();
            debug_assert!(id.is_some(), "qlen said non-empty but dequeue had nothing");
            id
        }
    }

    /// Owner-exclusive (or coordinator between epochs).
    pub(crate) fn queue_bytes(&self, ch: u32) -> u64 {
        unsafe { (*self.d(ch)).disc.queue_bytes() }
    }

    /// Owner-exclusive (or coordinator between epochs).
    pub(crate) fn queue_len(&self, ch: u32) -> usize {
        unsafe {
            let d = self.d(ch);
            debug_assert_eq!((*d).qlen as usize, (*d).disc.queue_len());
            (*d).qlen as usize
        }
    }

    /// Snapshot of the channel's queued packets for checkpointing
    /// (coordinator-only, at a barrier).
    pub(crate) fn snapshot_queue(&self, ch: u32, pool: &PacketArena) -> Option<Vec<Packet>> {
        unsafe { (*self.d(ch)).disc.snapshot_queue(pool) }
    }

    /// Reinstates a checkpointed queue on channel `ch`, keeping the dense
    /// length cache in sync with the discipline.
    pub(crate) fn restore_queue(&mut self, ch: u32, pkts: Vec<Packet>, pool: &mut PacketArena) {
        let d = self.dyn_mut(ch);
        d.qlen = pkts.len() as u32;
        d.disc.restore_queue(pkts, pool);
    }

    // --- coordinator-only whole-table sums (stats, between epochs) ---

    pub(crate) fn sum_drops(&self) -> u64 {
        (0..self.len() as u32).map(|c| self.drops(c)).sum()
    }

    pub(crate) fn sum_evictions(&self) -> u64 {
        (0..self.len() as u32).map(|c| self.evictions(c)).sum()
    }

    pub(crate) fn sum_fault_drops(&self) -> u64 {
        (0..self.len() as u32).map(|c| self.fault_drops(c)).sum()
    }

    pub(crate) fn sum_marks(&self) -> u64 {
        (0..self.len() as u32).map(|c| self.marks(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::TailDropEcn;
    use crate::types::Packet;
    use std::sync::Arc;

    fn pkt(a: &mut PacketArena, bytes: u32) -> PktId {
        a.alloc(Packet {
            flow: 0,
            seq: 0,
            bytes,
            ecn_ce: false,
            is_ack: false,
            ack_ecn: false,
            ts: 0,
            hop: 0,
            prio: 0,
            path: Arc::new(vec![]),
        })
    }

    fn chan() -> Channels {
        // 10 Gbps, 100ns prop, 10-packet queue, ECN at 3 packets.
        let mut c = Channels::new(1500, 40);
        c.push(
            0,
            1,
            10.0,
            100,
            Box::new(TailDropEcn::new(10 * 1500, 3 * 1500)),
        );
        c
    }

    #[test]
    fn idle_channel_starts_tx() {
        let mut a = PacketArena::new();
        let c = chan();
        let p = pkt(&mut a, 1500);
        let (o, _) = c.offer(0, p, &mut a);
        assert_eq!(o, Offer::StartTx);
        assert!(c.busy(0));
        assert_eq!(a.live_count(), 1, "StartTx leaves the id live");
    }

    #[test]
    fn busy_channel_queues_then_drains_fifo() {
        let mut a = PacketArena::new();
        let c = chan();
        let head = pkt(&mut a, 1500);
        c.offer(0, head, &mut a);
        let q1 = pkt(&mut a, 100);
        a.get_mut(q1).seq = 1;
        let q2 = pkt(&mut a, 100);
        a.get_mut(q2).seq = 2;
        assert_eq!(c.offer(0, q1, &mut a).0, Offer::Queued);
        assert_eq!(c.offer(0, q2, &mut a).0, Offer::Queued);
        assert_eq!(c.queue_len(0), 2);
        let n1 = c.tx_done(0).unwrap();
        assert_eq!(a.get(n1).seq, 1);
        let n2 = c.tx_done(0).unwrap();
        assert_eq!(a.get(n2).seq, 2);
        assert!(c.tx_done(0).is_none());
        assert!(!c.busy(0));
    }

    #[test]
    fn tail_drop_when_full_frees_the_id() {
        let mut a = PacketArena::new();
        let c = chan();
        c.offer(0, pkt(&mut a, 1500), &mut a); // in flight
        for _ in 0..10 {
            let p = pkt(&mut a, 1500);
            assert_eq!(c.offer(0, p, &mut a).0, Offer::Queued);
        }
        let live = a.live_count();
        let p = pkt(&mut a, 1500);
        assert_eq!(c.offer(0, p, &mut a).0, Offer::Dropped);
        assert_eq!(c.drops(0), 1);
        assert_eq!(a.live_count(), live, "dropped packet must be freed");
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut a = PacketArena::new();
        let c = chan();
        c.offer(0, pkt(&mut a, 1500), &mut a); // in flight, queue empty
        c.offer(0, pkt(&mut a, 1500), &mut a); // queue -> 1500
        c.offer(0, pkt(&mut a, 1500), &mut a); // queue -> 3000
        c.offer(0, pkt(&mut a, 1500), &mut a); // queue -> 4500 (at 3000 < 4500 thresh)
        assert_eq!(c.marks(0), 0);
        c.offer(0, pkt(&mut a, 1500), &mut a); // enqueued seeing 4500 >= 4500 → marked
        assert_eq!(c.marks(0), 1);
        // Drain: the marked packet is the last one.
        c.tx_done(0);
        c.tx_done(0);
        c.tx_done(0);
        let marked = c.tx_done(0).unwrap();
        assert!(a.get(marked).ecn_ce);
    }

    #[test]
    fn acks_never_marked() {
        let mut a = PacketArena::new();
        let c = chan();
        c.offer(0, pkt(&mut a, 1500), &mut a); // in flight
        for _ in 0..3 {
            c.offer(0, pkt(&mut a, 1500), &mut a); // queue reaches the 4500 B threshold
        }
        assert_eq!(c.marks(0), 0);
        let ack = pkt(&mut a, 40);
        a.get_mut(ack).is_ack = true;
        c.offer(0, ack, &mut a); // sees queue ≥ threshold but is an ACK
        assert_eq!(c.marks(0), 0);
        c.offer(0, pkt(&mut a, 1500), &mut a); // a data packet here *is* marked
        assert_eq!(c.marks(0), 1);
    }

    #[test]
    fn serialization_uses_channel_rate_and_cache() {
        let mut c = Channels::new(1500, 40);
        c.push(1, 0, 40.0, 0, Box::new(TailDropEcn::new(1, 1)));
        assert_eq!(c.ser_ns(0, 1500), 300); // cached MTU path, 4x faster than 10G
        assert_eq!(c.ser_ns(0, 40), 8); // cached ACK path
        assert_eq!(c.ser_ns(0, 777), 156); // uncached fallback: ceil(777/5)
    }

    #[test]
    fn min_latency_covers_every_channel() {
        let mut c = Channels::new(1500, 40);
        c.push(0, 1, 10.0, 100, Box::new(TailDropEcn::new(1, 1)));
        c.push(1, 0, 40.0, 30, Box::new(TailDropEcn::new(1, 1)));
        // 40 B: ch0 = ceil(40/1.25)=32 + 100; ch1 = ceil(40/5)=8 + 30.
        assert_eq!(c.min_latency_ns(40), 38);
        // Empty tables still yield a positive lookahead.
        assert_eq!(Channels::new(1500, 40).min_latency_ns(40), 1);
    }

    #[test]
    fn eviction_counts_as_channel_drop() {
        use crate::switch::PFabricQueue;
        let mut a = PacketArena::new();
        let mut c = Channels::new(1500, 40);
        c.push(0, 1, 10.0, 100, Box::new(PFabricQueue::new(2 * 1500)));
        c.offer(0, pkt(&mut a, 1500), &mut a); // in flight
        let low = pkt(&mut a, 1500);
        a.get_mut(low).prio = 9;
        c.offer(0, low, &mut a);
        c.offer(0, pkt(&mut a, 1500), &mut a);
        let urgent = pkt(&mut a, 1500);
        a.get_mut(urgent).prio = 1;
        a.get_mut(urgent).seq = 7;
        let live = a.live_count();
        let (o, out) = c.offer(0, urgent, &mut a);
        assert_eq!(o, Offer::Queued, "urgent packet must win");
        assert_eq!(c.drops(0), 1, "the prio-9 victim is a congestion drop");
        assert_eq!(c.evictions(0), 1, "and is attributed to eviction");
        assert_eq!(out.evicted.len(), 1);
        assert_eq!(a.live_count(), live - 1, "the victim's id must be freed");
    }
}
