//! Directed channels: pluggable output queues plus serializing
//! transmitters, stored struct-of-arrays.
//!
//! Every undirected topology link is two channels; every server has an
//! up-channel (server→ToR) and a down-channel (ToR→server). *How* packets
//! queue — tail-drop FIFO with ECN marking, pFabric strict priority, … —
//! is the owned [`QueueDiscipline`]'s decision (see [`crate::switch`]);
//! the channel layer itself only models the transmitter, the wire, and
//! the fault state.
//!
//! [`Channels`] keeps each per-channel field in its own dense `Vec`
//! indexed by channel id, so the hot path (up/loss check → offer →
//! serialize) touches a handful of contiguous words instead of pulling a
//! whole per-channel struct through the cache. Serialization times for
//! the two wire sizes that dominate every run (full MTU data packets and
//! ACKs) are precomputed per channel, removing the float divide from the
//! common case.

use crate::slab::{PacketArena, PktId};
use crate::switch::{EnqueueOutcome, QueueDiscipline};
use crate::types::Ns;

/// Result of offering a packet to a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Offer {
    /// Channel idle: caller must schedule TxFree(now + ser) and
    /// Deliver(now + ser + prop).
    StartTx,
    /// Queued behind the current transmission.
    Queued,
    /// The offered packet was dropped by the queue discipline (and its
    /// arena slot freed).
    Dropped,
}

/// All directed channels of a fabric, struct-of-arrays: index `i` of
/// every `Vec` is channel `i`'s field.
pub struct Channels {
    /// Node (switch or server, in the simulator's global id space) that
    /// packets leaving the channel arrive at.
    pub(crate) to_node: Vec<u32>,
    /// Bytes per nanosecond.
    pub(crate) rate_bpns: Vec<f64>,
    pub(crate) prop_ns: Vec<Ns>,
    /// Precomputed [`Channels::ser_ns`] for a full-MTU packet.
    ser_mtu_ns: Vec<Ns>,
    /// Precomputed [`Channels::ser_ns`] for an ACK.
    ser_ack_ns: Vec<Ns>,
    /// A packet is currently being serialized.
    pub(crate) busy: Vec<bool>,
    /// Fault state: a hard-failed channel delivers nothing. The simulator
    /// flips this (never the channel layer itself) and drops packets at
    /// the offer and delivery points, so queued packets drain onto the
    /// dead wire and are lost — "in-flight packets are lost on failure".
    pub(crate) up: Vec<bool>,
    /// Gray-failure per-packet drop probability (0.0 = healthy). The
    /// simulator draws from its seeded RNG; the channel just holds state.
    pub(crate) loss_prob: Vec<f64>,
    /// Congestion drops (tail or priority-evicted), for stats and tests.
    pub(crate) drops: Vec<u64>,
    /// ECN marks applied.
    pub(crate) marks: Vec<u64>,
    /// Packets lost to hard or gray faults on the channel.
    pub(crate) fault_drops: Vec<u64>,
    /// Queued packets evicted by the discipline to admit more urgent
    /// ones — a subset of `drops`, split out so drops can be reported by
    /// cause.
    pub(crate) evictions: Vec<u64>,
    /// The output queue feeding each transmitter.
    pub(crate) disc: Vec<Box<dyn QueueDiscipline>>,
    /// Cached `disc[i].queue_len()`, kept dense so the per-event path
    /// (and telemetry scans) can check for an empty queue without
    /// dereferencing the discipline's `Box<dyn>`.
    qlen: Vec<u32>,
    mtu_bytes: u32,
    ack_bytes: u32,
}

impl Channels {
    /// An empty table; `mtu_bytes`/`ack_bytes` are the two wire sizes the
    /// serialization-time cache covers.
    pub(crate) fn new(mtu_bytes: u32, ack_bytes: u32) -> Self {
        Channels {
            to_node: Vec::new(),
            rate_bpns: Vec::new(),
            prop_ns: Vec::new(),
            ser_mtu_ns: Vec::new(),
            ser_ack_ns: Vec::new(),
            busy: Vec::new(),
            up: Vec::new(),
            loss_prob: Vec::new(),
            drops: Vec::new(),
            marks: Vec::new(),
            fault_drops: Vec::new(),
            evictions: Vec::new(),
            disc: Vec::new(),
            qlen: Vec::new(),
            mtu_bytes,
            ack_bytes,
        }
    }

    /// Appends one channel and returns its id.
    pub(crate) fn push(
        &mut self,
        to_node: u32,
        gbps: f64,
        prop_ns: Ns,
        disc: Box<dyn QueueDiscipline>,
    ) -> u32 {
        let id = self.to_node.len() as u32;
        let rate_bpns = gbps / 8.0;
        self.to_node.push(to_node);
        self.rate_bpns.push(rate_bpns);
        self.prop_ns.push(prop_ns);
        self.ser_mtu_ns
            .push((self.mtu_bytes as f64 / rate_bpns).ceil() as Ns);
        self.ser_ack_ns
            .push((self.ack_bytes as f64 / rate_bpns).ceil() as Ns);
        self.busy.push(false);
        self.up.push(true);
        self.loss_prob.push(0.0);
        self.drops.push(0);
        self.marks.push(0);
        self.fault_drops.push(0);
        self.evictions.push(0);
        self.disc.push(disc);
        self.qlen.push(0);
        id
    }

    pub(crate) fn len(&self) -> usize {
        self.to_node.len()
    }

    /// Serialization time for `bytes` on channel `ch`. MTU-sized packets
    /// and ACKs hit the precomputed cache; odd sizes (a flow's final
    /// packet) fall back to the same float expression the cache was
    /// filled from, so timing is bit-identical either way.
    #[inline]
    pub(crate) fn ser_ns(&self, ch: u32, bytes: u32) -> Ns {
        if bytes == self.mtu_bytes {
            self.ser_mtu_ns[ch as usize]
        } else if bytes == self.ack_bytes {
            self.ser_ack_ns[ch as usize]
        } else {
            (bytes as f64 / self.rate_bpns[ch as usize]).ceil() as Ns
        }
    }

    /// Offers packet `id` to channel `ch`. On [`Offer::StartTx`] the
    /// caller owns the in-flight transmission (the id stays live); on
    /// [`Offer::Queued`] the discipline holds it (possibly evicting less
    /// urgent packets — those count into `drops` and are freed); on
    /// [`Offer::Dropped`] the id has been freed. The returned
    /// [`EnqueueOutcome`] carries the mark flag and eviction victims for
    /// the observability layer.
    pub(crate) fn offer(
        &mut self,
        ch: u32,
        id: PktId,
        pool: &mut PacketArena,
    ) -> (Offer, EnqueueOutcome) {
        let i = ch as usize;
        if !self.busy[i] {
            self.busy[i] = true;
            let out = EnqueueOutcome {
                accepted: true,
                ..Default::default()
            };
            return (Offer::StartTx, out);
        }
        let out = self.disc[i].enqueue(id, pool);
        self.qlen[i] = self.qlen[i] + out.accepted as u32 - out.evicted.len() as u32;
        self.drops[i] += out.dropped as u64;
        self.evictions[i] += out.evicted.len() as u64;
        if out.marked {
            self.marks[i] += 1;
        }
        if out.accepted {
            (Offer::Queued, out)
        } else {
            pool.free(id);
            (Offer::Dropped, out)
        }
    }

    /// Called when channel `ch`'s in-flight transmission completes;
    /// returns the next packet to transmit, if any (caller schedules its
    /// TxFree/Deliver).
    pub(crate) fn tx_done(&mut self, ch: u32) -> Option<PktId> {
        let i = ch as usize;
        debug_assert!(self.busy[i]);
        if self.qlen[i] == 0 {
            self.busy[i] = false;
            return None;
        }
        self.qlen[i] -= 1;
        let id = self.disc[i].dequeue();
        debug_assert!(id.is_some(), "qlen said non-empty but dequeue had nothing");
        id
    }

    pub(crate) fn queue_bytes(&self, ch: u32) -> u64 {
        self.disc[ch as usize].queue_bytes()
    }

    pub(crate) fn queue_len(&self, ch: u32) -> usize {
        debug_assert_eq!(
            self.qlen[ch as usize] as usize,
            self.disc[ch as usize].queue_len()
        );
        self.qlen[ch as usize] as usize
    }

    /// Reinstates a checkpointed queue on channel `ch`, keeping the dense
    /// length cache in sync with the discipline.
    pub(crate) fn restore_queue(
        &mut self,
        ch: u32,
        pkts: Vec<crate::types::Packet>,
        pool: &mut PacketArena,
    ) {
        let i = ch as usize;
        self.qlen[i] = pkts.len() as u32;
        self.disc[i].restore_queue(pkts, pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::TailDropEcn;
    use crate::types::Packet;
    use std::sync::Arc;

    fn pkt(a: &mut PacketArena, bytes: u32) -> PktId {
        a.alloc(Packet {
            flow: 0,
            seq: 0,
            bytes,
            ecn_ce: false,
            is_ack: false,
            ack_ecn: false,
            ts: 0,
            hop: 0,
            prio: 0,
            path: Arc::new(vec![]),
        })
    }

    fn chan() -> Channels {
        // 10 Gbps, 100ns prop, 10-packet queue, ECN at 3 packets.
        let mut c = Channels::new(1500, 40);
        c.push(
            1,
            10.0,
            100,
            Box::new(TailDropEcn::new(10 * 1500, 3 * 1500)),
        );
        c
    }

    #[test]
    fn idle_channel_starts_tx() {
        let mut a = PacketArena::new();
        let mut c = chan();
        let p = pkt(&mut a, 1500);
        let (o, _) = c.offer(0, p, &mut a);
        assert_eq!(o, Offer::StartTx);
        assert!(c.busy[0]);
        assert_eq!(a.live_count(), 1, "StartTx leaves the id live");
    }

    #[test]
    fn busy_channel_queues_then_drains_fifo() {
        let mut a = PacketArena::new();
        let mut c = chan();
        let head = pkt(&mut a, 1500);
        c.offer(0, head, &mut a);
        let q1 = pkt(&mut a, 100);
        a.get_mut(q1).seq = 1;
        let q2 = pkt(&mut a, 100);
        a.get_mut(q2).seq = 2;
        assert_eq!(c.offer(0, q1, &mut a).0, Offer::Queued);
        assert_eq!(c.offer(0, q2, &mut a).0, Offer::Queued);
        assert_eq!(c.queue_len(0), 2);
        let n1 = c.tx_done(0).unwrap();
        assert_eq!(a.get(n1).seq, 1);
        let n2 = c.tx_done(0).unwrap();
        assert_eq!(a.get(n2).seq, 2);
        assert!(c.tx_done(0).is_none());
        assert!(!c.busy[0]);
    }

    #[test]
    fn tail_drop_when_full_frees_the_id() {
        let mut a = PacketArena::new();
        let mut c = chan();
        c.offer(0, pkt(&mut a, 1500), &mut a); // in flight
        for _ in 0..10 {
            let p = pkt(&mut a, 1500);
            assert_eq!(c.offer(0, p, &mut a).0, Offer::Queued);
        }
        let live = a.live_count();
        let p = pkt(&mut a, 1500);
        assert_eq!(c.offer(0, p, &mut a).0, Offer::Dropped);
        assert_eq!(c.drops[0], 1);
        assert_eq!(a.live_count(), live, "dropped packet must be freed");
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut a = PacketArena::new();
        let mut c = chan();
        c.offer(0, pkt(&mut a, 1500), &mut a); // in flight, queue empty
        c.offer(0, pkt(&mut a, 1500), &mut a); // queue -> 1500
        c.offer(0, pkt(&mut a, 1500), &mut a); // queue -> 3000
        c.offer(0, pkt(&mut a, 1500), &mut a); // queue -> 4500 (at 3000 < 4500 thresh)
        assert_eq!(c.marks[0], 0);
        c.offer(0, pkt(&mut a, 1500), &mut a); // enqueued seeing 4500 >= 4500 → marked
        assert_eq!(c.marks[0], 1);
        // Drain: the marked packet is the last one.
        c.tx_done(0);
        c.tx_done(0);
        c.tx_done(0);
        let marked = c.tx_done(0).unwrap();
        assert!(a.get(marked).ecn_ce);
    }

    #[test]
    fn acks_never_marked() {
        let mut a = PacketArena::new();
        let mut c = chan();
        c.offer(0, pkt(&mut a, 1500), &mut a); // in flight
        for _ in 0..3 {
            c.offer(0, pkt(&mut a, 1500), &mut a); // queue reaches the 4500 B threshold
        }
        assert_eq!(c.marks[0], 0);
        let ack = pkt(&mut a, 40);
        a.get_mut(ack).is_ack = true;
        c.offer(0, ack, &mut a); // sees queue ≥ threshold but is an ACK
        assert_eq!(c.marks[0], 0);
        c.offer(0, pkt(&mut a, 1500), &mut a); // a data packet here *is* marked
        assert_eq!(c.marks[0], 1);
    }

    #[test]
    fn serialization_uses_channel_rate_and_cache() {
        let mut c = Channels::new(1500, 40);
        c.push(0, 40.0, 0, Box::new(TailDropEcn::new(1, 1)));
        assert_eq!(c.ser_ns(0, 1500), 300); // cached MTU path, 4x faster than 10G
        assert_eq!(c.ser_ns(0, 40), 8); // cached ACK path
        assert_eq!(c.ser_ns(0, 777), 156); // uncached fallback: ceil(777/5)
    }

    #[test]
    fn eviction_counts_as_channel_drop() {
        use crate::switch::PFabricQueue;
        let mut a = PacketArena::new();
        let mut c = Channels::new(1500, 40);
        c.push(1, 10.0, 100, Box::new(PFabricQueue::new(2 * 1500)));
        c.offer(0, pkt(&mut a, 1500), &mut a); // in flight
        let low = pkt(&mut a, 1500);
        a.get_mut(low).prio = 9;
        c.offer(0, low, &mut a);
        c.offer(0, pkt(&mut a, 1500), &mut a);
        let urgent = pkt(&mut a, 1500);
        a.get_mut(urgent).prio = 1;
        a.get_mut(urgent).seq = 7;
        let live = a.live_count();
        let (o, out) = c.offer(0, urgent, &mut a);
        assert_eq!(o, Offer::Queued, "urgent packet must win");
        assert_eq!(c.drops[0], 1, "the prio-9 victim is a congestion drop");
        assert_eq!(c.evictions[0], 1, "and is attributed to eviction");
        assert_eq!(out.evicted.len(), 1);
        assert_eq!(a.live_count(), live - 1, "the victim's id must be freed");
    }
}
