//! Directed channels: a pluggable output queue plus a serializing
//! transmitter.
//!
//! Every undirected topology link is two channels; every server has an
//! up-channel (server→ToR) and a down-channel (ToR→server). *How* packets
//! queue — tail-drop FIFO with ECN marking, pFabric strict priority, … —
//! is the owned [`QueueDiscipline`]'s decision (see [`crate::switch`]);
//! the channel itself only models the transmitter, the wire, and the
//! fault state.

use crate::switch::{EnqueueOutcome, QueueDiscipline};
use crate::types::{Ns, Packet};

/// One directed channel.
pub struct Channel {
    /// Node (switch or server, in the simulator's global id space) that
    /// packets leaving this channel arrive at.
    pub to_node: u32,
    /// Bytes per nanosecond.
    pub rate_bpns: f64,
    pub prop_ns: Ns,
    /// The output queue feeding the transmitter.
    pub(crate) disc: Box<dyn QueueDiscipline>,
    /// A packet is currently being serialized.
    pub busy: bool,
    /// Drop counter (congestion drops, tail or priority-evicted), for
    /// stats and tests.
    pub drops: u64,
    /// ECN marks applied.
    pub marks: u64,
    /// Fault state: a hard-failed channel delivers nothing. The simulator
    /// flips this (never the channel itself) and drops packets at the
    /// offer and delivery points, so queued packets drain onto the dead
    /// wire and are lost — "in-flight packets are lost on failure".
    pub up: bool,
    /// Gray-failure per-packet drop probability (0.0 = healthy). The
    /// simulator draws from its seeded RNG; the channel just holds state.
    pub loss_prob: f64,
    /// Packets lost to hard or gray faults on this channel.
    pub fault_drops: u64,
    /// Queued packets evicted by the discipline to admit more urgent
    /// ones — a subset of [`Channel::drops`], split out so drops can be
    /// reported by cause.
    pub evictions: u64,
}

/// Result of offering a packet to a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Offer {
    /// Channel idle: caller must schedule TxFree(now + ser) and
    /// Deliver(now + ser + prop).
    StartTx,
    /// Queued behind the current transmission.
    Queued,
    /// The offered packet was dropped by the queue discipline.
    Dropped,
}

impl Channel {
    pub fn new(to_node: u32, gbps: f64, prop_ns: Ns, disc: Box<dyn QueueDiscipline>) -> Self {
        Channel {
            to_node,
            rate_bpns: gbps / 8.0,
            prop_ns,
            disc,
            busy: false,
            drops: 0,
            marks: 0,
            up: true,
            loss_prob: 0.0,
            fault_drops: 0,
            evictions: 0,
        }
    }

    /// Serialization time for `bytes` on this channel.
    pub fn ser_ns(&self, bytes: u32) -> Ns {
        (bytes as f64 / self.rate_bpns).ceil() as Ns
    }

    /// Offers a packet. On `StartTx` the packet is handed back to the
    /// caller (it owns the in-flight transmission); on `Queued` the
    /// discipline keeps it (possibly evicting less urgent packets — those
    /// count into [`Channel::drops`]); on `Dropped` it is gone. The
    /// returned [`EnqueueOutcome`] carries the mark flag and eviction
    /// victims for the observability layer.
    pub fn offer(&mut self, pkt: Box<Packet>) -> (Offer, Option<Box<Packet>>, EnqueueOutcome) {
        if !self.busy {
            self.busy = true;
            let out = EnqueueOutcome {
                accepted: true,
                ..Default::default()
            };
            return (Offer::StartTx, Some(pkt), out);
        }
        let out = self.disc.enqueue(pkt);
        self.drops += out.dropped as u64;
        self.evictions += out.evicted.len() as u64;
        if out.marked {
            self.marks += 1;
        }
        if out.accepted {
            (Offer::Queued, None, out)
        } else {
            (Offer::Dropped, None, out)
        }
    }

    /// Called when the in-flight transmission completes; returns the next
    /// packet to transmit, if any (caller schedules its TxFree/Deliver).
    pub fn tx_done(&mut self) -> Option<Box<Packet>> {
        debug_assert!(self.busy);
        match self.disc.dequeue() {
            Some(pkt) => Some(pkt),
            None => {
                self.busy = false;
                None
            }
        }
    }

    pub fn queue_bytes(&self) -> u64 {
        self.disc.queue_bytes()
    }

    pub fn queue_len(&self) -> usize {
        self.disc.queue_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::TailDropEcn;
    use std::sync::Arc;

    fn pkt(bytes: u32) -> Box<Packet> {
        Box::new(Packet {
            flow: 0,
            seq: 0,
            bytes,
            ecn_ce: false,
            is_ack: false,
            ack_ecn: false,
            ts: 0,
            hop: 0,
            prio: 0,
            path: Arc::new(vec![]),
        })
    }

    fn chan() -> Channel {
        // 10 Gbps, 100ns prop, 10-packet queue, ECN at 3 packets.
        Channel::new(
            1,
            10.0,
            100,
            Box::new(TailDropEcn::new(10 * 1500, 3 * 1500)),
        )
    }

    #[test]
    fn idle_channel_starts_tx() {
        let mut c = chan();
        let (o, p, _) = c.offer(pkt(1500));
        assert_eq!(o, Offer::StartTx);
        assert!(p.is_some());
        assert!(c.busy);
    }

    #[test]
    fn busy_channel_queues_then_drains_fifo() {
        let mut c = chan();
        c.offer(pkt(1500));
        let mut q1 = pkt(100);
        q1.seq = 1;
        let mut q2 = pkt(100);
        q2.seq = 2;
        assert_eq!(c.offer(q1).0, Offer::Queued);
        assert_eq!(c.offer(q2).0, Offer::Queued);
        assert_eq!(c.queue_len(), 2);
        let n1 = c.tx_done().unwrap();
        assert_eq!(n1.seq, 1);
        let n2 = c.tx_done().unwrap();
        assert_eq!(n2.seq, 2);
        assert!(c.tx_done().is_none());
        assert!(!c.busy);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut c = chan();
        c.offer(pkt(1500)); // in flight
        for _ in 0..10 {
            assert_eq!(c.offer(pkt(1500)).0, Offer::Queued);
        }
        assert_eq!(c.offer(pkt(1500)).0, Offer::Dropped);
        assert_eq!(c.drops, 1);
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut c = chan();
        c.offer(pkt(1500)); // in flight, queue empty
        c.offer(pkt(1500)); // queue -> 1500
        c.offer(pkt(1500)); // queue -> 3000
        c.offer(pkt(1500)); // queue -> 4500 (enqueued at 3000 < 4500 thresh)
        assert_eq!(c.marks, 0);
        c.offer(pkt(1500)); // enqueued seeing 4500 >= 4500 → marked
        assert_eq!(c.marks, 1);
        // Drain: the marked packet is the last one.
        c.tx_done();
        c.tx_done();
        c.tx_done();
        let marked = c.tx_done().unwrap();
        assert!(marked.ecn_ce);
    }

    #[test]
    fn acks_never_marked() {
        let mut c = chan();
        c.offer(pkt(1500)); // in flight
        for _ in 0..3 {
            c.offer(pkt(1500)); // queue reaches exactly the 4500 B threshold
        }
        assert_eq!(c.marks, 0);
        let mut ack = pkt(40);
        ack.is_ack = true;
        c.offer(ack); // sees queue ≥ threshold but is an ACK
        assert_eq!(c.marks, 0);
        c.offer(pkt(1500)); // a data packet here *is* marked
        assert_eq!(c.marks, 1);
    }

    #[test]
    fn serialization_uses_channel_rate() {
        let c = Channel::new(0, 40.0, 0, Box::new(TailDropEcn::new(1, 1)));
        assert_eq!(c.ser_ns(1500), 300); // 4x faster than 10G
    }

    #[test]
    fn eviction_counts_as_channel_drop() {
        use crate::switch::PFabricQueue;
        let mut c = Channel::new(1, 10.0, 100, Box::new(PFabricQueue::new(2 * 1500)));
        c.offer(pkt(1500)); // in flight
        let mut low = pkt(1500);
        low.prio = 9;
        c.offer(low);
        c.offer(pkt(1500));
        let mut urgent = pkt(1500);
        urgent.prio = 1;
        urgent.seq = 7;
        let (o, _, out) = c.offer(urgent);
        assert_eq!(o, Offer::Queued, "urgent packet must win");
        assert_eq!(c.drops, 1, "the prio-9 victim is a congestion drop");
        assert_eq!(c.evictions, 1, "and is attributed to eviction");
        assert_eq!(out.evicted.len(), 1);
    }
}
