//! A slab arena for in-flight packets.
//!
//! The per-packet hot path used to allocate a `Box<Packet>` per send and
//! free it at delivery or drop; every queue hop moved the box between
//! heap-allocated containers. [`PacketArena`] replaces that with one
//! dense `Vec<Packet>` indexed by [`PktId`] (a `u32`): events and queue
//! disciplines carry ids, allocation is a free-list pop that overwrites
//! a slot in place, and freeing pushes the id back. Steady state does no
//! allocator work at all and keeps packet state contiguous.
//!
//! # Id lifetimes
//!
//! A [`PktId`] is live from [`PacketArena::alloc`] until exactly one
//! [`PacketArena::free`] — at end-host delivery, at a fault/congestion
//! drop, or at a priority eviction. Ids are aggressively reused (the
//! free list is LIFO, so a just-delivered data packet's slot usually
//! hosts the ACK it triggers), which means a stale id will often index a
//! *valid but different* packet. Debug builds therefore track liveness
//! per slot and assert on use-after-free and double-free; the CI chaos
//! soak runs with `debug-assertions` on to catch id-reuse bugs under
//! fault churn.

use crate::types::Packet;

/// Dense arena index of an in-flight packet.
pub type PktId = u32;

/// Slab allocator for [`Packet`]s; see the module docs.
pub struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<PktId>,
    /// High-water carried over from a checkpoint restore. `slots` only
    /// grows when every slot is live, so `slots.len()` is itself the
    /// organic live high-water; a restored arena starts from the
    /// snapshot's live set and would forget the original's peak without
    /// this floor. See [`PacketArena::high_water`].
    restored_hwm: usize,
    /// Liveness per slot, kept only when debug assertions are on: catches
    /// use-after-free and double-free at the first bad access instead of
    /// letting a recycled id corrupt an unrelated packet.
    #[cfg(debug_assertions)]
    live: Vec<bool>,
}

impl PacketArena {
    pub fn new() -> Self {
        PacketArena {
            slots: Vec::new(),
            free: Vec::new(),
            restored_hwm: 0,
            #[cfg(debug_assertions)]
            live: Vec::new(),
        }
    }

    /// Number of live packets.
    pub fn live_count(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// High-water mark of live packets over the run (across checkpoint
    /// restores). A new slot is pushed only when every existing slot is
    /// live, so the slot count tracks the organic peak for free — no
    /// hot-path bookkeeping.
    pub fn high_water(&self) -> usize {
        self.slots.len().max(self.restored_hwm)
    }

    /// Restore-path setter: carries a checkpointed high-water mark into a
    /// freshly repopulated arena.
    pub fn set_high_water(&mut self, hwm: usize) {
        self.restored_hwm = hwm;
    }

    #[inline]
    pub fn alloc(&mut self, p: Packet) -> PktId {
        match self.free.pop() {
            Some(id) => {
                #[cfg(debug_assertions)]
                {
                    debug_assert!(!self.live[id as usize], "alloc into a live slot");
                    self.live[id as usize] = true;
                }
                // Overwrite in place; the old packet (and its path Arc)
                // drops here.
                self.slots[id as usize] = p;
                id
            }
            None => {
                let id = self.slots.len() as PktId;
                self.slots.push(p);
                #[cfg(debug_assertions)]
                self.live.push(true);
                id
            }
        }
    }

    #[inline]
    pub fn free(&mut self, id: PktId) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.live[id as usize], "double free of packet id {id}");
            self.live[id as usize] = false;
        }
        self.free.push(id);
    }

    #[inline]
    pub fn get(&self, id: PktId) -> &Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[id as usize], "use after free of packet id {id}");
        &self.slots[id as usize]
    }

    #[inline]
    pub fn get_mut(&mut self, id: PktId) -> &mut Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[id as usize], "use after free of packet id {id}");
        &mut self.slots[id as usize]
    }
}

impl Default for PacketArena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pkt(flow: u32) -> Packet {
        Packet {
            flow,
            seq: 0,
            bytes: 1500,
            ecn_ce: false,
            is_ack: false,
            ack_ecn: false,
            ts: 0,
            hop: 0,
            prio: 0,
            path: Arc::new(vec![]),
        }
    }

    #[test]
    fn alloc_free_reuses_slots() {
        let mut a = PacketArena::new();
        let x = a.alloc(pkt(1));
        let y = a.alloc(pkt(2));
        assert_ne!(x, y);
        assert_eq!(a.live_count(), 2);
        assert_eq!(a.high_water(), 2);
        assert_eq!(a.get(x).flow, 1);
        a.free(x);
        assert_eq!(a.live_count(), 1);
        let z = a.alloc(pkt(3));
        assert_eq!(z, x, "LIFO free list should hand the slot back");
        assert_eq!(a.get(z).flow, 3);
        a.get_mut(y).ecn_ce = true;
        assert!(a.get(y).ecn_ce);
        assert_eq!(a.high_water(), 2, "slot reuse must not raise the peak");
    }

    #[test]
    fn restored_high_water_floors_the_organic_one() {
        let mut a = PacketArena::new();
        a.alloc(pkt(1));
        a.set_high_water(7);
        assert_eq!(a.high_water(), 7);
        for f in 2..=9 {
            a.alloc(pkt(f));
        }
        assert_eq!(a.high_water(), 9, "organic growth overtakes the floor");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "use after free")]
    fn debug_build_catches_use_after_free() {
        let mut a = PacketArena::new();
        let x = a.alloc(pkt(1));
        a.free(x);
        let _ = a.get(x);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn debug_build_catches_double_free() {
        let mut a = PacketArena::new();
        let x = a.alloc(pkt(1));
        a.free(x);
        a.free(x);
    }
}
