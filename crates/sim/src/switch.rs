//! The switch layer: per-port queue disciplines and the fabric substrate.
//!
//! A switch port (and a host NIC queue) is a channel in
//! [`crate::channel::Channels`]: a serializing transmitter fed by a
//! queue. What *kind* of queue — FIFO tail-drop with ECN marking, strict
//! priority, anything else — is decided here, behind the
//! [`QueueDiscipline`] trait. The engine never looks inside a queue; it
//! offers packet ids and takes whatever id the discipline hands back.
//!
//! Disciplines queue dense [`PktId`]s plus the few packet fields their
//! scheduling decisions read (bytes, priority, flow identity), copied
//! into their own contiguous entries at enqueue time. Scans — pFabric's
//! best/worst search, byte accounting — therefore run over a flat array
//! instead of chasing per-packet heap pointers; the full packet stays in
//! the [`PacketArena`] and is only touched to apply an ECN mark.
//!
//! Two disciplines ship with the simulator:
//!
//! - [`TailDropEcn`] — the paper's switch model: FIFO, tail drop when the
//!   byte cap is exceeded, DCTCP-style CE marking on enqueue once the
//!   queue holds at least K packets' worth of bytes.
//! - [`PFabricQueue`] — pFabric (Alizadeh et al., SIGCOMM 2013) strict
//!   priority: dequeue the packet with the smallest remaining flow size
//!   first; when full, evict from the tail of the *lowest*-priority flow
//!   (or reject the newcomer if it is itself the least urgent).
//!
//! [`Fabric`] bundles the channel table, the link→channel numbering, and
//! the server↔rack maps — the static substrate the engine routes over
//! and the fault layer degrades.

use crate::channel::Channels;
use crate::slab::{PacketArena, PktId};
use crate::types::{Packet, QueueDiscKind, SimConfig};
use dcn_topology::{Link, NodeId, Topology};
use std::collections::VecDeque;

/// What happened when a packet was offered to a queue discipline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct EnqueueOutcome {
    /// The offered packet itself was accepted into the queue.
    pub accepted: bool,
    /// Packets lost in this enqueue: the offered one (if rejected) plus
    /// any lower-priority victims evicted to make room.
    pub dropped: u32,
    /// An ECN CE mark was applied to the offered packet.
    pub marked: bool,
    /// `(flow, seq)` of each queued packet evicted to make room for the
    /// offered one (excludes the offered packet itself when rejected).
    /// Empty for disciplines that never evict, so the common path
    /// allocates nothing. Victims' arena ids are freed by the discipline.
    pub evicted: Vec<(u32, u32)>,
}

/// A per-port packet queue: the switch-layer seam.
///
/// Implementations decide admission (drop/evict), marking (ECN), and
/// service order (FIFO, strict priority, …). They must be deterministic —
/// no clocks, no randomness — so simulations stay reproducible.
///
/// Ownership protocol: an accepted id belongs to the discipline until
/// [`QueueDiscipline::dequeue`] hands it back. Eviction victims are freed
/// into the arena by the discipline itself; a *rejected* offered id is
/// NOT freed here — the channel layer frees it (the discipline never
/// owned it).
pub trait QueueDiscipline: Send {
    /// Offers a packet while the transmitter is busy. The discipline
    /// keeps it (`accepted`), rejects it, and/or evicts queued packets;
    /// `dropped` counts every packet lost either way.
    fn enqueue(&mut self, id: PktId, pool: &mut PacketArena) -> EnqueueOutcome;

    /// Next packet to serialize, or `None` if the queue is empty.
    fn dequeue(&mut self) -> Option<PktId>;

    /// Bytes currently queued (excludes the packet being serialized).
    fn queue_bytes(&self) -> u64;

    /// Packets currently queued.
    fn queue_len(&self) -> usize;

    fn name(&self) -> &'static str;

    /// Checkpoint support: clones of the queued packets in internal
    /// (arrival) order, or `None` when the discipline cannot be
    /// snapshotted — [`crate::Simulator::checkpoint`] then fails cleanly
    /// instead of silently losing queue state.
    fn snapshot_queue(&self, pool: &PacketArena) -> Option<Vec<Packet>> {
        let _ = pool;
        None
    }

    /// Reinstates packets captured by [`QueueDiscipline::snapshot_queue`]
    /// in the same order, allocating fresh arena ids and bypassing
    /// admission entirely (no marking, drops, or evictions — the packets
    /// already carry their marks). Disciplines returning `Some` from the
    /// snapshot hook must implement this.
    fn restore_queue(&mut self, pkts: Vec<Packet>, pool: &mut PacketArena) {
        let _ = pool;
        assert!(
            pkts.is_empty(),
            "{} does not support queue restoration",
            self.name()
        );
    }
}

/// A factory producing one [`QueueDiscipline`] instance per channel;
/// called with the channel's byte capacity and ECN threshold.
pub type DisciplineFactory<'a> = &'a dyn Fn(u64, u64) -> Box<dyn QueueDiscipline>;

impl QueueDiscKind {
    /// Builds one queue instance of this kind for a channel with the given
    /// byte capacity and ECN-marking threshold (ignored by disciplines
    /// that do not mark).
    pub fn build(self, cap_bytes: u64, ecn_bytes: u64) -> Box<dyn QueueDiscipline> {
        match self {
            QueueDiscKind::TailDropEcn => Box::new(TailDropEcn::new(cap_bytes, ecn_bytes)),
            QueueDiscKind::PFabric => Box::new(PFabricQueue::new(cap_bytes)),
        }
    }
}

/// A queued packet in a [`TailDropEcn`] port: the id plus the one field
/// byte accounting needs.
#[derive(Clone, Copy, Debug)]
struct FifoEntry {
    id: PktId,
    bytes: u32,
}

/// FIFO + tail drop + DCTCP ECN marking — the paper's §6.4 switch port.
#[derive(Debug)]
pub struct TailDropEcn {
    queue: VecDeque<FifoEntry>,
    bytes: u64,
    cap_bytes: u64,
    ecn_threshold_bytes: u64,
}

impl TailDropEcn {
    pub fn new(cap_bytes: u64, ecn_threshold_bytes: u64) -> Self {
        TailDropEcn {
            queue: VecDeque::new(),
            bytes: 0,
            cap_bytes,
            ecn_threshold_bytes,
        }
    }
}

impl QueueDiscipline for TailDropEcn {
    fn enqueue(&mut self, id: PktId, pool: &mut PacketArena) -> EnqueueOutcome {
        let (pkt_bytes, is_ack) = {
            let p = pool.get(id);
            (p.bytes, p.is_ack)
        };
        if self.bytes + pkt_bytes as u64 > self.cap_bytes {
            return EnqueueOutcome {
                accepted: false,
                dropped: 1,
                ..Default::default()
            };
        }
        // DCTCP: mark on enqueue when the instantaneous queue exceeds K.
        let marked = self.bytes >= self.ecn_threshold_bytes && !is_ack;
        if marked {
            pool.get_mut(id).ecn_ce = true;
        }
        self.bytes += pkt_bytes as u64;
        self.queue.push_back(FifoEntry {
            id,
            bytes: pkt_bytes,
        });
        EnqueueOutcome {
            accepted: true,
            marked,
            ..Default::default()
        }
    }

    fn dequeue(&mut self) -> Option<PktId> {
        let e = self.queue.pop_front()?;
        self.bytes -= e.bytes as u64;
        Some(e.id)
    }

    fn queue_bytes(&self) -> u64 {
        self.bytes
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "tail_drop_ecn"
    }

    fn snapshot_queue(&self, pool: &PacketArena) -> Option<Vec<Packet>> {
        Some(self.queue.iter().map(|e| pool.get(e.id).clone()).collect())
    }

    fn restore_queue(&mut self, pkts: Vec<Packet>, pool: &mut PacketArena) {
        for pkt in pkts {
            let bytes = pkt.bytes;
            let id = pool.alloc(pkt);
            self.bytes += bytes as u64;
            self.queue.push_back(FifoEntry { id, bytes });
        }
    }
}

/// A queued packet in a [`PFabricQueue`] port: the id plus the fields the
/// priority scans and victim reporting read, kept contiguous so best/worst
/// searches never leave the entry array.
#[derive(Clone, Copy, Debug)]
struct PrioEntry {
    id: PktId,
    bytes: u32,
    prio: u32,
    flow: u32,
    seq: u32,
}

/// pFabric strict-priority queue: serve the smallest remaining flow size
/// first (FIFO among equals); when full, drop from the tail of the
/// lowest-priority traffic. Never marks ECN — pFabric's fabric scheduling
/// replaces congestion signaling.
#[derive(Debug)]
pub struct PFabricQueue {
    /// Arrival order is the queue order; service order is by priority.
    queue: VecDeque<PrioEntry>,
    bytes: u64,
    cap_bytes: u64,
}

impl PFabricQueue {
    pub fn new(cap_bytes: u64) -> Self {
        PFabricQueue {
            queue: VecDeque::new(),
            bytes: 0,
            cap_bytes,
        }
    }

    /// Index of the worst queued packet: highest `prio` value, latest
    /// arrival among ties (the "tail of the lowest priority").
    fn worst(&self) -> Option<usize> {
        let mut worst: Option<(u32, usize)> = None;
        for (i, e) in self.queue.iter().enumerate() {
            if worst.is_none_or(|(wp, _)| e.prio >= wp) {
                worst = Some((e.prio, i));
            }
        }
        worst.map(|(_, i)| i)
    }
}

impl QueueDiscipline for PFabricQueue {
    fn enqueue(&mut self, id: PktId, pool: &mut PacketArena) -> EnqueueOutcome {
        let (pkt_bytes, prio, flow, seq) = {
            let p = pool.get(id);
            (p.bytes, p.prio, p.flow, p.seq)
        };
        let mut evicted = Vec::new();
        while self.bytes + pkt_bytes as u64 > self.cap_bytes {
            match self.worst() {
                // A strictly less urgent packet is queued: evict it. On a
                // tie the newcomer is the tail of that priority and loses.
                Some(w) if self.queue[w].prio > prio => {
                    let victim = self.queue.remove(w).unwrap();
                    self.bytes -= victim.bytes as u64;
                    evicted.push((victim.flow, victim.seq));
                    pool.free(victim.id);
                }
                _ => {
                    return EnqueueOutcome {
                        accepted: false,
                        dropped: evicted.len() as u32 + 1,
                        marked: false,
                        evicted,
                    };
                }
            }
        }
        self.bytes += pkt_bytes as u64;
        self.queue.push_back(PrioEntry {
            id,
            bytes: pkt_bytes,
            prio,
            flow,
            seq,
        });
        EnqueueOutcome {
            accepted: true,
            dropped: evicted.len() as u32,
            marked: false,
            evicted,
        }
    }

    fn dequeue(&mut self) -> Option<PktId> {
        // Most urgent = smallest prio; earliest arrival breaks ties.
        let mut best: Option<(u32, usize)> = None;
        for (i, e) in self.queue.iter().enumerate() {
            if best.is_none_or(|(bp, _)| e.prio < bp) {
                best = Some((e.prio, i));
            }
        }
        let (_, i) = best?;
        let e = self.queue.remove(i).unwrap();
        self.bytes -= e.bytes as u64;
        Some(e.id)
    }

    fn queue_bytes(&self) -> u64 {
        self.bytes
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "pfabric"
    }

    fn snapshot_queue(&self, pool: &PacketArena) -> Option<Vec<Packet>> {
        Some(self.queue.iter().map(|e| pool.get(e.id).clone()).collect())
    }

    fn restore_queue(&mut self, pkts: Vec<Packet>, pool: &mut PacketArena) {
        for pkt in pkts {
            let (bytes, prio, flow, seq) = (pkt.bytes, pkt.prio, pkt.flow, pkt.seq);
            let id = pool.alloc(pkt);
            self.bytes += bytes as u64;
            self.queue.push_back(PrioEntry {
                id,
                bytes,
                prio,
                flow,
                seq,
            });
        }
    }
}

/// The static forwarding substrate: every directed channel (two per
/// topology link, two per server), the link list, and the server↔rack
/// numbering. Built once per simulation; the fault layer flips channel
/// `up` flags, the engine routes packets over it.
pub struct Fabric {
    pub(crate) channels: Channels,
    pub(crate) links: Vec<Link>,
    /// First channel id of the host (server) channel block.
    pub(crate) host_ch_base: u32,
    /// Node ids `< num_switches` are switches; servers follow.
    pub(crate) num_switches: u32,
    /// ToR of each server, indexed by global server id.
    pub(crate) server_tor: Vec<NodeId>,
    /// First global server id of each rack (`u32::MAX` for rackless nodes).
    pub(crate) rack_base: Vec<u32>,
}

impl Fabric {
    /// Builds the channel table for `topo` under `cfg`, one
    /// queue-discipline instance per channel from `disc`. Channel
    /// numbering: link `l`'s a→b direction is channel `2l`, b→a is `2l+1`;
    /// after [`Fabric::host_ch_base`] come per-server (up, down) pairs.
    pub(crate) fn build(topo: &Topology, cfg: &SimConfig, disc: DisciplineFactory) -> Self {
        let mtu = cfg.mtu as u64;
        let link_cap = cfg.queue_pkts as u64 * mtu;
        let ecn_at = cfg.ecn_k_pkts as u64 * mtu;
        let mut channels = Channels::new(cfg.mtu, cfg.ack_bytes);
        for l in topo.links() {
            let gbps = cfg.link_gbps * l.capacity;
            channels.push(l.a, l.b, gbps, cfg.prop_delay_ns, disc(link_cap, ecn_at));
            channels.push(l.b, l.a, gbps, cfg.prop_delay_ns, disc(link_cap, ecn_at));
        }
        let host_ch_base = channels.len() as u32;
        let num_switches = topo.num_nodes() as u32;
        let mut server_tor = Vec::new();
        let mut rack_base = vec![u32::MAX; topo.num_nodes()];
        let host_cap = cfg.host_queue_pkts as u64 * mtu;
        for rack in 0..topo.num_nodes() as NodeId {
            let s = topo.servers_at(rack);
            if s == 0 {
                continue;
            }
            rack_base[rack as usize] = server_tor.len() as u32;
            for _ in 0..s {
                let server_node = num_switches + server_tor.len() as u32;
                // Up: server → ToR. The NIC queue marks ECN like a switch
                // port so DCTCP self-paces instead of overflowing the host
                // queue (real stacks backpressure at the qdisc).
                channels.push(
                    server_node,
                    rack,
                    cfg.server_link_gbps,
                    cfg.prop_delay_ns,
                    disc(host_cap, ecn_at),
                );
                // Down: ToR → server (a real switch port: ECN + drops).
                channels.push(
                    rack,
                    server_node,
                    cfg.server_link_gbps,
                    cfg.prop_delay_ns,
                    disc(link_cap, ecn_at),
                );
                server_tor.push(rack);
            }
        }
        Fabric {
            channels,
            links: topo.links().to_vec(),
            host_ch_base,
            num_switches,
            server_tor,
            rack_base,
        }
    }

    /// Number of servers attached to the fabric.
    pub(crate) fn num_servers(&self) -> usize {
        self.server_tor.len()
    }

    /// Global server id for `(rack, server)`.
    pub(crate) fn server_id(&self, rack: NodeId, server: u32) -> u32 {
        let base = self.rack_base[rack as usize];
        assert!(base != u32::MAX, "rack {rack} has no servers");
        base + server
    }

    /// Recomputes every channel's up flag from the link and switch fault
    /// state. Downed channels keep serializing their queues — those
    /// packets drain onto the dead wire and are dropped at delivery.
    /// Coordinator-only: `up` is a barrier field (see [`Channels`]).
    pub(crate) fn apply_fault_state(&self, down_links: &[bool], down_sw: &[bool]) {
        for (l, link) in self.links.iter().enumerate() {
            let up = !down_links[l] && !down_sw[link.a as usize] && !down_sw[link.b as usize];
            self.channels.set_up(2 * l as u32, up);
            self.channels.set_up(2 * l as u32 + 1, up);
        }
        for s in 0..self.server_tor.len() {
            let up = !down_sw[self.server_tor[s] as usize];
            self.channels.set_up(self.host_ch_base + 2 * s as u32, up);
            self.channels
                .set_up(self.host_ch_base + 2 * s as u32 + 1, up);
        }
    }

    /// Total congestion tail drops across all channels (includes
    /// priority evictions).
    pub(crate) fn total_congestion_drops(&self) -> u64 {
        self.channels.sum_drops()
    }

    /// Queued packets evicted by priority disciplines (a subset of
    /// [`Fabric::total_congestion_drops`]).
    pub(crate) fn total_evictions(&self) -> u64 {
        self.channels.sum_evictions()
    }

    /// Packets lost on dead or gray channels.
    pub(crate) fn total_fault_drops(&self) -> u64 {
        self.channels.sum_fault_drops()
    }

    /// Total ECN marks across all channels.
    pub(crate) fn total_marks(&self) -> u64 {
        self.channels.sum_marks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pkt(a: &mut PacketArena, bytes: u32, prio: u32) -> PktId {
        a.alloc(Packet {
            flow: 0,
            seq: 0,
            bytes,
            ecn_ce: false,
            is_ack: false,
            ack_ecn: false,
            ts: 0,
            hop: 0,
            prio,
            path: Arc::new(vec![]),
        })
    }

    #[test]
    fn tail_drop_marks_above_threshold_and_drops_when_full() {
        let mut a = PacketArena::new();
        let mut q = TailDropEcn::new(3 * 1500, 1500);
        let p = pkt(&mut a, 1500, 0);
        assert!(q.enqueue(p, &mut a).accepted); // 0 < 1500: no mark
        let p = pkt(&mut a, 1500, 0);
        let out = q.enqueue(p, &mut a); // queue holds 1500 ≥ K
        assert!(out.accepted && out.marked);
        let p = pkt(&mut a, 1500, 0);
        assert!(q.enqueue(p, &mut a).accepted);
        let rejected = pkt(&mut a, 1500, 0);
        let out = q.enqueue(rejected, &mut a); // 4500 + 1500 > cap
        assert_eq!(
            out,
            EnqueueOutcome {
                accepted: false,
                dropped: 1,
                marked: false,
                evicted: vec![],
            }
        );
        a.free(rejected); // the channel layer frees rejected offers
                          // FIFO order out, marks travel with the packets.
        assert!(!a.get(q.dequeue().unwrap()).ecn_ce);
        assert!(a.get(q.dequeue().unwrap()).ecn_ce);
        assert!(a.get(q.dequeue().unwrap()).ecn_ce);
        assert!(q.dequeue().is_none());
        assert_eq!(q.queue_bytes(), 0);
    }

    #[test]
    fn pfabric_serves_smallest_remaining_first() {
        let mut a = PacketArena::new();
        let mut q = PFabricQueue::new(10 * 1500);
        for prio in [50, 3, 7] {
            let p = pkt(&mut a, 1500, prio);
            q.enqueue(p, &mut a);
        }
        assert_eq!(a.get(q.dequeue().unwrap()).prio, 3);
        assert_eq!(a.get(q.dequeue().unwrap()).prio, 7);
        assert_eq!(a.get(q.dequeue().unwrap()).prio, 50);
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn pfabric_fifo_among_equal_priorities() {
        let mut a = PacketArena::new();
        let mut q = PFabricQueue::new(10 * 1500);
        for seq in 0..3 {
            let p = pkt(&mut a, 1500, 5);
            a.get_mut(p).seq = seq;
            q.enqueue(p, &mut a);
        }
        assert_eq!(a.get(q.dequeue().unwrap()).seq, 0);
        assert_eq!(a.get(q.dequeue().unwrap()).seq, 1);
        assert_eq!(a.get(q.dequeue().unwrap()).seq, 2);
    }

    #[test]
    fn pfabric_evicts_lowest_priority_when_full() {
        let mut a = PacketArena::new();
        let mut q = PFabricQueue::new(3 * 1500);
        let p = pkt(&mut a, 1500, 10);
        q.enqueue(p, &mut a);
        let straggler = pkt(&mut a, 1500, 90);
        a.get_mut(straggler).flow = 4;
        a.get_mut(straggler).seq = 2;
        q.enqueue(straggler, &mut a);
        let p = pkt(&mut a, 1500, 20);
        q.enqueue(p, &mut a);
        // Full. An urgent packet evicts the prio-90 straggler...
        let live = a.live_count();
        let p = pkt(&mut a, 1500, 1);
        let out = q.enqueue(p, &mut a);
        assert!(out.accepted);
        assert_eq!(out.dropped, 1);
        assert_eq!(out.evicted, vec![(4, 2)], "victim identity reported");
        assert_eq!(q.queue_len(), 3);
        assert_eq!(a.live_count(), live, "victim freed, newcomer allocated");
        // ...while a hopeless one is rejected outright.
        let hopeless = pkt(&mut a, 1500, 99);
        let out = q.enqueue(hopeless, &mut a);
        assert!(!out.accepted);
        assert_eq!(out.dropped, 1);
        assert!(out.evicted.is_empty(), "rejection evicts nothing");
        a.free(hopeless);
        // Ties lose too: the tail of the lowest priority is the newcomer.
        let tie = pkt(&mut a, 1500, 20);
        let out = q.enqueue(tie, &mut a);
        assert!(!out.accepted, "equal-priority newcomer must be the victim");
        a.free(tie);
        assert_eq!(
            vec![
                a.get(q.dequeue().unwrap()).prio,
                a.get(q.dequeue().unwrap()).prio,
                a.get(q.dequeue().unwrap()).prio
            ],
            vec![1, 10, 20]
        );
    }

    #[test]
    fn pfabric_never_marks() {
        let mut a = PacketArena::new();
        let mut q = PFabricQueue::new(10 * 1500);
        for _ in 0..9 {
            let p = pkt(&mut a, 1500, 1);
            assert!(!q.enqueue(p, &mut a).marked);
        }
        assert!(q.dequeue().is_some());
    }

    #[test]
    fn snapshot_restore_roundtrips_through_the_arena() {
        let mut a = PacketArena::new();
        let mut q = TailDropEcn::new(10 * 1500, 1500);
        for seq in 0..4 {
            let p = pkt(&mut a, 1500, 0);
            a.get_mut(p).seq = seq;
            q.enqueue(p, &mut a);
        }
        let snap = q.snapshot_queue(&a).unwrap();
        assert_eq!(snap.len(), 4);
        let mut b = PacketArena::new();
        let mut q2 = TailDropEcn::new(10 * 1500, 1500);
        q2.restore_queue(snap, &mut b);
        assert_eq!(q2.queue_len(), 4);
        assert_eq!(q2.queue_bytes(), q.queue_bytes());
        for seq in 0..4 {
            assert_eq!(b.get(q2.dequeue().unwrap()).seq, seq);
        }
    }

    #[test]
    fn kind_builds_matching_discipline() {
        assert_eq!(
            QueueDiscKind::TailDropEcn.build(1, 1).name(),
            "tail_drop_ecn"
        );
        assert_eq!(QueueDiscKind::PFabric.build(1, 1).name(), "pfabric");
    }
}
