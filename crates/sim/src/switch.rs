//! The switch layer: per-port queue disciplines and the fabric substrate.
//!
//! A switch port (and a host NIC queue) is a [`crate::channel::Channel`]:
//! a serializing transmitter fed by a queue. What *kind* of queue — FIFO
//! tail-drop with ECN marking, strict priority, anything else — is decided
//! here, behind the [`QueueDiscipline`] trait. The engine never looks
//! inside a queue; it offers packets and takes whatever the discipline
//! hands back.
//!
//! Two disciplines ship with the simulator:
//!
//! - [`TailDropEcn`] — the paper's switch model: FIFO, tail drop when the
//!   byte cap is exceeded, DCTCP-style CE marking on enqueue once the
//!   queue holds at least K packets' worth of bytes.
//! - [`PFabricQueue`] — pFabric (Alizadeh et al., SIGCOMM 2013) strict
//!   priority: dequeue the packet with the smallest remaining flow size
//!   first; when full, evict from the tail of the *lowest*-priority flow
//!   (or reject the newcomer if it is itself the least urgent).
//!
//! [`Fabric`] bundles the directed channels, the link→channel numbering,
//! and the server↔rack maps — the static substrate the engine routes over
//! and the fault layer degrades.

use crate::channel::Channel;
use crate::types::{Packet, QueueDiscKind, SimConfig};
use dcn_topology::{Link, NodeId, Topology};
use std::collections::VecDeque;

/// What happened when a packet was offered to a queue discipline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct EnqueueOutcome {
    /// The offered packet itself was accepted into the queue.
    pub accepted: bool,
    /// Packets lost in this enqueue: the offered one (if rejected) plus
    /// any lower-priority victims evicted to make room.
    pub dropped: u32,
    /// An ECN CE mark was applied to the offered packet.
    pub marked: bool,
    /// `(flow, seq)` of each queued packet evicted to make room for the
    /// offered one (excludes the offered packet itself when rejected).
    /// Empty for disciplines that never evict, so the common path
    /// allocates nothing.
    pub evicted: Vec<(u32, u32)>,
}

/// A per-port packet queue: the switch-layer seam.
///
/// Implementations decide admission (drop/evict), marking (ECN), and
/// service order (FIFO, strict priority, …). They must be deterministic —
/// no clocks, no randomness — so simulations stay reproducible.
pub trait QueueDiscipline: Send {
    /// Offers a packet while the transmitter is busy. The discipline
    /// keeps it (`accepted`), rejects it, and/or evicts queued packets;
    /// `dropped` counts every packet lost either way.
    fn enqueue(&mut self, pkt: Box<Packet>) -> EnqueueOutcome;

    /// Next packet to serialize, or `None` if the queue is empty.
    fn dequeue(&mut self) -> Option<Box<Packet>>;

    /// Bytes currently queued (excludes the packet being serialized).
    fn queue_bytes(&self) -> u64;

    /// Packets currently queued.
    fn queue_len(&self) -> usize;

    fn name(&self) -> &'static str;

    /// Checkpoint support: clones of the queued packets in internal
    /// (arrival) order, or `None` when the discipline cannot be
    /// snapshotted — [`crate::Simulator::checkpoint`] then fails cleanly
    /// instead of silently losing queue state.
    fn snapshot_queue(&self) -> Option<Vec<Packet>> {
        None
    }

    /// Reinstates packets captured by [`QueueDiscipline::snapshot_queue`]
    /// in the same order, bypassing admission entirely (no marking, drops,
    /// or evictions — the packets already carry their marks). Disciplines
    /// returning `Some` from the snapshot hook must implement this.
    fn restore_queue(&mut self, pkts: Vec<Box<Packet>>) {
        assert!(
            pkts.is_empty(),
            "{} does not support queue restoration",
            self.name()
        );
    }
}

/// A factory producing one [`QueueDiscipline`] instance per channel;
/// called with the channel's byte capacity and ECN threshold.
pub type DisciplineFactory<'a> = &'a dyn Fn(u64, u64) -> Box<dyn QueueDiscipline>;

impl QueueDiscKind {
    /// Builds one queue instance of this kind for a channel with the given
    /// byte capacity and ECN-marking threshold (ignored by disciplines
    /// that do not mark).
    pub fn build(self, cap_bytes: u64, ecn_bytes: u64) -> Box<dyn QueueDiscipline> {
        match self {
            QueueDiscKind::TailDropEcn => Box::new(TailDropEcn::new(cap_bytes, ecn_bytes)),
            QueueDiscKind::PFabric => Box::new(PFabricQueue::new(cap_bytes)),
        }
    }
}

/// FIFO + tail drop + DCTCP ECN marking — the paper's §6.4 switch port.
#[derive(Debug)]
pub struct TailDropEcn {
    queue: VecDeque<Box<Packet>>,
    bytes: u64,
    cap_bytes: u64,
    ecn_threshold_bytes: u64,
}

impl TailDropEcn {
    pub fn new(cap_bytes: u64, ecn_threshold_bytes: u64) -> Self {
        TailDropEcn {
            queue: VecDeque::new(),
            bytes: 0,
            cap_bytes,
            ecn_threshold_bytes,
        }
    }
}

impl QueueDiscipline for TailDropEcn {
    fn enqueue(&mut self, mut pkt: Box<Packet>) -> EnqueueOutcome {
        if self.bytes + pkt.bytes as u64 > self.cap_bytes {
            return EnqueueOutcome {
                accepted: false,
                dropped: 1,
                ..Default::default()
            };
        }
        // DCTCP: mark on enqueue when the instantaneous queue exceeds K.
        let marked = self.bytes >= self.ecn_threshold_bytes && !pkt.is_ack;
        if marked {
            pkt.ecn_ce = true;
        }
        self.bytes += pkt.bytes as u64;
        self.queue.push_back(pkt);
        EnqueueOutcome {
            accepted: true,
            marked,
            ..Default::default()
        }
    }

    fn dequeue(&mut self) -> Option<Box<Packet>> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.bytes as u64;
        Some(pkt)
    }

    fn queue_bytes(&self) -> u64 {
        self.bytes
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "tail_drop_ecn"
    }

    fn snapshot_queue(&self) -> Option<Vec<Packet>> {
        Some(self.queue.iter().map(|p| (**p).clone()).collect())
    }

    fn restore_queue(&mut self, pkts: Vec<Box<Packet>>) {
        for pkt in pkts {
            self.bytes += pkt.bytes as u64;
            self.queue.push_back(pkt);
        }
    }
}

/// pFabric strict-priority queue: serve the smallest remaining flow size
/// first (FIFO among equals); when full, drop from the tail of the
/// lowest-priority traffic. Never marks ECN — pFabric's fabric scheduling
/// replaces congestion signaling.
#[derive(Debug)]
pub struct PFabricQueue {
    /// Arrival order is the queue order; service order is by priority.
    queue: VecDeque<Box<Packet>>,
    bytes: u64,
    cap_bytes: u64,
}

impl PFabricQueue {
    pub fn new(cap_bytes: u64) -> Self {
        PFabricQueue {
            queue: VecDeque::new(),
            bytes: 0,
            cap_bytes,
        }
    }

    /// Index of the worst queued packet: highest `prio` value, latest
    /// arrival among ties (the "tail of the lowest priority").
    fn worst(&self) -> Option<usize> {
        let mut worst: Option<(u32, usize)> = None;
        for (i, p) in self.queue.iter().enumerate() {
            if worst.is_none_or(|(wp, _)| p.prio >= wp) {
                worst = Some((p.prio, i));
            }
        }
        worst.map(|(_, i)| i)
    }
}

impl QueueDiscipline for PFabricQueue {
    fn enqueue(&mut self, pkt: Box<Packet>) -> EnqueueOutcome {
        let mut evicted = Vec::new();
        while self.bytes + pkt.bytes as u64 > self.cap_bytes {
            match self.worst() {
                // A strictly less urgent packet is queued: evict it. On a
                // tie the newcomer is the tail of that priority and loses.
                Some(w) if self.queue[w].prio > pkt.prio => {
                    let victim = self.queue.remove(w).unwrap();
                    self.bytes -= victim.bytes as u64;
                    evicted.push((victim.flow, victim.seq));
                }
                _ => {
                    return EnqueueOutcome {
                        accepted: false,
                        dropped: evicted.len() as u32 + 1,
                        marked: false,
                        evicted,
                    };
                }
            }
        }
        self.bytes += pkt.bytes as u64;
        self.queue.push_back(pkt);
        EnqueueOutcome {
            accepted: true,
            dropped: evicted.len() as u32,
            marked: false,
            evicted,
        }
    }

    fn dequeue(&mut self) -> Option<Box<Packet>> {
        // Most urgent = smallest prio; earliest arrival breaks ties.
        let mut best: Option<(u32, usize)> = None;
        for (i, p) in self.queue.iter().enumerate() {
            if best.is_none_or(|(bp, _)| p.prio < bp) {
                best = Some((p.prio, i));
            }
        }
        let (_, i) = best?;
        let pkt = self.queue.remove(i).unwrap();
        self.bytes -= pkt.bytes as u64;
        Some(pkt)
    }

    fn queue_bytes(&self) -> u64 {
        self.bytes
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "pfabric"
    }

    fn snapshot_queue(&self) -> Option<Vec<Packet>> {
        Some(self.queue.iter().map(|p| (**p).clone()).collect())
    }

    fn restore_queue(&mut self, pkts: Vec<Box<Packet>>) {
        for pkt in pkts {
            self.bytes += pkt.bytes as u64;
            self.queue.push_back(pkt);
        }
    }
}

/// The static forwarding substrate: every directed channel (two per
/// topology link, two per server), the link list, and the server↔rack
/// numbering. Built once per simulation; the fault layer flips channel
/// `up` flags, the engine routes packets over it.
pub struct Fabric {
    pub(crate) channels: Vec<Channel>,
    pub(crate) links: Vec<Link>,
    /// First channel id of the host (server) channel block.
    pub(crate) host_ch_base: u32,
    /// Node ids `< num_switches` are switches; servers follow.
    pub(crate) num_switches: u32,
    /// ToR of each server, indexed by global server id.
    pub(crate) server_tor: Vec<NodeId>,
    /// First global server id of each rack (`u32::MAX` for rackless nodes).
    pub(crate) rack_base: Vec<u32>,
}

impl Fabric {
    /// Builds the channel set for `topo` under `cfg`, one queue-discipline
    /// instance per channel from `disc`. Channel numbering: link `l`'s
    /// a→b direction is channel `2l`, b→a is `2l+1`; after
    /// [`Fabric::host_ch_base`] come per-server (up, down) pairs.
    pub(crate) fn build(topo: &Topology, cfg: &SimConfig, disc: DisciplineFactory) -> Self {
        let mtu = cfg.mtu as u64;
        let link_cap = cfg.queue_pkts as u64 * mtu;
        let ecn_at = cfg.ecn_k_pkts as u64 * mtu;
        let mut channels = Vec::with_capacity(topo.num_links() * 2);
        for l in topo.links() {
            let gbps = cfg.link_gbps * l.capacity;
            channels.push(Channel::new(
                l.b,
                gbps,
                cfg.prop_delay_ns,
                disc(link_cap, ecn_at),
            ));
            channels.push(Channel::new(
                l.a,
                gbps,
                cfg.prop_delay_ns,
                disc(link_cap, ecn_at),
            ));
        }
        let host_ch_base = channels.len() as u32;
        let num_switches = topo.num_nodes() as u32;
        let mut server_tor = Vec::new();
        let mut rack_base = vec![u32::MAX; topo.num_nodes()];
        let host_cap = cfg.host_queue_pkts as u64 * mtu;
        for rack in 0..topo.num_nodes() as NodeId {
            let s = topo.servers_at(rack);
            if s == 0 {
                continue;
            }
            rack_base[rack as usize] = server_tor.len() as u32;
            for _ in 0..s {
                let server_node = num_switches + server_tor.len() as u32;
                // Up: server → ToR. The NIC queue marks ECN like a switch
                // port so DCTCP self-paces instead of overflowing the host
                // queue (real stacks backpressure at the qdisc).
                channels.push(Channel::new(
                    rack,
                    cfg.server_link_gbps,
                    cfg.prop_delay_ns,
                    disc(host_cap, ecn_at),
                ));
                // Down: ToR → server (a real switch port: ECN + drops).
                channels.push(Channel::new(
                    server_node,
                    cfg.server_link_gbps,
                    cfg.prop_delay_ns,
                    disc(link_cap, ecn_at),
                ));
                server_tor.push(rack);
            }
        }
        Fabric {
            channels,
            links: topo.links().to_vec(),
            host_ch_base,
            num_switches,
            server_tor,
            rack_base,
        }
    }

    /// Number of servers attached to the fabric.
    pub(crate) fn num_servers(&self) -> usize {
        self.server_tor.len()
    }

    /// Global server id for `(rack, server)`.
    pub(crate) fn server_id(&self, rack: NodeId, server: u32) -> u32 {
        let base = self.rack_base[rack as usize];
        assert!(base != u32::MAX, "rack {rack} has no servers");
        base + server
    }

    /// Recomputes every channel's up flag from the link and switch fault
    /// state. Downed channels keep serializing their queues — those
    /// packets drain onto the dead wire and are dropped at delivery.
    pub(crate) fn apply_fault_state(&mut self, down_links: &[bool], down_sw: &[bool]) {
        for (l, link) in self.links.iter().enumerate() {
            let up = !down_links[l] && !down_sw[link.a as usize] && !down_sw[link.b as usize];
            self.channels[2 * l].up = up;
            self.channels[2 * l + 1].up = up;
        }
        for s in 0..self.server_tor.len() {
            let up = !down_sw[self.server_tor[s] as usize];
            self.channels[self.host_ch_base as usize + 2 * s].up = up;
            self.channels[self.host_ch_base as usize + 2 * s + 1].up = up;
        }
    }

    /// Total congestion tail drops across all channels (includes
    /// priority evictions).
    pub(crate) fn total_congestion_drops(&self) -> u64 {
        self.channels.iter().map(|c| c.drops).sum()
    }

    /// Queued packets evicted by priority disciplines (a subset of
    /// [`Fabric::total_congestion_drops`]).
    pub(crate) fn total_evictions(&self) -> u64 {
        self.channels.iter().map(|c| c.evictions).sum()
    }

    /// Packets lost on dead or gray channels.
    pub(crate) fn total_fault_drops(&self) -> u64 {
        self.channels.iter().map(|c| c.fault_drops).sum()
    }

    /// Total ECN marks across all channels.
    pub(crate) fn total_marks(&self) -> u64 {
        self.channels.iter().map(|c| c.marks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pkt(bytes: u32, prio: u32) -> Box<Packet> {
        Box::new(Packet {
            flow: 0,
            seq: 0,
            bytes,
            ecn_ce: false,
            is_ack: false,
            ack_ecn: false,
            ts: 0,
            hop: 0,
            prio,
            path: Arc::new(vec![]),
        })
    }

    #[test]
    fn tail_drop_marks_above_threshold_and_drops_when_full() {
        let mut q = TailDropEcn::new(3 * 1500, 1500);
        assert!(q.enqueue(pkt(1500, 0)).accepted); // 0 < 1500: no mark
        let out = q.enqueue(pkt(1500, 0)); // queue holds 1500 ≥ K
        assert!(out.accepted && out.marked);
        assert!(q.enqueue(pkt(1500, 0)).accepted);
        let out = q.enqueue(pkt(1500, 0)); // 4500 + 1500 > cap
        assert_eq!(
            out,
            EnqueueOutcome {
                accepted: false,
                dropped: 1,
                marked: false,
                evicted: vec![],
            }
        );
        // FIFO order out, marks travel with the packets.
        assert!(!q.dequeue().unwrap().ecn_ce);
        assert!(q.dequeue().unwrap().ecn_ce);
        assert!(q.dequeue().unwrap().ecn_ce);
        assert!(q.dequeue().is_none());
        assert_eq!(q.queue_bytes(), 0);
    }

    #[test]
    fn pfabric_serves_smallest_remaining_first() {
        let mut q = PFabricQueue::new(10 * 1500);
        q.enqueue(pkt(1500, 50));
        q.enqueue(pkt(1500, 3));
        q.enqueue(pkt(1500, 7));
        assert_eq!(q.dequeue().unwrap().prio, 3);
        assert_eq!(q.dequeue().unwrap().prio, 7);
        assert_eq!(q.dequeue().unwrap().prio, 50);
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn pfabric_fifo_among_equal_priorities() {
        let mut q = PFabricQueue::new(10 * 1500);
        for seq in 0..3 {
            let mut p = pkt(1500, 5);
            p.seq = seq;
            q.enqueue(p);
        }
        assert_eq!(q.dequeue().unwrap().seq, 0);
        assert_eq!(q.dequeue().unwrap().seq, 1);
        assert_eq!(q.dequeue().unwrap().seq, 2);
    }

    #[test]
    fn pfabric_evicts_lowest_priority_when_full() {
        let mut q = PFabricQueue::new(3 * 1500);
        q.enqueue(pkt(1500, 10));
        let mut straggler = pkt(1500, 90);
        straggler.flow = 4;
        straggler.seq = 2;
        q.enqueue(straggler);
        q.enqueue(pkt(1500, 20));
        // Full. An urgent packet evicts the prio-90 straggler...
        let out = q.enqueue(pkt(1500, 1));
        assert!(out.accepted);
        assert_eq!(out.dropped, 1);
        assert_eq!(out.evicted, vec![(4, 2)], "victim identity reported");
        assert_eq!(q.queue_len(), 3);
        // ...while a hopeless one is rejected outright.
        let out = q.enqueue(pkt(1500, 99));
        assert!(!out.accepted);
        assert_eq!(out.dropped, 1);
        assert!(out.evicted.is_empty(), "rejection evicts nothing");
        // Ties lose too: the tail of the lowest priority is the newcomer.
        let out = q.enqueue(pkt(1500, 20));
        assert!(!out.accepted, "equal-priority newcomer must be the victim");
        assert_eq!(
            vec![
                q.dequeue().unwrap().prio,
                q.dequeue().unwrap().prio,
                q.dequeue().unwrap().prio
            ],
            vec![1, 10, 20]
        );
    }

    #[test]
    fn pfabric_never_marks() {
        let mut q = PFabricQueue::new(10 * 1500);
        for _ in 0..9 {
            assert!(!q.enqueue(pkt(1500, 1)).marked);
        }
        assert!(q.dequeue().is_some());
    }

    #[test]
    fn kind_builds_matching_discipline() {
        assert_eq!(
            QueueDiscKind::TailDropEcn.build(1, 1).name(),
            "tail_drop_ecn"
        );
        assert_eq!(QueueDiscKind::PFabric.build(1, 1).name(), "pfabric");
    }
}
