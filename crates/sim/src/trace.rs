//! The observability layer: structured event tracing and conservation
//! checking.
//!
//! The engine reports every packet-level state change — enqueue, dequeue,
//! delivery, each drop flavor, ECN marks, ACK progress, RTOs, flowlet and
//! path decisions, fault transitions — to a [`Tracer`] installed with
//! [`crate::Simulator::set_tracer`]. Three implementations ship:
//!
//! - [`NopTracer`] — the default. Reports `enabled() == false`, so the
//!   engine skips event construction entirely: untraced runs pay one
//!   predictable branch per site and stay byte-identical to the
//!   pre-tracing simulator.
//! - [`CountingTracer`] — folds events into [`TraceCounters`]
//!   (per-channel occupancy high-water marks, marks, drops by cause,
//!   global packet accounting) without storing the stream. This is what
//!   the invariant tests and the [`check_conservation`] checker consume.
//! - [`JsonlTracer`] — writes one compact JSON object per event to any
//!   `Write` sink via `dcn-json`. All numeric fields are integers, so the
//!   byte stream is exactly reproducible: same seed + same config ⇒
//!   byte-identical trace. The golden-trace regression tests diff these.
//!
//! Event schema (JSONL): every line is `{"t": <ns>, "ev": "<name>", ...}`.
//! Channel ids (`ch`) use the fabric numbering (link `l` → channels `2l`
//! and `2l+1`, then per-server up/down pairs); `flow` is the injection
//! index; `seq` is the packet index within the flow (for ACKs, the
//! cumulative count carried).

use crate::engine::Simulator;
use crate::stats::TraceCounters;
use crate::types::Ns;
use dcn_json::Json;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// One structured simulator event. All fields are plain integers/bools
/// (gray-loss probabilities become parts-per-million) so every rendering
/// is byte-stable; channel/flow ids use the engine's numbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A flow began transmitting (`src`/`dst` are global server ids).
    FlowStart {
        flow: u32,
        src: u32,
        dst: u32,
        bytes: u64,
        pkts: u32,
    },
    /// The receiver saw the last in-order packet.
    FlowFinish { flow: u32, fct_ns: Ns },
    /// The simulator terminated the flow (disconnected or run over).
    FlowFail { flow: u32 },
    /// A packet was created at a host (data at the sender, ACKs at the
    /// receiver). The conservation identity counts these.
    Send {
        flow: u32,
        seq: u32,
        is_ack: bool,
        bytes: u32,
    },
    /// The packet joined a busy channel's queue; `qlen`/`qbytes` are the
    /// occupancy *after* the enqueue (the high-water-mark source).
    Enqueue {
        ch: u32,
        flow: u32,
        seq: u32,
        is_ack: bool,
        qlen: u32,
        qbytes: u64,
    },
    /// The packet began serializing. Packets offered to an idle channel
    /// dequeue immediately without a matching enqueue.
    Dequeue {
        ch: u32,
        flow: u32,
        seq: u32,
        is_ack: bool,
    },
    /// The packet reached its end host.
    Deliver { flow: u32, seq: u32, is_ack: bool },
    /// The queue discipline set CE on the packet.
    EcnMark { ch: u32, flow: u32, seq: u32 },
    /// The discipline rejected the offered packet (tail drop).
    DropCongestion {
        ch: u32,
        flow: u32,
        seq: u32,
        is_ack: bool,
    },
    /// A queued packet was evicted to admit a more urgent one (pFabric);
    /// `flow`/`seq` identify the victim.
    DropEviction { ch: u32, flow: u32, seq: u32 },
    /// Lost on a dead or gray channel.
    DropFault {
        ch: u32,
        flow: u32,
        seq: u32,
        is_ack: bool,
    },
    /// Refused at the source: the selector had no route. The packet was
    /// never created, so conservation accounts these separately.
    DropNoRoute { flow: u32 },
    /// An ACK reached the sender; `cwnd_bytes` is the window after the
    /// transport's reaction.
    Ack {
        flow: u32,
        cum: u32,
        ecn: bool,
        rtt_ns: Ns,
        cwnd_bytes: u64,
    },
    /// A retransmission timeout fired; `backoff` is the new multiplier.
    Rto { flow: u32, backoff: u32 },
    /// The RTO re-salted the flowlet hash to steer off the old path.
    PathReselect { flow: u32, salt: u64 },
    /// A new flowlet chose a path of `hops` channels.
    FlowletSwitch { flow: u32, flowlet: u64, hops: u32 },
    /// A scheduled fault fired; `id` is the link/switch, `loss_ppm` the
    /// gray-loss probability in parts per million (0 for hard faults).
    Fault {
        kind: &'static str,
        id: u32,
        loss_ppm: u32,
    },
    /// The control plane finished rebuilding routes.
    Reconverge { epoch: u64 },
}

impl TraceEvent {
    /// The `"ev"` tag used in the JSONL schema.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::FlowStart { .. } => "flow_start",
            TraceEvent::FlowFinish { .. } => "flow_finish",
            TraceEvent::FlowFail { .. } => "flow_fail",
            TraceEvent::Send { .. } => "send",
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::Dequeue { .. } => "dequeue",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::EcnMark { .. } => "ecn_mark",
            TraceEvent::DropCongestion { .. } => "drop_congestion",
            TraceEvent::DropEviction { .. } => "drop_eviction",
            TraceEvent::DropFault { .. } => "drop_fault",
            TraceEvent::DropNoRoute { .. } => "drop_noroute",
            TraceEvent::Ack { .. } => "ack",
            TraceEvent::Rto { .. } => "rto",
            TraceEvent::PathReselect { .. } => "path_reselect",
            TraceEvent::FlowletSwitch { .. } => "flowlet_switch",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Reconverge { .. } => "reconverge",
        }
    }
}

/// Receives structured simulator events. Implementations must be cheap:
/// the engine calls [`Tracer::event`] from the hot path of every traced
/// run. `enabled()` is sampled once at install time — return `false`
/// (as [`NopTracer`] does) and the engine will not even construct events.
pub trait Tracer: Send {
    /// One simulator event at time `t`.
    fn event(&mut self, t: Ns, ev: &TraceEvent);

    /// Whether the engine should construct and deliver events at all.
    fn enabled(&self) -> bool {
        true
    }

    /// The folded counters, for tracers that maintain them.
    fn counters(&self) -> Option<&TraceCounters> {
        None
    }

    /// Monotone-clock violations seen so far, for tracers that watch for
    /// them ([`CountingTracer`]); `None` means not tracked.
    fn time_regressions(&self) -> Option<u64> {
        None
    }

    /// Called once when the run ends (flush buffers, close streams).
    fn finish(&mut self) {}

    /// Checkpoint support: the tracer's resumable state, or `None` when
    /// this tracer cannot be checkpointed (e.g. it streams to an
    /// arbitrary in-memory sink) — [`crate::Simulator::checkpoint`] then
    /// fails cleanly.
    fn snapshot(&self) -> Option<TracerSnapshot> {
        None
    }

    /// Checkpoint support: pushes buffered output to the underlying sink
    /// *without* ending the run, so the bytes on disk always cover the
    /// cursor a concurrent [`Tracer::snapshot`] reports.
    fn flush_output(&mut self) {}
}

/// Resumable tracer state captured by [`Tracer::snapshot`] and persisted
/// in checkpoints; [`crate::checkpoint`] rebuilds the matching tracer
/// from it on restore.
#[derive(Clone, Debug)]
pub enum TracerSnapshot {
    /// The disabled default tracer.
    Nop,
    /// A [`CountingTracer`]'s folded counters and clock-monotonicity
    /// state.
    Counting {
        counters: TraceCounters,
        last_t: Ns,
        time_regressions: u64,
    },
    /// A file-backed [`JsonlTracer`]: final output path plus the byte and
    /// line cursors into its in-progress temporary file.
    JsonlFile {
        path: String,
        bytes: u64,
        lines: u64,
    },
}

/// The default tracer: drops everything, reports itself disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopTracer;

impl Tracer for NopTracer {
    fn event(&mut self, _t: Ns, _ev: &TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }

    fn snapshot(&self) -> Option<TracerSnapshot> {
        Some(TracerSnapshot::Nop)
    }
}

/// Folds events into [`TraceCounters`] without storing the stream. Also
/// tracks clock monotonicity: event timestamps must never run backwards,
/// and the chaos-fuzz harness asserts
/// [`CountingTracer::time_regressions`] stays zero.
#[derive(Debug, Default)]
pub struct CountingTracer {
    pub(crate) counters: TraceCounters,
    /// Timestamp of the latest event seen.
    pub(crate) last_t: Ns,
    /// Events whose timestamp was earlier than a previously seen one.
    pub(crate) time_regressions: u64,
}

impl CountingTracer {
    pub fn new() -> Self {
        CountingTracer::default()
    }

    /// Events observed with a timestamp earlier than an already-seen one
    /// (0 on every well-behaved run — the monotone-clock invariant).
    pub fn time_regressions(&self) -> u64 {
        self.time_regressions
    }
}

impl Tracer for CountingTracer {
    fn event(&mut self, t: Ns, ev: &TraceEvent) {
        if t < self.last_t {
            self.time_regressions += 1;
        } else {
            self.last_t = t;
        }
        self.counters.record(ev);
    }

    fn counters(&self) -> Option<&TraceCounters> {
        Some(&self.counters)
    }

    fn time_regressions(&self) -> Option<u64> {
        Some(self.time_regressions)
    }

    fn snapshot(&self) -> Option<TracerSnapshot> {
        Some(TracerSnapshot::Counting {
            counters: self.counters.clone(),
            last_t: self.last_t,
            time_regressions: self.time_regressions,
        })
    }
}

/// Streams events as JSON Lines: one compact object per event. All
/// numeric fields are integers so traces are byte-stable across runs.
///
/// File-backed tracers ([`JsonlTracer::create`] / [`JsonlTracer::resume`])
/// are crash-safe: they stream into `<path>.tmp` and atomically rename to
/// the final path in [`Tracer::finish`], so an interrupted run never
/// leaves a truncated trace at the advertised location — and a resumed run
/// can truncate the temporary back to the checkpointed byte cursor and
/// continue it.
pub struct JsonlTracer<W: Write + Send> {
    out: io::BufWriter<W>,
    lines: u64,
    /// Bytes written (rendered lines + newlines) — the resume cursor.
    bytes: u64,
    /// Final output path for file-backed tracers (`None` for plain
    /// sinks); when set, data lives at `<path>.tmp` until `finish`.
    path: Option<String>,
}

impl JsonlTracer<std::fs::File> {
    /// Streams events toward `path`, writing through `<path>.tmp` until
    /// the run finishes (then renames into place).
    pub fn create(path: &str) -> io::Result<Self> {
        let f = std::fs::File::create(format!("{path}.tmp"))?;
        let mut t = JsonlTracer::new(f);
        t.path = Some(path.to_string());
        Ok(t)
    }

    /// Reopens the in-progress temporary for `path`, truncates it back to
    /// `bytes` (discarding lines written after the checkpoint), and
    /// continues appending from there.
    pub fn resume(path: &str, bytes: u64, lines: u64) -> io::Result<Self> {
        use std::io::Seek;
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(format!("{path}.tmp"))?;
        f.set_len(bytes)?;
        f.seek(io::SeekFrom::End(0))?;
        let mut t = JsonlTracer::new(f);
        t.path = Some(path.to_string());
        t.bytes = bytes;
        t.lines = lines;
        Ok(t)
    }
}

impl<W: Write + Send> JsonlTracer<W> {
    pub fn new(sink: W) -> Self {
        JsonlTracer {
            out: io::BufWriter::new(sink),
            lines: 0,
            bytes: 0,
            path: None,
        }
    }

    /// Events written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Bytes written so far (the checkpoint resume cursor).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl<W: Write + Send> Tracer for JsonlTracer<W> {
    fn event(&mut self, t: Ns, ev: &TraceEvent) {
        self.lines += 1;
        let line = event_json(t, ev).to_string();
        self.bytes += line.len() as u64 + 1;
        writeln!(self.out, "{line}").expect("trace sink write failed");
    }

    fn finish(&mut self) {
        self.out.flush().expect("trace sink flush failed");
        if let Some(path) = &self.path {
            std::fs::rename(format!("{path}.tmp"), path).expect("trace file rename failed");
        }
    }

    fn snapshot(&self) -> Option<TracerSnapshot> {
        self.path.as_ref().map(|p| TracerSnapshot::JsonlFile {
            path: p.clone(),
            bytes: self.bytes,
            lines: self.lines,
        })
    }

    fn flush_output(&mut self) {
        self.out.flush().expect("trace sink flush failed");
    }
}

/// A clonable in-memory `Write` sink, for capturing a [`JsonlTracer`]
/// stream in tests: keep one clone, hand the other to the tracer, and
/// read [`SharedBuf::contents`] after the run.
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    pub fn new() -> Self {
        SharedBuf::default()
    }

    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Renders one event as the JSONL object (without the trailing newline).
pub fn event_json(t: Ns, ev: &TraceEvent) -> Json {
    let mut fields: Vec<(&str, Json)> = vec![("t", Json::from(t)), ("ev", Json::from(ev.name()))];
    match *ev {
        TraceEvent::FlowStart {
            flow,
            src,
            dst,
            bytes,
            pkts,
        } => {
            fields.push(("flow", Json::from(flow)));
            fields.push(("src", Json::from(src)));
            fields.push(("dst", Json::from(dst)));
            fields.push(("bytes", Json::from(bytes)));
            fields.push(("pkts", Json::from(pkts)));
        }
        TraceEvent::FlowFinish { flow, fct_ns } => {
            fields.push(("flow", Json::from(flow)));
            fields.push(("fct", Json::from(fct_ns)));
        }
        TraceEvent::FlowFail { flow } => fields.push(("flow", Json::from(flow))),
        TraceEvent::Send {
            flow,
            seq,
            is_ack,
            bytes,
        } => {
            fields.push(("flow", Json::from(flow)));
            fields.push(("seq", Json::from(seq)));
            fields.push(("ack", Json::from(is_ack)));
            fields.push(("bytes", Json::from(bytes)));
        }
        TraceEvent::Enqueue {
            ch,
            flow,
            seq,
            is_ack,
            qlen,
            qbytes,
        } => {
            fields.push(("ch", Json::from(ch)));
            fields.push(("flow", Json::from(flow)));
            fields.push(("seq", Json::from(seq)));
            fields.push(("ack", Json::from(is_ack)));
            fields.push(("qlen", Json::from(qlen)));
            fields.push(("qbytes", Json::from(qbytes)));
        }
        TraceEvent::Dequeue {
            ch,
            flow,
            seq,
            is_ack,
        }
        | TraceEvent::DropCongestion {
            ch,
            flow,
            seq,
            is_ack,
        }
        | TraceEvent::DropFault {
            ch,
            flow,
            seq,
            is_ack,
        } => {
            fields.push(("ch", Json::from(ch)));
            fields.push(("flow", Json::from(flow)));
            fields.push(("seq", Json::from(seq)));
            fields.push(("ack", Json::from(is_ack)));
        }
        TraceEvent::DropEviction { ch, flow, seq } | TraceEvent::EcnMark { ch, flow, seq } => {
            fields.push(("ch", Json::from(ch)));
            fields.push(("flow", Json::from(flow)));
            fields.push(("seq", Json::from(seq)));
        }
        TraceEvent::DropNoRoute { flow } => fields.push(("flow", Json::from(flow))),
        TraceEvent::Deliver { flow, seq, is_ack } => {
            fields.push(("flow", Json::from(flow)));
            fields.push(("seq", Json::from(seq)));
            fields.push(("ack", Json::from(is_ack)));
        }
        TraceEvent::Ack {
            flow,
            cum,
            ecn,
            rtt_ns,
            cwnd_bytes,
        } => {
            fields.push(("flow", Json::from(flow)));
            fields.push(("cum", Json::from(cum)));
            fields.push(("ecn", Json::from(ecn)));
            fields.push(("rtt", Json::from(rtt_ns)));
            fields.push(("cwnd", Json::from(cwnd_bytes)));
        }
        TraceEvent::Rto { flow, backoff } => {
            fields.push(("flow", Json::from(flow)));
            fields.push(("backoff", Json::from(backoff)));
        }
        TraceEvent::PathReselect { flow, salt } => {
            fields.push(("flow", Json::from(flow)));
            fields.push(("salt", Json::from(salt)));
        }
        TraceEvent::FlowletSwitch {
            flow,
            flowlet,
            hops,
        } => {
            fields.push(("flow", Json::from(flow)));
            fields.push(("flowlet", Json::from(flowlet)));
            fields.push(("hops", Json::from(hops)));
        }
        TraceEvent::Fault { kind, id, loss_ppm } => {
            fields.push(("kind", Json::from(kind)));
            fields.push(("id", Json::from(id)));
            if loss_ppm > 0 {
                fields.push(("loss_ppm", Json::from(loss_ppm)));
            }
        }
        TraceEvent::Reconverge { epoch } => fields.push(("epoch", Json::from(epoch))),
    }
    Json::obj(fields)
}

/// Summary of the packet-conservation check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conservation {
    /// Packets created (data + ACKs).
    pub sent: u64,
    /// Packets that reached their end host.
    pub delivered: u64,
    /// Packets lost after creation (congestion + eviction + fault).
    pub dropped: u64,
    /// Packets still queued or on the wire when the run stopped.
    pub in_flight: u64,
}

/// Asserts the conservation invariant over a finished (or stopped) run:
/// every packet created was delivered, dropped with a recorded cause, or
/// is still in flight — and the tracer's counters agree with the fabric's
/// own accounting. Requires a [`CountingTracer`] (or any tracer exposing
/// [`TraceCounters`]) installed before the run. No-route drops are
/// checked separately: those packets are refused at the source and never
/// created.
pub fn check_conservation(sim: &Simulator) -> Result<Conservation, String> {
    let c = sim
        .trace_counters()
        .ok_or("check_conservation: no counting tracer installed")?;
    let drops = &c.drops;
    if c.marks != sim.total_marks() {
        return Err(format!(
            "mark mismatch: tracer {} vs fabric {}",
            c.marks,
            sim.total_marks()
        ));
    }
    if drops.congestion + drops.eviction != sim.total_congestion_drops() {
        return Err(format!(
            "congestion-drop mismatch: tracer {}+{} vs fabric {}",
            drops.congestion,
            drops.eviction,
            sim.total_congestion_drops()
        ));
    }
    if drops.fault + drops.noroute != sim.total_fault_drops() {
        return Err(format!(
            "fault-drop mismatch: tracer {}+{} vs fabric {}",
            drops.fault,
            drops.noroute,
            sim.total_fault_drops()
        ));
    }
    let sum = Conservation {
        sent: c.sent_data + c.sent_acks,
        delivered: c.delivered_data + c.delivered_acks,
        dropped: drops.congestion + drops.eviction + drops.fault,
        in_flight: sim.packets_in_flight(),
    };
    if sum.sent != sum.delivered + sum.dropped + sum.in_flight {
        return Err(format!(
            "conservation violated: sent {} != delivered {} + dropped {} + in-flight {}",
            sum.sent, sum.delivered, sum.dropped, sum.in_flight
        ));
    }
    // The engine keeps its own sent/delivered counters (for manifests and
    // telemetry, which must work without a tracer); they must agree with
    // the tracer's event-derived view.
    let own = sim.conservation();
    if (own.sent, own.delivered) != (sum.sent, sum.delivered) {
        return Err(format!(
            "intrinsic-counter mismatch: engine sent/delivered {}/{} vs tracer {}/{}",
            own.sent, own.delivered, sum.sent, sum.delivered
        ));
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_tracer_is_disabled() {
        assert!(!NopTracer.enabled());
        assert!(NopTracer.counters().is_none());
    }

    #[test]
    fn counting_tracer_folds_events() {
        let mut t = CountingTracer::new();
        t.event(
            0,
            &TraceEvent::Send {
                flow: 1,
                seq: 0,
                is_ack: false,
                bytes: 1500,
            },
        );
        t.event(
            10,
            &TraceEvent::Enqueue {
                ch: 3,
                flow: 1,
                seq: 0,
                is_ack: false,
                qlen: 2,
                qbytes: 3000,
            },
        );
        t.event(
            20,
            &TraceEvent::EcnMark {
                ch: 3,
                flow: 1,
                seq: 0,
            },
        );
        t.event(
            30,
            &TraceEvent::DropCongestion {
                ch: 3,
                flow: 1,
                seq: 1,
                is_ack: false,
            },
        );
        t.event(
            40,
            &TraceEvent::Deliver {
                flow: 1,
                seq: 0,
                is_ack: false,
            },
        );
        let c = t.counters().unwrap();
        assert_eq!(c.sent_data, 1);
        assert_eq!(c.delivered_data, 1);
        assert_eq!(c.marks, 1);
        assert_eq!(c.drops.congestion, 1);
        assert_eq!(c.drops.total(), 1);
        let ch = &c.per_channel[3];
        assert_eq!(ch.enqueues, 1);
        assert_eq!(ch.hwm_pkts, 2);
        assert_eq!(ch.hwm_bytes, 3000);
        assert_eq!(ch.marks, 1);
        assert_eq!(ch.drops_congestion, 1);
    }

    #[test]
    fn jsonl_lines_are_single_objects_with_integer_fields() {
        let buf = SharedBuf::new();
        let mut t = JsonlTracer::new(buf.clone());
        t.event(
            1200,
            &TraceEvent::Enqueue {
                ch: 7,
                flow: 2,
                seq: 5,
                is_ack: false,
                qlen: 1,
                qbytes: 1500,
            },
        );
        t.event(1300, &TraceEvent::Reconverge { epoch: 2 });
        t.finish();
        assert_eq!(t.lines(), 2);
        let s = String::from_utf8(buf.contents()).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"t": 1200, "ev": "enqueue", "ch": 7, "flow": 2, "seq": 5, "ack": false, "qlen": 1, "qbytes": 1500}"#
        );
        assert_eq!(lines[1], r#"{"t": 1300, "ev": "reconverge", "epoch": 2}"#);
        // Round-trips through the parser.
        for l in lines {
            let v = Json::parse(l).unwrap();
            assert!(v.get("t").unwrap().as_u64().is_some());
            assert!(v.get("ev").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn every_event_kind_renders_with_t_and_ev_first() {
        let events = [
            TraceEvent::FlowStart {
                flow: 0,
                src: 1,
                dst: 2,
                bytes: 9,
                pkts: 1,
            },
            TraceEvent::FlowFinish { flow: 0, fct_ns: 5 },
            TraceEvent::FlowFail { flow: 0 },
            TraceEvent::Send {
                flow: 0,
                seq: 0,
                is_ack: true,
                bytes: 40,
            },
            TraceEvent::Enqueue {
                ch: 0,
                flow: 0,
                seq: 0,
                is_ack: false,
                qlen: 0,
                qbytes: 0,
            },
            TraceEvent::Dequeue {
                ch: 0,
                flow: 0,
                seq: 0,
                is_ack: false,
            },
            TraceEvent::Deliver {
                flow: 0,
                seq: 0,
                is_ack: false,
            },
            TraceEvent::EcnMark {
                ch: 0,
                flow: 0,
                seq: 0,
            },
            TraceEvent::DropCongestion {
                ch: 0,
                flow: 0,
                seq: 0,
                is_ack: false,
            },
            TraceEvent::DropEviction {
                ch: 0,
                flow: 0,
                seq: 0,
            },
            TraceEvent::DropFault {
                ch: 0,
                flow: 0,
                seq: 0,
                is_ack: false,
            },
            TraceEvent::DropNoRoute { flow: 0 },
            TraceEvent::Ack {
                flow: 0,
                cum: 1,
                ecn: false,
                rtt_ns: 2,
                cwnd_bytes: 3,
            },
            TraceEvent::Rto {
                flow: 0,
                backoff: 2,
            },
            TraceEvent::PathReselect { flow: 0, salt: 1 },
            TraceEvent::FlowletSwitch {
                flow: 0,
                flowlet: 1,
                hops: 3,
            },
            TraceEvent::Fault {
                kind: "link_down",
                id: 4,
                loss_ppm: 0,
            },
            TraceEvent::Reconverge { epoch: 1 },
        ];
        for ev in &events {
            let line = event_json(77, ev).to_string();
            assert!(
                line.starts_with(&format!(r#"{{"t": 77, "ev": "{}""#, ev.name())),
                "bad prefix: {line}"
            );
            // Byte-stability: no float rendering anywhere.
            assert!(!line.contains(".0"), "float leaked into {line}");
            assert!(Json::parse(&line).is_ok(), "unparseable: {line}");
        }
    }

    #[test]
    fn gray_fault_loss_renders_as_ppm_integer() {
        let line = event_json(
            5,
            &TraceEvent::Fault {
                kind: "link_gray",
                id: 3,
                loss_ppm: 20_000,
            },
        )
        .to_string();
        assert_eq!(
            line,
            r#"{"t": 5, "ev": "fault", "kind": "link_gray", "id": 3, "loss_ppm": 20000}"#
        );
    }
}
