//! Engine self-observability counters.
//!
//! The parallel engine exposes two disjoint counter sets, segregated the
//! same way the bench harness splits `PERF_WALL_CLOCK_FIELDS` from
//! simulated quantities:
//!
//! - **Deterministic counters** ([`EngineCounters`]) — pure functions of
//!   the event schedule: events drained per shard, cross-shard packets
//!   per mailbox pair, epoch/barrier count, calendar occupancy
//!   high-water, ladder spills, counting-scatter fallbacks, arena
//!   live/high-water, and trace merge-order ties. Because the schedule is
//!   invariant to `SimConfig::threads`, these are **byte-identical at
//!   every thread count** — the parallel-determinism suite asserts it —
//!   and they snapshot/restore through checkpoints exactly.
//! - **Wall-clock counters** ([`WallClockCounters`]) — per-shard drain
//!   time, coordinator barrier wait, and mailbox flush time, measured
//!   with `Instant`. These vary run to run and machine to machine, so
//!   they are gated behind `SimConfig::wall_counters` (off by default;
//!   the gate keeps the hot loop free of clock reads), never serialized
//!   into checkpoints, and listed in every diff tool's skip list (see
//!   [`WALL_CLOCK_COUNTER_FIELDS`]).
//!
//! The deterministic set is maintained off the per-event hot path where
//! possible: per-shard event totals accumulate at epoch barriers from the
//! existing per-epoch deltas, cross-shard counts accumulate once per
//! mailbox flush, and the calendar/arena counters live inside branches
//! that already execute rarely (ladder migration, scatter fallback, slab
//! growth). The `trace_overhead` bench gate holds the engine to its
//! blessed no-observability throughput floor with all of this in place.

use crate::shard::NUM_SHARDS;

/// Manifest leaf names of the wall-clock counter set — the names
/// `dcnstat diff` (via `dcn-core`'s `WALL_CLOCK_FIELDS`) must skip so
/// same-seed runs at different thread counts diff clean.
pub const WALL_CLOCK_COUNTER_FIELDS: [&str; 3] =
    ["drain_ns", "barrier_wait_ns", "mailbox_flush_ns"];

/// Deterministic per-shard counters; see the module docs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Events this shard has drained over the whole run.
    pub events: u64,
    /// Packets this shard posted to each destination shard's mailbox
    /// (`cross_shard_sent[self] == 0`: local deliveries never mail).
    pub cross_shard_sent: [u64; NUM_SHARDS],
    /// High-water mark of the shard calendar's pending-event population.
    pub calendar_peak: u64,
    /// Ladder→ring migrations: events that sat beyond the ring horizon
    /// and were re-filed into buckets as the cursor advanced.
    pub ladder_spills: u64,
    /// Sub-bucket sorts that fell back from the counting scatter to a
    /// comparison sort (per-`t` seq monotonicity broken by a ladder
    /// migration).
    pub scatter_fallbacks: u64,
    /// Packets live in the shard's arena right now.
    pub arena_live: u64,
    /// High-water mark of live packets in the shard's arena.
    pub arena_high_water: u64,
}

impl ShardCounters {
    /// Total packets this shard mailed to other shards.
    pub fn cross_shard_total(&self) -> u64 {
        self.cross_shard_sent.iter().sum()
    }
}

/// The deterministic counter set for a whole run; see the module docs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Data-plane epochs executed (one barrier each).
    pub epochs: u64,
    /// Same-timestamp candidates passed over during the barrier's k-way
    /// trace merge (lowest shard wins; 0 when tracing is off).
    pub merge_ties: u64,
    /// Per-shard counters, indexed by shard id (always [`NUM_SHARDS`]).
    pub shards: Vec<ShardCounters>,
}

impl EngineCounters {
    /// Total events drained, summed over shards.
    pub fn events_total(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Total cross-shard packets, summed over all mailbox pairs.
    pub fn cross_shard_total(&self) -> u64 {
        self.shards.iter().map(|s| s.cross_shard_total()).sum()
    }

    /// Busiest shard's event count over the mean — the load-imbalance
    /// figure `dcnstat shards` reports (1.0 = perfectly balanced; 0.0
    /// when no events ran).
    pub fn imbalance(&self) -> f64 {
        let total = self.events_total();
        if total == 0 || self.shards.is_empty() {
            return 0.0;
        }
        let max = self.shards.iter().map(|s| s.events).max().unwrap_or(0);
        max as f64 * self.shards.len() as f64 / total as f64
    }
}

/// The wall-clock counter set; all zero unless `SimConfig::wall_counters`
/// was set. See the module docs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WallClockCounters {
    /// Time each shard spent draining events, by shard id.
    pub drain_ns: Vec<u64>,
    /// Coordinator time spent waiting for workers at epoch barriers.
    pub barrier_wait_ns: u64,
    /// Total time spent posting per-shard out-buffers to the mailboxes.
    pub mailbox_flush_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_uniform_load_is_one() {
        let mut c = EngineCounters {
            shards: vec![ShardCounters::default(); NUM_SHARDS],
            ..Default::default()
        };
        for s in &mut c.shards {
            s.events = 100;
        }
        assert_eq!(c.events_total(), 800);
        assert!((c.imbalance() - 1.0).abs() < 1e-12);
        c.shards[0].events = 800;
        assert!(c.imbalance() > 1.9, "skew must raise the figure");
    }

    #[test]
    fn empty_counters_are_safe() {
        let c = EngineCounters::default();
        assert_eq!(c.events_total(), 0);
        assert_eq!(c.cross_shard_total(), 0);
        assert_eq!(c.imbalance(), 0.0);
    }

    #[test]
    fn cross_shard_total_sums_mailbox_pairs() {
        let mut s = ShardCounters::default();
        s.cross_shard_sent[1] = 3;
        s.cross_shard_sent[7] = 4;
        assert_eq!(s.cross_shard_total(), 7);
    }
}
