//! The fixed shard decomposition behind the parallel engine.
//!
//! The simulator always partitions the fabric's nodes (switches and
//! server hosts) into [`NUM_SHARDS`] shards, whatever `SimConfig::threads`
//! says. Threads only decide how many OS workers *execute* those shards
//! each epoch: worker `w` of `T` drains every shard `s` with
//! `s % T == w`. Because the decomposition, the per-shard event order,
//! and the barrier merge order are all functions of the topology and the
//! seed alone — never of the thread count — simulated output is
//! byte-identical at every `threads` setting. That is the determinism
//! invariant the parallel-determinism property tests and the ci.sh
//! `threads=1` vs `threads=4` gate enforce.
//!
//! Shard assignment hashes the topology fingerprint with the node id
//! (splitmix64), so it is stable across runs and processes and needs no
//! extra state in checkpoints: restore recomputes it from the topology.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::calendar::CalendarQueue;
use crate::mailbox::Mail;
use crate::slab::PacketArena;
use crate::trace::TraceEvent;
use crate::types::Ns;

/// The engine's fixed shard count. `SimConfig::threads` is clamped to
/// `1..=NUM_SHARDS`; raising this would change event interleaving and
/// therefore golden traces, so it is a constant, not a knob.
pub const NUM_SHARDS: usize = 8;

/// splitmix64 finalizer — the engine's stateless hash for shard
/// assignment and counter-based gray-loss draws.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Deterministic node → shard assignment: hash of the topology
/// fingerprint and the node id. `num_nodes` counts switches *and* server
/// hosts (servers are nodes `num_switches..`).
pub(crate) fn shard_map(topo_fingerprint: u64, num_nodes: usize) -> Vec<u8> {
    (0..num_nodes as u64)
        .map(|n| {
            let h = mix64(topo_fingerprint ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            (h % NUM_SHARDS as u64) as u8
        })
        .collect()
}

/// Everything one shard owns: its calendar, its packet arena, and the
/// per-epoch side buffers the coordinator drains at barriers. Only the
/// worker assigned to the shard touches it during an epoch; only the
/// coordinator touches it between epochs.
pub(crate) struct ShardState {
    pub(crate) queue: CalendarQueue,
    pub(crate) pkts: PacketArena,
    /// Cross-shard sends batched locally, one bucket per destination
    /// shard; flushed to the [`crate::mailbox::Mailboxes`] once per epoch.
    pub(crate) out: Vec<Vec<Mail>>,
    /// Trace events emitted this epoch, time-nondecreasing; k-way merged
    /// into the tracer at the barrier.
    pub(crate) trace_buf: Vec<(Ns, TraceEvent)>,
    /// `(channel, wire bytes)` transmissions this epoch, drained into
    /// telemetry's per-channel accumulators at the barrier.
    pub(crate) tx_notes: Vec<(u32, u32)>,
    /// Flows that hit a fault this epoch (`(flow, t)`); the barrier
    /// applies the earliest hit per flow.
    pub(crate) fault_hits: Vec<(u32, Ns)>,
    /// Fault drops observed on channels owned by *other* shards
    /// (arrival-side drops on a dead wire); merged at the barrier.
    pub(crate) remote_fault_drops: Vec<u32>,
    /// No-route drops by senders in this shard this epoch.
    pub(crate) noroute: u64,
    /// Measurement-window flows that finished this epoch.
    pub(crate) window_finished: u64,
    /// Sparse goodput deltas `(ms bin, bytes)` this epoch.
    pub(crate) goodput: Vec<(u32, u64)>,
    pub(crate) events: u64,
    pub(crate) sent: u64,
    pub(crate) delivered: u64,
    /// Highest event time this shard has processed.
    pub(crate) last_t: Ns,
    /// Whole-run event total (unlike `events`, never reset at barriers;
    /// the barrier accumulates the per-epoch delta into it). Part of the
    /// deterministic counter set, so it survives checkpoints.
    pub(crate) events_total: u64,
    /// Whole-run cross-shard packets posted per destination shard
    /// (accumulated once per mailbox flush). Deterministic; checkpointed.
    pub(crate) xshard_sent: [u64; NUM_SHARDS],
    /// Wall-clock time spent draining this shard's calendar (zero unless
    /// `SimConfig::wall_counters`; never checkpointed).
    pub(crate) wall_drain_ns: u64,
    /// Wall-clock time spent flushing this shard's out-buffers to the
    /// mailboxes (same gating as `wall_drain_ns`).
    pub(crate) wall_flush_ns: u64,
}

impl ShardState {
    pub(crate) fn new() -> Self {
        ShardState {
            queue: CalendarQueue::new(),
            pkts: PacketArena::new(),
            out: (0..NUM_SHARDS).map(|_| Vec::new()).collect(),
            trace_buf: Vec::new(),
            tx_notes: Vec::new(),
            fault_hits: Vec::new(),
            remote_fault_drops: Vec::new(),
            noroute: 0,
            window_finished: 0,
            goodput: Vec::new(),
            events: 0,
            sent: 0,
            delivered: 0,
            last_t: 0,
            events_total: 0,
            xshard_sent: [0; NUM_SHARDS],
            wall_drain_ns: 0,
            wall_flush_ns: 0,
        }
    }
}

/// A shard behind an `UnsafeCell` so the worker scope can reach it
/// through a shared reference.
///
/// Safety protocol: during an epoch exactly one worker dereferences each
/// slot (worker `w` owns shards `s % T == w`); between the barrier
/// atomics, only the coordinator does. The Release/Acquire pairs in
/// [`EpochSync`] order those accesses.
pub(crate) struct ShardSlot(pub(crate) UnsafeCell<ShardState>);

unsafe impl Sync for ShardSlot {}

impl ShardSlot {
    pub(crate) fn new() -> Self {
        ShardSlot(UnsafeCell::new(ShardState::new()))
    }

    /// Coordinator-only access between epochs (callers uphold the slot's
    /// safety protocol).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self) -> &mut ShardState {
        &mut *self.0.get()
    }
}

/// Barrier coordination between the coordinator and `T - 1` workers.
///
/// The coordinator publishes an epoch (`end` horizon, then an epoch-count
/// bump with Release); workers spin on the count with Acquire, drain
/// their shards to the horizon, and bump `done` with Release; the
/// coordinator spins on `done` with Acquire. Spin loops yield after a
/// short burst so the engine stays polite on oversubscribed machines
/// (threads > cores is a supported, merely slower, configuration).
pub(crate) struct EpochSync {
    epoch: AtomicU64,
    end: AtomicU64,
    done: AtomicUsize,
    quit: AtomicBool,
}

const SPINS_BEFORE_YIELD: u32 = 64;

impl EpochSync {
    pub(crate) fn new() -> Self {
        EpochSync {
            epoch: AtomicU64::new(0),
            end: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            quit: AtomicBool::new(false),
        }
    }

    /// Coordinator: start the next epoch with horizon `end`.
    pub(crate) fn publish(&self, end: Ns) {
        self.end.store(end, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Worker: wait for an epoch newer than `last`; `None` means shut down.
    pub(crate) fn await_epoch(&self, last: u64) -> Option<(u64, Ns)> {
        let mut spins = 0u32;
        loop {
            if self.quit.load(Ordering::Acquire) {
                return None;
            }
            let e = self.epoch.load(Ordering::Acquire);
            if e != last {
                return Some((e, self.end.load(Ordering::Acquire)));
            }
            spins += 1;
            if spins > SPINS_BEFORE_YIELD {
                std::thread::yield_now();
            }
        }
    }

    /// Worker: signal this epoch's shards are drained and flushed.
    pub(crate) fn finish_epoch(&self) {
        self.done.fetch_add(1, Ordering::Release);
    }

    /// Coordinator: wait for all `workers` to finish, then reset the
    /// count for the next epoch.
    pub(crate) fn wait_workers(&self, workers: usize) {
        let mut spins = 0u32;
        while self.done.load(Ordering::Acquire) != workers {
            spins += 1;
            if spins > SPINS_BEFORE_YIELD {
                std::thread::yield_now();
            }
        }
        self.done.store(0, Ordering::Relaxed);
    }

    /// Coordinator: release the workers for good. The epoch bump wakes
    /// any worker parked in [`EpochSync::await_epoch`].
    pub(crate) fn shutdown(&self) {
        self.quit.store(true, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_is_deterministic_and_balanced() {
        let a = shard_map(0xDEAD_BEEF, 4096);
        let b = shard_map(0xDEAD_BEEF, 4096);
        assert_eq!(a, b);
        let mut counts = [0usize; NUM_SHARDS];
        for &s in &a {
            assert!((s as usize) < NUM_SHARDS);
            counts[s as usize] += 1;
        }
        // A uniform hash over 4096 nodes should land every shard within
        // a factor of two of the mean.
        for &c in &counts {
            assert!(c > 256 && c < 1024, "unbalanced shard map: {counts:?}");
        }
    }

    #[test]
    fn shard_map_depends_on_fingerprint() {
        assert_ne!(shard_map(1, 256), shard_map(2, 256));
    }

    #[test]
    fn epoch_sync_round_trip() {
        let sync = EpochSync::new();
        std::thread::scope(|scope| {
            let s = &sync;
            scope.spawn(move || {
                let mut last = 0;
                while let Some((e, end)) = s.await_epoch(last) {
                    assert_eq!(end, 100 * e);
                    last = e;
                    s.finish_epoch();
                }
            });
            for e in 1..=5u64 {
                sync.publish(100 * e);
                sync.wait_workers(1);
            }
            sync.shutdown();
        });
    }
}
