//! Per-shard-pair mailboxes for cross-shard packet events.
//!
//! During an epoch a worker never touches another shard's calendar.
//! A packet that crosses a shard boundary (its Deliver lands on a node
//! owned elsewhere) is moved *by value* into the sender's local per-pair
//! batch; at epoch end the worker flushes each non-empty batch into the
//! matching `(src, dst)` mailbox under its mutex — one lock per pair per
//! epoch, not per packet. At the barrier the coordinator drains the
//! boxes in a fixed `(dst shard, then src shard)` scan, re-allocating
//! each packet in the destination shard's arena and pushing it onto the
//! destination calendar. Calendar sequence numbers are assigned in that
//! merge order, so same-timestamp cross-shard events pop in
//! `(t, src shard, source emission order)` — a deterministic function of
//! the event set, independent of thread count and lock timing.
//!
//! Conservative lookahead guarantees every mailed event's timestamp is
//! at or past the epoch horizon (debug-asserted in the engine), so a
//! mailed packet can never be needed inside the epoch that produced it.

use std::sync::Mutex;

use crate::shard::NUM_SHARDS;
use crate::types::{Ns, Packet};

/// One cross-shard packet event: a Deliver for `pkt` at absolute time `t`.
pub(crate) struct Mail {
    pub(crate) t: Ns,
    pub(crate) pkt: Packet,
}

/// `NUM_SHARDS x NUM_SHARDS` mutex-batched mailboxes, indexed
/// `src * NUM_SHARDS + dst`.
pub(crate) struct Mailboxes {
    slots: Vec<Mutex<Vec<Mail>>>,
}

impl Mailboxes {
    pub(crate) fn new() -> Self {
        Mailboxes {
            slots: (0..NUM_SHARDS * NUM_SHARDS)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// Worker-side: append a whole local batch (keeps its capacity for
    /// the next epoch). One lock acquisition per pair per epoch.
    pub(crate) fn post(&self, src: usize, dst: usize, batch: &mut Vec<Mail>) {
        if batch.is_empty() {
            return;
        }
        let mut slot = self.slots[src * NUM_SHARDS + dst].lock().unwrap();
        slot.append(batch);
    }

    /// Coordinator-side: drain everything addressed to `dst`, visiting
    /// source shards in ascending order — the fixed merge order the
    /// determinism argument relies on.
    pub(crate) fn drain_to(&self, dst: usize, mut sink: impl FnMut(Mail)) {
        for src in 0..NUM_SHARDS {
            let mut slot = self.slots[src * NUM_SHARDS + dst].lock().unwrap();
            for mail in slot.drain(..) {
                sink(mail);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pkt(flow: u32) -> Packet {
        Packet {
            flow,
            seq: 0,
            bytes: 40,
            ecn_ce: false,
            is_ack: false,
            ack_ecn: false,
            ts: 0,
            hop: 0,
            prio: 0,
            path: Arc::new(vec![0]),
        }
    }

    #[test]
    fn drains_in_src_shard_order() {
        let boxes = Mailboxes::new();
        // Post out of source order; the drain must still visit src 1
        // before src 5.
        let mut b5 = vec![Mail {
            t: 10,
            pkt: pkt(50),
        }];
        let mut b1 = vec![
            Mail {
                t: 10,
                pkt: pkt(10),
            },
            Mail {
                t: 12,
                pkt: pkt(11),
            },
        ];
        boxes.post(5, 3, &mut b5);
        boxes.post(1, 3, &mut b1);
        assert!(b5.is_empty() && b1.is_empty());
        let mut seen = Vec::new();
        boxes.drain_to(3, |m| seen.push(m.pkt.flow));
        assert_eq!(seen, vec![10, 11, 50]);
        // Drained boxes are empty.
        let mut again = Vec::new();
        boxes.drain_to(3, |m| again.push(m.pkt.flow));
        assert!(again.is_empty());
    }

    #[test]
    fn post_preserves_batch_capacity() {
        let boxes = Mailboxes::new();
        let mut batch = Vec::with_capacity(64);
        batch.push(Mail { t: 1, pkt: pkt(0) });
        boxes.post(0, 1, &mut batch);
        assert!(batch.is_empty());
        assert!(batch.capacity() >= 64);
    }
}
