//! The engine layer: sharded event queues, clock, and dispatch loop.
//!
//! [`Simulator`] owns the three lower layers and wires them together:
//!
//! - **time** — [`NUM_SHARDS`] calendar queues of `(t, seq)`-ordered
//!   events, one per shard of the node set; the monotonically increasing
//!   per-shard `seq` makes same-timestamp ordering (and therefore every
//!   run) deterministic,
//! - **hosts** — [`Flow`] state driven by a pluggable
//!   [`Transport`] (DCTCP by default; see [`crate::host`]),
//! - **fabric** — directed channels ([`Channels`](crate::channel::Channels),
//!   struct-of-arrays) with per-port
//!   [`QueueDiscipline`](crate::switch::QueueDiscipline)s (see
//!   [`crate::switch`]), degraded by the fault layer ([`crate::fault`]).
//!
//! # Parallel execution
//!
//! The engine is a conservative parallel discrete-event simulator. Nodes
//! (switches and hosts) are partitioned into [`NUM_SHARDS`] fixed shards
//! by a hash of the topology fingerprint ([`crate::shard::shard_map`]);
//! every event belongs to exactly one shard (the one owning the node
//! where it takes effect), and each shard has its own calendar queue and
//! packet arena. Time advances in epochs: the coordinator computes the
//! global minimum next-event time `T`, sets the epoch horizon to
//! `T + lookahead` (the minimum serialization + propagation latency of
//! any channel — no packet can cross a shard boundary sooner), and all
//! shards drain their queues up to the horizon in parallel. Deliveries
//! that land on another shard are batched into mutex-protected mailboxes
//! and merged into the destination calendars at the epoch barrier in a
//! fixed `(dst, src, emission order)` order.
//!
//! **The schedule is a pure function of the shard partition, never of
//! the worker count.** `SimConfig::threads` only chooses how many OS
//! threads drain the 8 shards (worker `w` of `T` takes shards
//! `s ≡ w (mod T)`); the event interleaving, and therefore every output
//! byte, is identical at any thread count. Control-plane events (faults,
//! reconvergence) and telemetry sampling run on the coordinator between
//! epochs.
//!
//! In-flight packets live in per-shard [`PacketArena`](crate::slab::PacketArena)
//! slabs and travel through events and queues as dense [`PktId`]s — the
//! per-packet path does no heap allocation and no pointer chasing; a
//! cross-shard hop copies the packet by value through its mailbox.
//!
//! Servers are explicit endpoints attached to their ToR by a pair of host
//! channels; switches are source-routed (the path is chosen per flowlet at
//! the sender, which exactly reproduces per-hop ECMP hashing because the
//! selector hashes per hop — see `dcn-routing`).
//!
//! The default transport is DCTCP (Alizadeh et al., SIGCOMM 2010) with the
//! paper's constants: ECN marking at 20 full packets, flowlet gap 50 µs.
//! Loss recovery is fast-retransmit on 3 duplicate ACKs plus a go-back-N
//! RTO. The engine owns the transport-independent halves of recovery
//! (timer arming/backoff, sequence rewinding, flowlet re-salting);
//! transports decide what happens to the window.

use crate::channel::Offer;
use crate::counters::{EngineCounters, ShardCounters, WallClockCounters};
use crate::fault::{component_labels, gray_drop, FaultController, FaultPlan, RemappedSelector};
use crate::host::{transport_for, ChannelPath, Flow, FlowRx, Transport};
use crate::mailbox::{Mail, Mailboxes};
use crate::shard::{shard_map, EpochSync, ShardSlot, ShardState, NUM_SHARDS};
use crate::slab::PktId;
use crate::stats::{DropCounters, FlowRecord, TraceCounters};
use crate::switch::{DisciplineFactory, Fabric};
use crate::telemetry::{Sample, Telemetry};
use crate::trace::{Conservation, NopTracer, TraceEvent, Tracer};
use crate::types::{Ns, Packet, SimConfig, MS};
use dcn_routing::ecmp::hash3;
use dcn_routing::{KspSelector, PathSelector};
use dcn_topology::{NodeId, Topology};
use dcn_workloads::FlowEvent;
use std::cell::UnsafeCell;
use std::sync::Arc;
use std::time::Instant;

const HEADER_BYTES: u32 = 40;

/// Data-plane events; each belongs to exactly one shard.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    FlowStart(u32),
    TxFree(u32),
    Deliver(PktId),
    Rto(u32, u32),
}

/// Control-plane events; these run on the coordinator between epochs so
/// they can mutate global state (channel up/down, the path selector).
#[derive(Debug, Clone, Copy)]
pub(crate) enum CtrlEv {
    /// A scheduled fault fires (index into the installed plan's events).
    Fault(u32),
    /// The control plane finishes reconverging. Tagged with an epoch so
    /// that of several queued rebuilds only the newest takes effect.
    Reconverge(u64),
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct CtrlEntry {
    pub(crate) t: Ns,
    pub(crate) seq: u64,
    pub(crate) ev: CtrlEv,
}

/// State shared read-mostly across worker threads during an epoch.
///
/// Interior mutability discipline (why the `unsafe impl Sync` is sound):
///
/// - `flows[i]` is only touched by the shard owning flow `i`'s *source*
///   host; `rx[i]` only by the shard owning its *destination* host.
/// - Channel dynamic state is owner-exclusive per epoch (see
///   [`crate::channel`]); the barrier-published fields (`up`,
///   `loss_prob`) are written by the coordinator between epochs only.
/// - `selector` is read by workers during epochs and replaced by the
///   coordinator (reconvergence) between epochs.
pub(crate) struct Shared {
    pub(crate) cfg: SimConfig,
    pub(crate) fabric: Fabric,
    pub(crate) flows: Vec<UnsafeCell<Flow>>,
    pub(crate) rx: Vec<UnsafeCell<FlowRx>>,
    pub(crate) transport: Box<dyn Transport>,
    pub(crate) selector: UnsafeCell<Box<dyn PathSelector>>,
    /// Congestion-oracle routing (§7.1 exploration): when set, flowlet
    /// paths are chosen as the least-queued of the k shortest paths,
    /// scored against live global queue occupancy — which is why the
    /// oracle requires `threads == 1`.
    pub(crate) oracle: Option<KspSelector>,
    /// Node → shard map (both switches and hosts), fixed at build time.
    pub(crate) node_shard: Vec<u8>,
    /// Seed of the installed fault plan (drives counter-based gray loss).
    pub(crate) plan_seed: u64,
    /// Cached `tracer.enabled()`: every emission site guards on this one
    /// bool so untraced runs skip event construction entirely.
    pub(crate) trace_on: bool,
    /// Whether a telemetry sampler is installed (gates per-tx notes).
    pub(crate) tel_on: bool,
}

unsafe impl Sync for Shared {}

impl Shared {
    /// Caller must hold shard ownership of flow `fid`'s source host (or
    /// be the coordinator between epochs).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn flow(&self, fid: u32) -> &mut Flow {
        &mut *self.flows[fid as usize].get()
    }

    /// Caller must hold shard ownership of flow `fid`'s destination host
    /// (or be the coordinator between epochs).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn rx(&self, fid: u32) -> &mut FlowRx {
        &mut *self.rx[fid as usize].get()
    }

    #[inline]
    pub(crate) fn shard_of_node(&self, node: u32) -> usize {
        self.node_shard[node as usize] as usize
    }

    #[inline]
    pub(crate) fn host_node(&self, server: u32) -> u32 {
        self.fabric.num_switches + server
    }
}

/// The packet-level simulator.
pub struct Simulator {
    pub(crate) sh: Shared,
    pub(crate) shards: Vec<ShardSlot>,
    pub(crate) mail: Mailboxes,
    pub(crate) now: Ns,
    pub(crate) window: (Ns, Ns),
    pub(crate) window_remaining: usize,
    pub(crate) events_processed: u64,
    /// The full (pre-fault) topology, kept to derive survivor views.
    pub(crate) topo: Topology,
    pub(crate) faults: FaultController,
    /// Control-plane schedule, sorted by `(t, seq)`; `ctrl_pos` is the
    /// cursor of the next entry to fire.
    pub(crate) ctrl: Vec<CtrlEntry>,
    pub(crate) ctrl_pos: usize,
    pub(crate) ctrl_seq: u64,
    /// Bytes newly acknowledged per 1-ms bin (goodput timeline).
    pub(crate) goodput_bins: Vec<u64>,
    /// The observability sink ([`crate::trace`]); [`NopTracer`] by
    /// default. Fed at epoch barriers from the per-shard buffers.
    pub(crate) tracer: Box<dyn Tracer>,
    /// The time-series sampler ([`crate::telemetry`]); `None` by default.
    pub(crate) telemetry: Option<Box<Telemetry>>,
    /// Cached next sample deadline (`u64::MAX` when telemetry is off).
    pub(crate) telemetry_next: Ns,
    /// Packets created (data + ACKs) — intrinsic conservation accounting.
    pub(crate) pkts_sent: u64,
    /// Packets that reached their end host.
    pub(crate) pkts_delivered: u64,
    /// The down-link / down-switch vectors behind the selector's last
    /// reconvergence rebuild (`None` while routing still sees the full
    /// topology). Checkpoints persist this so a restore can rebuild the
    /// identical survivor view.
    pub(crate) routing_down: Option<(Vec<bool>, Vec<bool>)>,
    /// Data-plane epochs executed (deterministic counter; checkpointed).
    pub(crate) epochs: u64,
    /// Same-timestamp candidates passed over in the barrier's k-way trace
    /// merge (deterministic counter; checkpointed).
    pub(crate) merge_ties: u64,
    /// Coordinator wall time spent waiting at epoch barriers (zero unless
    /// `SimConfig::wall_counters`; never checkpointed).
    pub(crate) wall_barrier_ns: u64,
}

/// Inserts a control event keeping `ctrl[pos..]` sorted by `(t, seq)`.
pub(crate) fn ctrl_insert(ctrl: &mut Vec<CtrlEntry>, pos: usize, seq: &mut u64, t: Ns, ev: CtrlEv) {
    let s = *seq;
    *seq += 1;
    let at = pos + ctrl[pos..].partition_point(|e| (e.t, e.seq) <= (t, s));
    ctrl.insert(at, CtrlEntry { t, seq: s, ev });
}

/// Terminates an unfinished flow as failed (coordinator-side: touches
/// both flow halves).
fn fail_flow_at(
    sh: &Shared,
    fid: u32,
    now: Ns,
    window_remaining: &mut usize,
    tracer: &mut dyn Tracer,
) {
    let rx = unsafe { sh.rx(fid) };
    let f = unsafe { sh.flow(fid) };
    if rx.finished_ns.is_some() || f.failed {
        return;
    }
    f.failed = true;
    rx.failed = true;
    rx.rcv_bitmap = Vec::new();
    if f.in_window {
        *window_remaining -= 1;
    }
    if sh.trace_on {
        tracer.event(now, &TraceEvent::FlowFail { flow: fid });
    }
}

impl Simulator {
    /// Builds a simulator over `topo` using `selector` for ToR-to-ToR
    /// paths, with the transport and queue discipline named in `cfg`
    /// ([`SimConfig::transport`] / [`SimConfig::queue_disc`]; DCTCP over
    /// tail-drop+ECN by default). Server count and placement come from the
    /// topology's per-switch server counts.
    pub fn new(topo: &Topology, selector: Box<dyn PathSelector>, cfg: SimConfig) -> Self {
        Self::with_transport(topo, selector, cfg, transport_for(cfg.transport))
    }

    /// Like [`Simulator::new`] but with a caller-supplied [`Transport`]
    /// (external congestion-control implementations plug in here).
    pub fn with_transport(
        topo: &Topology,
        selector: Box<dyn PathSelector>,
        cfg: SimConfig,
        transport: Box<dyn Transport>,
    ) -> Self {
        let kind = cfg.queue_disc;
        Self::with_parts(topo, selector, cfg, transport, &move |cap, ecn| {
            kind.build(cap, ecn)
        })
    }

    /// Fully explicit constructor: caller-supplied transport *and* a
    /// per-channel queue-discipline factory (called with each channel's
    /// byte capacity and ECN threshold).
    pub fn with_parts(
        topo: &Topology,
        selector: Box<dyn PathSelector>,
        cfg: SimConfig,
        transport: Box<dyn Transport>,
        disc: DisciplineFactory,
    ) -> Self {
        let fabric = Fabric::build(topo, &cfg, disc);
        let num_nodes = fabric.num_switches as usize + fabric.num_servers();
        let node_shard = shard_map(topo.fingerprint(), num_nodes);
        Simulator {
            sh: Shared {
                cfg,
                fabric,
                flows: Vec::new(),
                rx: Vec::new(),
                transport,
                selector: UnsafeCell::new(selector),
                oracle: None,
                node_shard,
                plan_seed: 0,
                trace_on: false,
                tel_on: false,
            },
            shards: (0..NUM_SHARDS).map(|_| ShardSlot::new()).collect(),
            mail: Mailboxes::new(),
            now: 0,
            window: (0, Ns::MAX),
            window_remaining: 0,
            events_processed: 0,
            topo: topo.clone(),
            faults: FaultController::new(topo.num_links(), topo.num_nodes()),
            ctrl: Vec::new(),
            ctrl_pos: 0,
            ctrl_seq: 0,
            goodput_bins: Vec::new(),
            tracer: Box::new(NopTracer),
            telemetry: None,
            telemetry_next: Ns::MAX,
            pkts_sent: 0,
            pkts_delivered: 0,
            routing_down: None,
            epochs: 0,
            merge_ties: 0,
            wall_barrier_ns: 0,
        }
    }

    /// Installs a [`Tracer`]; call before [`Simulator::run`]. The default
    /// is [`NopTracer`], which disables event construction altogether.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.sh.trace_on = tracer.enabled();
        self.tracer = tracer;
    }

    /// The folded counters of the installed tracer, when it keeps any
    /// (a [`crate::trace::CountingTracer`] does).
    pub fn trace_counters(&self) -> Option<&TraceCounters> {
        self.tracer.counters()
    }

    /// Monotone-clock violations the installed tracer has observed, when
    /// it tracks them (a [`crate::trace::CountingTracer`] does; 0 on
    /// every well-behaved run).
    pub fn trace_time_regressions(&self) -> Option<u64> {
        self.tracer.time_regressions()
    }

    /// Installs a time-series [`Telemetry`] sampler; call before
    /// [`Simulator::run`]. The first sample lands on the first cadence
    /// boundary the simulation clock crosses.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry_next = telemetry.every_ns();
        self.telemetry = Some(Box::new(telemetry));
        self.sh.tel_on = true;
    }

    /// The installed telemetry sampler, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// The conservation identity from the engine's own counters — no
    /// tracer required. `dropped` covers congestion (tail + eviction) and
    /// fault losses; no-route refusals are excluded because those packets
    /// are never created (see [`Simulator::drop_breakdown`]).
    pub fn conservation(&self) -> Conservation {
        Conservation {
            sent: self.pkts_sent,
            delivered: self.pkts_delivered,
            dropped: self.sh.fabric.total_congestion_drops() + self.sh.fabric.total_fault_drops(),
            in_flight: self.packets_in_flight(),
        }
    }

    fn shard_ref(&self, s: usize) -> &ShardState {
        unsafe { &*self.shards[s].0.get() }
    }

    /// High-water mark of the event-queue population over the run so far,
    /// summed across shards (the name predates the calendar queue;
    /// manifests report it).
    pub fn heap_peak(&self) -> usize {
        (0..NUM_SHARDS).map(|s| self.shard_ref(s).queue.peak).sum()
    }

    /// Installs a fault plan: every event goes onto the control-plane
    /// schedule and the gray-loss hash is reseeded from the plan, so the
    /// same plan (and seed) reproduces the identical run. Call before
    /// [`Simulator::run`].
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        plan.validate(&self.topo);
        self.sh.plan_seed = plan.seed;
        for (at_ns, idx) in self.faults.install(plan) {
            ctrl_insert(
                &mut self.ctrl,
                self.ctrl_pos,
                &mut self.ctrl_seq,
                at_ns,
                CtrlEv::Fault(idx),
            );
        }
    }

    /// Switches the simulator to oracle congestion-aware routing: each
    /// flowlet takes whichever of the `k` shortest ToR paths currently has
    /// the least queued bytes (ties broken by the flowlet hash). This uses
    /// global instantaneous queue state no real scheme could see — use it
    /// as the adaptive-routing upper bound the paper's §7.1 asks about.
    ///
    /// The oracle scores paths on the topology it was given and is *not*
    /// rebuilt on reconvergence — don't combine it with a fault plan. It
    /// reads global queue state, so it requires `threads == 1`.
    pub fn enable_oracle_routing(&mut self, topo: &Topology, k: usize) {
        self.sh.oracle = Some(KspSelector::new(topo, k));
    }

    /// Number of servers in the simulated network.
    pub fn num_servers(&self) -> usize {
        self.sh.fabric.num_servers()
    }

    /// Name of the active congestion-control transport (e.g. `"dctcp"`).
    pub fn transport_name(&self) -> &'static str {
        self.sh.transport.name()
    }

    /// Sets the measurement window `[start, end)`; flows starting inside
    /// it gate [`Simulator::run`]'s completion condition.
    pub fn set_window(&mut self, start: Ns, end: Ns) {
        self.window = (start, end);
    }

    /// Injects workload flows (times in seconds are converted to ns).
    /// Call after `set_window`.
    pub fn inject(&mut self, events: &[FlowEvent]) {
        for e in events {
            let start_ns = (e.start_s * 1e9) as Ns;
            let src = self.sh.fabric.server_id(e.src.rack, e.src.server);
            let dst = self.sh.fabric.server_id(e.dst.rack, e.dst.server);
            assert_ne!(src, dst, "flow with identical endpoints");
            let total_pkts = e.bytes.div_ceil(self.sh.cfg.mss as u64).max(1) as u32;
            let in_window = start_ns >= self.window.0 && start_ns < self.window.1;
            if in_window {
                self.window_remaining += 1;
            }
            let id = self.sh.flows.len() as u32;
            let f = Flow::new(
                src,
                dst,
                e.src.rack,
                e.dst.rack,
                e.bytes,
                start_ns,
                total_pkts,
                self.sh.transport.initial_cwnd(&self.sh.cfg),
                in_window,
            );
            let shard = self.sh.shard_of_node(self.sh.host_node(src));
            self.sh.rx.push(UnsafeCell::new(FlowRx::new(&f)));
            self.sh.flows.push(UnsafeCell::new(f));
            self.shards[shard]
                .0
                .get_mut()
                .queue
                .push(start_ns, Ev::FlowStart(id));
        }
    }

    /// Runs until every measurement-window flow completes (or the queues
    /// drain / `max_time` is hit). Returns per-flow records.
    pub fn run(&mut self, max_time: Ns) -> Vec<FlowRecord> {
        self.run_loop(max_time, Ns::MAX);
        self.finish()
    }

    /// Runs until the simulated clock would pass `t_stop`, leaving every
    /// event after `t_stop` queued. Returns `true` if the run completed —
    /// window drained or queues empty — and `false` if it merely paused
    /// at the stop time; a paused simulator can be checkpointed and later
    /// driven on with `run` or `run_until`.
    pub fn run_until(&mut self, t_stop: Ns) -> bool {
        self.run_loop(Ns::MAX, t_stop)
    }

    /// The epoch-barrier driver behind [`Simulator::run`] and
    /// [`Simulator::run_until`].
    fn run_loop(&mut self, max_time: Ns, t_stop: Ns) -> bool {
        let threads = self.sh.cfg.threads.clamp(1, NUM_SHARDS as u32) as usize;
        assert!(
            self.sh.oracle.is_none() || threads == 1,
            "oracle routing reads global queue state and requires threads=1"
        );
        // Split the simulator into the worker-shared read view and the
        // coordinator-owned &mut view; workers never see `Ctx`.
        let Simulator {
            sh,
            shards,
            mail,
            now,
            window: _,
            window_remaining,
            events_processed,
            topo,
            faults,
            ctrl,
            ctrl_pos,
            ctrl_seq,
            goodput_bins,
            tracer,
            telemetry,
            telemetry_next,
            pkts_sent,
            pkts_delivered,
            routing_down,
            epochs,
            merge_ties,
            wall_barrier_ns,
        } = self;
        let sh: &Shared = sh;
        let shards: &[ShardSlot] = shards.as_slice();
        let mail: &Mailboxes = mail;
        let mut ctx = Ctx {
            sh,
            shards,
            mail,
            topo,
            now,
            window_remaining,
            events_processed,
            faults,
            ctrl,
            ctrl_pos,
            ctrl_seq,
            goodput_bins,
            tracer,
            telemetry,
            telemetry_next,
            pkts_sent,
            pkts_delivered,
            routing_down,
            epochs,
            merge_ties,
            wall_barrier_ns,
        };
        let sync = EpochSync::new();
        std::thread::scope(|scope| {
            for w in 1..threads {
                let sync = &sync;
                scope.spawn(move || {
                    let mut last = 0u64;
                    while let Some((e, end)) = sync.await_epoch(last) {
                        last = e;
                        for s in (w..NUM_SHARDS).step_by(threads) {
                            let st = unsafe { shards[s].get() };
                            drain_and_flush(sh, mail, st, s, end);
                        }
                        sync.finish_epoch();
                    }
                });
            }
            // Dropped on every exit from this closure — normal return or
            // coordinator panic — so workers never outlive the loop.
            let _guard = ShutdownGuard(&sync);
            ctx.main_loop(&sync, threads, max_time, t_stop)
        })
    }

    /// Ends the run: fails unfinished flows, flushes the observability
    /// sinks, and returns per-flow records. [`Simulator::run`] calls this
    /// itself; callers pausing via [`Simulator::run_until`] call it once
    /// after the final segment.
    pub fn finish(&mut self) -> Vec<FlowRecord> {
        // Anything still unfinished when the run stops counts as failed,
        // so completed + failed covers every injected flow.
        for fid in 0..self.sh.flows.len() as u32 {
            self.fail_flow(fid);
        }
        self.tracer.finish();
        if let Some(tel) = self.telemetry.as_mut() {
            tel.finish().expect("telemetry sink flush failed");
        }
        self.records()
    }

    fn fail_flow(&mut self, fid: u32) {
        fail_flow_at(
            &self.sh,
            fid,
            self.now,
            &mut self.window_remaining,
            self.tracer.as_mut(),
        );
    }

    /// Per-flow outcomes.
    pub fn records(&self) -> Vec<FlowRecord> {
        (0..self.sh.flows.len() as u32)
            .map(|fid| {
                let f = self.flow_ref(fid);
                let rx = self.rx_ref(fid);
                FlowRecord {
                    start_ns: f.start_ns,
                    size_bytes: f.size_bytes,
                    fct_ns: rx.finished_ns.map(|t| t - f.start_ns),
                    failed: f.failed,
                    recovery_ns: match (f.fault_hit_ns, f.recovery_ns) {
                        (Some(hit), Some(rec)) => Some(rec - hit),
                        _ => None,
                    },
                }
            })
            .collect()
    }

    pub(crate) fn flow_ref(&self, fid: u32) -> &Flow {
        unsafe { &*self.sh.flows[fid as usize].get() }
    }

    pub(crate) fn rx_ref(&self, fid: u32) -> &FlowRx {
        unsafe { &*self.sh.rx[fid as usize].get() }
    }

    /// Total congestion tail drops across all channels.
    pub fn total_congestion_drops(&self) -> u64 {
        self.sh.fabric.total_congestion_drops()
    }

    /// Packets lost to injected faults: dead or gray channels, plus
    /// packets that never left the host because no route existed.
    pub fn total_fault_drops(&self) -> u64 {
        self.sh.fabric.total_fault_drops() + self.faults.noroute_drops
    }

    /// All drops, congestion and fault; equals
    /// [`Simulator::total_congestion_drops`] in fault-free runs.
    pub fn total_drops(&self) -> u64 {
        self.total_congestion_drops() + self.total_fault_drops()
    }

    /// Drops split by cause, from the fabric's own counters (no tracer
    /// required). `total()` equals [`Simulator::total_drops`].
    pub fn drop_breakdown(&self) -> DropCounters {
        let eviction = self.sh.fabric.total_evictions();
        DropCounters {
            congestion: self.sh.fabric.total_congestion_drops() - eviction,
            eviction,
            fault: self.sh.fabric.total_fault_drops(),
            noroute: self.faults.noroute_drops,
        }
    }

    /// Packets currently queued at channels or on the wire (scheduled for
    /// delivery) — the in-flight term of the conservation identity when a
    /// run stops at its horizon.
    pub fn packets_in_flight(&self) -> u64 {
        let queued: u64 = (0..self.sh.fabric.channels.len() as u32)
            .map(|id| self.sh.fabric.channels.queue_len(id) as u64)
            .sum();
        let on_wire: u64 = (0..NUM_SHARDS)
            .map(|s| {
                self.shard_ref(s)
                    .queue
                    .iter()
                    .filter(|i| matches!(i.ev, Ev::Deliver(_)))
                    .count() as u64
            })
            .sum();
        queued + on_wire
    }

    /// Bytes newly acknowledged per 1-ms bin since t=0 — the goodput
    /// timeline robustness plots are drawn from.
    pub fn goodput_timeline_ms(&self) -> &[u64] {
        &self.goodput_bins
    }

    /// Total ECN marks across all channels.
    pub fn total_marks(&self) -> u64 {
        self.sh.fabric.total_marks()
    }

    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The deterministic engine counter set (see [`crate::counters`]):
    /// byte-identical at every thread count and preserved exactly across
    /// checkpoint/restore. Call between runs/epochs (any time `&self` is
    /// available outside `run`/`run_until` is).
    pub fn engine_counters(&self) -> EngineCounters {
        EngineCounters {
            epochs: self.epochs,
            merge_ties: self.merge_ties,
            shards: (0..NUM_SHARDS)
                .map(|s| {
                    let st = self.shard_ref(s);
                    ShardCounters {
                        events: st.events_total,
                        cross_shard_sent: st.xshard_sent,
                        calendar_peak: st.queue.peak as u64,
                        ladder_spills: st.queue.ladder_spills,
                        scatter_fallbacks: st.queue.scatter_fallbacks,
                        arena_live: st.pkts.live_count() as u64,
                        arena_high_water: st.pkts.high_water() as u64,
                    }
                })
                .collect(),
        }
    }

    /// The wall-clock counter set — all zero unless the simulator ran
    /// with [`SimConfig::wall_counters`] set. Never part of checkpoints
    /// or determinism comparisons.
    pub fn wall_clock_counters(&self) -> WallClockCounters {
        WallClockCounters {
            drain_ns: (0..NUM_SHARDS)
                .map(|s| self.shard_ref(s).wall_drain_ns)
                .collect(),
            barrier_wait_ns: self.wall_barrier_ns,
            mailbox_flush_ns: (0..NUM_SHARDS)
                .map(|s| self.shard_ref(s).wall_flush_ns)
                .sum(),
        }
    }

    /// Current simulated time in ns (the horizon of the last completed
    /// epoch's newest event).
    pub fn now(&self) -> Ns {
        self.now
    }
}

/// Shuts the workers down when the coordinator leaves the epoch loop —
/// including by panic (watchdog, sink I/O), which would otherwise leave
/// them spinning forever inside `thread::scope`.
struct ShutdownGuard<'a>(&'a EpochSync);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Drains one shard's calendar up to (exclusive) the epoch horizon.
fn run_shard_epoch(sh: &Shared, st: &mut ShardState, shard: usize, end: Ns) {
    while st.queue.peek_t().is_some_and(|t| t < end) {
        let item = st.queue.pop().expect("peeked item must pop");
        st.events += 1;
        if item.t > st.last_t {
            st.last_t = item.t;
        }
        let mut lane = Lane {
            sh,
            st,
            shard,
            now: item.t,
        };
        match item.ev {
            Ev::FlowStart(f) => lane.on_flow_start(f),
            Ev::TxFree(ch) => lane.on_tx_free(ch),
            Ev::Deliver(id) => lane.on_deliver(id),
            Ev::Rto(f, epoch) => lane.on_rto(f, epoch),
        }
    }
}

/// Posts a shard's batched cross-shard sends to the mailboxes,
/// accumulating the per-destination counts (one add per mailbox pair per
/// epoch — off the per-packet path).
fn flush_out(mail: &Mailboxes, st: &mut ShardState, shard: usize) {
    for dst in 0..NUM_SHARDS {
        st.xshard_sent[dst] += st.out[dst].len() as u64;
        mail.post(shard, dst, &mut st.out[dst]);
    }
}

/// Drains one shard to the epoch horizon and flushes its out-buffers,
/// timing both phases when the wall-clock counter set is on.
fn drain_and_flush(sh: &Shared, mail: &Mailboxes, st: &mut ShardState, shard: usize, end: Ns) {
    if sh.cfg.wall_counters {
        let t0 = Instant::now();
        run_shard_epoch(sh, st, shard, end);
        let t1 = Instant::now();
        st.wall_drain_ns += (t1 - t0).as_nanos() as u64;
        flush_out(mail, st, shard);
        st.wall_flush_ns += t1.elapsed().as_nanos() as u64;
    } else {
        run_shard_epoch(sh, st, shard, end);
        flush_out(mail, st, shard);
    }
}

/// The coordinator's exclusive view of the simulator during `run_loop`:
/// everything the epoch barrier and the control plane mutate.
struct Ctx<'a> {
    sh: &'a Shared,
    shards: &'a [ShardSlot],
    mail: &'a Mailboxes,
    topo: &'a Topology,
    now: &'a mut Ns,
    window_remaining: &'a mut usize,
    events_processed: &'a mut u64,
    faults: &'a mut FaultController,
    ctrl: &'a mut Vec<CtrlEntry>,
    ctrl_pos: &'a mut usize,
    ctrl_seq: &'a mut u64,
    goodput_bins: &'a mut Vec<u64>,
    tracer: &'a mut Box<dyn Tracer>,
    telemetry: &'a mut Option<Box<Telemetry>>,
    telemetry_next: &'a mut Ns,
    pkts_sent: &'a mut u64,
    pkts_delivered: &'a mut u64,
    routing_down: &'a mut Option<(Vec<bool>, Vec<bool>)>,
    epochs: &'a mut u64,
    merge_ties: &'a mut u64,
    wall_barrier_ns: &'a mut u64,
}

impl Ctx<'_> {
    /// The epoch loop. Returns `true` when the run completed (window
    /// drained or queues empty), `false` when it paused at `t_stop`.
    fn main_loop(&mut self, sync: &EpochSync, threads: usize, max_time: Ns, t_stop: Ns) -> bool {
        let sh = self.sh;
        // Lookahead: no packet can take effect on another shard sooner
        // than the fastest channel's serialization (of the smallest wire
        // packet) plus propagation.
        let min_wire = sh.cfg.ack_bytes.min(HEADER_BYTES);
        let lookahead = sh.fabric.channels.min_latency_ns(min_wire);
        loop {
            let mut min_t: Option<Ns> = None;
            for s in 0..NUM_SHARDS {
                let st = unsafe { self.shards[s].get() };
                if let Some(t) = st.queue.peek_t() {
                    if min_t.is_none_or(|m| t < m) {
                        min_t = Some(t);
                    }
                }
            }
            let ctrl_t = self.ctrl.get(*self.ctrl_pos).map(|e| e.t);
            let tnext = match (min_t, ctrl_t) {
                (None, None) => return true,
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
            };
            if tnext > max_time {
                return true;
            }
            if tnext > t_stop {
                return false;
            }
            if *self.telemetry_next <= tnext {
                self.telemetry_sample(tnext);
                continue; // re-arms telemetry_next past tnext
            }
            if ctrl_t.is_some_and(|c| min_t.is_none_or(|m| c <= m)) {
                // Control plane runs before data events at the same t.
                self.fire_ctrl();
                if self.done() {
                    return true;
                }
                continue;
            }
            let min_t = min_t.expect("ctrl branch handled the None case");
            let end = min_t
                .saturating_add(lookahead)
                .min(ctrl_t.unwrap_or(Ns::MAX))
                .min(*self.telemetry_next)
                .min(max_time.saturating_add(1))
                .min(t_stop.saturating_add(1));
            debug_assert!(end > min_t, "epoch must make progress");
            sync.publish(end);
            for s in (0..NUM_SHARDS).step_by(threads) {
                let st = unsafe { self.shards[s].get() };
                drain_and_flush(sh, self.mail, st, s, end);
            }
            if sh.cfg.wall_counters {
                let t0 = Instant::now();
                sync.wait_workers(threads - 1);
                *self.wall_barrier_ns += t0.elapsed().as_nanos() as u64;
            } else {
                sync.wait_workers(threads - 1);
            }
            *self.epochs += 1;
            let done = self.barrier_merge();
            if sh.cfg.max_events != 0 && *self.events_processed > sh.cfg.max_events {
                panic!(
                    "event budget exceeded: {} events at t={} ns with {} window flows outstanding",
                    *self.events_processed, *self.now, *self.window_remaining
                );
            }
            if done {
                return true;
            }
        }
    }

    fn done(&self) -> bool {
        *self.window_remaining == 0 && !self.sh.flows.is_empty()
    }

    fn fire_ctrl(&mut self) {
        let e = self.ctrl[*self.ctrl_pos];
        *self.ctrl_pos += 1;
        if e.t > *self.now {
            *self.now = e.t;
        }
        *self.events_processed += 1;
        match e.ev {
            CtrlEv::Fault(i) => self.on_fault(i),
            CtrlEv::Reconverge(epoch) => self.on_reconverge(epoch),
        }
    }

    fn on_fault(&mut self, idx: u32) {
        let sh = self.sh;
        if sh.trace_on {
            let k = self.faults.kind(idx);
            self.tracer.event(
                *self.now,
                &TraceEvent::Fault {
                    kind: k.label(),
                    id: k.target(),
                    loss_ppm: k.loss_ppm(),
                },
            );
        }
        if self.faults.fire(idx, &sh.fabric) {
            // Hard (control-plane-visible) fault: reconverge after the
            // configured delay.
            let epoch = self.faults.next_epoch();
            let t = *self.now + sh.cfg.reconverge_delay_ns;
            ctrl_insert(
                self.ctrl,
                *self.ctrl_pos,
                self.ctrl_seq,
                t,
                CtrlEv::Reconverge(epoch),
            );
        }
    }

    fn on_reconverge(&mut self, epoch: u64) {
        if epoch != self.faults.epoch() {
            return; // a newer fault superseded this rebuild
        }
        if self.sh.trace_on {
            self.tracer
                .event(*self.now, &TraceEvent::Reconverge { epoch });
        }
        let (survivor, map) = self.faults.survivor_topology(self.topo);
        *self.routing_down = Some(self.faults.down_state());
        // Between epochs the coordinator is the only thread touching the
        // selector cell.
        let sel = unsafe { &mut *self.sh.selector.get() };
        let rebuilt = sel.rebuild(&survivor);
        *sel = Box::new(RemappedSelector::new(rebuilt, map));
        // With no fault event still pending, connectivity is final: fail
        // flows whose endpoints are gone or in different components
        // instead of letting them back off until max_time.
        if self.faults.pending() == 0 {
            let comp = component_labels(&survivor);
            for fid in 0..self.sh.flows.len() as u32 {
                let dead = {
                    let f = unsafe { &*self.sh.flows[fid as usize].get() };
                    self.faults.switch_is_down(f.src_tor)
                        || self.faults.switch_is_down(f.dst_tor)
                        || comp[f.src_tor as usize] != comp[f.dst_tor as usize]
                };
                if dead {
                    self.fail_flow(fid);
                }
            }
        }
    }

    fn fail_flow(&mut self, fid: u32) {
        fail_flow_at(
            self.sh,
            fid,
            *self.now,
            self.window_remaining,
            self.tracer.as_mut(),
        );
    }

    /// Snapshots fabric-wide state for the cadence boundary at or before
    /// `t`, writes one sample line, and re-arms the deadline (skipping any
    /// boundaries the event gap jumped over).
    fn telemetry_sample(&mut self, t: Ns) {
        let sh = self.sh;
        let shards = self.shards;
        let events = *self.events_processed;
        let sent = *self.pkts_sent;
        let delivered = *self.pkts_delivered;
        let Some(tel) = self.telemetry.as_mut() else {
            return;
        };
        let every = tel.every_ns();
        let boundary = (t / every) * every;
        let mut queued_pkts = 0u64;
        let mut queued_bytes = 0u64;
        let mut channels = Vec::new();
        for id in 0..sh.fabric.channels.len() as u32 {
            let qlen = sh.fabric.channels.queue_len(id) as u32;
            let qbytes = sh.fabric.channels.queue_bytes(id);
            let tx = tel.interval_tx(id);
            queued_pkts += qlen as u64;
            queued_bytes += qbytes;
            if qlen > 0 || tx > 0 {
                channels.push((id, qlen, qbytes, tx));
            }
        }
        let mut flows_active = 0u64;
        let mut inflight_bytes = 0u64;
        for fid in 0..sh.flows.len() as u32 {
            let f = unsafe { &*sh.flows[fid as usize].get() };
            let rx = unsafe { &*sh.rx[fid as usize].get() };
            if f.is_active(rx, t) {
                flows_active += 1;
                inflight_bytes += f.inflight_bytes(sh.cfg.mss);
            }
        }
        let heap: u64 = (0..NUM_SHARDS)
            .map(|s| unsafe { &*shards[s].0.get() }.queue.len() as u64)
            .sum();
        let sample = Sample {
            t: boundary,
            events,
            // Field name predates the calendar queue; kept for byte-stable
            // telemetry streams.
            heap,
            flows_active,
            inflight_bytes,
            queued_pkts,
            queued_bytes,
            tx_bytes: tel.interval_tx_total(),
            sent,
            delivered,
            marks: sh.fabric.total_marks(),
            drops_congestion: sh.fabric.total_congestion_drops(),
            drops_fault: sh.fabric.total_fault_drops(),
            channels,
        };
        tel.write_sample(&sample)
            .expect("telemetry sink write failed");
        *self.telemetry_next = boundary + every;
    }

    /// The epoch barrier: folds per-shard deltas into the global
    /// counters, applies deferred cross-shard effects, routes mailbox
    /// deliveries into destination calendars, and merges the shard trace
    /// buffers into the tracer — all in a fixed order so every thread
    /// count produces identical state. Returns the completion condition.
    fn barrier_merge(&mut self) -> bool {
        let sh = self.sh;
        let chans = &sh.fabric.channels;
        for s in 0..NUM_SHARDS {
            let st = unsafe { self.shards[s].get() };
            *self.events_processed += st.events;
            st.events_total += st.events;
            st.events = 0;
            *self.pkts_sent += st.sent;
            st.sent = 0;
            *self.pkts_delivered += st.delivered;
            st.delivered = 0;
            *self.window_remaining -= st.window_finished as usize;
            st.window_finished = 0;
            self.faults.noroute_drops += st.noroute;
            st.noroute = 0;
            for (bin, bytes) in st.goodput.drain(..) {
                let bin = bin as usize;
                if self.goodput_bins.len() <= bin {
                    self.goodput_bins.resize(bin + 1, 0);
                }
                self.goodput_bins[bin] += bytes;
            }
            for ch in st.remote_fault_drops.drain(..) {
                chans.add_fault_drop(ch);
            }
            if st.last_t > *self.now {
                *self.now = st.last_t;
            }
        }
        // First fault-induced loss per flow (minimum t wins; a shard's
        // buffer is time-ordered but several shards may hit one flow).
        for s in 0..NUM_SHARDS {
            let st = unsafe { self.shards[s].get() };
            for (fid, t) in st.fault_hits.drain(..) {
                let rx = unsafe { sh.rx(fid) };
                let f = unsafe { sh.flow(fid) };
                if rx.finished_ns.is_none() && !f.failed && f.fault_hit_ns.is_none_or(|h| t < h) {
                    f.fault_hit_ns = Some(t);
                }
            }
        }
        // Cross-shard deliveries: fixed (dst, src, emission order) merge;
        // each gets a fresh seq in its destination calendar.
        for dst in 0..NUM_SHARDS {
            let st = unsafe { self.shards[dst].get() };
            self.mail.drain_to(dst, |m| {
                let id = st.pkts.alloc(m.pkt);
                st.queue.push(m.t, Ev::Deliver(id));
            });
        }
        // Trace merge: k-way by strict `t <` (lowest shard wins ties;
        // per-shard buffers are time-nondecreasing).
        if sh.trace_on {
            let mut idx = [0usize; NUM_SHARDS];
            loop {
                let mut best: Option<(Ns, usize)> = None;
                for (s, &ix) in idx.iter().enumerate() {
                    let st = unsafe { self.shards[s].get() };
                    if let Some(&(t, _)) = st.trace_buf.get(ix) {
                        match best {
                            Some((bt, _)) if t >= bt => {
                                if t == bt {
                                    // A same-t candidate passed over: the
                                    // lowest shard wins the tie. Counting
                                    // these surfaces how much merge order
                                    // actually rides on the tiebreak.
                                    *self.merge_ties += 1;
                                }
                            }
                            _ => best = Some((t, s)),
                        }
                    }
                }
                let Some((_, s)) = best else { break };
                let st = unsafe { self.shards[s].get() };
                let (t, ev) = st.trace_buf[idx[s]];
                idx[s] += 1;
                self.tracer.event(t, &ev);
            }
        }
        for s in 0..NUM_SHARDS {
            unsafe { self.shards[s].get() }.trace_buf.clear();
        }
        // Telemetry tx accounting, in shard order.
        for s in 0..NUM_SHARDS {
            let st = unsafe { self.shards[s].get() };
            if let Some(tel) = self.telemetry.as_mut() {
                for &(ch, bytes) in &st.tx_notes {
                    tel.on_tx(ch, bytes);
                }
            }
            st.tx_notes.clear();
        }
        self.done()
    }
}

/// One shard's execution context for a single event: the shared read
/// view, the shard's own mutable state, and the event clock.
struct Lane<'a> {
    sh: &'a Shared,
    st: &'a mut ShardState,
    shard: usize,
    now: Ns,
}

impl<'a> Lane<'a> {
    /// Flow sender state; this shard must own the flow's source host.
    fn flow(&self, fid: u32) -> &'a mut Flow {
        let f = unsafe { self.sh.flow(fid) };
        debug_assert_eq!(
            self.shard,
            self.sh.shard_of_node(self.sh.host_node(f.src_server)),
            "flow {fid} sender touched off-shard"
        );
        f
    }

    /// Flow receiver state; this shard must own the destination host.
    fn rx(&self, fid: u32) -> &'a mut FlowRx {
        let rx = unsafe { self.sh.rx(fid) };
        debug_assert_eq!(
            self.shard,
            self.sh.shard_of_node(self.sh.host_node(rx.dst_server)),
            "flow {fid} receiver touched off-shard"
        );
        rx
    }

    #[inline]
    fn trace(&mut self, ev: TraceEvent) {
        self.st.trace_buf.push((self.now, ev));
    }

    fn schedule(&mut self, t: Ns, ev: Ev) {
        debug_assert!(t >= self.now);
        self.st.queue.push(t, ev);
    }

    /// Schedules a wire delivery, routing it through the mailbox when the
    /// receiving node lives on another shard. The conservative lookahead
    /// guarantees `t` is at or past the epoch horizon in that case.
    fn send_deliver(&mut self, ch_id: u32, id: PktId, t: Ns) {
        let sh = self.sh;
        let dest = sh.shard_of_node(sh.fabric.channels.to_node[ch_id as usize]);
        if dest == self.shard {
            self.schedule(t, Ev::Deliver(id));
        } else {
            let pkt = self.st.pkts.get(id).clone();
            self.st.pkts.free(id);
            self.st.out[dest].push(Mail { t, pkt });
        }
    }

    fn on_flow_start(&mut self, fid: u32) {
        let f = self.flow(fid);
        if f.failed {
            return; // terminated before it began (disconnected endpoints)
        }
        f.window_end = 1;
        if self.sh.trace_on {
            let ev = TraceEvent::FlowStart {
                flow: fid,
                src: f.src_server,
                dst: f.dst_server,
                bytes: f.size_bytes,
                pkts: f.total_pkts,
            };
            self.trace(ev);
        }
        self.arm_rto(fid);
        self.pump(fid);
    }

    fn on_tx_free(&mut self, ch_id: u32) {
        if let Some(id) = self.sh.fabric.channels.tx_done(ch_id) {
            self.start_tx(ch_id, id);
        }
    }

    fn start_tx(&mut self, ch_id: u32, id: PktId) {
        let sh = self.sh;
        let chans = &sh.fabric.channels;
        let (flow, seq, is_ack, bytes) = {
            let p = self.st.pkts.get(id);
            (p.flow, p.seq, p.is_ack, p.bytes)
        };
        if sh.trace_on {
            self.trace(TraceEvent::Dequeue {
                ch: ch_id,
                flow,
                seq,
                is_ack,
            });
        }
        let ser = chans.ser_ns(ch_id, bytes);
        let prop = chans.prop_ns[ch_id as usize];
        if sh.tel_on {
            self.st.tx_notes.push((ch_id, bytes));
        }
        self.schedule(self.now + ser, Ev::TxFree(ch_id));
        self.send_deliver(ch_id, id, self.now + ser + prop);
    }

    fn send_on(&mut self, ch_id: u32, id: PktId) {
        let sh = self.sh;
        let chans = &sh.fabric.channels;
        let up = chans.up(ch_id);
        let loss = chans.loss_prob(ch_id);
        // Short-circuit keeps the gray counter untouched on dead wires,
        // so gray-loss draws are independent of unrelated outages.
        let lost = !up
            || (loss > 0.0 && {
                let draw = chans.gray_bump(ch_id);
                gray_drop(sh.plan_seed, ch_id, draw, loss)
            });
        if lost {
            chans.add_fault_drop(ch_id);
            let (flow, seq, is_ack) = {
                let p = self.st.pkts.get(id);
                (p.flow, p.seq, p.is_ack)
            };
            self.st.pkts.free(id);
            if sh.trace_on {
                self.trace(TraceEvent::DropFault {
                    ch: ch_id,
                    flow,
                    seq,
                    is_ack,
                });
            }
            self.note_fault_hit(flow);
            return;
        }
        let (flow, seq, is_ack) = {
            let p = self.st.pkts.get(id);
            (p.flow, p.seq, p.is_ack)
        };
        let (offer, out) = chans.offer(ch_id, id, &mut self.st.pkts);
        if sh.trace_on {
            match offer {
                Offer::Queued => {
                    let qlen = chans.queue_len(ch_id) as u32;
                    let qbytes = chans.queue_bytes(ch_id);
                    self.trace(TraceEvent::Enqueue {
                        ch: ch_id,
                        flow,
                        seq,
                        is_ack,
                        qlen,
                        qbytes,
                    });
                }
                Offer::Dropped => self.trace(TraceEvent::DropCongestion {
                    ch: ch_id,
                    flow,
                    seq,
                    is_ack,
                }),
                Offer::StartTx => {}
            }
            if out.marked {
                self.trace(TraceEvent::EcnMark {
                    ch: ch_id,
                    flow,
                    seq,
                });
            }
            for &(vf, vs) in &out.evicted {
                self.trace(TraceEvent::DropEviction {
                    ch: ch_id,
                    flow: vf,
                    seq: vs,
                });
            }
        }
        if offer == Offer::StartTx {
            self.start_tx(ch_id, id)
        }
    }

    fn on_deliver(&mut self, id: PktId) {
        let sh = self.sh;
        let chans = &sh.fabric.channels;
        let (ch, flow, seq, is_ack) = {
            let p = self.st.pkts.get(id);
            (p.path[p.hop as usize], p.flow, p.seq, p.is_ack)
        };
        debug_assert_eq!(
            self.shard,
            sh.shard_of_node(chans.to_node[ch as usize]),
            "delivery landed off-shard"
        );
        if !chans.up(ch) {
            // The wire died while this packet was in flight (or queued
            // behind the transmitter): it is lost. The counter bump is
            // deferred to the barrier — the channel belongs to the
            // sending shard.
            self.st.pkts.free(id);
            self.st.remote_fault_drops.push(ch);
            if sh.trace_on {
                self.trace(TraceEvent::DropFault {
                    ch,
                    flow,
                    seq,
                    is_ack,
                });
            }
            self.note_fault_hit(flow);
            return;
        }
        let node = chans.to_node[ch as usize];
        if node < sh.fabric.num_switches {
            // Switch: source-routed forward onto the next channel.
            let next = {
                let p = self.st.pkts.get_mut(id);
                p.hop += 1;
                p.path[p.hop as usize]
            };
            self.send_on(next, id);
        } else {
            self.st.pkts.get_mut(id).hop += 1;
            self.st.delivered += 1;
            if sh.trace_on {
                self.trace(TraceEvent::Deliver { flow, seq, is_ack });
            }
            if is_ack {
                self.on_ack(id);
            } else {
                self.on_data(id);
            }
        }
    }

    fn on_data(&mut self, id: PktId) {
        let sh = self.sh;
        let (fid, seq, ecn_ce, ts) = {
            let p = self.st.pkts.get(id);
            (p.flow, p.seq, p.ecn_ce, p.ts)
        };
        let path = self.st.pkts.get(id).path.clone();
        // The data packet's arena slot is released before the ACK is
        // allocated, so (LIFO free list) the ACK usually reuses it.
        self.st.pkts.free(id);
        let rx = self.rx(fid);
        if rx.failed {
            return;
        }
        debug_assert_eq!(sh.host_node(rx.dst_server), {
            let last = *path.last().unwrap();
            sh.fabric.channels.to_node[last as usize]
        });
        if rx.finished_ns.is_none() {
            if rx.rcv_bitmap.is_empty() {
                // Lazily sized at the first arrival (the sender shard
                // can't touch receiver state at flow start).
                rx.rcv_bitmap = vec![0u64; (rx.total_pkts as usize).div_ceil(64)];
            }
            rx.rcv_mark(seq);
            if rx.rcv_cum == rx.total_pkts {
                rx.finished_ns = Some(self.now);
                rx.rcv_bitmap = Vec::new();
                let fct_ns = self.now - rx.start_ns;
                if rx.in_window {
                    self.st.window_finished += 1;
                }
                if sh.trace_on {
                    self.trace(TraceEvent::FlowFinish { flow: fid, fct_ns });
                }
            }
        }
        // Cumulative ACK retracing the data packet's route backwards.
        let rev = match &rx.rev_cache {
            Some((fwd, rev)) if Arc::ptr_eq(fwd, &path) => rev.clone(),
            _ => {
                let rev: ChannelPath = Arc::new(path.iter().rev().map(|c| c ^ 1).collect());
                rx.rev_cache = Some((path.clone(), rev.clone()));
                rev
            }
        };
        let first = rev[0];
        let ack_seq = rx.rcv_cum;
        let ack_bytes = sh.cfg.ack_bytes;
        let ack = self.st.pkts.alloc(Packet {
            flow: fid,
            seq: ack_seq,
            bytes: ack_bytes,
            ecn_ce: false,
            is_ack: true,
            ack_ecn: ecn_ce,
            ts,
            hop: 0,
            prio: 0,
            path: rev,
        });
        self.st.sent += 1;
        if sh.trace_on {
            self.trace(TraceEvent::Send {
                flow: fid,
                seq: ack_seq,
                is_ack: true,
                bytes: ack_bytes,
            });
        }
        self.send_on(first, ack);
    }

    fn on_ack(&mut self, id: PktId) {
        let sh = self.sh;
        let (fid, c, ack_ecn, ts) = {
            let a = self.st.pkts.get(id);
            (a.flow, a.seq, a.ack_ecn, a.ts)
        };
        self.st.pkts.free(id);
        let f = self.flow(fid);
        if f.failed || f.acked >= f.total_pkts {
            return; // sender already done (or flow terminated)
        }
        if c > f.acked {
            // Engine-side accounting of forward progress (independent of
            // the transport's window reaction).
            let newly = c - f.acked;
            let mss64 = sh.cfg.mss as u64;
            // Goodput timeline: credit this ms bin with the new bytes.
            let before = (f.acked as u64 * mss64).min(f.size_bytes);
            let after = (c as u64 * mss64).min(f.size_bytes);
            self.st
                .goodput
                .push(((self.now / MS) as u32, after - before));
            if f.fault_hit_ns.is_some() && f.recovery_ns.is_none() {
                // First forward progress after a fault-induced loss.
                f.recovery_ns = Some(self.now);
            }
            if ack_ecn {
                // Feedback for adaptive routing is tracked regardless of
                // the transport's reaction.
                f.ecn_total += newly as u64;
            }
        }
        let rtt_ns = self.now - ts;
        let act = sh.transport.on_ack(f, c, ack_ecn, rtt_ns, &sh.cfg);
        if sh.trace_on {
            // The window value is reported after the transport's reaction.
            let cwnd_bytes = f.cwnd as u64;
            self.trace(TraceEvent::Ack {
                flow: fid,
                cum: c,
                ecn: ack_ecn,
                rtt_ns,
                cwnd_bytes,
            });
        }
        if act.rearm_rto {
            self.arm_rto(fid);
        }
        if let Some(seq) = act.retransmit {
            self.send_data(fid, seq);
        }
        if act.pump {
            self.pump(fid);
        }
    }

    fn arm_rto(&mut self, fid: u32) {
        let f = self.flow(fid);
        f.rto_epoch = f.rto_epoch.wrapping_add(1);
        let rto = ((2.0 * f.srtt) as Ns).max(self.sh.cfg.min_rto_ns) * f.rto_backoff as Ns;
        let epoch = f.rto_epoch;
        self.schedule(self.now + rto, Ev::Rto(fid, epoch));
    }

    fn on_rto(&mut self, fid: u32, epoch: u32) {
        let sh = self.sh;
        let f = self.flow(fid);
        if f.rto_epoch != epoch || f.acked >= f.total_pkts || f.failed {
            return;
        }
        // The transport decides the window reaction...
        sh.transport.on_timeout(f, &sh.cfg);
        // ...the engine does the transport-independent go-back-N: rewind,
        // back the timer off, force a fresh flowlet (the old path may be
        // the congested one).
        f.next_seq = f.acked;
        f.in_recovery = false;
        f.rto_backoff = (f.rto_backoff * 2).min(64);
        f.cur_path = None;
        // Re-pin the flowlet hash: if the loss was a failed link the old
        // hash would keep landing on, the salt steers the retransmission
        // onto a different equal-cost choice without control-plane help.
        f.path_salt = f.path_salt.wrapping_add(1);
        if sh.trace_on {
            let (backoff, salt) = (f.rto_backoff, f.path_salt);
            self.trace(TraceEvent::Rto { flow: fid, backoff });
            self.trace(TraceEvent::PathReselect { flow: fid, salt });
        }
        self.arm_rto(fid);
        self.pump(fid);
    }

    /// Records the first fault-induced loss a flow suffers, anchoring the
    /// recovery-latency measurement. Deferred to the barrier: the loss
    /// may be observed on a shard that owns neither flow half.
    fn note_fault_hit(&mut self, fid: u32) {
        self.st.fault_hits.push((fid, self.now));
    }

    fn pump(&mut self, fid: u32) {
        loop {
            let f = self.flow(fid);
            if f.next_seq >= f.total_pkts {
                break;
            }
            let inflight = (f.next_seq - f.acked) as f64 * self.sh.cfg.mss as f64;
            if inflight + self.sh.cfg.mss as f64 > f.cwnd + 0.5 {
                break;
            }
            let seq = f.next_seq;
            f.next_seq += 1;
            self.send_data(fid, seq);
        }
    }

    fn send_data(&mut self, fid: u32, seq: u32) {
        let sh = self.sh;
        let gap = sh.cfg.flowlet_gap_ns;
        let f = self.flow(fid);
        let needs_new = f.cur_path.is_none() || self.now - f.last_send_ns > gap;
        if needs_new {
            // path_salt is 0 until the first RTO, keeping fault-free runs
            // byte-identical to the unsalted flowlet hash.
            let key = hash3(
                fid as u64 ^ f.path_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                f.flowlet_count,
                0xF10_1E7,
            );
            let bytes_sent = f.next_seq as u64 * sh.cfg.mss as u64;
            let path = self.build_path(&*f, key, bytes_sent);
            f.flowlet_count += 1;
            let flowlet = f.flowlet_count;
            match path {
                Some(p) => {
                    let hops = p.len() as u32;
                    f.cur_path = Some(Arc::new(p));
                    if sh.trace_on {
                        self.trace(TraceEvent::FlowletSwitch {
                            flow: fid,
                            flowlet,
                            hops,
                        });
                    }
                }
                None => {
                    // No route right now (selector rebuilt on a view where
                    // the pair is disconnected): drop at the source. The
                    // RTO rewinds and retries until a recovery restores
                    // the route or the flow is failed.
                    f.cur_path = None;
                    self.st.noroute += 1;
                    if sh.trace_on {
                        self.trace(TraceEvent::DropNoRoute { flow: fid });
                    }
                    self.note_fault_hit(fid);
                    return;
                }
            }
        }
        sh.transport.on_send(f, seq, &sh.cfg);
        f.last_send_ns = self.now;
        let payload = if seq + 1 == f.total_pkts {
            (f.size_bytes - seq as u64 * sh.cfg.mss as u64) as u32
        } else {
            sh.cfg.mss
        };
        let prio = sh.transport.priority(&*f, &sh.cfg);
        let path = f.cur_path.clone().unwrap();
        let first = path[0];
        let bytes = payload + HEADER_BYTES;
        let id = self.st.pkts.alloc(Packet {
            flow: fid,
            seq,
            bytes,
            ecn_ce: false,
            is_ack: false,
            ack_ecn: false,
            ts: self.now,
            hop: 0,
            prio,
            path,
        });
        self.st.sent += 1;
        if sh.trace_on {
            self.trace(TraceEvent::Send {
                flow: fid,
                seq,
                is_ack: false,
                bytes,
            });
        }
        self.send_on(first, id);
    }

    /// Oracle scoring: queued bytes along each KSP candidate, walking the
    /// candidate's links into directed channels from `src`.
    fn least_queued(&self, ksp: &KspSelector, src: NodeId, dst: NodeId, key: u64) -> Vec<u32> {
        let sh = self.sh;
        let candidates = ksp.candidate_paths(src, dst);
        let mut best: Option<(u64, u64, &Vec<u32>)> = None;
        for (i, links) in candidates.iter().enumerate() {
            let mut u = src;
            let mut queued = 0u64;
            for &l in links {
                let link = sh.fabric.links[l as usize];
                let ch = if link.a == u { 2 * l } else { 2 * l + 1 };
                u = link.other(u);
                queued += sh.fabric.channels.queue_bytes(ch);
            }
            let tie = hash3(key, i as u64, 0x07AC1E);
            if best.is_none_or(|(q, t, _)| (queued, tie) < (q, t)) {
                best = Some((queued, tie, links));
            }
        }
        best.expect("ksp returns at least one path").2.clone()
    }

    /// Builds the channel path server→…→server for a flowlet, or `None`
    /// when the selector has no route for the pair (post-fault view).
    fn build_path(&self, f: &Flow, key: u64, bytes_sent: u64) -> Option<Vec<u32>> {
        let sh = self.sh;
        let up = sh.fabric.host_ch_base + 2 * f.src_server;
        let down = sh.fabric.host_ch_base + 2 * f.dst_server + 1;
        let mut path = Vec::with_capacity(8);
        path.push(up);
        if f.src_tor != f.dst_tor {
            let links = match &sh.oracle {
                Some(ksp) => self.least_queued(ksp, f.src_tor, f.dst_tor, key),
                None => {
                    // Workers only read the selector during epochs; the
                    // coordinator only replaces it between them.
                    let sel = unsafe { &*sh.selector.get() };
                    sel.select_with_feedback(f.src_tor, f.dst_tor, key, bytes_sent, f.ecn_total)
                }
            };
            if links.is_empty() {
                return None;
            }
            let mut u = f.src_tor;
            for l in links {
                let link = sh.fabric.links[l as usize];
                if link.a == u {
                    path.push(2 * l);
                    u = link.b;
                } else {
                    debug_assert_eq!(link.b, u);
                    path.push(2 * l + 1);
                    u = link.a;
                }
            }
            debug_assert_eq!(u, f.dst_tor);
        }
        path.push(down);
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::compute_metrics;
    use crate::types::{MS, SEC, US};
    use dcn_routing::RoutingSuite;
    use dcn_topology::fattree::FatTree;
    use dcn_topology::xpander::Xpander;
    use dcn_workloads::tm::Endpoint;

    fn flow(start_s: f64, src: (u32, u32), dst: (u32, u32), bytes: u64) -> FlowEvent {
        FlowEvent {
            start_s,
            src: Endpoint {
                rack: src.0,
                server: src.1,
            },
            dst: Endpoint {
                rack: dst.0,
                server: dst.1,
            },
            bytes,
        }
    }

    fn fat_tree_sim() -> Simulator {
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default())
    }

    #[test]
    fn single_small_flow_completes_fast() {
        let mut sim = fat_tree_sim();
        // Rack 0 server 0 → rack 12 (other pod) server 1, 10 KB.
        sim.inject(&[flow(0.0, (0, 0), (12, 1), 10_000)]);
        let rec = sim.run(SEC);
        let fct = rec[0].fct_ns.expect("flow must finish");
        // 7 packets, cwnd 10 ⇒ one window: ~6 hops × (1.2 µs + 0.1 µs).
        assert!(fct > 5 * US && fct < 100 * US, "fct {fct} ns");
    }

    #[test]
    fn long_flow_achieves_near_line_rate() {
        let mut sim = fat_tree_sim();
        sim.inject(&[flow(0.0, (0, 0), (12, 0), 10_000_000)]);
        let rec = sim.run(10 * SEC);
        let fct = rec[0].fct_ns.unwrap() as f64;
        let gbps = 10_000_000.0 * 8.0 / fct;
        assert!(gbps > 8.0, "throughput {gbps} Gbps");
    }

    #[test]
    fn same_rack_flow_works() {
        let mut sim = fat_tree_sim();
        sim.inject(&[flow(0.0, (0, 0), (0, 1), 100_000)]);
        let rec = sim.run(SEC);
        assert!(rec[0].fct_ns.is_some());
    }

    #[test]
    fn two_flows_share_bottleneck_fairly() {
        // Two senders on different racks to the same destination server:
        // the server downlink is the bottleneck; DCTCP should split it.
        let mut sim = fat_tree_sim();
        sim.inject(&[
            flow(0.0, (0, 0), (12, 0), 5_000_000),
            flow(0.0, (4, 0), (12, 0), 5_000_000),
        ]);
        let rec = sim.run(30 * SEC);
        let f0 = rec[0].fct_ns.unwrap() as f64;
        let f1 = rec[1].fct_ns.unwrap() as f64;
        // Each gets ≈5 Gbps ⇒ ≈8 ms; allow generous slack.
        for f in [f0, f1] {
            let gbps = 5_000_000.0 * 8.0 / f;
            assert!(gbps > 3.0 && gbps < 7.5, "per-flow {gbps} Gbps");
        }
        assert!((f0 / f1 - 1.0).abs() < 0.5, "unfair split {f0} vs {f1}");
    }

    #[test]
    fn ecn_prevents_drops_at_moderate_fanin() {
        let mut sim = fat_tree_sim();
        sim.inject(&[
            flow(0.0, (0, 0), (12, 0), 2_000_000),
            flow(0.0, (4, 0), (12, 0), 2_000_000),
        ]);
        sim.run(30 * SEC);
        assert!(sim.total_marks() > 0, "DCTCP should be marking");
        assert_eq!(sim.total_drops(), 0, "ECN should prevent drops");
    }

    #[test]
    fn survives_heavy_incast_with_drops() {
        // 8-to-1 incast into one server at tiny queues: drops happen but
        // all flows still complete via retransmission.
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        let cfg = SimConfig {
            queue_pkts: 10,
            ecn_k_pkts: 4,
            ..Default::default()
        };
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
        let racks = [4u32, 5, 8, 9];
        let flows: Vec<FlowEvent> = (0..8)
            .map(|i| flow(0.0, (racks[i % 4], (i / 4) as u32), (0, 0), 500_000))
            .collect();
        sim.inject(&flows);
        let rec = sim.run(60 * SEC);
        assert!(sim.total_drops() > 0, "expected drops at queue=10");
        for r in &rec {
            assert!(r.fct_ns.is_some(), "flow lost to incast");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = fat_tree_sim();
            sim.inject(&[
                flow(0.0, (0, 0), (12, 0), 1_000_000),
                flow(0.0001, (4, 1), (8, 1), 300_000),
                flow(0.0002, (8, 0), (0, 1), 50_000),
            ]);
            sim.run(10 * SEC)
                .iter()
                .map(|r| r.fct_ns)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_run_is_byte_identical_across_thread_counts() {
        // The cornerstone of the parallel engine: the schedule is a pure
        // function of the 8-way shard partition, so any worker count
        // produces identical results — not just FCTs but event and mark
        // counts too.
        let t = FatTree::full(4).build();
        let run = |threads: u32| {
            let suite = RoutingSuite::new(&t);
            let cfg = SimConfig {
                threads,
                ..Default::default()
            };
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
            sim.inject(&[
                flow(0.0, (0, 0), (12, 0), 1_000_000),
                flow(0.0, (4, 0), (12, 0), 2_000_000),
                flow(0.0001, (4, 1), (8, 1), 300_000),
                flow(0.0002, (8, 0), (0, 1), 50_000),
            ]);
            let rec = sim.run(10 * SEC);
            (
                rec.iter().map(|r| r.fct_ns).collect::<Vec<_>>(),
                sim.events_processed(),
                sim.total_marks(),
                sim.conservation(),
            )
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), base, "threads={threads} diverged");
        }
    }

    #[test]
    fn vlb_and_hyb_complete_on_xpander() {
        let t = Xpander::new(5, 8, 2, 3).build();
        for mode in 0..3 {
            let suite = RoutingSuite::new(&t);
            let sel: Box<dyn PathSelector> = match mode {
                0 => Box::new(suite.ecmp()),
                1 => Box::new(suite.vlb()),
                _ => Box::new(suite.hyb(dcn_routing::PAPER_Q_BYTES)),
            };
            let mut sim = Simulator::new(&t, sel, SimConfig::default());
            sim.inject(&[
                flow(0.0, (0, 0), (1, 0), 2_000_000),
                flow(0.0, (2, 1), (7, 1), 50_000),
            ]);
            let rec = sim.run(10 * SEC);
            assert!(
                rec.iter().all(|r| r.fct_ns.is_some()),
                "mode {mode} incomplete"
            );
        }
    }

    #[test]
    fn newreno_fills_queues_where_dctcp_marks() {
        // Same fan-in: DCTCP keeps queues at K via marks; NewReno runs
        // them into tail drops instead.
        let t = FatTree::full(4).build();
        let mk = |cfg: SimConfig| {
            let suite = RoutingSuite::new(&t);
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
            sim.inject(&[
                flow(0.0, (0, 0), (12, 0), 4_000_000),
                flow(0.0, (4, 0), (12, 0), 4_000_000),
            ]);
            let rec = sim.run(60 * SEC);
            assert!(rec.iter().all(|r| r.fct_ns.is_some()));
            (sim.total_marks(), sim.total_drops())
        };
        let (dctcp_marks, dctcp_drops) = mk(SimConfig::default());
        let (_, reno_drops) = mk(SimConfig::default().with_newreno());
        assert!(dctcp_marks > 0);
        assert_eq!(dctcp_drops, 0, "DCTCP should avoid drops here");
        assert!(reno_drops > 0, "NewReno should be loss-driven");
    }

    #[test]
    fn pfabric_completes_and_never_marks() {
        // The new transport/queue pair runs end-to-end through the same
        // engine: fan-in traffic completes, schedules by remaining size,
        // and produces no ECN marks (pFabric has no marking).
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(
            &t,
            Box::new(suite.ecmp()),
            SimConfig::default().with_pfabric(),
        );
        assert_eq!(sim.transport_name(), "pfabric");
        sim.inject(&[
            flow(0.0, (0, 0), (12, 0), 4_000_000),
            flow(0.0, (4, 0), (12, 0), 4_000_000),
            flow(0.0, (8, 0), (12, 0), 50_000),
        ]);
        let rec = sim.run(60 * SEC);
        assert!(rec.iter().all(|r| r.fct_ns.is_some()), "pfabric incomplete");
        assert_eq!(sim.total_marks(), 0, "pfabric must not ECN-mark");
        // Strict priority: the short flow finishes far ahead of the long
        // ones it shares the destination downlink with.
        let short = rec[2].fct_ns.unwrap();
        let long = rec[0].fct_ns.unwrap().min(rec[1].fct_ns.unwrap());
        assert!(
            short * 10 < long,
            "short flow {short} ns should preempt long {long} ns"
        );
    }

    #[test]
    fn pfabric_deterministic_across_runs() {
        let run = || {
            let t = FatTree::full(4).build();
            let suite = RoutingSuite::new(&t);
            let mut sim = Simulator::new(
                &t,
                Box::new(suite.ecmp()),
                SimConfig::default().with_pfabric(),
            );
            sim.inject(&[
                flow(0.0, (0, 0), (12, 0), 1_000_000),
                flow(0.0001, (4, 1), (8, 1), 300_000),
            ]);
            sim.run(10 * SEC)
                .iter()
                .map(|r| r.fct_ns)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn oracle_routing_beats_ecmp_between_neighbors() {
        // The Fig 7b pathology: all traffic between two adjacent racks.
        // ECMP is stuck on the direct link; the oracle spreads flowlets
        // over the least-queued of the k shortest paths.
        let t = Xpander::new(5, 8, 3, 3).build();
        let l = t.link(0);
        let flows: Vec<FlowEvent> = (0..6)
            .map(|i| flow(0.0, (l.a, i % 3), (l.b, (i + 1) % 3), 3_000_000))
            .collect();
        let run = |oracle: bool| {
            let suite = RoutingSuite::new(&t);
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
            if oracle {
                sim.enable_oracle_routing(&t, 8);
            }
            sim.inject(&flows);
            let rec = sim.run(60 * SEC);
            rec.iter().map(|r| r.fct_ns.unwrap()).max().unwrap()
        };
        let ecmp = run(false);
        let oracle = run(true);
        assert!(
            (oracle as f64) < ecmp as f64 * 0.75,
            "oracle {oracle} not clearly better than ecmp {ecmp}"
        );
    }

    #[test]
    fn oracle_routing_deterministic() {
        let t = Xpander::new(4, 6, 2, 1).build();
        let run = || {
            let suite = RoutingSuite::new(&t);
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
            sim.enable_oracle_routing(&t, 4);
            sim.inject(&[
                flow(0.0, (0, 0), (9, 1), 800_000),
                flow(0.0001, (3, 1), (12, 0), 500_000),
            ]);
            sim.run(30 * SEC)
                .iter()
                .map(|r| r.fct_ns)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn window_gating_stops_run() {
        let mut sim = fat_tree_sim();
        sim.set_window(0, MS);
        sim.inject(&[
            flow(0.0, (0, 0), (12, 0), 10_000),
            // Outside the window; the run may stop before it finishes.
            flow(1.0, (4, 0), (8, 0), 10_000),
        ]);
        let rec = sim.run(10 * SEC);
        assert!(rec[0].fct_ns.is_some());
        let m = compute_metrics(&rec, 0, MS);
        assert_eq!(m.flows, 1);
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn flow_survives_link_down_then_up() {
        // Kill the only inter-rack link mid-flow, restore it later: the
        // flow must lose packets to the fault, stall, and still finish
        // after recovery.
        let t = {
            let mut t = dcn_topology::Topology::new("two-racks");
            let a = t.add_node(dcn_topology::NodeKind::Tor, 2);
            let b = t.add_node(dcn_topology::NodeKind::Tor, 2);
            t.add_link(a, b);
            t
        };
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow(0.0, (0, 0), (1, 0), 5_000_000)]);
        sim.set_fault_plan(&FaultPlan::new().link_down(MS, 0).link_up(20 * MS, 0));
        let rec = sim.run(60 * SEC);
        assert!(sim.total_fault_drops() > 0, "no packets hit the dead link");
        let fct = rec[0].fct_ns.expect("flow must finish after recovery");
        assert!(!rec[0].failed);
        // 5 MB at 10 Gbps is ~4 ms; the 19 ms outage dominates the FCT.
        assert!(
            fct > 19 * MS,
            "fct {fct} ns too fast to have seen the outage"
        );
        let recovery = rec[0].recovery_ns.expect("flow should have recovered");
        assert!(recovery > 0 && recovery < 40 * MS, "recovery {recovery} ns");
    }

    #[test]
    fn fault_drops_separate_from_congestion_drops() {
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow(0.0, (0, 0), (12, 0), 2_000_000)]);
        // Take down one of ToR 0's uplinks, which the flow may hash onto;
        // ECMP re-salts around it via RTO, no congestion drops expected.
        let l = t.neighbors(0)[0].1;
        sim.set_fault_plan(&FaultPlan::new().link_down(0, l).link_up(30 * MS, l));
        sim.run(60 * SEC);
        assert_eq!(sim.total_congestion_drops(), 0);
        assert_eq!(sim.total_drops(), sim.total_fault_drops());
    }

    #[test]
    fn gray_link_drops_but_flow_completes() {
        let t = {
            let mut t = dcn_topology::Topology::new("two-racks");
            let a = t.add_node(dcn_topology::NodeKind::Tor, 1);
            let b = t.add_node(dcn_topology::NodeKind::Tor, 1);
            t.add_link(a, b);
            t
        };
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow(0.0, (0, 0), (1, 0), 1_000_000)]);
        sim.set_fault_plan(&FaultPlan::new().with_seed(7).link_gray(0, 0, 0.02));
        let rec = sim.run(60 * SEC);
        assert!(
            sim.total_fault_drops() > 0,
            "2% loss should hit ~685 packets"
        );
        assert_eq!(sim.total_congestion_drops(), 0);
        assert!(rec[0].fct_ns.is_some(), "flow must survive gray loss");
    }

    #[test]
    fn gray_loss_identical_across_thread_counts() {
        // Counter-based gray draws are keyed on (plan seed, channel,
        // per-channel draw index) — no shared RNG stream — so fault
        // injection is thread-count-invariant too.
        let t = FatTree::full(4).build();
        let run = |threads: u32| {
            let suite = RoutingSuite::new(&t);
            let cfg = SimConfig {
                threads,
                ..Default::default()
            };
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
            sim.inject(&[
                flow(0.0, (0, 0), (12, 0), 1_000_000),
                flow(0.0, (4, 0), (12, 1), 1_000_000),
            ]);
            let l = t.neighbors(0)[0].1;
            sim.set_fault_plan(
                &FaultPlan::new()
                    .with_seed(11)
                    .link_gray(0, l, 0.01)
                    .link_down(2 * MS, l)
                    .link_up(8 * MS, l),
            );
            let rec = sim.run(60 * SEC);
            (
                rec.iter()
                    .map(|r| (r.fct_ns, r.failed, r.recovery_ns))
                    .collect::<Vec<_>>(),
                sim.total_fault_drops(),
                sim.events_processed(),
            )
        };
        let base = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), base, "threads={threads} diverged");
        }
    }

    #[test]
    fn permanent_disconnection_fails_flows() {
        // Two racks joined by one link; cutting it forever must fail the
        // inter-rack flow (after reconvergence) while the same-rack flow
        // completes — and the run must terminate, not hang.
        let t = {
            let mut t = dcn_topology::Topology::new("two-racks");
            let a = t.add_node(dcn_topology::NodeKind::Tor, 2);
            let b = t.add_node(dcn_topology::NodeKind::Tor, 2);
            t.add_link(a, b);
            t
        };
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[
            flow(0.0, (0, 0), (1, 0), 5_000_000),
            flow(0.0, (0, 0), (0, 1), 100_000),
        ]);
        sim.set_fault_plan(&FaultPlan::new().link_down(MS, 0));
        let rec = sim.run(60 * SEC);
        assert!(rec[0].failed, "disconnected flow must be failed");
        assert!(rec[0].fct_ns.is_none());
        assert!(rec[1].fct_ns.is_some(), "same-rack flow unaffected");
        let m = compute_metrics(&rec, 0, SEC);
        assert_eq!(m.flows, 2);
        assert_eq!(m.completed + m.failed, 2);
    }

    #[test]
    fn switch_down_and_up_behaves_like_links() {
        // Killing an aggregation switch in a k=4 fat-tree leaves 3 others;
        // flows reroute and complete. ToR 0's rack is NOT behind it.
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow(0.0, (0, 0), (12, 0), 2_000_000)]);
        // Node ids: ToRs come first (16), then aggs. Kill the first agg.
        let agg = (0..t.num_nodes() as u32)
            .find(|&n| t.kind(n) == dcn_topology::NodeKind::Aggregation)
            .unwrap();
        sim.set_fault_plan(
            &FaultPlan::new()
                .switch_down(MS, agg)
                .switch_up(10 * MS, agg),
        );
        let rec = sim.run(60 * SEC);
        assert!(rec[0].fct_ns.is_some(), "flow must survive an agg failure");
    }

    #[test]
    fn rto_backoff_doubles_then_resets_on_ack() {
        // Drive repeated RTOs by cutting the only link, then verify the
        // documented backoff law on the private flow state: doubling per
        // epoch, capped at 64, reset to 1 by the first new ACK.
        let t = {
            let mut t = dcn_topology::Topology::new("two-racks");
            let a = t.add_node(dcn_topology::NodeKind::Tor, 1);
            let b = t.add_node(dcn_topology::NodeKind::Tor, 1);
            t.add_link(a, b);
            t
        };
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow(0.0, (0, 0), (1, 0), 1_000_000)]);
        sim.set_fault_plan(&FaultPlan::new().link_down(0, 0).link_up(400 * MS, 0));
        // Long outage ⇒ many RTO epochs: 1,2,4,...,64,64,... Run up to
        // just before recovery and check the cap was reached.
        sim.run(399 * MS);
        assert_eq!(
            sim.flow_ref(0).rto_backoff,
            64,
            "backoff should saturate at 64"
        );
        assert!(
            sim.flow_ref(0).path_salt > 0,
            "RTOs must re-salt the path hash"
        );
        // Fresh sim, same plan, run to completion: new ACKs reset backoff.
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow(0.0, (0, 0), (1, 0), 1_000_000)]);
        sim.set_fault_plan(&FaultPlan::new().link_down(0, 0).link_up(400 * MS, 0));
        let rec = sim.run(60 * SEC);
        assert!(rec[0].fct_ns.is_some());
        assert_eq!(
            sim.flow_ref(0).rto_backoff,
            1,
            "ACKs must reset the backoff"
        );
    }

    #[test]
    fn goodput_timeline_accounts_all_bytes() {
        let mut sim = fat_tree_sim();
        sim.inject(&[flow(0.0, (0, 0), (12, 0), 3_000_000)]);
        sim.run(60 * SEC);
        let total: u64 = sim.goodput_timeline_ms().iter().sum();
        // The run stops when the receiver finishes, so up to one window of
        // final ACKs may never reach the sender's accounting.
        assert!(total <= 3_000_000, "timeline over-credits: {total}");
        assert!(total > 2_800_000, "timeline under-credits: {total}");
    }

    #[test]
    #[should_panic(expected = "event budget exceeded")]
    fn watchdog_trips_on_event_budget() {
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        let cfg = SimConfig {
            max_events: 50,
            ..Default::default()
        };
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
        sim.inject(&[flow(0.0, (0, 0), (12, 0), 10_000_000)]);
        sim.run(60 * SEC);
    }

    #[test]
    fn unconstrained_server_links_speed_up_fanin() {
        // With 1000 Gbps host links, two senders into one server are no
        // longer bottlenecked at the destination downlink.
        let t = FatTree::full(4).build();
        let mk = |cfg: SimConfig| {
            let suite = RoutingSuite::new(&t);
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
            sim.inject(&[
                flow(0.0, (0, 0), (12, 0), 3_000_000),
                flow(0.0, (4, 0), (12, 0), 3_000_000),
            ]);
            let rec = sim.run(30 * SEC);
            rec.iter().map(|r| r.fct_ns.unwrap()).max().unwrap()
        };
        let constrained = mk(SimConfig::default());
        let unconstrained = mk(SimConfig::default().unconstrained_servers());
        assert!(
            (unconstrained as f64) < constrained as f64 * 0.8,
            "unconstrained {unconstrained} vs constrained {constrained}"
        );
    }
}
