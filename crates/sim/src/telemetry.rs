//! Periodic time-series telemetry: the aggregate-dynamics companion to the
//! per-event tracing in [`crate::trace`].
//!
//! A [`Telemetry`] sink, installed via `Simulator::set_telemetry`, makes
//! the engine snapshot fabric-wide state on a fixed simulated-time cadence
//! (`sample_every_ns`): per-channel queue depth and occupancy, interval
//! transmit bytes (link utilization), cumulative mark/drop counters, active
//! flows, in-flight bytes, and event-heap size. Each snapshot is one JSONL
//! line with **integer-only** fields, so a same-seed run reproduces the
//! stream byte for byte — the property `dcnstat diff` and CI lean on.
//!
//! Like tracing, telemetry is strictly pay-for-what-you-use: the engine
//! holds `Option<Box<Telemetry>>` plus a cached next-sample deadline
//! (`u64::MAX` when disabled), so a disabled run costs one integer compare
//! per event and allocates nothing.
//!
//! Schema (one object per line, cumulative counters unless noted):
//!
//! ```json
//! {"t": 200000, "ev": "sample", "events": 4811, "heap": 27,
//!  "flows_active": 9, "inflight_bytes": 61440, "queued_pkts": 12,
//!  "queued_bytes": 18360, "tx_bytes": 91800, "sent": 2410,
//!  "delivered": 2371, "marks": 14, "drops_congestion": 2,
//!  "drops_fault": 0, "ch": [[3, 4, 6120, 30600], [9, 0, 0, 15300]]}
//! ```
//!
//! `t` is the sample boundary (a multiple of the cadence), `tx_bytes` and
//! the per-channel `ch` rows `[id, qlen, qbytes, tx_bytes]` are deltas over
//! the elapsed interval, and `ch` is sparse: only channels with a non-empty
//! queue or interval traffic appear.

use std::io::{self, BufWriter, Write};

use crate::types::Ns;
use dcn_json::Json;

/// Default sampling cadence: 100 µs of simulated time.
pub const DEFAULT_SAMPLE_EVERY_NS: Ns = 100_000;

/// Fabric-wide snapshot handed to [`Telemetry::write_sample`] by the
/// engine; field meanings match the module-level schema.
#[derive(Clone, Debug, Default)]
pub struct Sample {
    /// Sample boundary (multiple of the cadence), in simulated ns.
    pub t: Ns,
    /// Events processed so far.
    pub events: u64,
    /// Event-heap size at the sample point.
    pub heap: u64,
    /// Flows started but neither finished nor failed.
    pub flows_active: u64,
    /// Sender-side unacknowledged bytes across active flows.
    pub inflight_bytes: u64,
    /// Packets queued across all channels.
    pub queued_pkts: u64,
    /// Bytes queued across all channels.
    pub queued_bytes: u64,
    /// Bytes begun transmitting since the previous sample (all channels).
    pub tx_bytes: u64,
    /// Cumulative packets created (data + ACKs).
    pub sent: u64,
    /// Cumulative packets delivered to end hosts.
    pub delivered: u64,
    /// Cumulative ECN marks.
    pub marks: u64,
    /// Cumulative congestion drops (tail + eviction).
    pub drops_congestion: u64,
    /// Cumulative fault drops (dead/gray channels).
    pub drops_fault: u64,
    /// Sparse per-channel rows `(id, queue_pkts, queue_bytes,
    /// interval_tx_bytes)` for channels with queue or traffic.
    pub channels: Vec<(u32, u32, u64, u64)>,
}

impl Sample {
    /// The sample as a JSONL object (integer fields only, insertion
    /// order fixed) — the byte-stable wire format.
    pub fn to_json(&self) -> Json {
        let ch = self
            .channels
            .iter()
            .map(|&(id, qlen, qbytes, tx)| {
                Json::Arr(vec![
                    Json::from(id),
                    Json::from(qlen),
                    Json::from(qbytes),
                    Json::from(tx),
                ])
            })
            .collect();
        Json::obj(vec![
            ("t", Json::from(self.t)),
            ("ev", Json::from("sample")),
            ("events", Json::from(self.events)),
            ("heap", Json::from(self.heap)),
            ("flows_active", Json::from(self.flows_active)),
            ("inflight_bytes", Json::from(self.inflight_bytes)),
            ("queued_pkts", Json::from(self.queued_pkts)),
            ("queued_bytes", Json::from(self.queued_bytes)),
            ("tx_bytes", Json::from(self.tx_bytes)),
            ("sent", Json::from(self.sent)),
            ("delivered", Json::from(self.delivered)),
            ("marks", Json::from(self.marks)),
            ("drops_congestion", Json::from(self.drops_congestion)),
            ("drops_fault", Json::from(self.drops_fault)),
            ("ch", Json::Arr(ch)),
        ])
    }
}

/// A telemetry sink: owns the output stream, the sampling cadence, and the
/// per-channel interval transmit accumulators.
///
/// File-backed sinks ([`Telemetry::to_file`] / [`Telemetry::resume_file`])
/// are crash-safe: samples stream into `<path>.tmp` and are atomically
/// renamed to the final path by [`Telemetry::finish`], so interrupted runs
/// never leave a truncated stream at the advertised location.
pub struct Telemetry {
    every_ns: Ns,
    out: BufWriter<Box<dyn Write + Send>>,
    path: Option<String>,
    samples: u64,
    /// Bytes written (rendered lines + newlines) — the resume cursor.
    bytes: u64,
    /// Bytes begun transmitting per channel since the last sample.
    tx_bytes: Vec<u64>,
    tx_total: u64,
}

/// Resumable [`Telemetry`] state persisted in checkpoints: the cadence,
/// output cursors, and the mid-interval transmit accumulators.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    pub every_ns: Ns,
    pub path: String,
    pub samples: u64,
    pub bytes: u64,
    pub tx_bytes: Vec<u64>,
    pub tx_total: u64,
}

impl Telemetry {
    /// Telemetry over an arbitrary sink (tests use
    /// [`crate::trace::SharedBuf`]); `every_ns` is clamped to ≥ 1.
    pub fn new(sink: Box<dyn Write + Send>, every_ns: Ns) -> Self {
        Telemetry {
            every_ns: every_ns.max(1),
            out: BufWriter::new(sink),
            path: None,
            samples: 0,
            bytes: 0,
            tx_bytes: Vec::new(),
            tx_total: 0,
        }
    }

    /// Telemetry writing JSONL toward `path`, streaming through
    /// `<path>.tmp` until [`Telemetry::finish`] renames it into place.
    pub fn to_file(path: &str, every_ns: Ns) -> io::Result<Self> {
        let f = std::fs::File::create(format!("{path}.tmp"))?;
        let mut t = Self::new(Box::new(f), every_ns);
        t.path = Some(path.to_string());
        Ok(t)
    }

    /// Reopens the in-progress temporary captured in `snap`, truncates it
    /// back to the checkpointed byte cursor, and continues from there.
    pub fn resume_file(snap: &TelemetrySnapshot) -> io::Result<Self> {
        use std::io::Seek;
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(format!("{}.tmp", snap.path))?;
        f.set_len(snap.bytes)?;
        f.seek(io::SeekFrom::End(0))?;
        let mut t = Self::new(Box::new(f), snap.every_ns);
        t.path = Some(snap.path.clone());
        t.samples = snap.samples;
        t.bytes = snap.bytes;
        t.tx_bytes = snap.tx_bytes.clone();
        t.tx_total = snap.tx_total;
        Ok(t)
    }

    /// Resumable state, or `None` when the sink is not a file (such
    /// telemetry cannot be checkpointed).
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        self.path.as_ref().map(|p| TelemetrySnapshot {
            every_ns: self.every_ns,
            path: p.clone(),
            samples: self.samples,
            bytes: self.bytes,
            tx_bytes: self.tx_bytes.clone(),
            tx_total: self.tx_total,
        })
    }

    pub fn every_ns(&self) -> Ns {
        self.every_ns
    }

    /// Sampling-output path, when writing to a file.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }

    /// Samples written so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Credits `bytes` to channel `ch` for the current interval (called by
    /// the engine when a transmission starts).
    pub fn on_tx(&mut self, ch: u32, bytes: u32) {
        let i = ch as usize;
        if self.tx_bytes.len() <= i {
            self.tx_bytes.resize(i + 1, 0);
        }
        self.tx_bytes[i] += bytes as u64;
        self.tx_total += bytes as u64;
    }

    /// Interval transmit bytes for channel `ch` (0 if never seen).
    pub fn interval_tx(&self, ch: u32) -> u64 {
        self.tx_bytes.get(ch as usize).copied().unwrap_or(0)
    }

    /// Total interval transmit bytes across channels.
    pub fn interval_tx_total(&self) -> u64 {
        self.tx_total
    }

    /// Writes one sample line and resets the interval accumulators.
    pub fn write_sample(&mut self, s: &Sample) -> io::Result<()> {
        let line = s.to_json().to_string();
        self.bytes += line.len() as u64 + 1;
        writeln!(self.out, "{line}")?;
        self.samples += 1;
        self.tx_bytes.iter_mut().for_each(|b| *b = 0);
        self.tx_total = 0;
        Ok(())
    }

    /// Flushes buffered samples to the sink without renaming — checkpoint
    /// support, so the on-disk temporary always covers the byte cursor a
    /// concurrent [`Telemetry::snapshot`] reports.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Flushes the sink and, for file-backed telemetry, renames the
    /// temporary into its final path; the engine calls this when a run
    /// ends.
    pub fn finish(&mut self) -> io::Result<()> {
        self.out.flush()?;
        if let Some(path) = &self.path {
            std::fs::rename(format!("{path}.tmp"), path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SharedBuf;

    #[test]
    fn sample_json_is_integer_only_and_ordered() {
        let s = Sample {
            t: 200_000,
            events: 10,
            heap: 3,
            flows_active: 2,
            inflight_bytes: 3000,
            queued_pkts: 1,
            queued_bytes: 1540,
            tx_bytes: 4620,
            sent: 5,
            delivered: 4,
            marks: 1,
            drops_congestion: 0,
            drops_fault: 0,
            channels: vec![(3, 1, 1540, 3080), (9, 0, 0, 1540)],
        };
        let line = s.to_json().to_string();
        assert!(line.starts_with("{\"t\": 200000, \"ev\": \"sample\""));
        assert!(line.contains("\"ch\": [[3, 1, 1540, 3080], [9, 0, 0, 1540]]"));
        // Integer-only: no floats may sneak into the byte-stable stream.
        assert!(!line.contains('.'), "float leaked into telemetry: {line}");
    }

    #[test]
    fn tx_accumulators_reset_per_sample() {
        let buf = SharedBuf::default();
        let mut tel = Telemetry::new(Box::new(buf.clone()), 100);
        tel.on_tx(2, 1500);
        tel.on_tx(2, 1500);
        tel.on_tx(5, 40);
        assert_eq!(tel.interval_tx(2), 3000);
        assert_eq!(tel.interval_tx(5), 40);
        assert_eq!(tel.interval_tx(100), 0);
        assert_eq!(tel.interval_tx_total(), 3040);
        tel.write_sample(&Sample::default()).unwrap();
        assert_eq!(tel.interval_tx(2), 0);
        assert_eq!(tel.interval_tx_total(), 0);
        assert_eq!(tel.samples(), 1);
        tel.finish().unwrap();
        let text = String::from_utf8(buf.contents()).unwrap();
        assert_eq!(text.lines().count(), 1);
    }
}
