//! Quick performance probe: events/second of the engine under load.
use dcn_routing::RoutingSuite;
use dcn_sim::{compute_metrics, SimConfig, Simulator, MS, SEC};
use dcn_topology::fattree::FatTree;
use dcn_workloads::{fsize::PFabricWebSearch, generate_flows, tm::AllToAll};

fn main() {
    let t = FatTree::full(8).build(); // 128 servers
    let suite = RoutingSuite::new(&t);
    let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
    let pattern = AllToAll::new(&t, t.tors_with_servers());
    // 167 flows/s/server over 0.1 s
    let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 167.0 * 128.0, 0.1, 1);
    println!("flows: {}", flows.len());
    sim.set_window(10 * MS, 100 * MS);
    sim.inject(&flows);
    let start = std::time::Instant::now();
    let rec = sim.run(20 * SEC);
    let el = start.elapsed();
    let m = compute_metrics(&rec, 10 * MS, 100 * MS);
    println!(
        "wall {:?}  events {}  ({:.1} M ev/s)  completed {}/{}  avgFCT {:.3} ms p99s {:.3} ms tput {:.2} Gbps drops {}",
        el,
        sim.events_processed(),
        sim.events_processed() as f64 / el.as_secs_f64() / 1e6,
        m.completed,
        m.flows,
        m.avg_fct_ms,
        m.p99_short_fct_ms,
        m.avg_long_tput_gbps,
        sim.total_drops()
    );
}
