//! Property-based tests for the packet simulator: conservation-style
//! invariants that must survive any workload in the valid range.

use dcn_routing::RoutingSuite;
use dcn_sim::{SimConfig, Simulator, MS, SEC};
use dcn_topology::fattree::FatTree;
use dcn_topology::xpander::Xpander;
use dcn_workloads::tm::Endpoint;
use dcn_workloads::{generate_flows, AllToAll, FixedSize, FlowEvent};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every injected flow completes on an idle-enough network, and FCT
    /// is at least the serialization floor and at most the run horizon.
    #[test]
    fn flows_complete_with_sane_fcts(
        lambda in 100.0f64..1500.0,
        bytes in 1_000u64..500_000,
        seed in 0u64..50,
    ) {
        let t = FatTree::full(4).build();
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(bytes), lambda, 0.01, seed);
        prop_assume!(!flows.is_empty());
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.set_window(0, 10 * MS);
        sim.inject(&flows);
        let rec = sim.run(120 * SEC);
        let floor = (bytes as f64 * 8.0 / 10.0) as u64;
        for r in &rec {
            let fct = r.fct_ns.expect("unfinished flow");
            prop_assert!(fct >= floor);
            prop_assert!(fct < 120 * SEC);
        }
    }

    /// Byte conservation: with zero drops, ECN marks or not, the receiver
    /// saw exactly the flow's bytes — FCT times goodput equals size.
    #[test]
    fn goodput_consistent(bytes in 100_000u64..5_000_000) {
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.set_window(0, MS);
        sim.inject(&[FlowEvent {
            start_s: 0.0,
            src: Endpoint { rack: 0, server: 0 },
            dst: Endpoint { rack: 12, server: 1 },
            bytes,
        }]);
        let rec = sim.run(60 * SEC);
        let fct = rec[0].fct_ns.unwrap() as f64;
        let goodput_gbps = bytes as f64 * 8.0 / fct;
        prop_assert!(goodput_gbps <= 10.0 + 1e-9, "goodput above line rate");
        prop_assert!(goodput_gbps > 1.0, "goodput {goodput_gbps} implausibly low");
        prop_assert_eq!(sim.total_drops(), 0);
    }

    /// Determinism under every routing scheme.
    #[test]
    fn deterministic_under_all_routings(mode in 0u8..3, seed in 0u64..20) {
        let t = Xpander::new(4, 6, 2, 3).build();
        let run = || {
            let suite = RoutingSuite::new(&t);
            let sel: Box<dyn dcn_routing::PathSelector> = match mode {
                0 => Box::new(suite.ecmp()),
                1 => Box::new(suite.vlb()),
                _ => Box::new(suite.hyb(100_000)),
            };
            let pattern = AllToAll::new(&t, t.tors_with_servers());
            let flows = generate_flows(&pattern, &FixedSize(80_000), 800.0, 0.005, seed);
            let mut sim = Simulator::new(&t, sel, SimConfig::default());
            sim.set_window(0, 5 * MS);
            sim.inject(&flows);
            sim.run(60 * SEC).iter().map(|r| r.fct_ns).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Shrinking queues can only add drops, never remove completions.
    #[test]
    fn small_queues_still_deliver(queue in 5u32..100, seed in 0u64..20) {
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        let cfg = SimConfig {
            queue_pkts: queue,
            ecn_k_pkts: (queue / 3).max(1),
            ..Default::default()
        };
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(200_000), 2_000.0, 0.005, seed);
        prop_assume!(!flows.is_empty());
        sim.set_window(0, 5 * MS);
        sim.inject(&flows);
        let rec = sim.run(120 * SEC);
        for r in &rec {
            prop_assert!(r.fct_ns.is_some(), "flow lost despite retransmission");
        }
    }
}
