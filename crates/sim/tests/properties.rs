//! Property-style tests for the packet simulator: conservation
//! invariants, determinism, and fault-injection termination guarantees.
//! Seeded sweeps stand in for proptest.

use dcn_rng::Rng;
use dcn_routing::RoutingSuite;
use dcn_sim::{FaultPlan, SimConfig, Simulator, MS, SEC};
use dcn_topology::fattree::FatTree;
use dcn_topology::xpander::Xpander;
use dcn_workloads::tm::Endpoint;
use dcn_workloads::{generate_flows, AllToAll, FixedSize, FlowEvent};

/// Every injected flow completes on an idle-enough network, and FCT is
/// at least the serialization floor and at most the run horizon.
#[test]
fn flows_complete_with_sane_fcts() {
    let mut meta = Rng::seed_from_u64(0x51F1);
    let t = FatTree::full(4).build();
    let mut cases = 0;
    while cases < 8 {
        let lambda = 100.0 + meta.gen_range(0.0..1400.0);
        let bytes = meta.gen_range(1_000u64..500_000);
        let seed = meta.gen_range(0u64..50);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(bytes), lambda, 0.01, seed);
        if flows.is_empty() {
            continue;
        }
        cases += 1;
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.set_window(0, 10 * MS);
        sim.inject(&flows);
        let rec = sim.run(120 * SEC);
        let floor = (bytes as f64 * 8.0 / 10.0) as u64;
        for r in &rec {
            let fct = r.fct_ns.expect("unfinished flow");
            assert!(fct >= floor);
            assert!(fct < 120 * SEC);
        }
    }
}

/// Byte conservation: with zero drops, the receiver saw exactly the
/// flow's bytes — FCT times goodput equals size.
#[test]
fn goodput_consistent() {
    let mut meta = Rng::seed_from_u64(0x600D);
    let t = FatTree::full(4).build();
    for _ in 0..8 {
        let bytes = meta.gen_range(100_000u64..5_000_000);
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.set_window(0, MS);
        sim.inject(&[FlowEvent {
            start_s: 0.0,
            src: Endpoint { rack: 0, server: 0 },
            dst: Endpoint {
                rack: 12,
                server: 1,
            },
            bytes,
        }]);
        let rec = sim.run(60 * SEC);
        let fct = rec[0].fct_ns.unwrap() as f64;
        let goodput_gbps = bytes as f64 * 8.0 / fct;
        assert!(goodput_gbps <= 10.0 + 1e-9, "goodput above line rate");
        assert!(goodput_gbps > 1.0, "goodput {goodput_gbps} implausibly low");
        assert_eq!(sim.total_drops(), 0);
    }
}

/// Determinism under every routing scheme.
#[test]
fn deterministic_under_all_routings() {
    let mut meta = Rng::seed_from_u64(0xDE7);
    let t = Xpander::new(4, 6, 2, 3).build();
    for _ in 0..6 {
        let mode = meta.gen_range(0u8..3);
        let seed = meta.gen_range(0u64..20);
        let run = || {
            let suite = RoutingSuite::new(&t);
            let sel: Box<dyn dcn_routing::PathSelector> = match mode {
                0 => Box::new(suite.ecmp()),
                1 => Box::new(suite.vlb()),
                _ => Box::new(suite.hyb(100_000)),
            };
            let pattern = AllToAll::new(&t, t.tors_with_servers());
            let flows = generate_flows(&pattern, &FixedSize(80_000), 800.0, 0.005, seed);
            let mut sim = Simulator::new(&t, sel, SimConfig::default());
            sim.set_window(0, 5 * MS);
            sim.inject(&flows);
            sim.run(60 * SEC)
                .iter()
                .map(|r| r.fct_ns)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

/// Shrinking queues can only add drops, never remove completions.
#[test]
fn small_queues_still_deliver() {
    let mut meta = Rng::seed_from_u64(0x5311);
    let t = FatTree::full(4).build();
    let mut cases = 0;
    while cases < 6 {
        let queue = meta.gen_range(5u32..100);
        let seed = meta.gen_range(0u64..20);
        let suite = RoutingSuite::new(&t);
        let cfg = SimConfig {
            queue_pkts: queue,
            ecn_k_pkts: (queue / 3).max(1),
            ..Default::default()
        };
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(200_000), 2_000.0, 0.005, seed);
        if flows.is_empty() {
            continue;
        }
        cases += 1;
        sim.set_window(0, 5 * MS);
        sim.inject(&flows);
        let rec = sim.run(120 * SEC);
        for r in &rec {
            assert!(r.fct_ns.is_some(), "flow lost despite retransmission");
        }
    }
}

/// Fault termination invariant: whatever a seeded fault plan does —
/// transient outages, permanent cuts, switch kills — the run ends and
/// every injected flow is either completed or failed, never limbo.
#[test]
fn faulted_runs_terminate_with_full_accounting() {
    let mut meta = Rng::seed_from_u64(0xFA17);
    let t = Xpander::new(4, 6, 2, 3).build();
    for case in 0..8 {
        let seed = meta.gen_range(0u64..1000);
        let outages = meta.gen_range(1usize..6);
        // Mix transient (recovering) and permanent outages across cases.
        let up = if case % 2 == 0 { Some(8 * MS) } else { None };
        let plan = FaultPlan::random_link_outages(&t, outages, 2 * MS, up, seed);
        let suite = RoutingSuite::new(&t);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(150_000), 1_000.0, 0.01, seed);
        if flows.is_empty() {
            continue;
        }
        let mut sim = Simulator::new(&t, Box::new(suite.hyb(100_000)), SimConfig::default());
        sim.set_window(0, 10 * MS);
        sim.inject(&flows);
        sim.set_fault_plan(&plan);
        let rec = sim.run(120 * SEC);
        let completed = rec.iter().filter(|r| r.fct_ns.is_some()).count();
        let failed = rec.iter().filter(|r| r.failed).count();
        assert_eq!(completed + failed, rec.len(), "flow in limbo (case {case})");
        for r in &rec {
            assert!(
                !(r.failed && r.fct_ns.is_some()),
                "flow both completed and failed"
            );
        }
    }
}

/// Fault determinism: the same workload + the same fault plan (same
/// seed) reproduce identical per-flow outcomes, including gray losses.
#[test]
fn faulted_runs_deterministic() {
    let t = Xpander::new(4, 6, 2, 3).build();
    let run = || {
        let suite = RoutingSuite::new(&t);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(120_000), 1_200.0, 0.01, 11);
        let plan = FaultPlan::random_link_outages(&t, 3, MS, Some(6 * MS), 42)
            .link_gray(MS, 0, 0.05)
            .link_clear(5 * MS, 0);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.set_window(0, 8 * MS);
        sim.inject(&flows);
        sim.set_fault_plan(&plan);
        let rec = sim.run(120 * SEC);
        let drops = (sim.total_fault_drops(), sim.total_congestion_drops());
        (
            rec.iter()
                .map(|r| (r.fct_ns, r.failed, r.recovery_ns))
                .collect::<Vec<_>>(),
            drops,
        )
    };
    assert_eq!(run(), run());
}

/// A fault-free run is byte-identical whether or not an empty fault plan
/// is installed — the fault machinery is pay-for-what-you-use.
#[test]
fn empty_fault_plan_is_identity() {
    let t = FatTree::full(4).build();
    let run = |with_plan: bool| {
        let suite = RoutingSuite::new(&t);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(100_000), 1_000.0, 0.01, 3);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.set_window(0, 10 * MS);
        sim.inject(&flows);
        if with_plan {
            sim.set_fault_plan(&FaultPlan::new().with_seed(99));
        }
        sim.run(120 * SEC)
            .iter()
            .map(|r| r.fct_ns)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(false), run(true));
}
