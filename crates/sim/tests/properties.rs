//! Property-style tests for the packet simulator: conservation
//! invariants, determinism, and fault-injection termination guarantees.
//! Seeded sweeps stand in for proptest.

use dcn_rng::Rng;
use dcn_routing::RoutingSuite;
use dcn_sim::{CountingTracer, FaultPlan, SimConfig, Simulator, MS, SEC};
use dcn_topology::fattree::FatTree;
use dcn_topology::xpander::Xpander;
use dcn_workloads::tm::Endpoint;
use dcn_workloads::{generate_flows, AllToAll, FixedSize, FlowEvent, PFabricWebSearch};

/// Every injected flow completes on an idle-enough network, and FCT is
/// at least the serialization floor and at most the run horizon.
#[test]
fn flows_complete_with_sane_fcts() {
    let mut meta = Rng::seed_from_u64(0x51F1);
    let t = FatTree::full(4).build();
    let mut cases = 0;
    while cases < 8 {
        let lambda = 100.0 + meta.gen_range(0.0..1400.0);
        let bytes = meta.gen_range(1_000u64..500_000);
        let seed = meta.gen_range(0u64..50);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(bytes), lambda, 0.01, seed);
        if flows.is_empty() {
            continue;
        }
        cases += 1;
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.set_window(0, 10 * MS);
        sim.inject(&flows);
        let rec = sim.run(120 * SEC);
        let floor = (bytes as f64 * 8.0 / 10.0) as u64;
        for r in &rec {
            let fct = r.fct_ns.expect("unfinished flow");
            assert!(fct >= floor);
            assert!(fct < 120 * SEC);
        }
    }
}

/// Byte conservation: with zero drops, the receiver saw exactly the
/// flow's bytes — FCT times goodput equals size.
#[test]
fn goodput_consistent() {
    let mut meta = Rng::seed_from_u64(0x600D);
    let t = FatTree::full(4).build();
    for _ in 0..8 {
        let bytes = meta.gen_range(100_000u64..5_000_000);
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.set_window(0, MS);
        sim.inject(&[FlowEvent {
            start_s: 0.0,
            src: Endpoint { rack: 0, server: 0 },
            dst: Endpoint {
                rack: 12,
                server: 1,
            },
            bytes,
        }]);
        let rec = sim.run(60 * SEC);
        let fct = rec[0].fct_ns.unwrap() as f64;
        let goodput_gbps = bytes as f64 * 8.0 / fct;
        assert!(goodput_gbps <= 10.0 + 1e-9, "goodput above line rate");
        assert!(goodput_gbps > 1.0, "goodput {goodput_gbps} implausibly low");
        assert_eq!(sim.total_drops(), 0);
    }
}

/// Determinism under every routing scheme.
#[test]
fn deterministic_under_all_routings() {
    let mut meta = Rng::seed_from_u64(0xDE7);
    let t = Xpander::new(4, 6, 2, 3).build();
    for _ in 0..6 {
        let mode = meta.gen_range(0u8..3);
        let seed = meta.gen_range(0u64..20);
        let run = || {
            let suite = RoutingSuite::new(&t);
            let sel: Box<dyn dcn_routing::PathSelector> = match mode {
                0 => Box::new(suite.ecmp()),
                1 => Box::new(suite.vlb()),
                _ => Box::new(suite.hyb(100_000)),
            };
            let pattern = AllToAll::new(&t, t.tors_with_servers());
            let flows = generate_flows(&pattern, &FixedSize(80_000), 800.0, 0.005, seed);
            let mut sim = Simulator::new(&t, sel, SimConfig::default());
            sim.set_window(0, 5 * MS);
            sim.inject(&flows);
            sim.run(60 * SEC)
                .iter()
                .map(|r| r.fct_ns)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

/// Shrinking queues can only add drops, never remove completions.
#[test]
fn small_queues_still_deliver() {
    let mut meta = Rng::seed_from_u64(0x5311);
    let t = FatTree::full(4).build();
    let mut cases = 0;
    while cases < 6 {
        let queue = meta.gen_range(5u32..100);
        let seed = meta.gen_range(0u64..20);
        let suite = RoutingSuite::new(&t);
        let cfg = SimConfig {
            queue_pkts: queue,
            ecn_k_pkts: (queue / 3).max(1),
            ..Default::default()
        };
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(200_000), 2_000.0, 0.005, seed);
        if flows.is_empty() {
            continue;
        }
        cases += 1;
        sim.set_window(0, 5 * MS);
        sim.inject(&flows);
        let rec = sim.run(120 * SEC);
        for r in &rec {
            assert!(r.fct_ns.is_some(), "flow lost despite retransmission");
        }
    }
}

/// Fault termination invariant: whatever a seeded fault plan does —
/// transient outages, permanent cuts, switch kills — the run ends and
/// every injected flow is either completed or failed, never limbo.
#[test]
fn faulted_runs_terminate_with_full_accounting() {
    let mut meta = Rng::seed_from_u64(0xFA17);
    let t = Xpander::new(4, 6, 2, 3).build();
    for case in 0..8 {
        let seed = meta.gen_range(0u64..1000);
        let outages = meta.gen_range(1usize..6);
        // Mix transient (recovering) and permanent outages across cases.
        let up = if case % 2 == 0 { Some(8 * MS) } else { None };
        let plan = FaultPlan::random_link_outages(&t, outages, 2 * MS, up, seed);
        let suite = RoutingSuite::new(&t);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(150_000), 1_000.0, 0.01, seed);
        if flows.is_empty() {
            continue;
        }
        let mut sim = Simulator::new(&t, Box::new(suite.hyb(100_000)), SimConfig::default());
        sim.set_window(0, 10 * MS);
        sim.inject(&flows);
        sim.set_fault_plan(&plan);
        let rec = sim.run(120 * SEC);
        let completed = rec.iter().filter(|r| r.fct_ns.is_some()).count();
        let failed = rec.iter().filter(|r| r.failed).count();
        assert_eq!(completed + failed, rec.len(), "flow in limbo (case {case})");
        for r in &rec {
            assert!(
                !(r.failed && r.fct_ns.is_some()),
                "flow both completed and failed"
            );
        }
    }
}

/// Fault determinism: the same workload + the same fault plan (same
/// seed) reproduce identical per-flow outcomes, including gray losses.
#[test]
fn faulted_runs_deterministic() {
    let t = Xpander::new(4, 6, 2, 3).build();
    let run = || {
        let suite = RoutingSuite::new(&t);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(120_000), 1_200.0, 0.01, 11);
        let plan = FaultPlan::random_link_outages(&t, 3, MS, Some(6 * MS), 42)
            .link_gray(MS, 0, 0.05)
            .link_clear(5 * MS, 0);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.set_window(0, 8 * MS);
        sim.inject(&flows);
        sim.set_fault_plan(&plan);
        let rec = sim.run(120 * SEC);
        let drops = (sim.total_fault_drops(), sim.total_congestion_drops());
        (
            rec.iter()
                .map(|r| (r.fct_ns, r.failed, r.recovery_ns))
                .collect::<Vec<_>>(),
            drops,
        )
    };
    assert_eq!(run(), run());
}

/// Byte capacity of fabric channel `ch`: inter-switch channels come
/// first (two per link), then per-server (up, down) pairs — the up
/// direction is the deep NIC queue, the down direction a switch port.
fn channel_cap(ch: u32, link_channels: u32, link_cap: u64, host_cap: u64) -> u64 {
    if ch < link_channels || (ch - link_channels) % 2 == 1 {
        link_cap
    } else {
        host_cap
    }
}

/// Tail-drop + ECN discipline invariants, observed through the trace
/// counters of full runs: no queue ever holds more bytes than its
/// configured capacity, channels that marked packets must have crossed
/// the ECN threshold, and tail-drop never evicts.
#[test]
fn taildrop_occupancy_and_marks_respect_config() {
    let mut meta = Rng::seed_from_u64(0x0b5e);
    let t = FatTree::full(4).build();
    let link_channels = t.num_links() as u32 * 2;
    for _ in 0..6 {
        let queue = meta.gen_range(6u32..40);
        let ecn_k = 1 + meta.gen_range(0u32..queue / 2);
        let seed = meta.gen_range(0u64..50);
        let cfg = SimConfig {
            queue_pkts: queue,
            ecn_k_pkts: ecn_k,
            ..Default::default()
        };
        let mtu = cfg.mtu as u64;
        let (link_cap, host_cap) = (queue as u64 * mtu, cfg.host_queue_pkts as u64 * mtu);
        let ecn_at = ecn_k as u64 * mtu;

        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(150_000), 2_500.0, 0.005, seed);
        sim.set_window(0, 5 * MS);
        sim.inject(&flows);
        sim.set_tracer(Box::new(CountingTracer::new()));
        sim.run(120 * SEC);

        let c = sim.trace_counters().expect("counting tracer");
        let mut marks = 0;
        for (ch, cc) in c.per_channel.iter().enumerate() {
            let cap = channel_cap(ch as u32, link_channels, link_cap, host_cap);
            assert!(
                cc.hwm_bytes <= cap,
                "ch {ch}: occupancy {} exceeded capacity {cap}",
                cc.hwm_bytes
            );
            if cc.marks > 0 {
                assert!(
                    cc.hwm_bytes >= ecn_at,
                    "ch {ch}: marked below the ECN threshold ({} < {ecn_at})",
                    cc.hwm_bytes
                );
            }
            assert_eq!(cc.drops_eviction, 0, "tail-drop evicted on ch {ch}");
            marks += cc.marks;
        }
        assert_eq!(marks, sim.total_marks(), "tracer and fabric disagree");
    }
}

/// pFabric discipline invariants through the trace counters: a channel
/// only evicts when its queue was actually full (occupancy within one
/// MTU of capacity), and the strict-priority queue never ECN-marks.
#[test]
fn pfabric_evicts_only_when_full() {
    let mut meta = Rng::seed_from_u64(0xFAB0);
    let t = FatTree::full(4).build();
    let link_channels = t.num_links() as u32 * 2;
    let mut saw_eviction = false;
    for _ in 0..6 {
        let queue = 4 + meta.gen_range(0u32..6);
        let seed = meta.gen_range(0u64..50);
        let cfg = SimConfig {
            queue_pkts: queue,
            ..SimConfig::default().with_pfabric()
        };
        let mtu = cfg.mtu as u64;
        let (link_cap, host_cap) = (queue as u64 * mtu, cfg.host_queue_pkts as u64 * mtu);

        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 3_000.0, 0.005, seed);
        sim.set_window(0, 5 * MS);
        sim.inject(&flows);
        sim.set_tracer(Box::new(CountingTracer::new()));
        sim.run(120 * SEC);

        let c = sim.trace_counters().expect("counting tracer");
        assert_eq!(c.marks, 0, "pFabric queues must never mark");
        for (ch, cc) in c.per_channel.iter().enumerate() {
            if cc.drops_eviction == 0 {
                continue;
            }
            saw_eviction = true;
            let cap = channel_cap(ch as u32, link_channels, link_cap, host_cap);
            assert!(
                cc.hwm_bytes + mtu > cap,
                "ch {ch}: evicted while queue held only {} of {cap} bytes",
                cc.hwm_bytes
            );
        }
    }
    assert!(saw_eviction, "sweep never exercised an eviction");
}

/// Model-based check of the pFabric queue against a naive reference:
/// random enqueue/dequeue sequences must always serve the smallest
/// priority (earliest arrival among ties) and only evict strictly less
/// urgent packets, and only when full.
#[test]
fn pfabric_queue_matches_srpt_model() {
    use dcn_sim::{PFabricQueue, Packet, PacketArena, QueueDiscipline};
    use std::sync::Arc;

    let mk = |pool: &mut PacketArena, prio: u32, seq: u32| {
        pool.alloc(Packet {
            flow: prio,
            seq,
            bytes: 1500,
            ecn_ce: false,
            is_ack: false,
            ack_ecn: false,
            ts: 0,
            hop: 0,
            prio,
            path: Arc::new(vec![]),
        })
    };

    let mut meta = Rng::seed_from_u64(0x512F);
    for _ in 0..20 {
        let cap_pkts = 2 + meta.gen_range(0u64..8);
        let mut pool = PacketArena::new();
        let mut q = PFabricQueue::new(cap_pkts * 1500);
        // Reference queue: (prio, arrival id) in arrival order.
        let mut model: Vec<(u32, u32)> = Vec::new();
        let mut arrivals = 0u32;
        for _ in 0..300 {
            if meta.gen_range(0.0..1.0) < 0.55 {
                let prio = meta.gen_range(0u32..6);
                let seq = arrivals;
                arrivals += 1;
                let id = mk(&mut pool, prio, seq);
                let out = q.enqueue(id, &mut pool);
                // Reference: evict the worst (max prio, latest arrival)
                // while full, but only if strictly less urgent.
                let mut expect_evicted = Vec::new();
                let accepted = loop {
                    if model.len() < cap_pkts as usize {
                        break true;
                    }
                    let worst = (0..model.len()).max_by_key(|&i| (model[i].0, i)).unwrap();
                    if model[worst].0 > prio {
                        expect_evicted.push(model.remove(worst));
                    } else {
                        break false;
                    }
                };
                assert_eq!(out.accepted, accepted);
                assert_eq!(out.evicted, expect_evicted, "wrong victims");
                assert!(
                    out.evicted.is_empty() || accepted,
                    "evicted without admitting the newcomer"
                );
                if accepted {
                    model.push((prio, seq));
                } else {
                    // The discipline never owned the rejected id; the
                    // channel layer frees it.
                    pool.free(id);
                }
            } else {
                let expect = (0..model.len()).min_by_key(|&i| (model[i].0, i));
                match (q.dequeue(), expect) {
                    (Some(id), Some(i)) => {
                        let (prio, seq) = model.remove(i);
                        let p = pool.get(id);
                        assert_eq!(
                            (p.prio, p.seq),
                            (prio, seq),
                            "dequeue is not smallest-priority-first"
                        );
                        pool.free(id);
                    }
                    (None, None) => {}
                    (got, want) => {
                        panic!("dequeue disagreed with model: {got:?} vs {want:?}")
                    }
                }
            }
            assert_eq!(q.queue_len(), model.len());
            assert_eq!(
                pool.live_count(),
                model.len(),
                "every drop must free its arena slot"
            );
            assert!(q.queue_bytes() <= cap_pkts * 1500);
        }
    }
}

/// A fault-free run is byte-identical whether or not an empty fault plan
/// is installed — the fault machinery is pay-for-what-you-use.
#[test]
fn empty_fault_plan_is_identity() {
    let t = FatTree::full(4).build();
    let run = |with_plan: bool| {
        let suite = RoutingSuite::new(&t);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(100_000), 1_000.0, 0.01, 3);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.set_window(0, 10 * MS);
        sim.inject(&flows);
        if with_plan {
            sim.set_fault_plan(&FaultPlan::new().with_seed(99));
        }
        sim.run(120 * SEC)
            .iter()
            .map(|r| r.fct_ns)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(false), run(true));
}
