//! Routing hot paths — table construction, per-flowlet path selection,
//! and the stable hash.

use dcn_bench::bench_case;
use dcn_routing::ecmp::{hash3, EcmpTable};
use dcn_routing::hyb::PathSelector;
use dcn_routing::RoutingSuite;
use dcn_topology::xpander::Xpander;

fn main() {
    let t = Xpander::paper_sec6(1).build();
    bench_case("ecmp/table_build_216", 10, || EcmpTable::new(&t));

    let suite = RoutingSuite::new(&t);
    let ecmp = suite.ecmp();
    let vlb = suite.vlb();
    let hyb = suite.hyb(100_000);
    let mut key = 0u64;
    bench_case("select/ecmp", 1_000_000, || {
        key = key.wrapping_add(1);
        ecmp.select(3, 200, key, 0)
    });
    let mut key = 0u64;
    bench_case("select/vlb", 1_000_000, || {
        key = key.wrapping_add(1);
        vlb.select(3, 200, key, 0)
    });
    let mut key = 0u64;
    bench_case("select/hyb_past_threshold", 1_000_000, || {
        key = key.wrapping_add(1);
        hyb.select(3, 200, key, 1_000_000)
    });

    let mut x = 0u64;
    bench_case("hash3", 10_000_000, || {
        x = x.wrapping_add(1);
        hash3(x, 17, 23)
    });
}
