//! Criterion: routing hot paths — table construction, per-flowlet path
//! selection, and the stable hash.

use criterion::{criterion_group, criterion_main, Criterion};
use dcn_routing::ecmp::{hash3, EcmpTable};
use dcn_routing::hyb::PathSelector;
use dcn_routing::RoutingSuite;
use dcn_topology::xpander::Xpander;
use std::hint::black_box;

fn table_build(c: &mut Criterion) {
    let t = Xpander::paper_sec6(1).build();
    c.bench_function("ecmp/table_build_216", |b| b.iter(|| black_box(EcmpTable::new(&t))));
}

fn path_selection(c: &mut Criterion) {
    let t = Xpander::paper_sec6(1).build();
    let suite = RoutingSuite::new(&t);
    let ecmp = suite.ecmp();
    let vlb = suite.vlb();
    let hyb = suite.hyb(100_000);
    let mut key = 0u64;
    c.bench_function("select/ecmp", |b| {
        b.iter(|| {
            key = key.wrapping_add(1);
            black_box(ecmp.select(3, 200, key, 0))
        })
    });
    c.bench_function("select/vlb", |b| {
        b.iter(|| {
            key = key.wrapping_add(1);
            black_box(vlb.select(3, 200, key, 0))
        })
    });
    c.bench_function("select/hyb_past_threshold", |b| {
        b.iter(|| {
            key = key.wrapping_add(1);
            black_box(hyb.select(3, 200, key, 1_000_000))
        })
    });
}

fn hashing(c: &mut Criterion) {
    let mut x = 0u64;
    c.bench_function("hash3", |b| {
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(hash3(x, 17, 23))
        })
    });
}

criterion_group!(benches, table_build, path_selection, hashing);
criterion_main!(benches);
