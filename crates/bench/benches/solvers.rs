//! Fluid-flow solver costs — Garg–Könemann accuracy/runtime trade (the
//! ε ablation of DESIGN.md §6), Dinic, and the tiny simplex.

use dcn_bench::bench_case;
use dcn_maxflow::concurrent::{max_concurrent_flow, Commodity, GkOptions};
use dcn_maxflow::dinic::topology_max_flow;
use dcn_maxflow::lp::exact_concurrent_flow;
use dcn_maxflow::network::FlowNetwork;
use dcn_topology::fattree::FatTree;
use dcn_topology::jellyfish::Jellyfish;
use dcn_workloads::longest_matching;

fn main() {
    let t = Jellyfish::new(60, 6, 4, 1).build();
    let racks = t.tors_with_servers();
    let pairs = longest_matching(&t, &racks, 1.0, 1);
    let commodities: Vec<Commodity> = pairs
        .iter()
        .map(|&(a, b)| Commodity {
            src: a,
            dst: b,
            demand: 4.0,
        })
        .collect();
    let net = FlowNetwork::from_topology(&t);
    for &eps in &[0.3, 0.1, 0.05] {
        bench_case(&format!("gk_epsilon/{eps}"), 5, || {
            max_concurrent_flow(
                &net,
                &commodities,
                GkOptions {
                    epsilon: eps,
                    target: None,
                    gap: 0.05,
                    max_phases: 2_000_000,
                },
            )
        });
    }

    let ft = FatTree::full(8).build();
    bench_case("dinic/fat_tree_k8_cross_pod", 20, || {
        topology_max_flow(&ft, 0, 40)
    });

    let mut c6 = dcn_topology::Topology::new("c6");
    for _ in 0..6 {
        c6.add_node(dcn_topology::NodeKind::Tor, 1);
    }
    for i in 0..6u32 {
        c6.add_link(i, (i + 1) % 6);
    }
    let net6 = FlowNetwork::from_topology(&c6);
    let coms = [
        Commodity {
            src: 0,
            dst: 3,
            demand: 1.0,
        },
        Commodity {
            src: 1,
            dst: 4,
            demand: 1.0,
        },
        Commodity {
            src: 2,
            dst: 5,
            demand: 1.0,
        },
    ];
    bench_case("simplex/c6_three_commodities", 50, || {
        exact_concurrent_flow(&net6, &coms)
    });
}
