//! Criterion: fluid-flow solver costs — Garg–Könemann accuracy/runtime
//! trade (the ε ablation of DESIGN.md §6), Dinic, and the tiny simplex.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcn_maxflow::concurrent::{max_concurrent_flow, Commodity, GkOptions};
use dcn_maxflow::dinic::topology_max_flow;
use dcn_maxflow::lp::exact_concurrent_flow;
use dcn_maxflow::network::FlowNetwork;
use dcn_topology::fattree::FatTree;
use dcn_topology::jellyfish::Jellyfish;
use dcn_workloads::longest_matching;
use std::hint::black_box;

fn gk_epsilon_tradeoff(c: &mut Criterion) {
    let t = Jellyfish::new(60, 6, 4, 1).build();
    let racks = t.tors_with_servers();
    let pairs = longest_matching(&t, &racks, 1.0, 1);
    let commodities: Vec<Commodity> = pairs
        .iter()
        .map(|&(a, b)| Commodity { src: a, dst: b, demand: 4.0 })
        .collect();
    let net = FlowNetwork::from_topology(&t);

    let mut g = c.benchmark_group("gk_epsilon");
    g.sample_size(10);
    for &eps in &[0.3, 0.1, 0.05] {
        g.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| {
                black_box(max_concurrent_flow(
                    &net,
                    &commodities,
                    GkOptions { epsilon: eps, target: None, gap: 0.05, max_phases: 2_000_000 },
                ))
            })
        });
    }
    g.finish();
}

fn dinic_fat_tree(c: &mut Criterion) {
    let t = FatTree::full(8).build();
    c.bench_function("dinic/fat_tree_k8_cross_pod", |b| {
        b.iter(|| black_box(topology_max_flow(&t, 0, 40)))
    });
}

fn simplex_small(c: &mut Criterion) {
    let mut t = dcn_topology::Topology::new("c6");
    for _ in 0..6 {
        t.add_node(dcn_topology::NodeKind::Tor, 1);
    }
    for i in 0..6u32 {
        t.add_link(i, (i + 1) % 6);
    }
    let net = FlowNetwork::from_topology(&t);
    let coms = [
        Commodity { src: 0, dst: 3, demand: 1.0 },
        Commodity { src: 1, dst: 4, demand: 1.0 },
        Commodity { src: 2, dst: 5, demand: 1.0 },
    ];
    c.bench_function("simplex/c6_three_commodities", |b| {
        b.iter(|| black_box(exact_concurrent_flow(&net, &coms)))
    });
}

criterion_group!(benches, gk_epsilon_tradeoff, dinic_fat_tree, simplex_small);
criterion_main!(benches);
