//! Packet-engine throughput — events/second of the discrete event core
//! under a realistic A2A load, and the raw channel state machine.

use dcn_bench::bench_case;
use dcn_routing::RoutingSuite;
use dcn_sim::{SimConfig, Simulator, MS, SEC};
use dcn_topology::fattree::FatTree;
use dcn_workloads::tm::Endpoint;
use dcn_workloads::{generate_flows, AllToAll, FlowEvent, PFabricWebSearch};

fn main() {
    for &(k, lam_per_srv) in &[(4u32, 500.0f64), (8, 200.0)] {
        let t = FatTree::full(k).build();
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let lambda = lam_per_srv * t.num_servers() as f64;
        let flows = generate_flows(&pattern, &PFabricWebSearch::new(), lambda, 0.01, 7);
        bench_case(&format!("engine/a2a_10ms_k{k}"), 5, || {
            let suite = RoutingSuite::new(&t);
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
            sim.set_window(0, 10 * MS);
            sim.inject(&flows);
            sim.run(10 * SEC);
            sim.events_processed()
        });
    }

    let t = FatTree::full(4).build();
    let flow = FlowEvent {
        start_s: 0.0,
        src: Endpoint { rack: 0, server: 0 },
        dst: Endpoint {
            rack: 12,
            server: 0,
        },
        bytes: 10_000_000,
    };
    bench_case("engine/single_10MB_flow", 10, || {
        let suite = RoutingSuite::new(&t);
        let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
        sim.inject(&[flow]);
        let rec = sim.run(10 * SEC);
        assert!(rec[0].fct_ns.is_some());
    });
}
