//! Criterion: packet-engine throughput — events/second of the discrete
//! event core under a realistic A2A load, and the raw channel state
//! machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcn_routing::RoutingSuite;
use dcn_sim::{SimConfig, Simulator, MS, SEC};
use dcn_topology::fattree::FatTree;
use dcn_workloads::tm::Endpoint;
use dcn_workloads::{generate_flows, AllToAll, FlowEvent, PFabricWebSearch};
use std::hint::black_box;

fn engine_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for &(k, lam_per_srv) in &[(4u32, 500.0f64), (8, 200.0)] {
        let t = FatTree::full(k).build();
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let lambda = lam_per_srv * t.num_servers() as f64;
        let flows = generate_flows(&pattern, &PFabricWebSearch::new(), lambda, 0.01, 7);
        g.bench_with_input(
            BenchmarkId::new("a2a_10ms", format!("k{k}")),
            &flows,
            |b, flows| {
                b.iter(|| {
                    let suite = RoutingSuite::new(&t);
                    let mut sim =
                        Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
                    sim.set_window(0, 10 * MS);
                    sim.inject(flows);
                    black_box(sim.run(10 * SEC));
                    sim.events_processed()
                })
            },
        );
    }
    g.finish();
}

fn single_flow_goodput(c: &mut Criterion) {
    let t = FatTree::full(4).build();
    let flow = FlowEvent {
        start_s: 0.0,
        src: Endpoint { rack: 0, server: 0 },
        dst: Endpoint { rack: 12, server: 0 },
        bytes: 10_000_000,
    };
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    g.bench_function("single_10MB_flow", |b| {
        b.iter(|| {
            let suite = RoutingSuite::new(&t);
            let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), SimConfig::default());
            sim.inject(&[flow]);
            let rec = black_box(sim.run(10 * SEC));
            assert!(rec[0].fct_ns.is_some());
        })
    });
    g.finish();
}

criterion_group!(benches, engine_events, single_flow_goodput);
criterion_main!(benches);
