//! Topology generation and analysis costs.

use dcn_bench::bench_case;
use dcn_topology::fattree::FatTree;
use dcn_topology::jellyfish::Jellyfish;
use dcn_topology::metrics::path_stats;
use dcn_topology::slimfly::SlimFly;
use dcn_topology::xpander::{second_eigenvalue, Xpander};

fn main() {
    bench_case("build/fat_tree_k16", 10, || FatTree::full(16).build());
    bench_case("build/xpander_216", 10, || Xpander::paper_sec6(1).build());
    bench_case("build/jellyfish_216", 10, || {
        Jellyfish::new(216, 11, 5, 1).build()
    });
    bench_case("build/slimfly_q17", 10, || SlimFly::paper_fig5a().build());

    let xp = Xpander::paper_sec6(1).build();
    bench_case("analyze/path_stats_216", 5, || path_stats(&xp));
    bench_case("analyze/lambda2_216", 5, || second_eigenvalue(&xp));
}
