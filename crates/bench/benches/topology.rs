//! Criterion: topology generation and analysis costs.

use criterion::{criterion_group, criterion_main, Criterion};
use dcn_topology::fattree::FatTree;
use dcn_topology::jellyfish::Jellyfish;
use dcn_topology::metrics::path_stats;
use dcn_topology::slimfly::SlimFly;
use dcn_topology::xpander::{second_eigenvalue, Xpander};
use std::hint::black_box;

fn generators(c: &mut Criterion) {
    c.bench_function("build/fat_tree_k16", |b| b.iter(|| black_box(FatTree::full(16).build())));
    c.bench_function("build/xpander_216", |b| {
        b.iter(|| black_box(Xpander::paper_sec6(1).build()))
    });
    c.bench_function("build/jellyfish_216", |b| {
        b.iter(|| black_box(Jellyfish::new(216, 11, 5, 1).build()))
    });
    c.bench_function("build/slimfly_q17", |b| {
        b.iter(|| black_box(SlimFly::paper_fig5a().build()))
    });
}

fn analysis(c: &mut Criterion) {
    let xp = Xpander::paper_sec6(1).build();
    c.bench_function("analyze/path_stats_216", |b| b.iter(|| black_box(path_stats(&xp))));
    c.bench_function("analyze/lambda2_216", |b| b.iter(|| black_box(second_eigenvalue(&xp))));
}

criterion_group!(benches, generators, analysis);
criterion_main!(benches);
