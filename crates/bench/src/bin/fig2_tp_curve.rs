//! Fig 2: the throughput-proportionality ideal versus the fat-tree's
//! flexibility curve — the conceptual figure defining the paper's metric.

use dcn_bench::{fraction_sweep, parse_cli, Series};
use dcn_core::{fat_tree_throughput, tp_throughput};

fn main() {
    let cli = parse_cli();
    // The illustrative α = 0.5 oversubscription and a k = 16 fat-tree's
    // β = 2/k bottleneck fraction.
    let alpha = 0.5;
    let beta = 2.0 / 16.0;
    let mut s = Series::new(
        "fig2_tp_curve",
        "fraction_with_demand",
        &["throughput_proportional", "fat_tree"],
    );
    for x in fraction_sweep(100) {
        s.push(
            x,
            vec![tp_throughput(alpha, x), fat_tree_throughput(alpha, beta, x)],
        );
    }
    s.finish(&cli);
}
