//! Ablation: DCTCP (the paper's transport) versus a loss-based NewReno
//! baseline and the pFabric transport/queue pair on the 2/3-cost Xpander
//! with HYB — checks that the paper's routing result does not secretly
//! depend on DCTCP's ECN reaction or on FIFO queueing.

use dcn_bench::{fct_point_traced, packet_setup, parse_cli, Series};
use dcn_core::{paper_networks, Routing};
use dcn_sim::SimConfig;
use dcn_workloads::{active_racks_for_servers, AllToAll, PFabricWebSearch};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);
    let total = pair.fat_tree.num_servers() as u32;
    let n_active = (total as f64 * 0.5).round() as u32;
    let lambda = 130.0 * n_active as f64;

    let racks = active_racks_for_servers(
        &pair.xpander,
        &pair.xpander.tors_with_servers(),
        n_active,
        true,
        cli.seed,
    );

    let mut s = Series::new(
        "ablate_transport",
        "transport_index",
        &["avg_fct_ms", "p99_short_fct_ms", "long_tput_gbps"],
    );
    println!("# transport order: [dctcp, newreno, pfabric]");
    for (i, (name, cfg)) in [
        ("dctcp", SimConfig::default()),
        ("newreno", SimConfig::default().with_newreno()),
        ("pfabric", SimConfig::default().with_pfabric()),
    ]
    .into_iter()
    .enumerate()
    {
        eprintln!("transport {i} ({name})");
        let pat = AllToAll::new(&pair.xpander, racks.clone());
        let m = fct_point_traced(
            &pair.xpander,
            Routing::PAPER_HYB,
            cfg,
            &pat,
            &sizes,
            lambda,
            setup,
            cli.seed,
            cli.trace_path(name).as_deref(),
        );
        s.push(
            i as f64,
            vec![m.avg_fct_ms, m.p99_short_fct_ms, m.avg_long_tput_gbps],
        );
    }
    s.finish(&cli);
}
