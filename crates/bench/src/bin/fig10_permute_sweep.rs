//! Fig 10: Permute(x) — random rack-level permutation traffic restricted
//! to x of the racks — at 167 flow-arrivals/s per active server, pFabric
//! sizes. The rack-to-rack consolidation makes this the hard case for
//! ECMP on the expander; HYB recovers the fat-tree's performance for
//! skewed (small-x) matrices.

use dcn_bench::{fct_point, fraction_sweep, packet_setup, parse_cli, Series};
use dcn_core::{paper_networks, Routing};
use dcn_sim::SimConfig;
use dcn_workloads::{active_racks_for_servers, PFabricWebSearch, Permutation};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);
    let total_servers = pair.fat_tree.num_servers() as u32;

    let mut a = Series::new(
        "fig10a_permute_avg_fct",
        "fraction_active",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );
    let mut b = Series::new(
        "fig10b_permute_p99_short_fct",
        "fraction_active",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );
    let mut c = Series::new(
        "fig10c_permute_long_tput",
        "fraction_active",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );

    for x in fraction_sweep(10) {
        let n_active = ((total_servers as f64) * x).round().max(8.0) as u32;
        let lambda = 167.0 * n_active as f64;
        eprintln!("x = {x:.1}: {n_active} active servers, λ = {lambda}");

        let ft_racks = active_racks_for_servers(
            &pair.fat_tree,
            &pair.fat_tree.tors_with_servers(),
            n_active,
            false,
            cli.seed,
        );
        let xp_racks = active_racks_for_servers(
            &pair.xpander,
            &pair.xpander.tors_with_servers(),
            n_active,
            true,
            cli.seed,
        );
        let ft_pat = Permutation::new(&pair.fat_tree, ft_racks, cli.seed);
        let xp_pat = Permutation::new(&pair.xpander, xp_racks, cli.seed);

        let ft = fct_point(
            &pair.fat_tree,
            Routing::Ecmp,
            SimConfig::default(),
            &ft_pat,
            &sizes,
            lambda,
            setup,
            cli.seed,
        );
        let ecmp = fct_point(
            &pair.xpander,
            Routing::Ecmp,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            lambda,
            setup,
            cli.seed,
        );
        let hyb = fct_point(
            &pair.xpander,
            Routing::PAPER_HYB,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            lambda,
            setup,
            cli.seed,
        );

        a.push(x, vec![ft.avg_fct_ms, ecmp.avg_fct_ms, hyb.avg_fct_ms]);
        b.push(
            x,
            vec![
                ft.p99_short_fct_ms,
                ecmp.p99_short_fct_ms,
                hyb.p99_short_fct_ms,
            ],
        );
        c.push(
            x,
            vec![
                ft.avg_long_tput_gbps,
                ecmp.avg_long_tput_gbps,
                hyb.avg_long_tput_gbps,
            ],
        );
    }
    a.finish(&cli);
    b.finish(&cli);
    c.finish(&cli);
}
