//! §7.1 exploration: "How much can performance be further improved by
//! adaptive routing?" Compares the paper's oblivious HYB against an
//! *oracle* congestion-aware router (least-queued of the k shortest
//! paths, scored on live global queue state — an upper bound no real
//! scheme can reach) on the Permute workload that stresses routing most.

use dcn_bench::{packet_setup, parse_cli, rate_sweep, Series};
use dcn_core::{paper_networks, Routing};
use dcn_sim::{compute_metrics, SimConfig, Simulator};
use dcn_workloads::{active_racks_for_servers, generate_flows, PFabricWebSearch, Permutation};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let xp = &pair.xpander;
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);
    let total = pair.fat_tree.num_servers() as u32;
    let n_active = (total as f64 * 0.31).round() as u32;
    let rates = rate_sweep(117.0 * total as f64, 5);

    let racks = active_racks_for_servers(xp, &xp.tors_with_servers(), n_active, true, cli.seed);

    let mut s = Series::new(
        "ablate_congestion_aware",
        "flow_starts_per_s",
        &[
            "hyb_avg_fct_ms",
            "oracle_ksp8_avg_fct_ms",
            "hyb_long_tput",
            "oracle_long_tput",
        ],
    );
    for &rate in &rates {
        eprintln!("λ = {rate}");
        let pat = Permutation::new(xp, racks.clone(), cli.seed);
        let flows = generate_flows(&pat, &sizes, rate, setup.horizon_s, cli.seed);

        let run = |oracle: bool| {
            let mut sim = Simulator::new(xp, Routing::PAPER_HYB.selector(xp), SimConfig::default());
            if oracle {
                sim.enable_oracle_routing(xp, 8);
            }
            sim.set_window(setup.window.0, setup.window.1);
            sim.inject(&flows);
            let rec = sim.run(setup.max_time);
            compute_metrics(&rec, setup.window.0, setup.window.1)
        };
        let hyb = run(false);
        let oracle = run(true);
        s.push(
            rate,
            vec![
                hyb.avg_fct_ms,
                oracle.avg_fct_ms,
                hyb.avg_long_tput_gbps,
                oracle.avg_long_tput_gbps,
            ],
        );
    }
    s.finish(&cli);
}
