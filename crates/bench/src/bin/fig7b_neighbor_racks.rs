//! Fig 7b: only the servers on two *adjacent* Xpander racks are active
//! (two same-pod racks for the fat-tree). ECMP collapses onto the single
//! direct link and its FCT blows up with load; VLB spreads over the whole
//! fabric and keeps up with the full-bandwidth fat-tree.

use dcn_bench::{fct_point, packet_setup, parse_cli, rate_sweep, Series};
use dcn_core::{paper_networks, Routing};
use dcn_sim::SimConfig;
use dcn_topology::Topology;
use dcn_workloads::{ExplicitServers, PFabricWebSearch};

/// Two directly connected racks of an expander.
fn adjacent_racks(t: &Topology) -> Vec<u32> {
    let l = t.link(0);
    vec![l.a, l.b]
}

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);

    // The same number of active servers on both networks (the paper uses
    // 10 over two racks; here the most both racks can host).
    let xp_racks = adjacent_racks(&pair.xpander);
    let ft_edges = pair.ft_config.edge_switches();
    let ft_racks = vec![ft_edges[0][0], ft_edges[0][1]];
    let per_rack = xp_racks
        .iter()
        .map(|&r| pair.xpander.servers_at(r))
        .chain(ft_racks.iter().map(|&r| pair.fat_tree.servers_at(r)))
        .min()
        .unwrap();
    let active_servers = 2 * per_rack;
    eprintln!("{active_servers} active servers ({per_rack} per rack)");

    // The paper sweeps to 300 flow-starts/s per active server with 5
    // servers per rack; with fewer servers per rack the direct link needs
    // a proportionally higher per-server rate to saturate.
    let rate_per_server = 300.0 * (5.0 / per_rack as f64).max(1.0);
    let rates = rate_sweep(rate_per_server * active_servers as f64, 6);

    let mut s = Series::new(
        "fig7b_neighbor_racks",
        "flow_starts_per_s",
        &[
            "fat_tree_avg_fct_ms",
            "xpander_ecmp_avg_fct_ms",
            "xpander_vlb_avg_fct_ms",
        ],
    );
    for &rate in &rates {
        eprintln!("λ = {rate}");
        let ft_pat = ExplicitServers::first_on_racks(&pair.fat_tree, &ft_racks, per_rack);
        let ft = fct_point(
            &pair.fat_tree,
            Routing::Ecmp,
            SimConfig::default(),
            &ft_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );
        let xp_pat = ExplicitServers::first_on_racks(&pair.xpander, &xp_racks, per_rack);
        let ecmp = fct_point(
            &pair.xpander,
            Routing::Ecmp,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );
        let vlb = fct_point(
            &pair.xpander,
            Routing::Vlb,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );
        s.push(rate, vec![ft.avg_fct_ms, ecmp.avg_fct_ms, vlb.avg_fct_ms]);
    }
    s.finish(&cli);
}
